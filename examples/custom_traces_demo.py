#!/usr/bin/env python
"""Section 4.4 walkthrough: custom call-inlining traces.

Shows the custom trace interface: dr_mark_trace_head on call sites plus
dynamorio_end_trace ending traces one block after a return, with the
return removed entirely under the calling-convention assumption.
"""

from repro.api.dr import dr_get_log
from repro.clients import CustomTraces
from repro.core import DynamoRIO, RuntimeOptions
from repro.loader import Process
from repro.machine.interp import run_native
from repro.workloads import load_benchmark


def main():
    image = load_benchmark("crafty", 2)
    native = run_native(Process(image))

    base = DynamoRIO(Process(image), options=RuntimeOptions.with_traces()).run()
    client = CustomTraces()
    custom = DynamoRIO(
        Process(image), options=RuntimeOptions.with_traces(), client=client
    ).run()
    assert custom.output == native.output == base.output

    print("crafty (recursion-heavy chess kernel)")
    print("native cycles:     %9d" % native.cycles)
    print("base DynamoRIO:    %9d  (%.3fx)" % (base.cycles, base.cycles / native.cycles))
    print("custom traces:     %9d  (%.3fx)" % (custom.cycles, custom.cycles / native.cycles))
    print()
    print("traces built:   %d -> %d" % (base.events["traces_built"], custom.events["traces_built"]))
    print(
        "return checks executed: %d -> %d"
        % (base.events["inline_check_hits"], custom.events["inline_check_hits"])
    )
    print("client log: %s" % "; ".join(dr_get_log(client)))


if __name__ == "__main__":
    main()
