#!/usr/bin/env python
"""Section 2 systems walkthrough: threads and signal interception.

Two application threads run under thread-private code caches while the
main thread takes asynchronous alarm signals — every piece of code
(workers, the signal handler) executes out of the code cache, never
natively.
"""

from repro.core import DynamoRIO, RuntimeOptions
from repro.loader import Process
from repro.machine.interp import run_native
from repro.minicc import compile_source

PROGRAM = """
int done[2];
int partial[2];
int ticks;

int on_tick() {
    ticks++;
    if (ticks < 3) { alarm(400); }
    sigreturn;
    return 0;
}

int worker_a() {
    int i;
    for (i = 0; i < 2500; i++) { partial[0] = partial[0] + i; }
    done[0] = 1;
    return 0;
}

int worker_b() {
    int i;
    for (i = 0; i < 2500; i++) { partial[1] = partial[1] ^ (i * 3); }
    done[1] = 1;
    return 0;
}

int main() {
    sighandler(&on_tick);
    alarm(400);
    spawn(&worker_a, 0x790000);
    spawn(&worker_b, 0x7a0000);
    while (done[0] == 0) { }
    while (done[1] == 0) { }
    while (ticks < 3) { }
    print(partial[0]);
    print(partial[1]);
    print(ticks);
    return 0;
}
"""


def main():
    image = compile_source(PROGRAM)
    native = run_native(Process(image))
    runtime = DynamoRIO(Process(image), options=RuntimeOptions.with_traces())
    result = runtime.run()

    assert result.output == native.output, "transparency violated"
    values = [
        int.from_bytes(result.output[i : i + 4], "little")
        for i in range(0, len(result.output), 4)
    ]
    print("worker A sum: %d, worker B xor: %d, ticks: %d" % tuple(values))
    print(
        "threads spawned: %d, thread switches: %d, signals: %d"
        % (
            result.events["threads_spawned"],
            result.events["thread_switches"],
            result.events["signals_delivered"],
        )
    )
    print(
        "thread-private caches: %d fragments across %d threads"
        % (result.events["bb_cache_fragments"], len(runtime.threads))
    )
    for thread in runtime.threads:
        print(
            "  thread %d: %d blocks, %d traces (cache base 0x%x)"
            % (
                thread.id,
                len(thread.bb_cache),
                len(thread.trace_cache),
                thread.bb_cache.base,
            )
        )


if __name__ == "__main__":
    main()
