#!/usr/bin/env python
"""Non-optimization use of the client interface (paper Sections 1, 7).

Builds a small profiling tool out of two clients: a dynamic instruction
counter (clean call per block) and an opcode-mix histogram (collected
at build time, zero execution overhead) — run over a real workload.
"""

from repro.clients import CombinedClient, InstructionCounter, OpcodeProfiler
from repro.core import DynamoRIO, RuntimeOptions
from repro.loader import Process
from repro.machine.interp import run_native
from repro.workloads import benchmark, load_benchmark


def main(name="parser"):
    bench = benchmark(name)
    image = load_benchmark(name, "test")
    native = run_native(Process(image))

    counter = InstructionCounter()
    profiler = OpcodeProfiler()
    runtime = DynamoRIO(
        Process(image),
        options=RuntimeOptions.with_traces(),
        client=CombinedClient([counter, profiler]),
    )
    result = runtime.run()
    assert result.output == native.output

    print("profiling %s: %s" % (bench.name, bench.description))
    print("dynamic instructions: %d" % counter.executed)
    print("static opcode mix (top 10, from basic-block building):")
    total = sum(profiler.block_opcodes.values())
    for opname, count in profiler.block_opcodes.most_common(10):
        print("  %-8s %6d  (%4.1f%%)" % (opname, count, 100.0 * count / total))
    print(
        "instrumentation overhead: %.2fx native"
        % (result.cycles / native.cycles)
    )


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "parser")
