#!/usr/bin/env python
"""Figure 3 walkthrough: the inc→add strength-reduction client.

Runs an increment-heavy program on simulated Pentium 3 and Pentium 4
machines.  The client enables itself only on the P4 (where inc/dec
stall on the partial flags update) — the paper's example of an
architecture-specific optimization that is best performed dynamically.
"""

from repro.api.dr import dr_get_log
from repro.clients import StrengthReduction
from repro.core import DynamoRIO, RuntimeOptions
from repro.loader import Process
from repro.machine.cost import CostModel, Family
from repro.machine.interp import run_native
from repro.minicc import compile_source

PROGRAM = """
int histogram[16];
int main() {
    int i; int v; int seed;
    seed = 11;
    for (i = 0; i < 6000; i++) {
        seed = seed * 1103515245 + 12345;
        v = (seed >> 16) & 15;
        histogram[v]++;
        if (v & 1) { histogram[0]++; }
    }
    print(histogram[0] + histogram[7] * 1000);
    return 0;
}
"""


def run_on(family):
    image = compile_source(PROGRAM)
    cost = CostModel(family)
    native = run_native(Process(image), cost_model=cost)
    client = StrengthReduction()
    runtime = DynamoRIO(
        Process(image),
        options=RuntimeOptions.with_traces(),
        client=client,
        cost_model=CostModel(family),
    )
    result = runtime.run()
    assert result.output == native.output
    print(
        "%-12s native=%8d  DynamoRIO+inc2add=%8d  (%.3fx)  [%s]"
        % (
            family.name,
            native.cycles,
            result.cycles,
            result.cycles / native.cycles,
            "; ".join(dr_get_log(client)),
        )
    )


def main():
    run_on(Family.PENTIUM_IV)
    run_on(Family.PENTIUM_III)


if __name__ == "__main__":
    main()
