#!/usr/bin/env python
"""Figure 2 reproduction: one instruction sequence at all five levels.

Uses the exact IA-32 byte sequence from the paper's Figure 2 (which is
also valid RIO-32 — the ISA was modeled to make this true) and prints
the representation at each level of detail, including the eflags
annotations in the paper's W/R notation.
"""

from repro.ir.instr import Instr
from repro.ir.levels import LEVEL_NAMES
from repro.isa.decoder import decode_boundary
from repro.isa.eflags import eflags_to_string

# lea; mov; sub; movzx; shl; cmp; jnl — the paper's Figure 2 bytes.
FIGURE2 = bytes.fromhex("8d34018b460c2b461c0fb74e08c1e1073bc10f8da20a0000")
BASE_PC = 0x77F51864  # arbitrary, keeps the jnl target interesting


def boundaries():
    out = []
    off = 0
    while off < len(FIGURE2):
        n = decode_boundary(FIGURE2, off)
        out.append((off, n))
        off += n
    return out


def show_level0():
    print("=" * 66)
    print(LEVEL_NAMES[0])
    bundle = Instr.bundle(FIGURE2, BASE_PC)
    print("  raw bits: %s" % bundle.raw.hex(" "))
    print("  (%d bytes, only the final boundary recorded)" % len(bundle.raw))


def show_level1():
    print("=" * 66)
    print(LEVEL_NAMES[1])
    for off, n in boundaries():
        print("  %-22s" % FIGURE2[off : off + n].hex(" "))


def show_level2():
    print("=" * 66)
    print(LEVEL_NAMES[2])
    print("  %-22s %-8s %s" % ("raw bits", "opcode", "eflags"))
    for off, n in boundaries():
        instr = Instr.from_raw(FIGURE2[off : off + n], BASE_PC + off)
        print(
            "  %-22s %-8s %s"
            % (
                instr.raw.hex(" "),
                instr.info.name,
                eflags_to_string(instr.eflags),
            )
        )


def show_level3():
    print("=" * 66)
    print(LEVEL_NAMES[3])
    print("  %-22s %-34s %s" % ("raw bits", "opcode + operands", "eflags"))
    for off, n in boundaries():
        instr = Instr.from_raw(FIGURE2[off : off + n], BASE_PC + off)
        instr.srcs  # decode fully; raw bits stay valid
        assert instr.raw_bits_valid()
        print(
            "  %-22s %-34s %s"
            % (instr.raw.hex(" "), instr.disassemble(), eflags_to_string(instr.eflags))
        )


def show_level4():
    print("=" * 66)
    print(LEVEL_NAMES[4])
    print("  %-22s %-34s %s" % ("raw bits", "opcode + operands", "eflags"))
    for off, n in boundaries():
        instr = Instr.from_raw(FIGURE2[off : off + n], BASE_PC + off)
        # modify a register operand: esi -> edi, like the paper's figure
        from repro.isa.registers import Reg

        for i, op in enumerate(instr.srcs):
            if op.is_mem() and op.base == Reg.ESI:
                from repro.isa.operands import MemOperand

                instr.set_src(
                    i,
                    MemOperand(
                        base=Reg.EDI,
                        index=op.index,
                        scale=op.scale,
                        disp=op.disp,
                        size=op.size,
                    ),
                )
        print(
            "  %-22s %-34s %s"
            % (
                "(invalid)" if not instr.raw_bits_valid() else instr.raw.hex(" "),
                instr.disassemble(),
                eflags_to_string(instr.eflags),
            )
        )


def main():
    show_level0()
    show_level1()
    show_level2()
    show_level3()
    show_level4()
    print("=" * 66)


if __name__ == "__main__":
    main()
