#!/usr/bin/env python
"""Security walkthrough: program shepherding (paper reference [23]).

Shows the client interface enforcing a control-flow policy: a buffer
overflow that smashes the saved return address is stopped *at the
return instruction*, before a single hijacked instruction runs.
"""

from repro.clients import ProgramShepherding, SecurityViolation
from repro.core import DynamoRIO, RuntimeOptions
from repro.loader import Process
from repro.minicc import compile_source

VULNERABLE = """
int store_field(int idx, int value) {
    int buf[2];
    buf[0] = 0;
    buf[1] = 0;
    buf[idx] = value;   /* unchecked index: idx=3 hits [ebp+4] */
    return buf[0] + buf[1];
}

int main() {
    int i; int acc;
    acc = 0;
    for (i = 0; i < 10; i++) {
        acc = acc + store_field(i & 1, i * 7);   /* benign indices */
        print(acc);
    }
    acc = acc + store_field(3, 0x100000);        /* the attack */
    print(acc);
    return 0;
}
"""


def main():
    image = compile_source(VULNERABLE)
    client = ProgramShepherding(image=image)
    runtime = DynamoRIO(
        Process(image), options=RuntimeOptions.with_traces(), client=client
    )
    print("running a program with a stack-smashing bug under shepherding...")
    try:
        runtime.run()
        print("program finished (unexpected!)")
    except SecurityViolation as violation:
        print("BLOCKED: %s" % violation)
        print(
            "the hijacked return never executed; %d transfers were checked, "
            "%d trusted entries, %d return sites learned"
            % (
                client.checks_performed,
                len(client.allowed_entries),
                len(client.return_sites),
            )
        )
        out = runtime.system.output_bytes()
        print(
            "output before the attack: %d benign calls completed"
            % (len(out) // 4)
        )


if __name__ == "__main__":
    main()
