#!/usr/bin/env python
"""Section 4.3 walkthrough: adaptive indirect-branch dispatch.

Runs a virtual-dispatch-heavy program and shows the client profiling
indirect branch targets and *rewriting its own traces* at runtime
(dr_decode_fragment / dr_replace_fragment) to insert compare-and-branch
chains for the hot targets — Figure 4's transformation.
"""

from repro.api.dr import dr_get_log
from repro.clients import IndirectBranchDispatch
from repro.core import DynamoRIO, RuntimeOptions
from repro.loader import Process
from repro.machine.interp import run_native
from repro.minicc import compile_source

PROGRAM = """
int vtable[4];
int shape_square(int x) { return x * x; }
int shape_circle(int x) { return (x * x * 355) / 113; }
int shape_line(int x) { return x * 2; }
int shape_point(int x) { return 1; }

int main() {
    int i; int area; int draw;
    vtable[0] = &shape_square;
    vtable[1] = &shape_circle;
    vtable[2] = &shape_line;
    vtable[3] = &shape_point;
    area = 0;
    for (i = 0; i < 3000; i++) {
        draw = vtable[i & 3];          /* polymorphic call site */
        area = area + draw(i & 15);
        area = area & 0xFFFFF;
    }
    print(area);
    return 0;
}
"""


def main():
    image = compile_source(PROGRAM)
    native = run_native(Process(image))

    base = DynamoRIO(Process(image), options=RuntimeOptions.with_traces()).run()
    client = IndirectBranchDispatch(sample_threshold=24)
    optimized = DynamoRIO(
        Process(image), options=RuntimeOptions.with_traces(), client=client
    ).run()
    assert optimized.output == native.output == base.output

    print("native cycles:        %8d" % native.cycles)
    print("base DynamoRIO:       %8d  (%.3fx)" % (base.cycles, base.cycles / native.cycles))
    print("with dispatch client: %8d  (%.3fx)" % (optimized.cycles, optimized.cycles / native.cycles))
    print()
    print("hashtable (IBL) lookups: %d -> %d" % (base.events["ibl_hits"], optimized.events["ibl_hits"]))
    print("inline dispatch hits:    %d" % optimized.events["dispatch_check_hits"])
    print("trace rewrites (dr_replace_fragment): %d" % optimized.events["fragments_replaced"])
    print("client log: %s" % "; ".join(dr_get_log(client)))


if __name__ == "__main__":
    main()
