#!/usr/bin/env python
"""Quickstart: run a program natively and under the DynamoRIO reproduction.

Compiles a small MiniC program, executes it natively, then executes it
under the runtime with a simple instruction-counting client — showing
the three core guarantees: transparency (identical output), observable
runtime events, and the client hook interface.
"""

from repro.clients import InstructionCounter
from repro.core import DynamoRIO, RuntimeOptions
from repro.loader import Process
from repro.machine.interp import run_native
from repro.minicc import compile_source

PROGRAM = """
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}

int main() {
    int i; int round; int sink;
    sink = 0;
    for (round = 0; round < 40; round++) {   /* enough work to amortize */
        for (i = 1; i <= 10; i++) {
            sink = sink + fib(i);
        }
    }
    for (i = 1; i <= 10; i++) {
        print(fib(i));
    }
    return sink & 1;
}
"""


def main():
    image = compile_source(PROGRAM)

    native = run_native(Process(image))
    print("native:     %8d cycles, %6d instructions" % (native.cycles, native.instructions))

    client = InstructionCounter()
    runtime = DynamoRIO(
        Process(image), options=RuntimeOptions.with_traces(), client=client
    )
    result = runtime.run()
    print("DynamoRIO:  %8d cycles  (%.2fx native)" % (result.cycles, result.cycles / native.cycles))

    assert result.output == native.output, "transparency violated!"
    assert result.exit_code == native.exit_code
    values = [
        int.from_bytes(result.output[i : i + 4], "little")
        for i in range(0, len(result.output), 4)
    ]
    print("program output (fib 1..10):", values)
    print("client counted %d executed instructions" % client.executed)
    print(
        "runtime: %d blocks built, %d traces, %d context switches"
        % (
            result.events["bbs_built"],
            result.events["traces_built"],
            result.events["context_switches"],
        )
    )


if __name__ == "__main__":
    main()
