"""Liveness analysis tests (repro.analysis)."""

from repro.analysis import (
    eflags_dead_before,
    find_dead_flags_point,
    instr_use_def,
    registers_written_before_read,
)
from repro.api.dr import dr_insert_clean_call
from repro.ir.instrlist import InstrList
from repro.ir.create import (
    INSTR_CREATE_add,
    INSTR_CREATE_cmp,
    INSTR_CREATE_jz,
    INSTR_CREATE_jmp,
    INSTR_CREATE_mov,
    INSTR_CREATE_not,
    OPND_CREATE_INT32,
    OPND_CREATE_MEM,
    OPND_CREATE_PC,
    OPND_CREATE_REG,
)
from repro.isa.registers import Reg

EAX = OPND_CREATE_REG(Reg.EAX)
EBX = OPND_CREATE_REG(Reg.EBX)
ECX = OPND_CREATE_REG(Reg.ECX)
MEM = OPND_CREATE_MEM(base=Reg.EBP, disp=-4)


class TestUseDef:
    def test_mov_reg_mem(self):
        reads, writes = instr_use_def(INSTR_CREATE_mov(EAX, MEM))
        assert Reg.EBP in reads  # address register
        assert writes == {Reg.EAX}

    def test_add(self):
        reads, writes = instr_use_def(INSTR_CREATE_add(EAX, EBX))
        assert reads == {Reg.EAX, Reg.EBX}
        assert writes == {Reg.EAX}

    def test_store_address_regs_are_reads(self):
        reads, writes = instr_use_def(INSTR_CREATE_mov(MEM, ECX))
        assert Reg.EBP in reads and Reg.ECX in reads
        assert writes == set()


class TestEflagsDead:
    def test_dead_when_fully_written_first(self):
        il = InstrList(
            [
                INSTR_CREATE_mov(EAX, MEM),
                INSTR_CREATE_cmp(EAX, OPND_CREATE_INT32(3)),  # writes all 6
                INSTR_CREATE_jz(OPND_CREATE_PC(0x100)),
            ]
        )
        assert eflags_dead_before(il, il.first())

    def test_live_when_read_first(self):
        il = InstrList(
            [
                INSTR_CREATE_jz(OPND_CREATE_PC(0x100)),  # reads ZF
                INSTR_CREATE_cmp(EAX, OPND_CREATE_INT32(3)),
            ]
        )
        assert not eflags_dead_before(il, il.first())

    def test_live_at_barrier_before_full_write(self):
        il = InstrList(
            [
                INSTR_CREATE_mov(EAX, MEM),
                INSTR_CREATE_jmp(OPND_CREATE_PC(0x100)),  # leaves the stream
                INSTR_CREATE_cmp(EAX, OPND_CREATE_INT32(3)),
            ]
        )
        assert not eflags_dead_before(il, il.first())

    def test_flagless_instructions_are_transparent(self):
        il = InstrList(
            [
                INSTR_CREATE_mov(EAX, MEM),
                INSTR_CREATE_not(EBX),  # writes no flags
                INSTR_CREATE_cmp(EAX, OPND_CREATE_INT32(3)),
            ]
        )
        assert eflags_dead_before(il, il.first())

    def test_clean_call_is_a_barrier(self):
        il = InstrList([INSTR_CREATE_cmp(EAX, OPND_CREATE_INT32(3))])
        dr_insert_clean_call(il, il.first(), lambda ctx: None)
        assert not eflags_dead_before(il, il.first())

    def test_find_point_skips_past_flag_reader(self):
        il = InstrList(
            [
                INSTR_CREATE_add(EAX, EBX),  # writes flags
                INSTR_CREATE_cmp(EAX, OPND_CREATE_INT32(1)),
                INSTR_CREATE_jz(OPND_CREATE_PC(0x10)),
            ]
        )
        point = find_dead_flags_point(il)
        assert point is il.first()

    def test_no_point_in_flag_consuming_block(self):
        jz = INSTR_CREATE_jz(OPND_CREATE_PC(0x10))
        il = InstrList([jz])
        assert find_dead_flags_point(il) is None


class TestDeadRegisters:
    def test_overwritten_register_is_dead(self):
        il = InstrList(
            [
                INSTR_CREATE_mov(EAX, OPND_CREATE_INT32(1)),  # writes eax
                INSTR_CREATE_mov(EBX, EAX),
                INSTR_CREATE_jmp(OPND_CREATE_PC(0x10)),
            ]
        )
        dead = registers_written_before_read(il, il.first())
        assert Reg.EAX in dead
        assert Reg.EBX in dead  # written (after the eax read) before any read

    def test_read_register_not_dead(self):
        il = InstrList(
            [
                INSTR_CREATE_mov(EBX, EAX),  # reads eax
                INSTR_CREATE_mov(EAX, OPND_CREATE_INT32(0)),
            ]
        )
        dead = registers_written_before_read(il, il.first())
        assert Reg.EAX not in dead
        assert Reg.EBX in dead

    def test_barrier_stops_scan(self):
        il = InstrList(
            [
                INSTR_CREATE_jmp(OPND_CREATE_PC(0x10)),
                INSTR_CREATE_mov(EAX, OPND_CREATE_INT32(0)),
            ]
        )
        assert registers_written_before_read(il, il.first()) == set()


class TestPartialFlagWrites:
    """inc/dec write five of the six arithmetic flags but leave CF."""

    def test_inc_does_not_kill_cf(self):
        from repro.ir.create import INSTR_CREATE_inc, INSTR_CREATE_jb

        il = InstrList(
            [
                INSTR_CREATE_inc(EAX),  # writes PF/AF/ZF/SF/OF, not CF
                INSTR_CREATE_jb(OPND_CREATE_PC(0x10)),  # reads CF
            ]
        )
        assert not eflags_dead_before(il, il.first())

    def test_inc_kills_the_flags_it_writes(self):
        from repro.analysis import live_eflags
        from repro.ir.create import INSTR_CREATE_inc
        from repro.isa.eflags import EFLAGS_READ_CF

        il = InstrList(
            [
                INSTR_CREATE_inc(EAX),
                INSTR_CREATE_jz(OPND_CREATE_PC(0x10)),  # exit: all flags live
            ]
        )
        # The exit keeps all six flags live after the inc; the inc's
        # partial write kills exactly the five it produces, leaving CF.
        assert live_eflags(il).before(il.first()) == EFLAGS_READ_CF

    def test_dec_then_carry_read_keeps_cf_live(self):
        from repro.ir.create import INSTR_CREATE_dec, INSTR_CREATE_jb

        il = InstrList(
            [
                INSTR_CREATE_mov(EAX, MEM),
                INSTR_CREATE_dec(EAX),
                INSTR_CREATE_jb(OPND_CREATE_PC(0x10)),
            ]
        )
        # CF survives the dec and is read by jb, so flags are live at
        # the top; a full writer (add) would make them dead.
        assert not eflags_dead_before(il, il.first())
        il2 = InstrList(
            [
                INSTR_CREATE_mov(EAX, MEM),
                INSTR_CREATE_add(EAX, OPND_CREATE_INT32(-1)),
                INSTR_CREATE_jb(OPND_CREATE_PC(0x10)),
            ]
        )
        assert eflags_dead_before(il2, il2.first())

    def test_find_point_honors_partial_write(self):
        from repro.ir.create import INSTR_CREATE_inc, INSTR_CREATE_jb

        il = InstrList(
            [
                INSTR_CREATE_inc(EAX),
                INSTR_CREATE_jb(OPND_CREATE_PC(0x10)),
            ]
        )
        # CF is live through the inc, so no insertion point exists.
        assert find_dead_flags_point(il) is None


class TestLivenessWithLabels:
    def test_labels_are_transparent_to_flag_state(self):
        from repro.ir.instr import Instr

        label = Instr.label()
        il = InstrList(
            [
                label,
                INSTR_CREATE_cmp(EAX, OPND_CREATE_INT32(3)),
                INSTR_CREATE_jz(OPND_CREATE_PC(0x10)),
            ]
        )
        assert eflags_dead_before(il, il.first())
        # find_dead_flags_point skips the label and lands on the cmp
        point = find_dead_flags_point(il)
        assert point is not None and not point.is_label()

    def test_branch_to_label_joins_flag_liveness(self):
        from repro.ir.instr import Instr, LabelRef

        # The jz's taken path reaches a flag reader with no intervening
        # writer, so flags stay live at the un-taken path's writer too.
        label = Instr.label()
        il = InstrList(
            [
                INSTR_CREATE_cmp(EAX, OPND_CREATE_INT32(3)),
                INSTR_CREATE_jz(LabelRef(label)),
                INSTR_CREATE_cmp(EBX, OPND_CREATE_INT32(4)),
                label,
                INSTR_CREATE_jz(OPND_CREATE_PC(0x10)),
            ]
        )
        jcc = [i for i in il if i.is_cond_branch()][0]
        assert not eflags_dead_before(il, jcc)
