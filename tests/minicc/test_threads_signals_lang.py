"""MiniC language support for threads and signals."""

import pytest

from repro.isa.decoder import decode_full
from repro.isa.opcodes import Opcode
from repro.loader import Process
from repro.machine.interp import run_native
from repro.minicc import CompileError, compile_source


class TestSpawnSyntax:
    def test_spawn_emits_trampoline(self):
        src = """
int worker() { return 0; }
int main() { spawn(&worker, 0x790000); return 0; }
"""
        image = compile_source(src)
        assert "__thread_exit" in image.symbols

    def test_no_trampoline_without_spawn(self):
        image = compile_source("int main() { return 0; }")
        assert "__thread_exit" not in image.symbols

    def test_spawn_type_checked(self):
        with pytest.raises(CompileError):
            compile_source(
                "float f; int main() { spawn(f, 0x790000); return 0; }"
            )


class TestSignalSyntax:
    def test_sigreturn_emits_iret(self):
        src = """
int h() { sigreturn; return 0; }
int main() { sighandler(&h); return 0; }
"""
        image = compile_source(src)
        code = image.sections[0].data
        opcodes = set()
        off = 0
        while off < len(code):
            try:
                d = decode_full(code, off, pc=0x1000 + off)
            except Exception:
                break
            opcodes.add(d.opcode)
            off += d.length
        assert Opcode.IRET in opcodes

    def test_alarm_requires_int(self):
        with pytest.raises(CompileError):
            compile_source("float f; int main() { alarm(f); return 0; }")

    def test_keywords_not_usable_as_identifiers(self):
        with pytest.raises(CompileError):
            compile_source("int main() { int alarm; return 0; }")


class TestSemantics:
    def test_handler_sees_and_modifies_globals(self):
        src = """
int hits;
int h() { hits = hits + 100; sigreturn; return 0; }
int main() {
    int i;
    sighandler(&h);
    alarm(120);
    i = 0;
    while (hits < 100) { i++; }
    print(hits);
    return 0;
}
"""
        result = run_native(Process(compile_source(src)))
        assert int.from_bytes(result.output, "little") == 100

    def test_nested_alarm_rearm(self):
        src = """
int count;
int h() {
    count++;
    if (count < 3) { alarm(80); }
    sigreturn;
    return 0;
}
int main() {
    sighandler(&h);
    alarm(80);
    while (count < 3) { }
    print(count);
    return 0;
}
"""
        result = run_native(Process(compile_source(src)))
        assert int.from_bytes(result.output, "little") == 3
        assert result.events["signals_delivered"] == 3
