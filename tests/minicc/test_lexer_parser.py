import pytest

from repro.minicc import ast
from repro.minicc.lexer import LexError, tokenize
from repro.minicc.parser import ParseError, parse


class TestLexer:
    def test_numbers(self):
        toks = tokenize("42 0x2A")
        assert toks[0].value == 42
        assert toks[1].value == 42

    def test_keywords_vs_idents(self):
        toks = tokenize("int foo while bar")
        assert [t.kind for t in toks[:-1]] == ["int", "ident", "while", "ident"]

    def test_operators_longest_match(self):
        toks = tokenize("<<= <= < ++ + == =")
        assert [t.kind for t in toks[:-1]] == ["<<=", "<=", "<", "++", "+", "==", "="]

    def test_comments_skipped(self):
        toks = tokenize("a // line\n b /* block\n comment */ c")
        assert [t.value for t in toks[:-1]] == ["a", "b", "c"]

    def test_line_numbers(self):
        toks = tokenize("a\nb\n\nc")
        assert [t.line for t in toks[:-1]] == [1, 2, 4]

    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")


class TestParser:
    def test_globals(self):
        prog = parse("int x; float ys[10]; int z = 5; int w[3] = {1, 2, 3};")
        assert len(prog.globals) == 4
        assert prog.globals[1].array_size == 10
        assert prog.globals[2].init == 5
        assert prog.globals[3].init == [1, 2, 3]

    def test_function(self):
        prog = parse("int add(int a, int b) { return a + b; }")
        f = prog.functions[0]
        assert f.name == "add"
        assert [p.name for p in f.params] == ["a", "b"]
        assert isinstance(f.body.statements[0], ast.Return)

    def test_pointer_param(self):
        prog = parse("void f(int* p) { p[0] = 1; }")
        assert prog.functions[0].params[0].type.is_ptr()

    def test_precedence(self):
        prog = parse("int f() { return 1 + 2 * 3; }")
        ret = prog.functions[0].body.statements[0]
        assert ret.value.op == "+"
        assert ret.value.right.op == "*"

    def test_if_else_associates_to_nearest(self):
        prog = parse("int f(int x) { if (x) if (x) return 1; else return 2; return 3; }")
        outer = prog.functions[0].body.statements[0]
        assert outer.otherwise is None
        assert outer.then.otherwise is not None

    def test_switch(self):
        prog = parse(
            "int f(int x) { switch (x) { case 1: return 1; default: return 0; } }"
        )
        sw = prog.functions[0].body.statements[0]
        assert sw.cases[0][0] == 1
        assert sw.default is not None

    def test_for_with_incdec_step(self):
        prog = parse("int f() { int i; for (i = 0; i < 3; i++) { } return i; }")
        loop = prog.functions[0].body.statements[1]
        assert isinstance(loop.step, ast.IncDec)

    def test_addr_of(self):
        prog = parse("int g() { return 0; } int f() { return &g; }")
        ret = prog.functions[1].body.statements[0]
        assert isinstance(ret.value, ast.AddrOf)

    def test_assignment_needs_lvalue(self):
        with pytest.raises(ParseError):
            parse("int f() { 1 = 2; }")

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("int f() { return 1 }")

    def test_error_has_line_number(self):
        try:
            parse("int f() {\n  return 1\n}")
        except ParseError as exc:
            assert exc.line == 3
        else:
            raise AssertionError("expected ParseError")
