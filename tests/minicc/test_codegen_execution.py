"""MiniC end-to-end tests: compile and execute, compare with Python."""

import pytest

from repro.isa.decoder import decode_full
from repro.isa.opcodes import Opcode
from repro.loader import Process
from repro.machine.interp import run_native
from repro.minicc import CompileError, compile_source


def run(src):
    return run_native(Process(compile_source(src)))


def outputs(result):
    return [
        int.from_bytes(result.output[i : i + 4], "little")
        for i in range(0, len(result.output), 4)
    ]


class TestBasics:
    def test_return_value_is_exit_code(self):
        assert run("int main() { return 7; }").exit_code == 7

    def test_arithmetic(self):
        r = run("int main() { print(2 + 3 * 4 - 6 / 2); return 0; }")
        assert outputs(r) == [11]

    def test_unsigned_division_and_mod(self):
        r = run("int main() { print(17 / 5); print(17 % 5); return 0; }")
        assert outputs(r) == [3, 2]

    def test_bitwise(self):
        r = run("int main() { print((12 & 10) | (1 ^ 3)); print(~0 & 255); return 0; }")
        assert outputs(r) == [(12 & 10) | (1 ^ 3), 255]

    def test_shifts(self):
        r = run("int main() { int n; n = 3; print(1 << n); print(256 >> n); return 0; }")
        assert outputs(r) == [8, 32]

    def test_unary(self):
        r = run("int main() { int x; x = 5; print(0 - (-x)); print(!x); print(!0); return 0; }")
        assert outputs(r) == [5, 0, 1]

    def test_globals_with_initializers(self):
        r = run(
            "int a = 10; int t[4] = {1, 2, 3, 4};\n"
            "int main() { print(a + t[0] + t[3]); return 0; }"
        )
        assert outputs(r) == [15]

    def test_putc(self):
        r = run("int main() { putc(72); putc(105); return 0; }")
        assert r.output == b"Hi"

    def test_exit_builtin(self):
        assert run("int main() { exit(3); return 0; }").exit_code == 3


class TestControlFlow:
    def test_if_else_chains(self):
        src = """
int sign(int x) {
    if (x > 0) return 1;
    else if (x < 0) return 0 - 1;
    else return 0;
}
int main() {
    print(sign(5) + 10);
    print(sign(0 - 5) + 10);
    print(sign(0) + 10);
    return 0;
}
"""
        assert outputs(run(src)) == [11, 9, 10]

    def test_nested_loops(self):
        src = """
int main() {
    int i; int j; int acc;
    acc = 0;
    for (i = 0; i < 10; i++) {
        for (j = 0; j < i; j++) {
            acc += j;
        }
    }
    print(acc);
    return 0;
}
"""
        assert outputs(run(src)) == [sum(j for i in range(10) for j in range(i))]

    def test_while_break_continue(self):
        src = """
int main() {
    int i; int acc;
    i = 0; acc = 0;
    while (i < 100) {
        i++;
        if (i % 3 == 0) continue;
        if (i > 20) break;
        acc += i;
    }
    print(acc);
    return 0;
}
"""
        expected = 0
        i = 0
        while i < 100:
            i += 1
            if i % 3 == 0:
                continue
            if i > 20:
                break
            expected += i
        assert outputs(run(src)) == [expected]

    def test_logical_short_circuit(self):
        src = """
int calls;
int truthy() { calls++; return 1; }
int main() {
    calls = 0;
    if (0 && truthy()) { print(999); }
    if (1 || truthy()) { print(1); }
    print(calls);
    return 0;
}
"""
        assert outputs(run(src)) == [1, 0]

    def test_sparse_switch_compare_chain(self):
        src = """
int f(int x) {
    switch (x) {
        case 1: return 10;
        case 100: return 20;
        default: return 30;
    }
}
int main() { print(f(1)); print(f(100)); print(f(7)); return 0; }
"""
        assert outputs(run(src)) == [10, 20, 30]

    def test_dense_switch_jump_table(self):
        src = """
int f(int x) {
    int r;
    switch (x) {
        case 2: r = 12; break;
        case 3: r = 13; break;
        case 4: r = 14; break;
        case 5: r = 15; break;
        default: r = 0;
    }
    return r;
}
int main() {
    print(f(2)); print(f(5)); print(f(9)); print(f(0));
    return 0;
}
"""
        img = compile_source(src)
        # verify a jump table (indirect jump) was emitted
        code = img.sections[0].data
        found = False
        off = 0
        while off < len(code):
            d = decode_full(code, off, pc=img.sections[0].addr + off)
            if d.opcode == Opcode.JMP_IND:
                found = True
                break
            off += d.length
        assert found, "dense switch should compile to a jump table"
        assert outputs(run(src)) == [12, 15, 0, 0]

    def test_switch_fallthrough(self):
        src = """
int main() {
    int r; r = 0;
    switch (2) {
        case 1: r += 1;
        case 2: r += 2;
        case 3: r += 4;
        case 4: r += 8; break;
        case 5: r += 16;
    }
    print(r);
    return 0;
}
"""
        assert outputs(run(src)) == [2 + 4 + 8]


class TestFunctions:
    def test_recursion_fibonacci(self):
        src = """
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int main() { print(fib(12)); return 0; }
"""
        assert outputs(run(src)) == [144]

    def test_many_args(self):
        src = """
int f(int a, int b, int c, int d, int e) {
    return a + b * 2 + c * 3 + d * 4 + e * 5;
}
int main() { print(f(1, 2, 3, 4, 5)); return 0; }
"""
        assert outputs(run(src)) == [1 + 4 + 9 + 16 + 25]

    def test_array_passed_by_pointer(self):
        src = """
int data[5];
void fill(int* p, int n) {
    int i;
    for (i = 0; i < n; i++) { p[i] = i * i; }
}
int total(int* p, int n) {
    int i; int acc;
    acc = 0;
    for (i = 0; i < n; i++) { acc += p[i]; }
    return acc;
}
int main() {
    fill(data, 5);
    print(total(data, 5));
    return 0;
}
"""
        assert outputs(run(src)) == [sum(i * i for i in range(5))]

    def test_local_array(self):
        src = """
int main() {
    int buf[8];
    int i; int acc;
    for (i = 0; i < 8; i++) { buf[i] = i + 1; }
    acc = 0;
    for (i = 0; i < 8; i++) { acc += buf[i]; }
    print(acc);
    return 0;
}
"""
        assert outputs(run(src)) == [36]

    def test_function_pointers(self):
        src = """
int add1(int x) { return x + 1; }
int dbl(int x) { return x * 2; }
int table[2];
int main() {
    int i; int acc; int f;
    table[0] = &add1;
    table[1] = &dbl;
    acc = 0;
    for (i = 0; i < 10; i++) {
        f = table[i % 2];
        acc += f(i);
    }
    print(acc);
    return 0;
}
"""
        expected = sum((i + 1) if i % 2 == 0 else i * 2 for i in range(10))
        assert outputs(run(src)) == [expected]

    def test_call_preserves_expression_temporaries(self):
        # the temporaries live across the call must be saved/restored
        src = """
int g() { return 100; }
int main() {
    int a; a = 7;
    print(a * 3 + g() + a);
    return 0;
}
"""
        assert outputs(run(src)) == [7 * 3 + 100 + 7]


class TestFloats:
    def test_float_arithmetic(self):
        src = """
float x; float y;
int main() {
    x = 6; y = 7;
    x = x * y + 2;
    print(x);
    return 0;
}
"""
        assert outputs(run(src)) == [44]

    def test_float_arrays_use_fp_ops(self):
        src = """
float v[4];
float dot;
int main() {
    int i;
    for (i = 0; i < 4; i++) { v[i] = i + 1; }
    dot = 0;
    for (i = 0; i < 4; i++) { dot = dot + v[i] * v[i]; }
    print(dot);
    return 0;
}
"""
        img = compile_source(src)
        code = img.sections[0].data
        opcodes = set()
        off = 0
        while off < len(code):
            d = decode_full(code, off, pc=0x1000 + off)
            opcodes.add(d.opcode)
            off += d.length
        assert Opcode.FMUL in opcodes and Opcode.FADD in opcodes
        assert outputs(run(src)) == [1 + 4 + 9 + 16]

    def test_float_compare(self):
        src = """
float a; float b;
int main() {
    a = 3; b = 5;
    if (a < b) print(1); else print(0);
    return 0;
}
"""
        assert outputs(run(src)) == [1]


class TestGeneratedCode:
    def test_incdec_statements_emit_inc_dec(self):
        src = """
int counter;
int main() {
    int i;
    for (i = 0; i < 5; i++) { counter++; }
    print(counter);
    return 0;
}
"""
        img = compile_source(src)
        code = img.sections[0].data
        opcodes = []
        off = 0
        while off < len(code):
            d = decode_full(code, off, pc=0x1000 + off)
            opcodes.append(d.opcode)
            off += d.length
        assert Opcode.INC in opcodes
        assert outputs(run(src)) == [5]

    def test_cross_statement_redundant_loads_exist(self):
        """The naive codegen reloads a variable used in consecutive
        statements — the artifact RLR (Section 4.1) removes."""
        src = """
int main() {
    int a; int b; int c;
    a = 5;
    b = a + 1;
    c = a + 2;
    print(b + c);
    return 0;
}
"""
        img = compile_source(src)
        code = img.sections[0].data
        loads = 0
        off = 0
        while off < len(code):
            d = decode_full(code, off, pc=0x1000 + off)
            if (
                d.opcode == Opcode.MOV
                and d.operands[0].is_reg()
                and d.operands[1].is_mem()
            ):
                loads += 1
            off += d.length
        assert loads >= 2  # `a` reloaded at least twice
        assert outputs(run(src)) == [13]


class TestErrors:
    def test_compile_error_wraps_all_stages(self):
        with pytest.raises(CompileError):
            compile_source("int main() { $ }")
        with pytest.raises(CompileError):
            compile_source("int main() { return x; }")
        with pytest.raises(CompileError):
            compile_source("int main() { return 1 }")
