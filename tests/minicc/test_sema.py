import pytest

from repro.minicc.parser import parse
from repro.minicc.sema import SemaError, analyze


def check(src):
    return analyze(parse(src))


class TestBinding:
    def test_locals_get_frame_offsets(self):
        info = check("int main() { int a; int b; int arr[4]; return 0; }")
        func = info.functions["main"]
        offsets = [v.offset for v in func.node.locals]
        assert offsets == [-4, -8, -24]
        assert func.frame_size == 24

    def test_param_offsets(self):
        info = check("int f(int a, int b) { return a; } int main() { return 0; }")
        assert info.functions["f"].param_offsets == {"a": 8, "b": 12}

    def test_undefined_variable(self):
        with pytest.raises(SemaError):
            check("int main() { return nope; }")

    def test_shadowing_in_inner_scope(self):
        info = check("int main() { int a; { int a; a = 1; } return a; }")
        assert len(info.functions["main"].node.locals) == 2

    def test_redeclaration_same_scope(self):
        with pytest.raises(SemaError):
            check("int main() { int a; int a; return 0; }")

    def test_main_required(self):
        with pytest.raises(SemaError):
            check("int f() { return 0; }")


class TestTypes:
    def test_float_int_mix_rejected_in_int_slot(self):
        with pytest.raises(SemaError):
            check("float f; int main() { int x; x = f; return 0; }")

    def test_int_literal_into_float_ok(self):
        check("float f; int main() { f = 3; return 0; }")

    def test_mod_requires_ints(self):
        with pytest.raises(SemaError):
            check("float f; int main() { f = f % 2; return 0; }")

    def test_indexing_non_array(self):
        with pytest.raises(SemaError):
            check("int x; int main() { return x[0]; }")

    def test_array_decays_to_pointer_in_call(self):
        check(
            "int a[4];\n"
            "int sum(int* p) { return p[0]; }\n"
            "int main() { return sum(a); }"
        )

    def test_assign_to_array_rejected(self):
        with pytest.raises(SemaError):
            check("int a[4]; int main() { a = 1; return 0; }")

    def test_arg_count_checked(self):
        with pytest.raises(SemaError):
            check("int f(int a) { return a; } int main() { return f(); }")

    def test_void_function_cannot_return_value(self):
        with pytest.raises(SemaError):
            check("void f() { return 1; } int main() { return 0; }")

    def test_break_outside_loop(self):
        with pytest.raises(SemaError):
            check("int main() { break; return 0; }")

    def test_duplicate_case(self):
        with pytest.raises(SemaError):
            check(
                "int main() { switch (1) { case 1: break; case 1: break; } return 0; }"
            )

    def test_indirect_call_flagged(self):
        info = check(
            "int g() { return 1; }\n"
            "int main() { int p; p = &g; return p(); }"
        )
        assert info.uses_indirect_calls
