"""Shared fixtures for core runtime tests."""

import pytest

from repro.core import DynamoRIO, RuntimeOptions
from repro.loader import Process
from repro.machine.interp import run_native
from repro.minicc import compile_source


LOOP_SRC = """
int data[32];
int checksum;
int mix(int x) { return (x * 31 + 7) % 997; }
int main() {
    int i; int round;
    checksum = 0;
    for (round = 0; round < 24; round++) {
        for (i = 0; i < 32; i++) {
            data[i] = mix(data[i] + i + round);
            checksum = checksum + data[i];
        }
    }
    print(checksum);
    return 0;
}
"""

INDIRECT_SRC = """
int table[4];
int h0(int x) { return x + 1; }
int h1(int x) { return x * 3; }
int h2(int x) { return x - 2; }
int h3(int x) { return x ^ 5; }
int main() {
    int i; int acc; int f;
    table[0] = &h0; table[1] = &h1; table[2] = &h2; table[3] = &h3;
    acc = 0;
    for (i = 0; i < 350; i++) {
        f = table[i & 3];
        acc = acc + f(i);
    }
    print(acc);
    return 0;
}
"""


@pytest.fixture(scope="session")
def loop_image():
    return compile_source(LOOP_SRC)


@pytest.fixture(scope="session")
def indirect_image():
    return compile_source(INDIRECT_SRC)


@pytest.fixture(scope="session")
def loop_native(loop_image):
    return run_native(Process(loop_image))


@pytest.fixture(scope="session")
def indirect_native(indirect_image):
    return run_native(Process(indirect_image))


def run_under(image, options=None, client=None, cost_model=None):
    dr = DynamoRIO(
        Process(image),
        options=options or RuntimeOptions.with_traces(),
        client=client,
        cost_model=cost_model,
    )
    result = dr.run()
    return dr, result
