import pytest

from repro.asm import assemble, AsmError
from repro.loader import Process
from repro.machine.interp import run_native


def run_src(src):
    return run_native(Process(assemble(src)))


class TestSyntax:
    def test_comments_and_blanks(self):
        img = assemble(
            """
; a comment
.entry main
.text
main:       ; trailing comment
    mov eax, 1
    syscall
"""
        )
        assert img.entry == img.symbol("main")

    def test_memory_operands(self):
        src = """
.entry main
.text
main:
    mov esi, 0x100000
    mov ecx, 3
    mov [esi + ecx*4 + 8], ecx
    mov ebx, [esi + 20]
    mov eax, 3
    syscall
    mov eax, 1
    syscall
"""
        r = run_src(src)
        assert int.from_bytes(r.output, "little") == 3

    def test_byte_operand_size(self):
        src = """
.entry main
.text
main:
    mov esi, 0x100000
    mov ecx, 0x1FF
    movb [esi], ecx
    movzx ebx, byte [esi]
    mov eax, 3
    syscall
    mov eax, 1
    syscall
"""
        r = run_src(src)
        assert int.from_bytes(r.output, "little") == 0xFF

    def test_data_section_symbols(self):
        src = """
.entry main
.data 0x100000
a: dd 17
b: dd 25
.text
main:
    mov ebx, [a]
    add ebx, [b]
    mov eax, 3
    syscall
    mov eax, 1
    syscall
"""
        r = run_src(src)
        assert int.from_bytes(r.output, "little") == 42

    def test_db_directive(self):
        src = """
.entry main
.data 0x100000
msg: db 72, 105
.text
main:
    movzx ebx, byte [msg]
    mov eax, 2
    syscall
    movzx ebx, byte [msg + 1]
    mov eax, 2
    syscall
    mov eax, 1
    syscall
"""
        r = run_src(src)
        assert r.output == b"Hi"


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AsmError):
            assemble(".entry main\nmain:\n    bogus eax, 1\n")

    def test_bad_operand(self):
        with pytest.raises(AsmError):
            assemble(".entry main\nmain:\n    mov eax, @!\n")

    def test_wrong_arity(self):
        with pytest.raises(AsmError):
            assemble(".entry main\nmain:\n    add eax\n")

    def test_undefined_entry(self):
        with pytest.raises(AsmError):
            assemble("start:\n    mov eax, 1\n    syscall\n")

    def test_line_numbers_in_errors(self):
        try:
            assemble(".entry main\nmain:\n    mov eax, 1\n    zzz\n")
        except AsmError as exc:
            assert exc.lineno == 4
        else:
            raise AssertionError("expected AsmError")
