import pytest

from repro.asm import CodeBuilder, mem
from repro.isa.decoder import decode_full
from repro.isa.opcodes import Opcode
from repro.isa.registers import Reg
from repro.loader import Process
from repro.machine.interp import run_native


class TestBuilder:
    def test_simple_sequence(self):
        b = CodeBuilder(base=0)
        b.mov(Reg.EAX, 5)
        b.add(Reg.EAX, 1)
        code, _ = b.assemble()
        d = decode_full(code, 0, pc=0)
        assert d.opcode == Opcode.MOV

    def test_labels_and_branches(self):
        b = CodeBuilder(base=0x1000)
        b.label("start")
        b.dec(Reg.ECX)
        b.jnz("start")
        code, labels = b.assemble()
        assert labels["start"] == 0x1000
        # dec ecx = 1 byte; jnz should relax to rel8 (2 bytes)
        assert len(code) == 3

    def test_forward_branch_relaxes(self):
        b = CodeBuilder(base=0)
        b.jmp("end")
        for _ in range(10):
            b.nop()
        b.label("end")
        b.nop()
        code, labels = b.assemble()
        assert labels["end"] == 12  # 2-byte rel8 jmp + 10 nops
        assert code[0] == 0xEB

    def test_far_branch_stays_long(self):
        b = CodeBuilder(base=0)
        b.jmp("end")
        for _ in range(300):
            b.nop()
        b.label("end")
        code, labels = b.assemble()
        assert code[0] == 0xE9
        assert labels["end"] == 305

    def test_duplicate_label_rejected(self):
        b = CodeBuilder()
        b.label("x")
        with pytest.raises(ValueError):
            b.label("x")

    def test_undefined_label_rejected(self):
        b = CodeBuilder()
        b.jmp("nowhere")
        with pytest.raises(KeyError):
            b.assemble()

    def test_wrong_arity_rejected(self):
        b = CodeBuilder()
        with pytest.raises(ValueError):
            b.instr(Opcode.ADD, Reg.EAX)

    def test_keyword_mnemonics(self):
        b = CodeBuilder()
        b.and_(Reg.EAX, 0xFF)
        b.or_(Reg.EAX, 1)
        b.not_(Reg.EAX)
        code, _ = b.assemble()
        assert len(code) > 0

    def test_label_address_operand(self):
        b = CodeBuilder(base=0x1000)
        b.mov(Reg.EBX, b.label_address("target"))
        b.label("target")
        b.nop()
        code, labels = b.assemble()
        d = decode_full(code, 0, pc=0x1000)
        assert d.operands[1].value == labels["target"]

    def test_image_runs(self):
        b = CodeBuilder(base=0x1000)
        b.label("main")
        b.mov(Reg.EBX, 123)
        b.mov(Reg.EAX, 3)
        b.syscall()
        b.mov(Reg.EAX, 1)
        b.syscall()
        image = b.image(entry="main")
        r = run_native(Process(image))
        assert int.from_bytes(r.output, "little") == 123

    def test_mem_helper(self):
        b = CodeBuilder()
        b.mov(Reg.EAX, mem(base=Reg.EBP, disp=-8))
        code, _ = b.assemble()
        d = decode_full(code, 0)
        assert d.operands[1].is_mem()
        assert d.operands[1].disp == -8
