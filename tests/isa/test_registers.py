from repro.isa.registers import Reg, REG_NAMES, NUM_REGS, reg_from_name

import pytest


def test_register_numbering_matches_ia32():
    assert Reg.EAX == 0
    assert Reg.ECX == 1
    assert Reg.EDX == 2
    assert Reg.EBX == 3
    assert Reg.ESP == 4
    assert Reg.EBP == 5
    assert Reg.ESI == 6
    assert Reg.EDI == 7


def test_num_regs():
    assert NUM_REGS == 8
    assert len(REG_NAMES) == 8


def test_reg_from_name_roundtrip():
    for reg, name in REG_NAMES.items():
        assert reg_from_name(name) == reg


def test_reg_from_name_accepts_percent_prefix():
    assert reg_from_name("%eax") == Reg.EAX
    assert reg_from_name("%ESP") == Reg.ESP


def test_reg_from_name_unknown():
    with pytest.raises(KeyError):
        reg_from_name("r8")
