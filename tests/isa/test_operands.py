import pytest

from repro.isa.operands import (
    RegOperand,
    ImmOperand,
    MemOperand,
    PcOperand,
    OPND_IMM8,
    OPND_IMM32,
)
from repro.isa.registers import Reg


class TestRegOperand:
    def test_identity(self):
        op = RegOperand(Reg.EAX)
        assert op.is_reg() and not op.is_mem() and not op.is_imm()
        assert op.reg == Reg.EAX

    def test_equality_and_hash(self):
        assert RegOperand(Reg.EBX) == RegOperand(3)
        assert hash(RegOperand(Reg.EBX)) == hash(RegOperand(3))
        assert RegOperand(Reg.EBX) != RegOperand(Reg.ECX)

    def test_immutable(self):
        op = RegOperand(Reg.EAX)
        with pytest.raises(AttributeError):
            op.reg = Reg.EBX

    def test_uses_reg(self):
        assert RegOperand(Reg.ESI).uses_reg(Reg.ESI)
        assert not RegOperand(Reg.ESI).uses_reg(Reg.EDI)


class TestImmOperand:
    def test_sizes(self):
        assert ImmOperand(1, size=1).size == 1
        assert ImmOperand(1).size == 4
        with pytest.raises(ValueError):
            ImmOperand(1, size=2)

    def test_fits_in_byte(self):
        assert OPND_IMM32(127).fits_in_byte()
        assert OPND_IMM32(-128).fits_in_byte()
        assert not OPND_IMM32(128).fits_in_byte()
        assert not OPND_IMM32(-129).fits_in_byte()

    def test_fits_in_byte_handles_unsigned_wraparound(self):
        # 0xFFFFFFFF is -1 as a signed 32-bit value
        assert OPND_IMM32(0xFFFFFFFF).fits_in_byte()

    def test_equality(self):
        assert OPND_IMM8(5) != OPND_IMM32(5)  # size matters for encoding
        assert OPND_IMM32(5) == ImmOperand(5, size=4)


class TestMemOperand:
    def test_defaults(self):
        m = MemOperand(base=Reg.EBP, disp=-8)
        assert m.base == Reg.EBP and m.index is None
        assert m.scale == 1 and m.disp == -8 and m.size == 4

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            MemOperand(base=Reg.EAX, scale=3)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            MemOperand(base=Reg.EAX, size=8)

    def test_esp_cannot_be_index(self):
        with pytest.raises(ValueError):
            MemOperand(base=Reg.EAX, index=Reg.ESP)

    def test_address_registers(self):
        m = MemOperand(base=Reg.EBX, index=Reg.ECX, scale=4)
        assert m.address_registers() == [Reg.EBX, Reg.ECX]
        assert m.uses_reg(Reg.EBX) and m.uses_reg(Reg.ECX)
        assert not m.uses_reg(Reg.EAX)

    def test_equality_includes_size(self):
        a = MemOperand(base=Reg.ESI, disp=8, size=4)
        b = MemOperand(base=Reg.ESI, disp=8, size=2)
        assert a != b


class TestPcOperand:
    def test_wraps_to_32_bits(self):
        assert PcOperand(0x1_0000_0001).pc == 1

    def test_equality(self):
        assert PcOperand(0x400) == PcOperand(0x400)
        assert PcOperand(0x400) != PcOperand(0x404)
