import pytest

from repro.isa.encoder import encode_instr, encoded_length, EncodeError
from repro.isa.opcodes import Opcode
from repro.isa.operands import (
    OPND_REG,
    OPND_IMM8,
    OPND_IMM32,
    OPND_MEM,
    OPND_PC,
)
from repro.isa.registers import Reg


class TestCompactForms:
    """The paper's Section 4.2 rests on the inc/add length asymmetry."""

    def test_inc_reg_is_one_byte(self):
        assert encode_instr(Opcode.INC, (OPND_REG(Reg.EAX),)) == b"\x40"
        assert encode_instr(Opcode.INC, (OPND_REG(Reg.EDI),)) == b"\x47"

    def test_dec_reg_is_one_byte(self):
        assert encode_instr(Opcode.DEC, (OPND_REG(Reg.EAX),)) == b"\x48"

    def test_add_one_is_three_bytes(self):
        raw = encode_instr(Opcode.ADD, (OPND_REG(Reg.EAX), OPND_IMM8(1)))
        assert len(raw) == 3  # 83 /0 ib

    def test_push_pop_reg_one_byte(self):
        assert encode_instr(Opcode.PUSH, (OPND_REG(Reg.EBP),)) == b"\x55"
        assert encode_instr(Opcode.POP, (OPND_REG(Reg.EBP),)) == b"\x5d"

    def test_mov_reg_imm_uses_compact_form(self):
        raw = encode_instr(Opcode.MOV, (OPND_REG(Reg.EBX), OPND_IMM32(7)))
        assert raw == b"\xbb\x07\x00\x00\x00"

    def test_imm8_chosen_over_imm32(self):
        short = encode_instr(Opcode.SUB, (OPND_REG(Reg.ECX), OPND_IMM32(4)))
        long_ = encode_instr(Opcode.SUB, (OPND_REG(Reg.ECX), OPND_IMM32(0x1234)))
        assert len(short) == 3
        assert len(long_) == 6

    def test_negative_imm_fits_in_byte(self):
        raw = encode_instr(Opcode.ADD, (OPND_REG(Reg.ESP), OPND_IMM32(-4)))
        assert len(raw) == 3


class TestModRM:
    def test_reg_reg(self):
        # cmp eax, ecx: 3b /r with modrm 11 000 001
        raw = encode_instr(Opcode.CMP, (OPND_REG(Reg.EAX), OPND_REG(Reg.ECX)))
        assert raw == b"\x3b\xc1"  # matches the paper's Figure 2 bytes

    def test_base_disp8(self):
        # mov eax, [esi+0xc]: 8b 46 0c (paper Figure 2)
        raw = encode_instr(
            Opcode.MOV, (OPND_REG(Reg.EAX), OPND_MEM(base=Reg.ESI, disp=0xC))
        )
        assert raw == b"\x8b\x46\x0c"

    def test_lea_base_index(self):
        # lea esi, [ecx+eax*1]: 8d 34 01 (paper Figure 2)
        raw = encode_instr(
            Opcode.LEA,
            (OPND_REG(Reg.ESI), OPND_MEM(base=Reg.ECX, index=Reg.EAX, scale=1)),
        )
        assert raw == b"\x8d\x34\x01"

    def test_movzx_disp8(self):
        # movzx ecx, word [esi+8]: 0f b7 4e 08 (paper Figure 2)
        raw = encode_instr(
            Opcode.MOVZX,
            (OPND_REG(Reg.ECX), OPND_MEM(base=Reg.ESI, disp=8, size=2)),
        )
        assert raw == b"\x0f\xb7\x4e\x08"

    def test_shl_imm(self):
        # shl ecx, 7: c1 e1 07 (paper Figure 2)
        raw = encode_instr(Opcode.SHL, (OPND_REG(Reg.ECX), OPND_IMM8(7)))
        assert raw == b"\xc1\xe1\x07"

    def test_esp_base_needs_sib(self):
        raw = encode_instr(
            Opcode.MOV, (OPND_REG(Reg.EAX), OPND_MEM(base=Reg.ESP, disp=4))
        )
        # 8b modrm(01 000 100) sib(00 100 100) disp8
        assert raw == b"\x8b\x44\x24\x04"

    def test_ebp_base_zero_disp_still_has_disp8(self):
        raw = encode_instr(Opcode.MOV, (OPND_REG(Reg.EAX), OPND_MEM(base=Reg.EBP)))
        assert raw == b"\x8b\x45\x00"

    def test_absolute_disp32(self):
        raw = encode_instr(Opcode.MOV, (OPND_REG(Reg.EAX), OPND_MEM(disp=0x1000)))
        assert raw == b"\x8b\x05\x00\x10\x00\x00"

    def test_index_no_base(self):
        raw = encode_instr(
            Opcode.MOV,
            (OPND_REG(Reg.EAX), OPND_MEM(index=Reg.EBX, scale=4, disp=0x2000)),
        )
        # modrm 00 000 100, sib 10 011 101, disp32
        assert raw == b"\x8b\x04\x9d\x00\x20\x00\x00"

    def test_disp32_when_large(self):
        raw = encode_instr(
            Opcode.MOV, (OPND_REG(Reg.EAX), OPND_MEM(base=Reg.ESI, disp=0x1234))
        )
        assert len(raw) == 6


class TestBranches:
    def test_short_jump_backward(self):
        raw = encode_instr(Opcode.JMP, (OPND_PC(0x100),), pc=0x100)
        assert raw == b"\xeb\xfe"  # jump to self: rel8 = -2

    def test_long_jump(self):
        raw = encode_instr(Opcode.JMP, (OPND_PC(0x10000),), pc=0)
        assert raw[0] == 0xE9 and len(raw) == 5

    def test_jcc_short_and_long(self):
        short = encode_instr(Opcode.JNZ, (OPND_PC(0x10),), pc=0)
        long_ = encode_instr(Opcode.JNZ, (OPND_PC(0x10000),), pc=0)
        assert len(short) == 2 and short[0] == 0x75
        assert len(long_) == 6 and long_[:2] == b"\x0f\x85"

    def test_jnl_long_matches_paper_bytes(self):
        # paper Figure 2: 0f 8d a2 0a 00 00 = jnl +0xaa2
        raw = encode_instr(Opcode.JNL, (OPND_PC(0xAA2 + 6),), pc=0)
        assert raw == b"\x0f\x8d\xa2\x0a\x00\x00"

    def test_call_is_always_rel32(self):
        raw = encode_instr(Opcode.CALL, (OPND_PC(0x10),), pc=0)
        assert raw[0] == 0xE8 and len(raw) == 5

    def test_relative_requires_pc(self):
        with pytest.raises(EncodeError):
            encode_instr(Opcode.CALL, (OPND_PC(0x10),), pc=None)


class TestPrefixes:
    def test_prefix_bytes_prepended(self):
        raw = encode_instr(Opcode.NOP, (), prefixes=b"\x66")
        assert raw == b"\x66\x90"

    def test_prefix_counts_toward_branch_length(self):
        plain = encode_instr(Opcode.JMP, (OPND_PC(0x20),), pc=0)
        prefixed = encode_instr(Opcode.JMP, (OPND_PC(0x20),), pc=0, prefixes=b"\x66")
        # Same target: displacement differs by prefix length.
        assert prefixed[-1] == plain[-1] - 1


class TestErrors:
    def test_no_template(self):
        with pytest.raises(EncodeError):
            encode_instr(Opcode.LEA, (OPND_REG(Reg.EAX), OPND_REG(Reg.EBX)))

    def test_mem_to_mem_mov_rejected(self):
        with pytest.raises(EncodeError):
            encode_instr(
                Opcode.MOV,
                (OPND_MEM(base=Reg.EAX), OPND_MEM(base=Reg.EBX)),
            )

    def test_label_encodes_to_nothing(self):
        assert encode_instr(Opcode.LABEL, ()) == b""


def test_encoded_length_matches_encoding():
    ops = (OPND_REG(Reg.EAX), OPND_MEM(base=Reg.EBP, disp=-12))
    assert encoded_length(Opcode.MOV, ops) == len(encode_instr(Opcode.MOV, ops))
