"""Property-based encode/decode roundtrip over the whole ISA."""

from hypothesis import given, settings, strategies as st

from repro.isa.decoder import decode_boundary, decode_full, decode_opcode
from repro.isa.encoder import encode_instr, EncodeError
from repro.isa.opcodes import Opcode, JCC_CONDITION
from repro.isa.operands import (
    ImmOperand,
    MemOperand,
    PcOperand,
    RegOperand,
)
from repro.isa.registers import Reg


regs = st.sampled_from(list(Reg))
non_esp = st.sampled_from([r for r in Reg if r != Reg.ESP])
imms = st.builds(
    ImmOperand,
    st.integers(min_value=-(2**31), max_value=2**31 - 1),
    size=st.sampled_from([1, 4]).flatmap(lambda s: st.just(s)),
)


def mem_operands(size=4):
    return st.builds(
        MemOperand,
        base=st.one_of(st.none(), regs),
        index=st.one_of(st.none(), non_esp),
        scale=st.sampled_from([1, 2, 4, 8]),
        disp=st.integers(min_value=-(2**31), max_value=2**31 - 1),
        size=st.just(size),
    )


def small_imm():
    return st.integers(min_value=-(2**31), max_value=2**31 - 1).map(
        lambda v: ImmOperand(v, size=4)
    )


rm4 = st.one_of(regs.map(RegOperand), mem_operands(4))

binary_ops = st.sampled_from(
    [Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.CMP]
)
unary_ops = st.sampled_from([Opcode.INC, Opcode.DEC, Opcode.NEG, Opcode.NOT, Opcode.DIV])
fp_ops = st.sampled_from([Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV])
shift_ops = st.sampled_from([Opcode.SHL, Opcode.SHR, Opcode.SAR])


instr_cases = st.one_of(
    st.tuples(binary_ops, st.tuples(rm4, small_imm())),
    st.tuples(binary_ops, st.tuples(regs.map(RegOperand), rm4)),
    st.tuples(unary_ops, st.tuples(rm4)),
    st.tuples(fp_ops, st.tuples(regs.map(RegOperand), rm4)),
    st.tuples(shift_ops, st.tuples(rm4, st.integers(0, 31).map(lambda v: ImmOperand(v, 1)))),
    st.tuples(st.just(Opcode.MOV), st.tuples(regs.map(RegOperand), rm4)),
    st.tuples(st.just(Opcode.MOV), st.tuples(mem_operands(4), regs.map(RegOperand))),
    st.tuples(st.just(Opcode.MOV), st.tuples(rm4, small_imm())),
    st.tuples(st.just(Opcode.LEA), st.tuples(regs.map(RegOperand), mem_operands(4))),
    st.tuples(st.just(Opcode.MOVZX), st.tuples(regs.map(RegOperand), mem_operands(1))),
    st.tuples(st.just(Opcode.MOVZX), st.tuples(regs.map(RegOperand), mem_operands(2))),
    st.tuples(st.just(Opcode.MOVSX), st.tuples(regs.map(RegOperand), mem_operands(1))),
    st.tuples(st.just(Opcode.PUSH), st.tuples(st.one_of(regs.map(RegOperand), small_imm(), mem_operands(4)))),
    st.tuples(st.just(Opcode.POP), st.tuples(st.one_of(regs.map(RegOperand), mem_operands(4)))),
    st.tuples(st.just(Opcode.JMP_IND), st.tuples(rm4)),
    st.tuples(st.just(Opcode.CALL_IND), st.tuples(rm4)),
    st.tuples(st.sampled_from([Opcode.RET, Opcode.NOP, Opcode.HALT, Opcode.SYSCALL]), st.just(())),
)


@given(instr_cases)
@settings(max_examples=400)
def test_encode_decode_roundtrip(case):
    opcode, operands = case
    raw = encode_instr(opcode, operands, pc=0)
    assert 1 <= len(raw) <= 12

    assert decode_boundary(raw, 0) == len(raw)

    opc2, _eflags, length = decode_opcode(raw, 0)
    assert opc2 == opcode and length == len(raw)

    d = decode_full(raw, 0, pc=0)
    assert d.opcode == opcode
    assert d.length == len(raw)
    assert len(d.operands) == len(operands)
    for got, want in zip(d.operands, operands):
        if isinstance(want, ImmOperand):
            # The encoder is free to pick the compact imm8 form, so the
            # decoded size hint may differ; the value must not.
            assert isinstance(got, ImmOperand)
            assert got.value & 0xFFFFFFFF == want.value & 0xFFFFFFFF
        else:
            assert got == want


branch_ops = st.sampled_from([Opcode.JMP, Opcode.CALL] + list(JCC_CONDITION))


@given(
    branch_ops,
    st.integers(min_value=0, max_value=2**31 - 1),
    st.integers(min_value=0, max_value=2**20),
)
@settings(max_examples=300)
def test_branch_roundtrip(opcode, target, pc):
    try:
        raw = encode_instr(opcode, (PcOperand(target),), pc=pc)
    except EncodeError:
        return  # only possible for out-of-range rel32; acceptable to reject
    d = decode_full(raw, 0, pc=pc)
    assert d.opcode == opcode
    assert d.operands[0].pc == target & 0xFFFFFFFF


@given(st.binary(min_size=0, max_size=16))
@settings(max_examples=300)
def test_decoder_never_crashes_on_garbage(data):
    """The decoder must reject garbage with DecodeError, never crash."""
    from repro.isa.decoder import DecodeError

    try:
        d = decode_full(data, 0, pc=0)
        assert 1 <= d.length <= len(data)
    except DecodeError:
        pass
