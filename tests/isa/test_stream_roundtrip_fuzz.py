"""Seeded round-trip fuzzing of whole instruction *streams*.

Complements ``test_roundtrip_property`` (single instructions via
hypothesis) with deterministic, seed-parametrized streams pushed
through the IR's adaptive levels: raw bytes → Level 0 bundle →
split → Level 1/2/3 lifts → encode must reproduce the original bytes
exactly (the raw-bit copy paths), and a forced Level 4 re-encode from
operands must also reproduce them (the encoder is deterministic over
the decoder's canonical operand forms).

Each seed is an independent reproducible case: failures name the seed.
A fast subset runs in tier-1; the full sweep hides behind ``slow``.
"""

import random

import pytest

from repro.ir.instrlist import InstrList
from repro.isa.decoder import decode_boundary
from repro.isa.encoder import encode_instr
from repro.isa.opcodes import JCC_CONDITION, Opcode
from repro.isa.operands import ImmOperand, MemOperand, PcOperand, RegOperand
from repro.isa.registers import Reg

BASE_PC = 0x1000

_BINARY = (Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.CMP)
_UNARY = (Opcode.INC, Opcode.DEC, Opcode.NEG, Opcode.NOT)
_SHIFT = (Opcode.SHL, Opcode.SHR, Opcode.SAR)
_FP = (Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV)
_NON_ESP = tuple(r for r in Reg if r != Reg.ESP)


def _random_reg(rng):
    return RegOperand(rng.choice(tuple(Reg)))


def _random_imm(rng):
    value = rng.choice(
        (
            rng.randint(-128, 127),
            rng.randint(-(2**31), 2**31 - 1),
            0,
            1,
            -1,
        )
    )
    return ImmOperand(value, size=4)


def _random_mem(rng, size=4):
    base = rng.choice((None,) + tuple(Reg))
    index = rng.choice((None,) * 3 + _NON_ESP)
    # scale without an index is not encodable state; keep it canonical
    scale = rng.choice((1, 2, 4, 8)) if index is not None else 1
    disp = rng.choice(
        (0, rng.randint(-128, 127), rng.randint(-(2**31), 2**31 - 1))
    )
    if base is None and index is None:
        disp = rng.randint(0, 2**31 - 1)  # absolute addressing form
    return MemOperand(base=base, index=index, scale=scale, disp=disp, size=size)


def _random_rm(rng, size=4):
    if size == 4 and rng.random() < 0.5:
        return _random_reg(rng)
    return _random_mem(rng, size)


def _random_straightline(rng):
    """One random non-CTI (opcode, operands) case."""
    pick = rng.randrange(10)
    if pick == 0:
        return rng.choice(_BINARY), (_random_rm(rng), _random_imm(rng))
    if pick == 1:
        return rng.choice(_BINARY), (_random_reg(rng), _random_rm(rng))
    if pick == 2:
        return rng.choice(_UNARY), (_random_rm(rng),)
    if pick == 3:
        return rng.choice(_SHIFT), (
            _random_rm(rng),
            ImmOperand(rng.randint(0, 31), size=1),
        )
    if pick == 4:
        return rng.choice(_FP), (_random_reg(rng), _random_rm(rng))
    if pick == 5:
        return Opcode.MOV, (
            rng.choice((_random_rm(rng), _random_mem(rng))),
            rng.choice((_random_reg(rng), _random_imm(rng))),
        )
    if pick == 6:
        return Opcode.LEA, (_random_reg(rng), _random_mem(rng))
    if pick == 7:
        return (
            rng.choice((Opcode.MOVZX, Opcode.MOVSX)),
            (_random_reg(rng), _random_mem(rng, size=rng.choice((1, 2)))),
        )
    if pick == 8:
        return Opcode.PUSH, (
            rng.choice((_random_reg(rng), _random_imm(rng), _random_mem(rng))),
        )
    if rng.random() < 0.5:
        return Opcode.NOP, ()
    return Opcode.POP, (rng.choice((_random_reg(rng), _random_mem(rng))),)


def _random_cti(rng, pc):
    """One random block-ending control transfer placed at ``pc``."""
    pick = rng.randrange(4)
    if pick == 0:
        opcode = rng.choice((Opcode.JMP, Opcode.CALL))
        return opcode, (PcOperand(max(0, pc + rng.randint(-120, 120))),)
    if pick == 1:
        opcode = rng.choice(tuple(JCC_CONDITION))
        return opcode, (PcOperand(max(0, pc + rng.randint(-120, 120))),)
    if pick == 2:
        return rng.choice((Opcode.JMP_IND, Opcode.CALL_IND)), (
            _random_rm(rng),
        )
    return Opcode.RET, ()


def _build_stream(seed):
    """Returns (body_bytes, full_bytes): a straight-line run and the
    same run terminated by a random CTI."""
    rng = random.Random(seed)
    out = bytearray()
    pc = BASE_PC
    for _ in range(rng.randint(3, 12)):
        opcode, operands = _random_straightline(rng)
        raw = encode_instr(opcode, operands, pc=pc)
        out += raw
        pc += len(raw)
    body = bytes(out)
    opcode, operands = _random_cti(rng, pc)
    out += encode_instr(opcode, operands, pc=pc)
    return body, bytes(out)


def _slices(code, pc):
    """(offset, length) per instruction via the boundary decoder."""
    pieces = []
    off = 0
    while off < len(code):
        n = decode_boundary(code, off)
        pieces.append((off, n))
        off += n
    return pieces


def _reencoded(il):
    """Concatenate per-node encodes at the original addresses."""
    out = bytearray()
    for node in il:
        out += node.encode(pc=node.raw_pc)
    return bytes(out)


def _check_stream(seed):
    body, full = _build_stream(seed)

    # Level 0: the whole straight-line run as one bundle — encoding is
    # a raw byte copy, before and after splitting into Level-1 nodes.
    il0 = InstrList.from_code(body, BASE_PC, level=0)
    assert len(il0) == 1 and il0.first().is_bundle
    assert il0.first().encode() == body
    il0.expand_bundles()
    assert len(il0) == len(_slices(body, BASE_PC))
    assert _reencoded(il0) == body

    # Levels 1-3: raw bits stay valid through each lift, so encoding at
    # the original address must reproduce the exact stream (CTI too).
    for level in (1, 2, 3):
        il = InstrList.from_code(full, BASE_PC, level=level)
        assert _reencoded(il) == full

    # Level 4: force re-encode from decoded operands.  set_opcode
    # invalidates the raw bits (dropping the recorded address with
    # them), so every byte below is produced by the encoder over the
    # decoder's canonical operand forms at the captured placement.
    il4 = InstrList.from_code(full, BASE_PC, level=3)
    pcs = [node.raw_pc for node in il4]
    for node in il4:
        node.set_opcode(node.opcode)
        assert not node.raw_bits_valid()
    out = bytearray()
    for node, pc in zip(il4, pcs):
        out += node.encode(pc=pc)
    assert bytes(out) == full


@pytest.mark.parametrize("seed", range(16))
def test_stream_roundtrip_fast(seed):
    _check_stream(seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(16, 512))
def test_stream_roundtrip_sweep(seed):
    _check_stream(seed)
