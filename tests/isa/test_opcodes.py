from repro.isa.eflags import (
    EFLAGS_READ_CF,
    EFLAGS_READ_ZF,
    EFLAGS_WRITE_CF,
    EFLAGS_WRITE_ALL,
)
from repro.isa.opcodes import (
    Opcode,
    OP_INFO,
    opcode_info,
    opcode_from_name,
    JCC_CONDITION,
    JCC_OPPOSITE,
)


def test_inc_dec_do_not_write_cf():
    """The hazard the paper's strength-reduction client depends on."""
    for opc in (Opcode.INC, Opcode.DEC):
        info = opcode_info(opc)
        assert info.eflags & EFLAGS_WRITE_CF == 0
        assert info.eflags & EFLAGS_WRITE_ALL != 0  # writes the others


def test_add_sub_write_cf():
    for opc in (Opcode.ADD, Opcode.SUB):
        assert opcode_info(opc).eflags & EFLAGS_WRITE_CF


def test_not_writes_no_flags():
    assert opcode_info(Opcode.NOT).eflags == 0


def test_mov_lea_write_no_flags():
    for opc in (Opcode.MOV, Opcode.LEA, Opcode.MOVZX, Opcode.PUSH, Opcode.POP):
        assert opcode_info(opc).eflags == 0


def test_fp_opcodes_have_no_flag_effects():
    for opc in (Opcode.FLD, Opcode.FST, Opcode.FADD, Opcode.FMUL):
        info = opcode_info(opc)
        assert info.eflags == 0
        assert info.is_fp


def test_jcc_reads():
    assert opcode_info(Opcode.JB).eflags == EFLAGS_READ_CF
    assert opcode_info(Opcode.JZ).eflags == EFLAGS_READ_ZF
    assert opcode_info(Opcode.JBE).eflags == EFLAGS_READ_CF | EFLAGS_READ_ZF


def test_cti_classification():
    assert opcode_info(Opcode.JMP).is_cti and not opcode_info(Opcode.JMP).is_indirect
    assert opcode_info(Opcode.JMP_IND).is_indirect
    assert opcode_info(Opcode.CALL).is_call and not opcode_info(Opcode.CALL).is_indirect
    assert opcode_info(Opcode.CALL_IND).is_call and opcode_info(Opcode.CALL_IND).is_indirect
    ret = opcode_info(Opcode.RET)
    assert ret.is_ret and ret.is_indirect and ret.is_cti
    assert opcode_info(Opcode.JNZ).is_cond_branch
    assert not opcode_info(Opcode.ADD).is_cti


def test_jcc_opposites_are_involutions():
    for jcc, opposite in JCC_OPPOSITE.items():
        assert JCC_OPPOSITE[opposite] == jcc
        # opposite conditions differ only in the low bit, as in IA-32
        assert JCC_CONDITION[jcc] ^ 1 == JCC_CONDITION[opposite]


def test_every_opcode_has_info():
    for opc in Opcode:
        assert opc in OP_INFO
        assert OP_INFO[opc].name


def test_opcode_from_name():
    assert opcode_from_name("add") == Opcode.ADD
    assert opcode_from_name("jnz") == Opcode.JNZ
    assert opcode_from_name("jmp*") == Opcode.JMP_IND
