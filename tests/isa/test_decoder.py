import pytest

from repro.isa.decoder import (
    decode_boundary,
    decode_opcode,
    decode_full,
    DecodeError,
)
from repro.isa.eflags import EFLAGS_WRITE_ALL, EFLAGS_READ_SF, EFLAGS_READ_OF
from repro.isa.encoder import encode_instr
from repro.isa.opcodes import Opcode
from repro.isa.operands import OPND_REG, OPND_MEM, OPND_PC, MemOperand
from repro.isa.registers import Reg


# The exact byte sequence from the paper's Figure 2.
FIGURE2_BYTES = bytes.fromhex("8d34018b460c2b461c0fb74e08c1e1073bc10f8da20a0000")
FIGURE2_OPCODES = [
    Opcode.LEA,
    Opcode.MOV,
    Opcode.SUB,
    Opcode.MOVZX,
    Opcode.SHL,
    Opcode.CMP,
    Opcode.JNL,
]
FIGURE2_LENGTHS = [3, 3, 3, 4, 3, 2, 6]


def test_boundary_scan_figure2():
    off = 0
    lengths = []
    while off < len(FIGURE2_BYTES):
        n = decode_boundary(FIGURE2_BYTES, off)
        lengths.append(n)
        off += n
    assert lengths == FIGURE2_LENGTHS


def test_level2_decode_figure2():
    off = 0
    opcodes = []
    for _ in FIGURE2_OPCODES:
        opc, eflags, n = decode_opcode(FIGURE2_BYTES, off)
        opcodes.append(opc)
        off += n
    assert opcodes == FIGURE2_OPCODES


def test_level2_eflags_figure2():
    # lea: no flags; sub: WCPAZSO; jnl: RSO
    opc, eflags, n = decode_opcode(FIGURE2_BYTES, 0)
    assert opc == Opcode.LEA and eflags == 0
    opc, eflags, _ = decode_opcode(FIGURE2_BYTES, 6)
    assert opc == Opcode.SUB and eflags == EFLAGS_WRITE_ALL
    opc, eflags, _ = decode_opcode(FIGURE2_BYTES, 18)
    assert opc == Opcode.JNL and eflags == EFLAGS_READ_SF | EFLAGS_READ_OF


def test_full_decode_figure2_operands():
    d = decode_full(FIGURE2_BYTES, 0)
    assert d.opcode == Opcode.LEA
    assert d.operands[0] == OPND_REG(Reg.ESI)
    assert d.operands[1] == MemOperand(base=Reg.ECX, index=Reg.EAX, scale=1)

    d = decode_full(FIGURE2_BYTES, 3)
    assert d.opcode == Opcode.MOV
    assert d.operands == (OPND_REG(Reg.EAX), MemOperand(base=Reg.ESI, disp=0xC))


def test_full_decode_branch_target_uses_pc():
    # Place the Figure 2 jnl at a non-zero pc and check the absolute target.
    jnl = FIGURE2_BYTES[18:]
    d = decode_full(jnl, 0, pc=0x1000)
    assert d.opcode == Opcode.JNL
    assert d.operands[0] == OPND_PC(0x1000 + 6 + 0xAA2)


def test_group_opcode_resolution():
    # 0xF7 is a group byte: /2 not, /3 neg, /6 div
    for opc, ops in [
        (Opcode.NOT, (OPND_REG(Reg.EDX),)),
        (Opcode.NEG, (OPND_REG(Reg.EDX),)),
        (Opcode.DIV, (OPND_REG(Reg.EBX),)),
    ]:
        raw = encode_instr(opc, ops)
        assert raw[0] == 0xF7
        got, _, _ = decode_opcode(raw, 0)
        assert got == opc


def test_prefixes_decoded():
    raw = encode_instr(Opcode.NOP, (), prefixes=b"\x66")
    d = decode_full(raw, 0)
    assert d.prefixes == (0x66,)
    assert d.length == 2


def test_unknown_opcode_raises():
    with pytest.raises(DecodeError):
        decode_boundary(b"\x06", 0)


def test_truncated_instruction_raises():
    raw = encode_instr(Opcode.MOV, (OPND_REG(Reg.EAX), OPND_MEM(base=Reg.ESI, disp=0x1234)))
    with pytest.raises(DecodeError):
        decode_full(raw[:3], 0)


def test_truncated_at_end_of_buffer_raises():
    with pytest.raises(DecodeError):
        decode_boundary(b"", 0)


def test_too_many_prefixes_raises():
    with pytest.raises(DecodeError):
        decode_boundary(b"\x66" * 6 + b"\x90", 0)


def test_invalid_group_digit_raises():
    # 0xF7 with /5 is not defined in RIO-32
    with pytest.raises(DecodeError):
        decode_opcode(bytes([0xF7, (0b11 << 6) | (5 << 3) | 0]), 0)


def test_decode_mem_sizes_from_opcode():
    raw = encode_instr(
        Opcode.MOVZX, (OPND_REG(Reg.EAX), OPND_MEM(base=Reg.ESI, size=1))
    )
    d = decode_full(raw, 0)
    assert d.operands[1].size == 1

    raw = encode_instr(
        Opcode.MOVB_STORE, (OPND_MEM(base=Reg.EDI, size=1), OPND_REG(Reg.ECX))
    )
    d = decode_full(raw, 0)
    assert d.operands[0].size == 1


def test_shift_by_cl_decodes_implicit_ecx():
    raw = encode_instr(Opcode.SHL, (OPND_REG(Reg.EDX), OPND_REG(Reg.ECX)))
    d = decode_full(raw, 0)
    assert d.opcode == Opcode.SHL
    assert d.operands == (OPND_REG(Reg.EDX), OPND_REG(Reg.ECX))
