from repro.isa.eflags import (
    EFLAGS_READ_ALL,
    EFLAGS_READ_CF,
    EFLAGS_READ_SF,
    EFLAGS_READ_OF,
    EFLAGS_WRITE_ALL,
    EFLAGS_WRITE_CF,
    EFLAGS_WRITE_ZF,
    eflags_to_string,
    reads_to_writes,
    writes_to_reads,
    FLAG_BITS,
)


def test_read_and_write_masks_disjoint():
    assert EFLAGS_READ_ALL & EFLAGS_WRITE_ALL == 0


def test_flag_bit_positions_match_ia32():
    # CF=bit0, PF=bit2, AF=bit4, ZF=bit6, SF=bit7, OF=bit11
    assert [b.bit_length() - 1 for b in FLAG_BITS] == [0, 2, 4, 6, 7, 11]


def test_reads_to_writes_roundtrip():
    assert reads_to_writes(EFLAGS_READ_CF) == EFLAGS_WRITE_CF
    assert writes_to_reads(EFLAGS_WRITE_CF) == EFLAGS_READ_CF
    assert writes_to_reads(reads_to_writes(EFLAGS_READ_ALL)) == EFLAGS_READ_ALL


def test_eflags_to_string_paper_notation():
    # cmp writes all six flags: "WCPAZSO" in the paper's Figure 2
    assert eflags_to_string(EFLAGS_WRITE_ALL) == "WCPAZSO"
    # jnl reads SF and OF: "RSO"
    assert eflags_to_string(EFLAGS_READ_SF | EFLAGS_READ_OF) == "RSO"
    assert eflags_to_string(0) == "-"


def test_eflags_to_string_mixed():
    s = eflags_to_string(EFLAGS_WRITE_ZF | EFLAGS_READ_CF)
    assert s == "WZ RC"
