import pytest

from repro.asm import CodeBuilder
from repro.core.bb_builder import block_instr_count, build_basic_block
from repro.isa.opcodes import Opcode
from repro.isa.registers import Reg
from repro.machine.errors import MachineFault
from repro.machine.memory import Memory


def make_memory(builder):
    code, labels = builder.assemble()
    memory = Memory(size=0x10000)
    memory.write_bytes(builder.base, code)
    return memory, labels


class TestBlockShapes:
    def test_block_ends_at_conditional_branch(self):
        b = CodeBuilder(base=0x1000)
        b.mov(Reg.EAX, 1)
        b.add(Reg.EAX, 2)
        b.cmp(Reg.EAX, 3)
        b.jnz("elsewhere")
        b.label("elsewhere")
        b.nop()
        memory, _ = make_memory(b)
        il = build_basic_block(memory, 0x1000)
        # bundle + jnz + synthetic fall-through jmp
        nodes = list(il)
        assert nodes[0].is_bundle
        assert nodes[1].opcode == Opcode.JNZ
        assert nodes[1].is_exit_cti
        assert nodes[2].opcode == Opcode.JMP
        assert nodes[2].note["synthetic_fallthrough"]
        assert block_instr_count(il) == 4  # 3 body + jnz

    def test_cti_is_level3_body_is_level0(self):
        """The paper's Section 3.1 example: two Instrs, Level 0 + Level 3."""
        b = CodeBuilder(base=0x1000)
        b.mov(Reg.EAX, 1)
        b.jmp("self")
        b.label("self")
        memory, _ = make_memory(b)
        il = build_basic_block(memory, 0x1000)
        nodes = list(il)
        assert len(nodes) == 2
        assert nodes[0].level == 0
        assert nodes[1].level == 3

    def test_block_ends_at_ret(self):
        b = CodeBuilder(base=0x1000)
        b.mov(Reg.EAX, 5)
        b.ret()
        memory, _ = make_memory(b)
        il = build_basic_block(memory, 0x1000)
        assert il.last().opcode == Opcode.RET
        assert len(list(il)) == 2

    def test_block_starting_with_cti(self):
        b = CodeBuilder(base=0x1000)
        b.ret()
        memory, _ = make_memory(b)
        il = build_basic_block(memory, 0x1000)
        nodes = list(il)
        assert len(nodes) == 1
        assert nodes[0].opcode == Opcode.RET

    def test_block_ends_at_indirect_jump(self):
        b = CodeBuilder(base=0x1000)
        b.mov(Reg.EBX, 0x2000)
        b.jmp_ind(Reg.EBX)
        memory, _ = make_memory(b)
        il = build_basic_block(memory, 0x1000)
        assert il.last().opcode == Opcode.JMP_IND

    def test_max_instrs_splits_block(self):
        b = CodeBuilder(base=0x1000)
        for _ in range(50):
            b.nop()
        b.ret()
        memory, _ = make_memory(b)
        il = build_basic_block(memory, 0x1000, max_instrs=10)
        # ends with a synthetic jmp to the next address
        last = il.last()
        assert last.opcode == Opcode.JMP
        assert last.target.pc == 0x1000 + 10
        assert block_instr_count(il) == 10

    def test_halt_terminates_block(self):
        b = CodeBuilder(base=0x1000)
        b.mov(Reg.EAX, 1)
        b.hlt()
        b.nop()
        memory, _ = make_memory(b)
        il = build_basic_block(memory, 0x1000)
        # hlt stays inside the block (it ends the program when executed)
        count = block_instr_count(il)
        assert count == 2

    def test_bad_code_faults(self):
        memory = Memory(size=0x10000)
        memory.write_bytes(0x1000, b"\x06\x06")
        with pytest.raises(MachineFault):
            build_basic_block(memory, 0x1000)

    def test_syscall_ends_block(self):
        """As in DynamoRIO: the kernel may transfer control at a
        syscall, so blocks stop there."""
        b = CodeBuilder(base=0x1000)
        b.syscall()
        b.mov(Reg.EAX, 1)
        b.ret()
        memory, _ = make_memory(b)
        il = build_basic_block(memory, 0x1000)
        assert block_instr_count(il) == 1
        last = il.last()
        assert last.opcode == Opcode.JMP
        assert last.target.pc == 0x1001  # continuation after the syscall
