"""Asynchronous signal interception (paper Section 2).

"Signals on Linux must be similarly intercepted": the kernel never
transfers control behind the runtime's back.  Alarm signals are
delivered at safe points — between instructions natively, at a fragment
boundary under the runtime — so, exactly as in real DynamoRIO, the
*precise* delivery instant may differ while the control-flow contract
(handler runs, sees the interrupted pc on the stack, iret resumes)
holds in both.
"""

import pytest

from repro.core import DynamoRIO, RuntimeOptions
from repro.loader import Process
from repro.machine.interp import run_native
from repro.minicc import compile_source


SIGNAL_SRC = """
int ticks;

int on_alarm() {
    ticks++;
    if (ticks < 4) { alarm(250); }
    sigreturn;
    return 0;
}

int main() {
    int i;
    sighandler(&on_alarm);
    alarm(250);
    i = 0;
    while (ticks < 4) { i++; }
    print(ticks);
    return 0;
}
"""


@pytest.fixture(scope="module")
def signal_image():
    return compile_source(SIGNAL_SRC)


class TestNativeSignals:
    def test_handler_runs_and_resumes(self, signal_image):
        result = run_native(Process(signal_image))
        assert int.from_bytes(result.output, "little") == 4
        assert result.exit_code == 0
        assert result.events["signals_delivered"] == 4

    def test_no_handler_no_delivery(self):
        src = """
int main() {
    int i;
    alarm(50);
    for (i = 0; i < 500; i++) { }
    print(i);
    return 0;
}
"""
        result = run_native(Process(compile_source(src)))
        assert result.events.get("signals_delivered", 0) == 0
        assert int.from_bytes(result.output, "little") == 500


class TestRuntimeSignals:
    def test_intercepted_and_transparent_output(self, signal_image):
        native = run_native(Process(signal_image))
        result = DynamoRIO(
            Process(signal_image), options=RuntimeOptions.with_traces()
        ).run()
        # the observable contract: same signal count, same output
        assert result.output == native.output
        assert result.events["signals_delivered"] == 4

    def test_handler_code_runs_under_the_cache(self, signal_image):
        """The interception claim: handler code is translated like all
        other application code, never run natively."""
        dr = DynamoRIO(Process(signal_image), options=RuntimeOptions.with_traces())
        dr.run()
        handler_addr = signal_image.symbol("fn_on_alarm")
        assert dr.current_thread.lookup_fragment(handler_addr) is not None

    def test_interrupted_pc_is_application_address(self, signal_image):
        """Transparency of delivery: the pc pushed for the handler is an
        original application address, never a code-cache address."""
        dr = DynamoRIO(Process(signal_image), options=RuntimeOptions.with_traces())
        observed = []

        original = dr._deliver_signal

        def spy(thread, tag):
            observed.append(tag)
            return original(thread, tag)

        dr._deliver_signal = spy
        dr.run()
        code = dr.memory.region("app_code")
        cache = dr.memory.region("code_cache")
        assert observed
        for tag in observed:
            assert code.contains(tag)
            assert not cache.contains(tag)

    def test_works_under_bb_cache_only(self, signal_image):
        result = DynamoRIO(
            Process(signal_image), options=RuntimeOptions.bb_cache_only()
        ).run()
        assert int.from_bytes(result.output, "little") == 4


class TestMidTraceSignal:
    """A signal arriving while a trace recording is in progress must
    abandon the recording: stitching across the asynchronous redirect
    would bake the handler's blocks into the trace as its fall-through
    path."""

    def test_deliver_signal_squashes_recording(self, signal_image):
        from repro.core.trace_builder import TraceRecording

        dr = DynamoRIO(
            Process(signal_image), options=RuntimeOptions.with_traces()
        )
        thread = dr.current_thread
        thread.cpu.regs[4] = dr.process.initial_stack_pointer()  # esp
        dr.system.signal_handler = signal_image.symbol("fn_on_alarm")
        thread.trace_in_progress = TraceRecording(signal_image.entry)
        target = dr._deliver_signal(thread, signal_image.entry)
        assert target == dr.system.signal_handler
        assert thread.trace_in_progress is None

    def test_squash_is_observable_in_the_event_stream(self, signal_image):
        from repro.core.trace_builder import TraceRecording

        options = RuntimeOptions.with_traces()
        options.trace_events = True
        options.trace_buffer = None
        dr = DynamoRIO(Process(signal_image), options=options)
        thread = dr.current_thread
        thread.cpu.regs[4] = dr.process.initial_stack_pointer()  # esp
        dr.system.signal_handler = signal_image.symbol("fn_on_alarm")
        thread.trace_in_progress = TraceRecording(signal_image.entry)
        dr._deliver_signal(thread, signal_image.entry)
        delivered = [
            e for e in dr.observer.events() if e.kind == "signal_delivered"
        ]
        assert delivered and delivered[-1].data.get("trace_squashed") is True

    @pytest.mark.parametrize("closure_engine", [True, False])
    def test_hair_trigger_traces_stay_transparent(
        self, signal_image, closure_engine
    ):
        """With a hair-trigger threshold, recordings are active when
        alarms land; output and signal count must still match native."""
        native = run_native(Process(signal_image))
        options = RuntimeOptions.with_traces()
        options.trace_threshold = 2
        options.closure_engine = closure_engine
        result = DynamoRIO(Process(signal_image), options=options).run()
        assert result.output == native.output
        assert result.exit_code == native.exit_code
        assert (
            result.events["signals_delivered"]
            == native.events["signals_delivered"]
        )
        assert result.events["traces_built"] > 0

    def test_no_trace_spans_cover_the_handler(self, signal_image):
        """No finalized trace stitched handler code: every trace's
        source spans stay clear of the handler function (the
        cache-consistency span bookkeeping makes this checkable)."""
        options = RuntimeOptions.with_traces()
        options.trace_threshold = 2
        options.cache_consistency = True
        dr = DynamoRIO(Process(signal_image), options=options)
        dr.run()
        # The handler function occupies [fn_on_alarm, fn_main).
        h_lo = signal_image.symbol("fn_on_alarm")
        h_hi = signal_image.symbol("fn_main")
        assert h_lo < h_hi
        checked = 0
        for thread in dr.threads:
            for trace in thread.trace_cache.fragments.values():
                if h_lo <= trace.tag < h_hi:
                    continue  # the handler's own traces may cover it
                checked += 1
                for start, end in trace.source_spans:
                    assert not (start < h_hi and h_lo < end), (
                        "trace 0x%x stitched handler code" % trace.tag
                    )
        assert checked > 0


class TestIret:
    def test_iret_restores_flags(self):
        """The handler may clobber eflags; iret restores the interrupted
        context's flags from the stack."""
        src = """
int ticks;
int on_alarm() {
    int junk;
    junk = 7 - 9;          /* clobbers flags */
    ticks++;
    sigreturn;
    return 0;
}
int main() {
    int i; int odd;
    sighandler(&on_alarm);
    alarm(100);
    odd = 0;
    for (i = 0; i < 4000; i++) {
        if (i & 1) { odd++; }
    }
    print(odd);
    print(ticks);
    return 0;
}
"""
        image = compile_source(src)
        native = run_native(Process(image))
        values = [
            int.from_bytes(native.output[i : i + 4], "little")
            for i in range(0, len(native.output), 4)
        ]
        assert values[0] == 2000  # flag-dependent loop unharmed
        assert values[1] == 1
        under = DynamoRIO(Process(image), options=RuntimeOptions.with_traces()).run()
        dr_values = [
            int.from_bytes(under.output[i : i + 4], "little")
            for i in range(0, len(under.output), 4)
        ]
        assert dr_values == values
