"""Adaptive fragment replacement (paper Section 3.4)."""

from repro.api.dr import dr_decode_fragment, dr_replace_fragment
from repro.api.client import Client
from repro.core import RuntimeOptions
from repro.ir.create import INSTR_CREATE_nop

from tests.core.conftest import run_under


class _ReplacingClient(Client):
    """On the first trace, re-decodes and replaces it with a version
    that has an extra (harmless) nop — exercising the whole
    decode/replace path from inside a clean call."""

    def __init__(self):
        super().__init__()
        self.replaced_tags = []
        self.decode_matched = []

    def trace(self, context, tag, ilist):
        from repro.api.dr import dr_insert_clean_call

        def replace_self(ctx, _tag=tag):
            if _tag in self.replaced_tags:
                return
            il = dr_decode_fragment(ctx, _tag)
            if il is None:
                return
            original = [
                i.opcode for i in il if i.level >= 2 and not i.is_label()
            ]
            self.decode_matched.append(len(original) > 0)
            il.prepend(INSTR_CREATE_nop())
            if dr_replace_fragment(ctx, _tag, il):
                self.replaced_tags.append(_tag)

        dr_insert_clean_call(ilist, ilist.first(), replace_self)


def test_replace_from_inside_fragment(loop_image, loop_native):
    """A trace replaces itself while executing (paper: 'DynamoRIO is
    able to perform this replacement while execution is still inside
    the old fragment')."""
    client = _ReplacingClient()
    opts = RuntimeOptions.with_traces()
    opts.trace_threshold = 5
    _dr, result = run_under(loop_image, opts, client=client)
    assert result.output == loop_native.output  # still transparent
    assert client.replaced_tags  # at least one replacement happened
    assert all(client.decode_matched)
    assert result.events["fragments_replaced"] >= 1


def test_decode_fragment_returns_copy(loop_image):
    opts = RuntimeOptions.with_traces()
    opts.trace_threshold = 5
    dr, _ = run_under(loop_image, opts)
    thread = dr.current_thread
    traces = list(thread.trace_cache.fragments.values())
    assert traces
    tag = traces[0].tag
    il1 = dr.decode_fragment(thread, tag)
    il2 = dr.decode_fragment(thread, tag)
    assert il1 is not il2
    assert len(il1) == len(il2)
    # mutating the copy does not affect the cached fragment
    il1.prepend(INSTR_CREATE_nop())
    assert len(dr.decode_fragment(thread, tag)) == len(il2)


def test_replace_repoints_incoming_links(loop_image):
    opts = RuntimeOptions.with_traces()
    opts.trace_threshold = 5
    dr, _ = run_under(loop_image, opts)
    thread = dr.current_thread
    candidates = [
        f
        for f in thread.trace_cache.fragments.values()
        if f.incoming
    ]
    if not candidates:
        candidates = [
            f for f in thread.bb_cache.fragments.values() if f.incoming
        ]
    assert candidates
    old = candidates[0]
    incoming_before = list(old.incoming)
    il = dr.decode_fragment(thread, old.tag)
    assert dr.replace_fragment(thread, old.tag, il)
    new = thread.lookup_fragment(old.tag)
    assert new is not old
    assert old.deleted
    for stub in incoming_before:
        if stub.fragment is old:
            # A self-link: the old fragment's own exits dissolve (its
            # code may still be running; the next dispatch finds the
            # new fragment), so it legitimately ends up unlinked.
            assert stub.linked_to is None
        else:
            assert stub.linked_to is new


def test_replace_unknown_tag_returns_false(loop_image):
    dr, _ = run_under(loop_image)
    from repro.ir.instrlist import InstrList

    assert not dr.replace_fragment(dr.current_thread, 0xDEAD, InstrList())


def test_decode_unknown_tag_returns_none(loop_image):
    dr, _ = run_under(loop_image)
    assert dr.decode_fragment(dr.current_thread, 0xDEAD) is None
