"""Property-based cache-pressure fuzz: seeded random policy matrix.

Each seed draws a random ``(workload, code_cache_limit, eviction
policy, adaptive sizing, trace/chain thresholds, client)`` cell and
runs it under all three execution engines.  The properties:

* **Engine bit-identity** — cycles, instructions, output, exit code
  and the full event/stat dictionaries are identical across the
  tuple, closure and chain engines (capacity management may change
  *overhead*, never the simulated machine's determinism).
* **Transparency** — output and exit code equal native execution, at
  every limit and policy.
* **No stale state survives eviction** — after the run: every resident
  fragment is live with a ``cache_addr`` inside its unit's span and no
  two residents overlap; every IBL entry and every linked exit stub
  points at a live fragment; every live chain passes
  ``ChainManager.check_integrity``.
* **Replay exactness** — when the seed enables tracing, replaying the
  (unbounded) event stream reconstructs the live counters exactly,
  including the new ``cache_fragment_evictions``/``cache_resizes``.

Seeds 0-15 run in tier-1; the wider sweep rides behind ``slow``.
"""

import random

import pytest

from repro.clients import (
    IndirectBranchDispatch,
    InstructionCounter,
    RedundantLoadRemoval,
    StrengthReduction,
)
from repro.core import DynamoRIO, RuntimeOptions
from repro.loader import Process
from repro.machine.cost import CostModel
from repro.machine.interp import run_native
from repro.minicc import compile_source
from repro.observe import replay_stats

from tests.conftest import INDIRECT_SRC, LOOP_SRC

ENGINES = ("tuple", "closure", "chain")

CLIENTS = (
    ("none", lambda: None),
    ("inscount", InstructionCounter),
    ("redundant_load", RedundantLoadRemoval),
    ("inc2add", StrengthReduction),
    ("indirect_dispatch", IndirectBranchDispatch),
)

SOURCES = {"loop": LOOP_SRC, "indirect": INDIRECT_SRC}

_images = {}
_native = {}


def _image(name):
    if name not in _images:
        _images[name] = compile_source(SOURCES[name])
        _native[name] = run_native(Process(_images[name]))
    return _images[name]


def _draw_cell(seed):
    rng = random.Random(seed)
    return {
        "source": rng.choice(sorted(SOURCES)),
        "limit": rng.randrange(400, 2001),
        "policy": rng.choice(("flush", "fifo")),
        "adaptive": rng.random() < 0.4,
        "trace_threshold": rng.choice((3, 5, 20)),
        "chain_threshold": rng.choice((1, 4)),
        "client": rng.choice(CLIENTS),
        "traced": rng.random() < 0.5,
    }


def _options(cell, engine):
    opts = RuntimeOptions.with_traces()
    opts.code_cache_limit = cell["limit"]
    opts.cache_evict_policy = cell["policy"]
    opts.cache_adaptive = cell["adaptive"]
    opts.trace_threshold = cell["trace_threshold"]
    opts.closure_engine = engine in ("closure", "chain")
    opts.chain_engine = engine == "chain"
    opts.chain_threshold = cell["chain_threshold"]
    if cell["traced"]:
        opts.trace_events = True
        opts.trace_buffer = None  # unbounded: replay must be exact
    return opts


def _run(cell, engine):
    runtime = DynamoRIO(
        Process(_image(cell["source"])),
        options=_options(cell, engine),
        client=cell["client"][1](),
        cost_model=CostModel(),
    )
    result = runtime.run()
    return runtime, result


def _assert_cache_invariants(runtime):
    """Nothing stale survived the evictions."""
    seen = set()
    for thread in runtime.threads:
        for cache in (thread.bb_cache, thread.trace_cache):
            if id(cache) in seen:
                continue
            seen.add(id(cache))
            residents = sorted(
                cache.fragments.values(), key=lambda f: f.cache_addr
            )
            prev_end = cache.base
            for fragment in residents:
                assert not fragment.deleted
                assert fragment.cache_addr is not None
                # In-bounds and non-overlapping within the unit's span.
                assert fragment.cache_addr >= prev_end
                prev_end = fragment.cache_addr + fragment.size
                assert prev_end <= cache.cursor
                # Linked exits must target live fragments.
                for stub in fragment.exits:
                    if stub.linked_to is not None:
                        assert not stub.linked_to.deleted
            # The unit's byte accounting matches its residents.  The
            # flush policy deliberately leaks removed/shadowed slots
            # until the next whole-unit flush (pre-fifo behavior, kept
            # bit-identical), so it only bounds from above.
            resident_bytes = sum(f.size for f in residents)
            if cache.policy == "fifo":
                assert cache.used() == resident_bytes
            else:
                assert cache.used() >= resident_bytes
        # Every IBL entry resolves to a live, resident fragment.
        for tag, fragment in thread.ibl.table.items():
            assert not fragment.deleted
            assert thread.lookup_fragment(tag) is fragment
    if runtime.chains is not None:
        assert runtime.chains.check_integrity() == []


def _check_seed(seed):
    cell = _draw_cell(seed)
    native = None
    runs = [_run(cell, engine) for engine in ENGINES]
    _image(cell["source"])  # ensure native result is cached
    native = _native[cell["source"]]

    reference = runs[0][1]
    for _runtime, result in runs[1:]:
        assert result.cycles == reference.cycles, cell
        assert result.instructions == reference.instructions, cell
        assert result.output == reference.output, cell
        assert result.exit_code == reference.exit_code, cell
        assert result.events == reference.events, cell

    # Transparency under pressure: native-identical behavior.
    assert reference.output == native.output, cell
    assert reference.exit_code == native.exit_code, cell

    for runtime, _result in runs:
        _assert_cache_invariants(runtime)

    if cell["traced"]:
        for runtime, _result in runs:
            observer = runtime.observer
            assert observer.dropped == 0
            assert replay_stats(observer.events()) == runtime.stats.as_dict()


@pytest.mark.parametrize("seed", range(16))
def test_cache_pressure_fuzz(seed):
    _check_seed(seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(16, 96))
def test_cache_pressure_fuzz_full(seed):
    _check_seed(seed)
