"""Chain compiler: promotion, and demotion at every unlink chokepoint.

The chain engine (``repro.core.chains``) stitches hot linked fragments
into dispatch-free super-tables.  Each baked transfer assumes its link
stays up, so every runtime path that tears links down — cache eviction,
``dr_replace_fragment``, SMC invalidation, client quarantine, trace
shadowing — must dissolve the chains embedding the touched fragments.
These tests drive each chokepoint against a *live* chain mid-run and
assert (a) chains were actually built and then demoted, and (b) the
run stays bit-identical to the tuple and plain-closure engines — the
chain tier is wall-clock-only by contract.
"""

from repro.api.client import Client
from repro.api.dr import (
    dr_decode_fragment,
    dr_insert_clean_call,
    dr_replace_fragment,
)
from repro.core import DynamoRIO, RuntimeOptions
from repro.ir.create import INSTR_CREATE_nop
from repro.loader import Process
from repro.machine.cost import CostModel
from repro.tools.chaos import build_smc_image

ENGINES = ("tuple", "closure", "chain")


def _engine_options(factory, engine, **overrides):
    options = factory()
    options.closure_engine = engine in ("closure", "chain")
    options.chain_engine = engine == "chain"
    options.chain_threshold = 1  # promote on the first pass
    for name, value in overrides.items():
        setattr(options, name, value)
    return options


def _run(image, factory, engine, client=None, **overrides):
    runtime = DynamoRIO(
        Process(image),
        options=_engine_options(factory, engine, **overrides),
        client=client() if client is not None else None,
        cost_model=CostModel(),
    )
    result = runtime.run()
    return runtime, result


def _result_key(result):
    return (
        result.cycles,
        result.instructions,
        result.output,
        result.exit_code,
        result.events,
    )


def _assert_engine_differential(image, factory, client=None, **overrides):
    """All three engines produce bit-identical results; returns the
    chain run's (runtime, result) for scenario-specific assertions."""
    runs = {
        engine: _run(image, factory, engine, client=client, **overrides)
        for engine in ENGINES
    }
    reference = _result_key(runs["tuple"][1])
    assert _result_key(runs["closure"][1]) == reference
    assert _result_key(runs["chain"][1]) == reference
    return runs["chain"]


def _chain_report(runtime):
    assert runtime.chains is not None
    return runtime.chains.report()


# ------------------------------------------------------------- promotion

def test_chains_promote_only_at_threshold(loop_image):
    runtime, _ = _run(
        loop_image, RuntimeOptions.with_indirect_links, "chain",
        chain_threshold=10_000_000,
    )
    assert _chain_report(runtime)["chains_built"] == 0

    runtime, _ = _run(loop_image, RuntimeOptions.with_indirect_links, "chain")
    assert _chain_report(runtime)["chains_built"] > 0


def test_chain_manager_absent_off_chain_engines(loop_image):
    for engine in ("tuple", "closure"):
        runtime, _ = _run(loop_image, RuntimeOptions.with_traces, engine)
        assert runtime.chains is None


# -------------------------------------------------- eviction chokepoint

def test_eviction_demotes_live_chains(loop_image, loop_native):
    """A tiny code cache keeps flushing fragments out from under their
    chains; every flush must dissolve the embedding chains."""
    runtime, result = _assert_engine_differential(
        loop_image, RuntimeOptions.with_traces,
        code_cache_limit=700, trace_threshold=5,
    )
    assert result.events["cache_evictions"] >= 1
    report = _chain_report(runtime)
    assert report["chains_built"] >= 1
    assert report["chains_invalidated"] >= 1
    assert result.output == loop_native.output
    assert result.exit_code == loop_native.exit_code


# ----------------------------------------------- replacement chokepoint

class _ChurningClient(Client):
    """Replaces every fragment it sees from a clean call inside it —
    replacement lands while the fragment's chain is live."""

    def __init__(self):
        super().__init__()
        self.replaced = set()
        self.replacements = 0

    def _hook(self, context, tag, ilist):
        def replace_self(ctx, _tag=tag):
            if _tag in self.replaced:
                return
            il = dr_decode_fragment(ctx, _tag)
            if il is None:
                return
            il.prepend(INSTR_CREATE_nop())
            if dr_replace_fragment(ctx, _tag, il):
                self.replaced.add(_tag)
                self.replacements += 1

        dr_insert_clean_call(ilist, ilist.first(), replace_self)

    basic_block = _hook
    trace = _hook

    def fragment_deleted(self, context, tag):
        self.replaced.discard(tag)


def test_replace_fragment_demotes_live_chains(loop_image, loop_native):
    runtime, result = _assert_engine_differential(
        loop_image, RuntimeOptions.with_traces, client=_ChurningClient,
        trace_threshold=5,
    )
    assert result.events["fragments_replaced"] >= 1
    report = _chain_report(runtime)
    assert report["chains_built"] >= 1
    assert report["chains_invalidated"] >= 1
    assert result.output == loop_native.output


# ------------------------------------------------------- SMC chokepoint

def test_smc_invalidation_demotes_live_chains():
    """The self-modifying workload patches a block that hot chains have
    stitched; the write-watch delete must demote them so the rebuilt
    code (emitting 'B') executes instead of the stale chain."""
    image = build_smc_image()
    runtime, result = _assert_engine_differential(
        image, RuntimeOptions.with_traces,
        cache_consistency=True, trace_threshold=3,
    )
    assert runtime.stats.smc_invalidations >= 1
    report = _chain_report(runtime)
    assert report["chains_built"] >= 1
    assert report["chains_invalidated"] >= 1
    # Transparency through the patch: stale chains would keep printing 'A'.
    assert result.output == b"A" * 7 + b"B" * 5


# ------------------------------------------------ quarantine chokepoint

def test_client_quarantine_demotes_live_chains(loop_image, loop_native):
    """Guard quarantine flushes every cache (OSR-style bailout); the
    flush funnels through fragment deletion and must take all live
    chains down with it."""
    from repro.resilience.faultinject import FaultInjectingClient, FaultPlan

    def client():
        return FaultInjectingClient(FaultPlan("raise_in_hook", 0))

    runtime, result = _assert_engine_differential(
        loop_image, RuntimeOptions.with_traces, client=client,
        guard_clients=True, trace_threshold=5,
    )
    assert runtime.stats.client_faults >= 1
    report = _chain_report(runtime)
    assert report["chains_built"] >= 1
    assert report["chains_invalidated"] >= 1
    assert result.output == loop_native.output


# -------------------------------------------- trace-shadowing chokepoint

def test_trace_creation_demotes_bb_chains(loop_image):
    """With chains promoting faster than traces build, the hot loop's
    bb chain is live when its head gets promoted and later shadowed by
    a trace — both funnel through chain invalidation."""
    runtime, result = _assert_engine_differential(
        loop_image, RuntimeOptions.with_traces, trace_threshold=20,
    )
    assert result.events["traces_built"] >= 1
    report = _chain_report(runtime)
    assert report["chains_built"] >= 1
    assert report["chains_invalidated"] >= 1
