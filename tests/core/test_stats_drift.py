"""Drift guards keeping RuntimeStats, its mutation sites, and the
drtrace event taxonomy in lockstep.

Three ways the counters can silently rot:

1. a counter is declared but nothing ever increments it (dead stat);
2. code grows a new ``stats.foo += 1`` site without declaring ``foo``
   (``__slots__`` turns this into an immediate AttributeError, tested
   here rather than trusted);
3. a counter increments without emitting the matching drtrace event,
   so replayed streams stop reconstructing the stats exactly
   (``STATS_EVENT_MAP`` must cover FIELDS one-to-one).
"""

import re
from pathlib import Path

import pytest

from repro.core.stats import RuntimeStats
from repro.observe.events import EVENT_KINDS, STATS_EVENT_MAP

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

_INCREMENT = re.compile(r"\bstats\.([a-z_]+)\s*\+=")


def _increment_sites():
    """field name -> set of source files with a ``stats.<field> +=``."""
    sites = {}
    for path in sorted(SRC.rglob("*.py")):
        for match in _INCREMENT.finditer(path.read_text()):
            sites.setdefault(match.group(1), set()).add(
                str(path.relative_to(SRC))
            )
    return sites


def test_every_field_has_an_increment_site():
    sites = _increment_sites()
    missing = [f for f in RuntimeStats.FIELDS if f not in sites]
    assert not missing, "declared but never incremented: %s" % missing


def test_every_increment_site_is_declared():
    sites = _increment_sites()
    undeclared = sorted(set(sites) - set(RuntimeStats.FIELDS))
    assert not undeclared, "incremented but not in FIELDS: %s" % undeclared


def test_slots_reject_undeclared_counters():
    stats = RuntimeStats()
    with pytest.raises(AttributeError):
        stats.not_a_counter = 1


def test_fields_have_no_duplicates_and_as_dict_is_complete():
    assert len(RuntimeStats.FIELDS) == len(set(RuntimeStats.FIELDS))
    stats = RuntimeStats()
    assert set(stats.as_dict()) == set(RuntimeStats.FIELDS)
    assert all(v == 0 for v in stats.as_dict().values())


def test_stats_event_map_covers_fields_exactly():
    assert set(STATS_EVENT_MAP) == set(RuntimeStats.FIELDS)
    for field, (kind, pairs) in STATS_EVENT_MAP.items():
        assert kind in EVENT_KINDS, field
        for key, _want in pairs:
            assert isinstance(key, str)
