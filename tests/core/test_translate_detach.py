"""drdetach: state translation, mid-fragment delivery, detach/re-attach.

The contract (paper Section 2's transparent exit + precise interrupts):

* every cached fragment carries a translation table mapping each
  execution step to a source application PC — the round trip holds for
  every step of every fragment and every chain super-table slot;
* under ``precise_interrupts``, alarms are delivered *mid-fragment*
  with latency bounded by the longest fused run (``max_bb_instrs``),
  and all three engines stay bit-identical;
* ``Runtime.detach()`` translates threads back to application state
  and continues natively with output identical to a never-attached
  run; the translated register state equals a pure interpreter run to
  the same instruction count;
* ``reattach_after`` resumes translated execution, and the event
  stream replays to the exact live stats.
"""

import pytest

from repro.api.client import Client
from repro.api.dr import (
    dr_detach,
    dr_insert_clean_call,
    dr_reattach,
    dr_register_event_tracer,
)
from repro.core import DynamoRIO, RuntimeOptions
from repro.loader import Process
from repro.machine.interp import Interpreter, run_native
from repro.minicc import compile_source
from repro.observe.events import EV_SIGNAL_DELIVERED, replay_stats

ENGINES = ("tuple", "closure", "chain")

SIGNAL_SRC = """
int ticks;

int on_alarm() {
    ticks++;
    if (ticks < 4) { alarm(150); }
    sigreturn;
    return 0;
}

int churn(int n) {
    int j; int acc;
    acc = n;
    for (j = 0; j < 25; j++) { acc = (acc * 3 + j) & 0xFFFF; }
    return acc;
}

int main() {
    int i;
    sighandler(&on_alarm);
    alarm(150);
    i = 0;
    while (ticks < 4) { i = churn(i); }
    print(i + ticks);
    return 0;
}
"""


@pytest.fixture(scope="module")
def signal_image():
    return compile_source(SIGNAL_SRC)


@pytest.fixture(scope="module")
def signal_native(signal_image):
    return run_native(Process(signal_image))


def _options(engine, **overrides):
    options = RuntimeOptions(
        closure_engine=engine != "tuple",
        chain_engine=engine == "chain",
        chain_threshold=3,
        precise_interrupts=True,
        trace_events=True,
        trace_buffer=None,
    )
    for key, value in overrides.items():
        setattr(options, key, value)
    return options


def _run(image, engine, client=None, **overrides):
    runtime = DynamoRIO(
        Process(image), options=_options(engine, **overrides), client=client
    )
    return runtime, runtime.run()


def _cached_fragments(runtime):
    seen = {}
    for thread in runtime.threads:
        for cache in (thread.bb_cache, thread.trace_cache):
            for fragment in cache.fragments.values():
                seen[id(fragment)] = fragment
    return list(seen.values())


def _valid_pcs(fragment):
    pcs = {fragment.tag}
    for instr in fragment.instrs_source:
        if not instr.is_meta and instr.raw_bits_valid():
            pc = instr.raw_pc
            if pc is not None:
                pcs.add(pc)
    return pcs


class DetachAtCall(Client):
    """Clean-calls every block; the k-th dynamic call detaches."""

    def __init__(self, at, reattach_after=None):
        super().__init__()
        self.at = at
        self.reattach_after = reattach_after
        self.calls = 0

    def _tick(self, context):
        self.calls += 1
        if self.calls == self.at:
            dr_detach(self, reattach_after=self.reattach_after)

    def basic_block(self, context, tag, ilist):
        first = next(iter(ilist), None)
        dr_insert_clean_call(ilist, first, self._tick)


class DetachAtBuild(Client):
    """Detaches from the k-th basic-block build hook."""

    def __init__(self, at, reattach_after=None):
        super().__init__()
        self.at = at
        self.reattach_after = reattach_after
        self.calls = 0

    def basic_block(self, context, tag, ilist):
        self.calls += 1
        if self.calls == self.at:
            dr_detach(self, reattach_after=self.reattach_after)


# ------------------------------------------------------ translation tables


@pytest.mark.parametrize("engine", ENGINES)
def test_translation_round_trip_every_fragment(loop_image, engine):
    runtime, _ = _run(loop_image, engine)
    fragments = _cached_fragments(runtime)
    assert fragments, "run left no cached fragments to check"
    for fragment in fragments:
        table = fragment.translation
        assert table is not None, hex(fragment.tag)
        assert len(table.pcs) == len(fragment.code)
        assert table.step_pcs, hex(fragment.tag)
        valid = _valid_pcs(fragment)
        for step in range(len(table.step_pcs)):
            pc = table.translate_step(step)
            assert isinstance(pc, int)
            assert pc in valid, (hex(fragment.tag), step, hex(pc))


def test_chain_super_table_translates_every_slot(loop_image):
    runtime, _ = _run(loop_image, "chain")
    records = {}
    for fragment in _cached_fragments(runtime):
        for record in fragment.chains_in:
            records[id(record)] = record
    assert records, "chain engine built no chains"
    for record in records.values():
        valid = {record.root.tag}
        for member in record.members:
            valid |= _valid_pcs(member)
        for index in range(len(record.table)):
            pc = runtime.chains.translate_step(record, index)
            assert isinstance(pc, int)
            assert pc in valid, (hex(record.root.tag), index, hex(pc))


# ------------------------------------------------- mid-fragment interrupts


@pytest.mark.parametrize("engine", ENGINES)
def test_signal_latency_bounded_and_mid_fragment(
    signal_image, signal_native, engine
):
    runtime, result = _run(signal_image, engine)
    assert result.output == signal_native.output
    assert result.exit_code == signal_native.exit_code

    deliveries = [
        ev for ev in runtime.observer.events() if ev.kind == EV_SIGNAL_DELIVERED
    ]
    assert deliveries
    bound = runtime.options.max_bb_instrs
    for ev in deliveries:
        assert ev.data["latency"] is not None
        assert 0 <= ev.data["latency"] <= bound
    assert any(ev.data.get("mid_fragment") for ev in deliveries)
    # The counter aggregates match the per-event latencies exactly.
    latencies = [ev.data["latency"] for ev in deliveries]
    assert runtime.counter.events["signal_latency"] == sum(latencies)
    assert runtime.counter.events["signal_latency_max"] == max(latencies)


def test_precise_mode_bit_identical_across_engines(signal_image):
    streams = []
    results = []
    for engine in ENGINES:
        runtime, result = _run(signal_image, engine)
        results.append(result)
        streams.append(
            [(e.kind, e.tag, e.data) for e in runtime.observer.events()]
        )
    base = results[0]
    for result in results[1:]:
        assert result.cycles == base.cycles
        assert result.instructions == base.instructions
        assert result.output == base.output
        assert result.exit_code == base.exit_code
    # Signal deliveries (including mid-fragment flags and latencies)
    # are identical event-for-event across engines.
    sigs = [
        [e for e in s if e[0] == EV_SIGNAL_DELIVERED] for s in streams
    ]
    assert sigs[0] == sigs[1] == sigs[2]


def test_polls_are_free_when_disabled(loop_image):
    baseline = DynamoRIO(
        Process(loop_image), options=RuntimeOptions.with_traces()
    ).run()
    precise = DynamoRIO(
        Process(loop_image),
        options=RuntimeOptions(precise_interrupts=True),
    ).run()
    assert precise.cycles == baseline.cycles
    assert precise.instructions == baseline.instructions
    assert precise.output == baseline.output
    assert precise.events == baseline.events


# -------------------------------------------------------- detach / native


@pytest.mark.parametrize("engine", ENGINES)
def test_detach_then_native_is_bit_identical(loop_image, loop_native, engine):
    runtime, result = _run(loop_image, engine, client=DetachAtCall(at=7))
    assert result.output == loop_native.output
    assert result.exit_code == loop_native.exit_code
    assert runtime.stats.detaches == 1
    assert runtime.stats.reattaches == 0
    assert runtime.detached


@pytest.mark.parametrize("engine", ENGINES)
def test_detach_with_pending_signal(signal_image, signal_native, engine):
    # Detach while alarms are armed: the pending deadline must carry
    # over and deliver during the native continuation.
    runtime, result = _run(signal_image, engine, client=DetachAtBuild(at=5))
    assert result.output == signal_native.output
    assert result.exit_code == signal_native.exit_code
    assert runtime.stats.detaches == 1
    assert runtime.system.signals_delivered >= 1


@pytest.mark.parametrize("engine", ENGINES)
def test_translated_state_matches_interpreter(loop_image, engine):
    runtime = DynamoRIO(
        Process(loop_image),
        options=_options(engine),
        client=DetachAtCall(at=9),
    )
    snapshot = {}
    original = runtime._perform_detach

    def spy():
        original()
        thread = runtime.threads[0]
        snapshot["state"] = thread.cpu.state_tuple()

    runtime._perform_detach = spy
    runtime.run()
    assert snapshot, "detach never happened"

    # The translated state must be application-consistent: a pure
    # interpreter run from the program start passes through exactly
    # that architectural state (registers, flags, pc) at some step.
    # (Instruction *counts* are not the join key — the runtime elides
    # instructions, e.g. stitched jumps, so its counter legitimately
    # differs from native at the same architectural point.)
    interp = Interpreter(Process(loop_image))
    main = interp.adopt_thread(interp.cpu)
    main.cpu.pc = interp.process.entry
    main.cpu.regs[4] = interp.process.initial_stack_pointer()
    interp._threads = [main]
    interp.system.spawn_thread = interp._spawn
    target = snapshot["state"]
    seen = False
    for _ in range(50000):
        if main.cpu.state_tuple() == target:
            seen = True
            break
        try:
            interp._run_quantum(main, 1, 10**9)
        except Exception:
            break
    assert seen, "translated state never occurs natively: %r" % (target,)


# ------------------------------------------------------------- re-attach


@pytest.mark.parametrize("engine", ENGINES)
def test_reattach_resumes_with_replay_exact_stats(
    loop_image, loop_native, engine
):
    runtime, result = _run(
        loop_image, engine, client=DetachAtCall(at=7, reattach_after=600)
    )
    assert result.output == loop_native.output
    assert result.exit_code == loop_native.exit_code
    assert runtime.stats.detaches == 1
    assert runtime.stats.reattaches == 1
    assert not runtime.detached
    # Fragments were rebuilt after the re-attach.
    assert _cached_fragments(runtime)
    assert replay_stats(runtime.observer.events()) == runtime.stats.as_dict()


@pytest.mark.parametrize("engine", ENGINES)
def test_dr_reattach_bounces_immediately(loop_image, loop_native, engine):
    class Bounce(DetachAtBuild):
        def basic_block(self, context, tag, ilist):
            self.calls += 1
            if self.calls == self.at:
                dr_detach(self)
                dr_reattach(self)

    runtime, result = _run(loop_image, engine, client=Bounce(at=4))
    assert result.output == loop_native.output
    assert result.exit_code == loop_native.exit_code
    assert runtime.stats.detaches == 1
    assert runtime.stats.reattaches == 1


def test_detach_unregisters_tracers_reattach_restores(
    loop_image, loop_native
):
    kinds = []

    class Tracing(DetachAtCall):
        def init(self):
            dr_register_event_tracer(self, lambda ev: kinds.append(ev.kind))

    runtime, result = _run(
        loop_image, "closure", client=Tracing(at=7, reattach_after=400)
    )
    assert result.output == loop_native.output
    # Tracers are unregistered *before* the detach event is emitted —
    # a detached client observes nothing, not even its own detach or
    # anything from the native window.  The first thing it sees again
    # is the re-attach.
    assert "detach" not in kinds
    assert "reattach" in kinds
    # But the observer itself recorded the detach.
    assert runtime.observer.counts["detach"] == 1
    # Re-attach restored the registration.
    assert len(runtime._client_tracers) == 1
    assert runtime._client_tracers[0] in runtime.observer.tracers


def test_detach_flushes_through_delete_chokepoint(loop_image, loop_native):
    deleted = []

    class Watch(DetachAtCall):
        def fragment_deleted(self, context, tag):
            deleted.append(tag)

    runtime, result = _run(loop_image, "closure", client=Watch(at=7))
    assert result.output == loop_native.output
    # Every cached fragment went through fragment_deleted; nothing is
    # left resident after a stay-native detach.
    assert deleted
    assert not _cached_fragments(runtime)
    assert runtime.observer.counts.get("fragment_delete")
