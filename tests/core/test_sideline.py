"""Sideline optimization (paper Section 3.4's future work, implemented).

With ``sideline_optimization`` enabled, trace construction and client
trace processing happen on a concurrent (idle-processor) thread: their
cycles leave the application's critical path and are tracked in the
``sideline_cycles`` event instead.  Fragment replacement still uses the
paper's low-overhead swap, so behavior is unchanged.
"""

from repro.clients import RedundantLoadRemoval
from repro.core import DynamoRIO, RuntimeOptions
from repro.loader import Process
from repro.machine.interp import run_native
from repro.workloads import load_benchmark


def _run(image, sideline, client=None):
    opts = RuntimeOptions.with_traces()
    opts.sideline_optimization = sideline
    return DynamoRIO(Process(image), options=opts, client=client).run()


def test_sideline_keeps_transparency():
    image = load_benchmark("vpr", 1)
    native = run_native(Process(image))
    result = _run(image, sideline=True, client=RedundantLoadRemoval())
    assert result.output == native.output
    assert result.exit_code == native.exit_code


def test_sideline_moves_cycles_off_critical_path():
    image = load_benchmark("vpr", 1)
    inline = _run(image, sideline=False, client=RedundantLoadRemoval())
    sideline = _run(image, sideline=True, client=RedundantLoadRemoval())
    assert sideline.events.get("sideline_cycles", 0) > 0
    # the moved cycles come straight off the application's total
    assert sideline.cycles + sideline.events["sideline_cycles"] == inline.cycles
    assert sideline.cycles < inline.cycles


def test_sideline_without_client_still_helps():
    image = load_benchmark("vpr", 1)
    inline = _run(image, sideline=False)
    sideline = _run(image, sideline=True)
    assert sideline.cycles < inline.cycles
    assert sideline.events["traces_built"] == inline.events["traces_built"]
