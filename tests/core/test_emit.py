"""Fragment lowering (emit) unit tests, including client-inserted
intra-fragment control flow (OP_LOCAL_BR) executed end to end."""

import pytest

from repro.api.client import Client
from repro.core import RuntimeOptions
from repro.core.emit import (
    EmitError,
    OP_COND_EXIT,
    OP_EXEC,
    OP_IND_EXIT,
    OP_JMP_EXIT,
    OP_LOCAL_BR,
    emit_fragment,
)
from repro.core.fragments import Fragment
from repro.ir.instr import Instr, LabelRef
from repro.ir.instrlist import InstrList
from repro.ir.create import (
    INSTR_CREATE_add,
    INSTR_CREATE_call,
    INSTR_CREATE_cmp,
    INSTR_CREATE_jmp,
    INSTR_CREATE_jz,
    INSTR_CREATE_mov,
    INSTR_CREATE_nop,
    INSTR_CREATE_ret,
    OPND_CREATE_INT32,
    OPND_CREATE_MEM,
    OPND_CREATE_PC,
    OPND_CREATE_REG,
)
from repro.isa.registers import Reg
from repro.machine.cost import CostModel
from repro.loader import Process

from tests.core.conftest import run_under


def emit(instrs, kind=Fragment.KIND_BB, tag=0x1000):
    return emit_fragment(tag, kind, InstrList(instrs), CostModel(), None)


class TestLoweringShapes:
    def test_straight_line(self):
        frag = emit(
            [
                INSTR_CREATE_mov(OPND_CREATE_REG(Reg.EAX), OPND_CREATE_INT32(1)),
                INSTR_CREATE_jmp(OPND_CREATE_PC(0x2000)),
            ]
        )
        kinds = [op[0] for op in frag.code]
        assert kinds == [OP_EXEC, OP_JMP_EXIT]
        assert len(frag.exits) == 1
        assert frag.exits[0].target_tag == 0x2000

    def test_cond_exit(self):
        frag = emit(
            [
                INSTR_CREATE_cmp(OPND_CREATE_REG(Reg.EAX), OPND_CREATE_INT32(0)),
                INSTR_CREATE_jz(OPND_CREATE_PC(0x3000)),
                INSTR_CREATE_jmp(OPND_CREATE_PC(0x4000)),
            ]
        )
        kinds = [op[0] for op in frag.code]
        assert kinds == [OP_EXEC, OP_COND_EXIT, OP_JMP_EXIT]
        assert len(frag.exits) == 2

    def test_ret_is_indirect_exit(self):
        frag = emit([INSTR_CREATE_ret()])
        assert frag.code[0][0] == OP_IND_EXIT
        assert frag.code[0][2] == "ret"
        assert frag.exits[0].kind == "indirect"

    def test_call_requires_return_address(self):
        call = INSTR_CREATE_call(OPND_CREATE_PC(0x100))  # level 4, no raw
        with pytest.raises(EmitError):
            emit([call])

    def test_call_with_note_return_addr(self):
        call = INSTR_CREATE_call(OPND_CREATE_PC(0x100))
        call.note = {"return_addr": 0x1234}
        frag = emit([call])
        assert frag.code[0][2] == 0x1234  # the pushed return address

    def test_local_branch_to_label(self):
        label = Instr.label()
        jz = INSTR_CREATE_jz(OPND_CREATE_PC(0))
        jz.set_target(LabelRef(label))
        frag = emit(
            [
                jz,
                INSTR_CREATE_nop(),
                label,
                INSTR_CREATE_jmp(OPND_CREATE_PC(0x9999)),
            ]
        )
        kinds = [op[0] for op in frag.code]
        assert kinds == [OP_LOCAL_BR, OP_EXEC, OP_JMP_EXIT]
        # the local branch targets op index 2 (labels lower to nothing)
        assert frag.code[0][2] == 2

    def test_label_outside_fragment_rejected(self):
        foreign = Instr.label()
        jz = INSTR_CREATE_jz(OPND_CREATE_PC(0))
        jz.set_target(LabelRef(foreign))
        with pytest.raises(EmitError):
            emit([jz, INSTR_CREATE_jmp(OPND_CREATE_PC(0x9999))])

    def test_size_includes_stub_space(self):
        frag = emit([INSTR_CREATE_jmp(OPND_CREATE_PC(0x2000))])
        from repro.core.emit import STUB_SIZE

        assert frag.size >= STUB_SIZE


class _BranchInsertingClient(Client):
    """Inserts a conditional skip over a memory bump into every block:

        cmp [flag], 0
        jz skip
        add [counter], 1
      skip:

    Exercises OP_LOCAL_BR inside real fragments end to end."""

    FLAG = 0x1000010  # runtime heap addresses
    COUNTER = 0x1000014

    def basic_block(self, context, tag, ilist):
        from repro.analysis import find_dead_flags_point

        ilist.expand_bundles()
        point = find_dead_flags_point(ilist)
        if point is None:
            return
        label = Instr.label()
        jz = INSTR_CREATE_jz(OPND_CREATE_PC(0))
        jz.set_target(LabelRef(label))
        seq = [
            INSTR_CREATE_cmp(
                OPND_CREATE_MEM(disp=self.FLAG), OPND_CREATE_INT32(0)
            ),
            jz,
            INSTR_CREATE_add(
                OPND_CREATE_MEM(disp=self.COUNTER), OPND_CREATE_INT32(1)
            ),
            label,
        ]
        for instr in seq:
            ilist.insert_before(point, instr)


def test_client_local_branches_execute(loop_image, loop_native):
    client = _BranchInsertingClient()
    dr, result = run_under(loop_image, client=client)
    assert result.output == loop_native.output  # flag=0: bumps all skipped
    assert dr.memory.read_u32(_BranchInsertingClient.COUNTER) == 0

    # now with the flag set: the bump path executes per block entry
    client2 = _BranchInsertingClient()
    dr2 = None
    from repro.core import DynamoRIO

    process = Process(loop_image)
    dr2 = DynamoRIO(process, options=RuntimeOptions.with_traces(), client=client2)
    dr2.memory.write_u32(_BranchInsertingClient.FLAG, 1)
    result2 = dr2.run()
    assert result2.output == loop_native.output
    assert dr2.memory.read_u32(_BranchInsertingClient.COUNTER) > 100
