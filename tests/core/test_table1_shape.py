"""The Table 1 ordering must hold: each mechanism strictly improves."""

from repro.core import RuntimeOptions

from tests.core.conftest import run_under


def _cycles(image, options):
    _dr, result = run_under(image, options)
    return result.cycles


def test_mechanism_ordering(loop_image, loop_native):
    emulation = _cycles(loop_image, RuntimeOptions.emulation())
    bb_cache = _cycles(loop_image, RuntimeOptions.bb_cache_only())
    direct = _cycles(loop_image, RuntimeOptions.with_direct_links())
    indirect = _cycles(loop_image, RuntimeOptions.with_indirect_links())
    traces = _cycles(loop_image, RuntimeOptions.with_traces())
    native = loop_native.cycles

    assert emulation > bb_cache > direct > indirect
    assert traces < direct
    assert native < traces  # some overhead always remains on small runs

    # Rough factors from the paper's Table 1.
    assert emulation / native > 50  # "several hundred" at scale
    assert bb_cache / native > 5
    assert indirect / native < 4


def test_bb_cache_counts_context_switch_per_block(loop_image):
    _dr, result = run_under(loop_image, RuntimeOptions.bb_cache_only())
    # Without links, every block exit is a context switch.
    assert result.events["context_switches"] > 1000


def test_direct_links_remove_context_switches(loop_image):
    _dr, unlinked = run_under(loop_image, RuntimeOptions.bb_cache_only())
    _dr, linked = run_under(loop_image, RuntimeOptions.with_direct_links())
    assert linked.events["context_switches"] < unlinked.events["context_switches"] / 4
    assert linked.events["direct_links"] > 0


def test_indirect_links_use_hashtable(indirect_image):
    _dr, result = run_under(indirect_image, RuntimeOptions.with_indirect_links())
    assert result.events["ibl_hits"] > 500
    assert result.events["context_switches"] < 100


def test_traces_inline_indirect_targets(loop_image):
    _dr, result = run_under(loop_image, RuntimeOptions.with_traces())
    assert result.events["traces_built"] > 0
    assert result.events["inline_check_hits"] > 0


def test_trace_threshold_controls_trace_creation(loop_image):
    opts = RuntimeOptions.with_traces()
    opts.trace_threshold = 10 ** 9  # unreachable
    _dr, result = run_under(loop_image, opts)
    assert result.events["traces_built"] == 0
