"""Transparency: execution under the runtime must be observationally
identical to native execution, in every configuration."""

import pytest

from repro.core import RuntimeOptions
from repro.loader import Process
from repro.machine.interp import run_native
from repro.minicc import compile_source

from tests.core.conftest import run_under


CONFIGS = [
    ("emulation", RuntimeOptions.emulation),
    ("bb_cache", RuntimeOptions.bb_cache_only),
    ("direct_links", RuntimeOptions.with_direct_links),
    ("indirect_links", RuntimeOptions.with_indirect_links),
    ("traces", RuntimeOptions.with_traces),
]


@pytest.mark.parametrize("name,options", CONFIGS, ids=[c[0] for c in CONFIGS])
def test_loop_program_transparent(name, options, loop_image, loop_native):
    _dr, result = run_under(loop_image, options())
    assert result.output == loop_native.output
    assert result.exit_code == loop_native.exit_code


@pytest.mark.parametrize("name,options", CONFIGS, ids=[c[0] for c in CONFIGS])
def test_indirect_program_transparent(name, options, indirect_image, indirect_native):
    _dr, result = run_under(indirect_image, options())
    assert result.output == indirect_native.output
    assert result.exit_code == indirect_native.exit_code


def test_recursive_program_transparent():
    src = """
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int main() { print(fib(15)); return 0; }
"""
    image = compile_source(src)
    native = run_native(Process(image))
    _dr, result = run_under(image)
    assert result.output == native.output
    assert int.from_bytes(result.output, "little") == 610


def test_switch_program_transparent():
    src = """
int main() {
    int i; int acc; int r;
    acc = 0;
    for (i = 0; i < 500; i++) {
        switch (i % 6) {
            case 0: r = 1; break;
            case 1: r = i; break;
            case 2: r = i * 2; break;
            case 3: r = i - 7; break;
            case 4: r = i ^ 3; break;
            default: r = 0;
        }
        acc = acc + r;
    }
    print(acc);
    return 0;
}
"""
    image = compile_source(src)
    native = run_native(Process(image))
    _dr, result = run_under(image)
    assert result.output == native.output


def test_memory_isolation_runtime_regions_disjoint(loop_image):
    dr, _result = run_under(loop_image)
    regions = {r.name: r for r in dr.memory.regions()}
    cache = regions["code_cache"]
    heap = regions["runtime_heap"]
    for name in ("app_code", "app_data", "app_stack", "app_heap"):
        assert not regions[name].overlaps(cache)
        assert not regions[name].overlaps(heap)


def test_fragments_allocated_inside_cache_region(loop_image):
    dr, _result = run_under(loop_image)
    thread = dr.current_thread
    cache_region = dr.memory.region("code_cache")
    for unit in (thread.bb_cache, thread.trace_cache):
        for fragment in unit.fragments.values():
            assert cache_region.contains(fragment.cache_addr)


def test_return_addresses_on_stack_are_application_addresses(loop_image):
    """Transparency of the stack: the runtime must push original
    application return addresses, never code-cache addresses."""
    dr, _result = run_under(loop_image)
    # If cache addresses had leaked onto the stack, the program would
    # have jumped into the cache region and crashed or diverged; output
    # equality is checked elsewhere, here we verify the cache region is
    # far from anything the app could see as a return address.
    code_region = dr.memory.region("app_code")
    cache_region = dr.memory.region("code_cache")
    assert cache_region.start > code_region.end
