"""Multithreading: thread-private caches (paper Section 2)."""

import pytest

from repro.api.client import Client
from repro.core import DynamoRIO, RuntimeOptions
from repro.loader import Process
from repro.machine.interp import Interpreter, run_native
from repro.minicc import compile_source


THREADED_SRC = """
int done1; int done2;
int part1; int part2;

int worker1() {
    int i;
    part1 = 0;
    for (i = 0; i < 1500; i++) { part1 = part1 + i; }
    done1 = 1;
    return 0;
}

int worker2() {
    int i;
    part2 = 0;
    for (i = 1; i < 1500; i++) { part2 = part2 + i * 2; }
    done2 = 1;
    return 0;
}

int main() {
    spawn(&worker1, 0x790000);
    spawn(&worker2, 0x7a0000);
    while (done1 == 0) { }
    while (done2 == 0) { }
    print(part1);
    print(part2);
    return 0;
}
"""

# Both workers run the *same* function: maximal code sharing, the case
# where thread-private caches duplicate fragments.
SHARED_CODE_SRC = """
int done[2];
int part[2];

int work(int idx) {
    int i; int acc;
    acc = 0;
    for (i = 0; i < 1200; i++) { acc = acc + i * (idx + 1); }
    part[idx] = acc;
    done[idx] = 1;
    return 0;
}

int worker0() { work(0); return 0; }
int worker1() { work(1); return 0; }

int main() {
    spawn(&worker0, 0x790000);
    spawn(&worker1, 0x7a0000);
    while (done[0] == 0) { }
    while (done[1] == 0) { }
    print(part[0] + part[1]);
    return 0;
}
"""


@pytest.fixture(scope="module")
def threaded_image():
    return compile_source(THREADED_SRC)


@pytest.fixture(scope="module")
def shared_code_image():
    return compile_source(SHARED_CODE_SRC)


class TestNativeThreads:
    def test_spawn_and_join(self, threaded_image):
        result = run_native(Process(threaded_image))
        values = [
            int.from_bytes(result.output[i : i + 4], "little")
            for i in range(0, len(result.output), 4)
        ]
        assert values == [sum(range(1500)), sum(i * 2 for i in range(1, 1500))]
        assert result.events["threads_spawned"] == 2
        assert result.events["thread_switches"] > 0

    def test_deterministic_schedule(self, threaded_image):
        a = run_native(Process(threaded_image))
        b = run_native(Process(threaded_image))
        assert a.cycles == b.cycles
        assert a.output == b.output

    def test_quantum_affects_interleaving_not_output(self, threaded_image):
        small = Interpreter(Process(threaded_image), quantum=10).run()
        large = Interpreter(Process(threaded_image), quantum=1000).run()
        assert small.output == large.output


class TestRuntimeThreads:
    def test_transparent(self, threaded_image):
        native = run_native(Process(threaded_image))
        result = DynamoRIO(
            Process(threaded_image), options=RuntimeOptions.with_traces()
        ).run()
        assert result.output == native.output
        assert result.exit_code == native.exit_code
        assert result.events["threads_spawned"] == 2

    def test_thread_hooks_fire(self, threaded_image):
        events = []

        class Watcher(Client):
            def thread_init(self, context):
                events.append(("init", context.id))

            def thread_exit(self, context):
                events.append(("exit", context.id))

        DynamoRIO(
            Process(threaded_image),
            options=RuntimeOptions.with_traces(),
            client=Watcher(),
        ).run()
        inits = [e for e in events if e[0] == "init"]
        exits = [e for e in events if e[0] == "exit"]
        assert len(inits) == 3  # main + 2 workers
        # worker threads exit via the trampoline; main exits the program
        assert len(exits) >= 2

    def test_thread_private_caches_duplicate_shared_code(self, shared_code_image):
        """When threads run the same function, private caches hold a
        copy per thread — the duplication the paper accepts in exchange
        for not synchronizing (Section 2)."""
        native = run_native(Process(shared_code_image))
        private = DynamoRIO(
            Process(shared_code_image), options=RuntimeOptions.with_traces()
        ).run()
        opts = RuntimeOptions.with_traces()
        opts.thread_private = False
        shared = DynamoRIO(Process(shared_code_image), options=opts).run()
        assert private.output == native.output
        assert shared.output == native.output
        # private mode builds the shared function once per thread
        assert private.events["bbs_built"] > shared.events["bbs_built"]
        # shared mode pays synchronization on every build
        assert shared.events.get("cache_sync", 0) > 0

    def test_each_thread_has_own_cache_region(self, threaded_image):
        dr = DynamoRIO(Process(threaded_image), options=RuntimeOptions.with_traces())
        dr.run()
        bases = [t.bb_cache.base for t in dr.threads]
        assert len(set(bases)) == len(bases)

    def test_spawned_thread_cpu_isolated(self, threaded_image):
        dr = DynamoRIO(Process(threaded_image), options=RuntimeOptions.with_traces())
        dr.run()
        cpus = {id(t.cpu) for t in dr.threads}
        assert len(cpus) == len(dr.threads)
