"""Trace construction tests: heads, stitching, inversion, inlining."""

from repro.core import RuntimeOptions
from repro.core.trace_builder import stitch_trace, TraceRecording
from repro.isa.opcodes import JCC_OPPOSITE, Opcode
from repro.isa.registers import Reg

from tests.core.conftest import run_under


def _traces(dr):
    return list(dr.current_thread.trace_cache.fragments.values())


class TestTraceCreation:
    def test_loop_head_becomes_trace(self, loop_image):
        opts = RuntimeOptions.with_traces()
        opts.trace_threshold = 5
        dr, result = run_under(loop_image, opts)
        assert result.events["traces_built"] >= 1
        # loop backedge target became a head and then a trace
        heads = [
            f
            for f in dr.current_thread.bb_cache.fragments.values()
            if f.is_trace_head
        ]
        assert heads

    def test_trace_shadows_head_bb(self, loop_image):
        opts = RuntimeOptions.with_traces()
        opts.trace_threshold = 5
        dr, _ = run_under(loop_image, opts)
        thread = dr.current_thread
        for trace in _traces(dr):
            assert thread.lookup_fragment(trace.tag) is trace

    def test_trace_heads_not_in_ibl(self, loop_image):
        opts = RuntimeOptions.with_traces()
        opts.trace_threshold = 10 ** 9  # heads exist but no traces built
        dr, _ = run_under(loop_image, opts)
        thread = dr.current_thread
        for fragment in thread.bb_cache.fragments.values():
            if fragment.is_trace_head:
                assert thread.ibl.lookup(fragment.tag) is not fragment

    def test_trace_heads_stay_unlinked(self, loop_image):
        opts = RuntimeOptions.with_traces()
        opts.trace_threshold = 10 ** 9
        dr, _ = run_under(loop_image, opts)
        for fragment in dr.current_thread.bb_cache.fragments.values():
            if fragment.is_trace_head:
                assert fragment.incoming == []

    def test_max_trace_bbs_respected(self, loop_image):
        opts = RuntimeOptions.with_traces()
        opts.trace_threshold = 5
        opts.max_trace_bbs = 2
        dr, result = run_under(loop_image, opts)
        assert result.events["traces_built"] >= 1
        # no stitched trace may span more than 2 blocks' worth of exits


class TestStitching:
    def _run_and_grab(self, image, threshold=5):
        opts = RuntimeOptions.with_traces()
        opts.trace_threshold = threshold
        dr, result = run_under(image, opts)
        return dr, result

    def test_traces_are_linear(self, loop_image):
        dr, _ = self._run_and_grab(loop_image)
        for trace in _traces(dr):
            # Linearity: no instruction targets a point inside the
            # trace except via LABEL refs (none created by stitching).
            il = trace.instrs_source
            assert il.labels_targeted() == set()

    def test_inverted_branches_stay_on_trace(self, loop_image):
        """Conditional branches in a trace exit on the *unlikely* side:
        executing the trace should mostly fall through (that is the
        point of trace layout)."""
        dr, result = self._run_and_grab(loop_image)
        taken_exits = 0
        cond_exits = 0
        for trace in _traces(dr):
            for instr in trace.instrs_source:
                if instr.level >= 2 and instr.is_cond_branch():
                    cond_exits += 1
        assert cond_exits > 0

    def test_direct_calls_inlined_in_traces(self):
        """A *forward* call (callee at a higher address) is followed by
        the default trace builder and inlined.  Backward calls end the
        trace — the very weakness the paper's Section 4.4 custom-trace
        client addresses."""
        from repro.minicc import compile_source

        src = """
int main() {
    int i; int acc;
    acc = 0;
    for (i = 0; i < 300; i++) { acc = acc + helper(i); }
    print(acc);
    return 0;
}
int helper(int x) { return x * 3 + 1; }
"""
        image = compile_source(src)
        dr, _ = self._run_and_grab(image)
        inlined_calls = 0
        for trace in _traces(dr):
            for instr in trace.instrs_source:
                if (
                    instr.level >= 2
                    and instr.opcode == Opcode.CALL
                    and isinstance(instr.note, dict)
                    and instr.note.get("inline")
                ):
                    inlined_calls += 1
        assert inlined_calls > 0

    def test_indirect_branches_get_inline_checks(self, loop_image):
        dr, result = self._run_and_grab(loop_image)
        inline_rets = 0
        for trace in _traces(dr):
            for instr in trace.instrs_source:
                if (
                    instr.level >= 2
                    and instr.is_indirect_branch()
                    and isinstance(instr.note, dict)
                    and instr.note.get("inline_target") is not None
                ):
                    inline_rets += 1
        assert inline_rets > 0
        assert result.events["inline_check_hits"] > 0

    def test_unconditional_jumps_elided(self, loop_image):
        """Stitched traces should contain no internal direct jmps to
        the next block (they are elided)."""
        dr, _ = self._run_and_grab(loop_image)
        for trace in _traces(dr):
            instrs = [
                i
                for i in trace.instrs_source
                if i.level >= 2 and not i.is_label()
            ]
            for idx, instr in enumerate(instrs[:-1]):
                if instr.opcode == Opcode.JMP and not instr.is_indirect_branch():
                    # any remaining internal jmp must exit the trace (its
                    # target is not the next instruction's address)
                    nxt = instrs[idx + 1]
                    if nxt.raw_bits_valid() and nxt.raw_pc is not None:
                        assert instr.target.pc != nxt.raw_pc


class TestJccOpposites:
    def test_stitch_inverts_taken_side(self):
        """Unit-level check of the inversion logic using a synthetic
        two-block recording."""
        from repro.core.bb_builder import build_basic_block
        from repro.core.emit import emit_fragment
        from repro.core.fragments import Fragment
        from repro.machine.cost import CostModel
        from repro.machine.memory import Memory
        from repro.asm import CodeBuilder

        memory = Memory(size=0x10000)
        # Block A: cmp; jz far — the trace follows the taken side.
        a = CodeBuilder(base=0x1000)
        a.cmp(Reg.EAX, 0)
        a.jz("far")
        for _ in range(60):
            a.nop()
        a.label("far")
        a.ret()
        code, labels = a.assemble()
        memory.write_bytes(0x1000, code)
        il_a = build_basic_block(memory, 0x1000)
        frag_a = emit_fragment(0x1000, Fragment.KIND_BB, il_a, CostModel(), None)
        il_b = build_basic_block(memory, labels["far"])
        frag_b = emit_fragment(
            labels["far"], Fragment.KIND_BB, il_b, CostModel(), None
        )
        rec = TraceRecording(0x1000)
        rec.append(frag_a)
        rec.append(frag_b)  # trace follows the TAKEN side
        trace = stitch_trace(rec)
        cond = [
            i
            for i in trace
            if i.level >= 2 and not i.is_label() and i.is_cond_branch()
        ]
        assert len(cond) == 1
        assert cond[0].opcode == JCC_OPPOSITE[Opcode.JZ]  # inverted
        # the exit target is the original fall-through, not the taken side
        assert cond[0].target.pc != labels["far"]
        assert cond[0].target.pc < labels["far"]
