"""Core-test fixtures re-exported from the top-level conftest."""

from tests.conftest import (  # noqa: F401
    INDIRECT_SRC,
    LOOP_SRC,
    run_under,
)
