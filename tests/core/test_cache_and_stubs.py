"""Code cache limits/eviction and custom exit stubs."""

import pytest

from repro.api.client import Client
from repro.api.dr import dr_insert_clean_call, dr_set_exit_stub
from repro.core import RuntimeOptions
from repro.core.code_cache import CacheFullError, CacheUnit
from repro.core.fragments import Fragment
from repro.ir.instrlist import InstrList
from repro.ir.create import INSTR_CREATE_mov, OPND_CREATE_MEM, OPND_CREATE_INT32

from tests.core.conftest import run_under


class TestCacheUnit:
    def _fragment(self, tag, size):
        f = Fragment(tag, Fragment.KIND_BB)
        f.size = size
        return f

    def test_bump_allocation(self):
        unit = CacheUnit("bb", base=0x1000)
        a = unit.allocate(self._fragment(1, 100))
        b = unit.allocate(self._fragment(2, 50))
        assert a == 0x1000 and b == 0x1064
        assert unit.used() == 150

    def test_limit_raises(self):
        unit = CacheUnit("bb", base=0, limit=100)
        unit.allocate(self._fragment(1, 80))
        with pytest.raises(CacheFullError):
            unit.allocate(self._fragment(2, 40))

    def test_flush_resets(self):
        unit = CacheUnit("bb", base=0, limit=100)
        unit.allocate(self._fragment(1, 80))
        dropped = unit.flush()
        assert len(dropped) == 1
        assert unit.used() == 0
        unit.allocate(self._fragment(2, 80))  # fits again


class TestCacheEviction:
    def test_tiny_cache_still_transparent(self, loop_image, loop_native):
        opts = RuntimeOptions.with_traces()
        opts.code_cache_limit = 700  # absurdly small: constant flushing
        _dr, result = run_under(loop_image, opts)
        assert result.output == loop_native.output
        assert result.events["cache_evictions"] > 0
        assert result.events["fragments_deleted"] > 0

    def test_eviction_traces_and_tiny_cache_stay_transparent(
        self, indirect_image, indirect_native
    ):
        """Constant eviction while trace recordings are active (tiny
        cache, hair-trigger threshold) must stay transparent on both
        engines."""
        for closure_engine in (True, False):
            opts = RuntimeOptions.with_traces()
            opts.code_cache_limit = 700
            opts.trace_threshold = 3  # recordings active most of the run
            opts.closure_engine = closure_engine
            _dr, result = run_under(indirect_image, opts)
            assert result.output == indirect_native.output
            assert result.exit_code == indirect_native.exit_code
            assert result.events["cache_evictions"] > 0
            assert result.events["traces_built"] > 0

    def test_eviction_flush_abandons_stale_recording(self, loop_image):
        """An eviction flush must squash an in-progress trace recording
        that references flushed blocks.  Finalizing it would stitch
        deleted fragments — and because the flush already unregistered
        them from the cache-consistency region map, a store into their
        source ranges during the rest of the recording could not squash
        it either, so the trace would capture stale code."""
        from repro.core import DynamoRIO
        from repro.core.trace_builder import TraceRecording
        from repro.loader import Process

        opts = RuntimeOptions.with_traces()
        opts.cache_consistency = True
        runtime = DynamoRIO(Process(loop_image), options=opts)
        thread = runtime.current_thread

        first = runtime._build_bb(loop_image.entry)
        recording = TraceRecording(first.tag)
        recording.append(first)
        thread.trace_in_progress = recording

        # Shrink the cache under its current occupancy so the next
        # build evicts, flushing `first` out from under the recording.
        thread.bb_cache.limit = thread.bb_cache.used()
        next_tag = first.source_spans[0][1]
        runtime._build_bb(next_tag)

        assert first.deleted
        assert runtime.stats.cache_evictions == 1
        assert thread.trace_in_progress is None

    def test_fragment_deleted_hook_fires(self, loop_image):
        deleted = []

        class Watcher(Client):
            def fragment_deleted(self, context, tag):
                deleted.append(tag)

        opts = RuntimeOptions.with_traces()
        opts.code_cache_limit = 700
        _dr, result = run_under(loop_image, opts, client=Watcher())
        assert deleted
        assert len(deleted) == result.events["fragments_deleted"]


class TestCustomExitStubs:
    def test_stub_code_runs_on_unlinked_exit(self, loop_image, loop_native):
        """Client stub code writes a marker to runtime memory whenever an
        exit goes through its stub."""
        marker_addr = 0x1400000 - 0x10000  # inside runtime heap... use heap

        class StubClient(Client):
            def __init__(self):
                super().__init__()
                self.stubs_attached = 0

            def basic_block(self, context, tag, ilist):
                last = ilist.last()
                if last is not None and last.level >= 2 and last.is_cti():
                    stub = InstrList()
                    stub.append(
                        INSTR_CREATE_mov(
                            OPND_CREATE_MEM(disp=0x1000000),  # runtime heap
                            OPND_CREATE_INT32(0xBEEF),
                        )
                    )
                    dr_set_exit_stub(last, stub)
                    self.stubs_attached += 1

        client = StubClient()
        opts = RuntimeOptions.bb_cache_only()  # everything unlinked
        dr, result = run_under(loop_image, opts, client=client)
        assert client.stubs_attached > 0
        assert result.output == loop_native.output
        assert dr.memory.read_u32(0x1000000) == 0xBEEF

    def test_always_stub_runs_even_when_linked(self, loop_image, loop_native):
        hits = []

        class CountingStub(Client):
            def basic_block(self, context, tag, ilist):
                last = ilist.last()
                if last is not None and last.level >= 2 and last.is_cti():
                    stub = InstrList()
                    dr_insert_clean_call(stub, None, lambda ctx: hits.append(1))
                    dr_set_exit_stub(last, stub, always=True)

        opts = RuntimeOptions.with_direct_links()
        _dr, result = run_under(loop_image, opts, client=CountingStub())
        assert result.output == loop_native.output
        # linked exits still pass through the stub
        assert len(hits) > result.events["context_switches"]
