"""Code cache limits/eviction and custom exit stubs."""

import pytest

from repro.api.client import Client
from repro.api.dr import dr_insert_clean_call, dr_set_exit_stub
from repro.core import RuntimeOptions
from repro.core.code_cache import CacheFullError, CacheUnit
from repro.core.fragments import Fragment
from repro.ir.instrlist import InstrList
from repro.ir.create import INSTR_CREATE_mov, OPND_CREATE_MEM, OPND_CREATE_INT32

from tests.core.conftest import run_under


class TestCacheUnit:
    def _fragment(self, tag, size):
        f = Fragment(tag, Fragment.KIND_BB)
        f.size = size
        return f

    def test_bump_allocation(self):
        unit = CacheUnit("bb", base=0x1000)
        a = unit.allocate(self._fragment(1, 100))
        b = unit.allocate(self._fragment(2, 50))
        assert a == 0x1000 and b == 0x1064
        assert unit.used() == 150

    def test_limit_raises(self):
        unit = CacheUnit("bb", base=0, limit=100)
        unit.allocate(self._fragment(1, 80))
        with pytest.raises(CacheFullError):
            unit.allocate(self._fragment(2, 40))

    def test_flush_resets(self):
        unit = CacheUnit("bb", base=0, limit=100)
        unit.allocate(self._fragment(1, 80))
        dropped = unit.flush()
        assert len(dropped) == 1
        assert unit.used() == 0
        unit.allocate(self._fragment(2, 80))  # fits again


class TestCacheUnitFifo:
    """Free-list allocator mechanics under ``policy="fifo"``."""

    def _fragment(self, tag, size):
        f = Fragment(tag, Fragment.KIND_BB)
        f.size = size
        return f

    def _unit(self, limit=None):
        return CacheUnit("bb", base=0x1000, limit=limit, policy="fifo")

    def test_hole_reuse_first_fit(self):
        unit = self._unit()
        a, b, c = (self._fragment(t, 100) for t in (1, 2, 3))
        unit.allocate(a), unit.allocate(b), unit.allocate(c)
        unit.remove(b)
        assert unit.used() == 200
        d = self._fragment(4, 60)
        assert unit.allocate(d) == b.cache_addr  # front of b's hole
        e = self._fragment(5, 40)
        assert unit.allocate(e) == b.cache_addr + 60  # rest of the hole
        assert unit.used() == 300 and unit.free_bytes == 0

    def test_holes_coalesce(self):
        unit = self._unit()
        frags = [self._fragment(t, 50) for t in (1, 2, 3, 4)]
        for f in frags:
            unit.allocate(f)
        unit.remove(frags[1])
        unit.remove(frags[2])  # adjacent: must merge into one hole
        assert unit.fragmentation() == (100, 1, 100)
        big = self._fragment(5, 100)
        assert unit.allocate(big) == frags[1].cache_addr

    def test_trailing_hole_retracts_cursor(self):
        unit = self._unit(limit=150)
        a = self._fragment(1, 100)
        b = self._fragment(2, 50)
        unit.allocate(a), unit.allocate(b)
        unit.remove(b)
        # The freed tail goes back to bump allocation, so a fragment
        # bigger than the hole still fits within the limit.
        assert unit.free_bytes == 0 and unit.span() == 100
        unit.allocate(self._fragment(3, 50))

    def test_next_eviction_walks_allocation_order(self):
        unit = self._unit()
        a, b, c = (self._fragment(t, 10) for t in (1, 2, 3))
        unit.allocate(a), unit.allocate(b), unit.allocate(c)
        assert unit.next_eviction() is a
        unit.remove(a)
        assert unit.next_eviction() is b  # stale entry skipped
        # A replaced same-tag fragment is stale too: only the live
        # instance is ever offered for eviction.
        b2 = self._fragment(2, 10)
        unit.allocate(b2)
        unit.remove(b)  # no-op: b is no longer the resident for tag 2
        assert unit.next_eviction() is c
        unit.remove(c)
        assert unit.next_eviction() is b2
        unit.remove(b2)
        assert unit.next_eviction() is None

    def test_oversized_into_nonempty_raises(self):
        """The fragment-larger-than-limit path must go through eviction:
        a non-empty unit rejects it instead of silently overcommitting
        via the empty-cache special case."""
        unit = self._unit(limit=100)
        unit.allocate(self._fragment(1, 40))
        with pytest.raises(CacheFullError):
            unit.allocate(self._fragment(2, 150))
        # Only once eviction has drained the unit does it become
        # placeable — as the sole resident, at the unit base.
        victim = unit.next_eviction()
        unit.record_eviction(victim)
        unit.remove(victim)
        big = self._fragment(2, 150)
        assert unit.allocate(big) == unit.base
        assert list(unit.fragments.values()) == [big]

    def test_adaptive_resize_epoch(self):
        unit = CacheUnit(
            "bb", base=0, limit=100, policy="fifo",
            adaptive=True, regen_threshold=0.5, grow_factor=2.0,
        )
        from repro.core.code_cache import RESIZE_EPOCH

        # An epoch of evictions where every evicted tag regenerates:
        # ratio 1.0 > 0.5, the unit must grow by the factor.
        for i in range(RESIZE_EPOCH):
            f = self._fragment(i, 10)
            unit.allocate(f)
            unit.record_eviction(f)
            unit.remove(f)
            g = self._fragment(i, 10)  # the tag comes back: regenerated
            unit.allocate(g)
            unit.remove(g)
        assert unit.check_resize() == (100, 200)
        assert unit.limit == 200 and unit.resizes == 1
        # A cold epoch (no regeneration) must not grow the unit.
        for i in range(100, 100 + RESIZE_EPOCH):
            f = self._fragment(i, 10)
            unit.allocate(f)
            unit.record_eviction(f)
            unit.remove(f)
        assert unit.check_resize() is None
        assert unit.limit == 200


class TestCacheEviction:
    def test_tiny_cache_still_transparent(self, loop_image, loop_native):
        opts = RuntimeOptions.with_traces()
        opts.code_cache_limit = 700  # absurdly small: constant flushing
        _dr, result = run_under(loop_image, opts)
        assert result.output == loop_native.output
        assert result.events["cache_evictions"] > 0
        assert result.events["fragments_deleted"] > 0

    def test_eviction_traces_and_tiny_cache_stay_transparent(
        self, indirect_image, indirect_native
    ):
        """Constant eviction while trace recordings are active (tiny
        cache, hair-trigger threshold) must stay transparent on both
        engines."""
        for closure_engine in (True, False):
            opts = RuntimeOptions.with_traces()
            opts.code_cache_limit = 700
            opts.trace_threshold = 3  # recordings active most of the run
            opts.closure_engine = closure_engine
            _dr, result = run_under(indirect_image, opts)
            assert result.output == indirect_native.output
            assert result.exit_code == indirect_native.exit_code
            assert result.events["cache_evictions"] > 0
            assert result.events["traces_built"] > 0

    def test_eviction_flush_abandons_stale_recording(self, loop_image):
        """An eviction flush must squash an in-progress trace recording
        that references flushed blocks.  Finalizing it would stitch
        deleted fragments — and because the flush already unregistered
        them from the cache-consistency region map, a store into their
        source ranges during the rest of the recording could not squash
        it either, so the trace would capture stale code."""
        from repro.core import DynamoRIO
        from repro.core.trace_builder import TraceRecording
        from repro.loader import Process

        opts = RuntimeOptions.with_traces()
        opts.cache_consistency = True
        runtime = DynamoRIO(Process(loop_image), options=opts)
        thread = runtime.current_thread

        first = runtime._build_bb(loop_image.entry)
        recording = TraceRecording(first.tag)
        recording.append(first)
        thread.trace_in_progress = recording

        # Shrink the cache under its current occupancy so the next
        # build evicts, flushing `first` out from under the recording.
        thread.bb_cache.limit = thread.bb_cache.used()
        next_tag = first.source_spans[0][1]
        runtime._build_bb(next_tag)

        assert first.deleted
        assert runtime.stats.cache_evictions == 1
        assert thread.trace_in_progress is None

    def test_oversized_fragment_drains_unit_through_chokepoint(
        self, loop_image
    ):
        """Placing a fragment bigger than the unit limit into a
        non-empty fifo unit must evict *every* resident through the
        delete chokepoint, then accept the oversized fragment as the
        sole resident at the unit base (regression: the old code
        rejected it forever because `used() + size > limit` held even
        after evictions)."""
        from repro.core import DynamoRIO
        from repro.loader import Process

        opts = RuntimeOptions.with_traces()
        opts.cache_evict_policy = "fifo"
        opts.cache_consistency = True  # populates source_spans
        runtime = DynamoRIO(Process(loop_image), options=opts)
        thread = runtime.current_thread
        cache = thread.bb_cache

        first = runtime._build_bb(loop_image.entry)
        second = runtime._build_bb(first.source_spans[0][1])
        cache.limit = cache.used()  # exactly full

        big = Fragment(0xB16, Fragment.KIND_BB)
        big.size = cache.limit + 1  # larger than the whole unit
        runtime._place(cache, big, thread=thread)

        assert first.deleted and second.deleted
        assert runtime.stats.cache_fragment_evictions == 2
        assert list(cache.fragments.values()) == [big]
        assert big.cache_addr == cache.base
        # The victims went through the real chokepoint: deregistered
        # from the cache-consistency map and no longer resident.
        assert thread.lookup_fragment(first.tag) is None
        assert thread.lookup_fragment(second.tag) is None

    def test_block_larger_than_limit_end_to_end(self):
        """A program whose straight-line block exceeds the per-unit
        limit still runs transparently under fifo on every engine: the
        eviction loop drains the unit and the empty-cache rule accepts
        the block as sole resident."""
        from repro.core import DynamoRIO
        from repro.loader import Process
        from repro.machine.interp import run_native
        from repro.minicc import compile_source

        source = (
            "int acc;\n"
            "int main() {\n"
            "    int i;\n"
            "    acc = 0;\n"
            "    for (i = 0; i < 40; i++) { acc = acc + i; }\n"
            + "    acc = acc + 1;\n" * 120
            + "    print(acc);\n"
            "    return 0;\n"
            "}\n"
        )
        image = compile_source(source)
        native = run_native(Process(image))

        # Probe the biggest fragment, then pin the per-unit limit just
        # below it so the straight-line block cannot fit a full unit.
        probe = DynamoRIO(Process(image), options=RuntimeOptions())
        probe.run()
        biggest = max(
            f.size
            for f in probe.current_thread.bb_cache.fragments.values()
        )

        reference = None
        for engine in ("tuple", "closure", "chain"):
            opts = RuntimeOptions.with_traces()
            opts.code_cache_limit = 2 * (biggest - 1)
            opts.cache_evict_policy = "fifo"
            opts.closure_engine = engine in ("closure", "chain")
            opts.chain_engine = engine == "chain"
            _dr, result = run_under(image, opts)
            assert result.output == native.output
            assert result.exit_code == native.exit_code
            assert result.events["cache_fragment_evictions"] > 0
            key = (result.cycles, result.instructions, result.output)
            if reference is None:
                reference = key
            assert key == reference

    def test_fragment_deleted_hook_fires(self, loop_image):
        deleted = []

        class Watcher(Client):
            def fragment_deleted(self, context, tag):
                deleted.append(tag)

        opts = RuntimeOptions.with_traces()
        opts.code_cache_limit = 700
        _dr, result = run_under(loop_image, opts, client=Watcher())
        assert deleted
        assert len(deleted) == result.events["fragments_deleted"]


class TestCustomExitStubs:
    def test_stub_code_runs_on_unlinked_exit(self, loop_image, loop_native):
        """Client stub code writes a marker to runtime memory whenever an
        exit goes through its stub."""
        marker_addr = 0x1400000 - 0x10000  # inside runtime heap... use heap

        class StubClient(Client):
            def __init__(self):
                super().__init__()
                self.stubs_attached = 0

            def basic_block(self, context, tag, ilist):
                last = ilist.last()
                if last is not None and last.level >= 2 and last.is_cti():
                    stub = InstrList()
                    stub.append(
                        INSTR_CREATE_mov(
                            OPND_CREATE_MEM(disp=0x1000000),  # runtime heap
                            OPND_CREATE_INT32(0xBEEF),
                        )
                    )
                    dr_set_exit_stub(last, stub)
                    self.stubs_attached += 1

        client = StubClient()
        opts = RuntimeOptions.bb_cache_only()  # everything unlinked
        dr, result = run_under(loop_image, opts, client=client)
        assert client.stubs_attached > 0
        assert result.output == loop_native.output
        assert dr.memory.read_u32(0x1000000) == 0xBEEF

    def test_always_stub_runs_even_when_linked(self, loop_image, loop_native):
        hits = []

        class CountingStub(Client):
            def basic_block(self, context, tag, ilist):
                last = ilist.last()
                if last is not None and last.level >= 2 and last.is_cti():
                    stub = InstrList()
                    dr_insert_clean_call(stub, None, lambda ctx: hits.append(1))
                    dr_set_exit_stub(last, stub, always=True)

        opts = RuntimeOptions.with_direct_links()
        _dr, result = run_under(loop_image, opts, client=CountingStub())
        assert result.output == loop_native.output
        # linked exits still pass through the stub
        assert len(hits) > result.events["context_switches"]
