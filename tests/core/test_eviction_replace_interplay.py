"""Regression: cache eviction racing fragment replacement.

An absurdly small code cache forces unit flushes (core/runtime.py
``_place``) while a client keeps calling ``dr_replace_fragment`` from
clean calls *inside* the fragments being replaced.  The hazard under
test: a flush deletes a replaced fragment (or the replacement itself),
and a stale exit stub or IBL entry funnels execution into freed code.
Transparent output proves no stale-stub execution; with tracing on,
the recorded ``fragment_delete`` / ``cache_eviction`` events must
reconstruct the live counters exactly.
"""

import pytest

from repro.api.client import Client
from repro.api.dr import (
    dr_decode_fragment,
    dr_insert_clean_call,
    dr_replace_fragment,
)
from repro.core import RuntimeOptions
from repro.ir.create import INSTR_CREATE_nop
from repro.observe import replay_stats

from tests.core.conftest import run_under


class _ChurningClient(Client):
    """Replaces every fragment it sees, again after each flush.

    ``fragment_deleted`` clears the per-tag marker, so when an evicted
    tag is rebuilt the rebuild gets replaced too — replacement and
    eviction keep interleaving for the whole run.
    """

    def __init__(self):
        super().__init__()
        self.replaced = set()
        self.replacements = 0
        self.deletions = 0

    def _hook(self, context, tag, ilist):
        def replace_self(ctx, _tag=tag):
            if _tag in self.replaced:
                return
            il = dr_decode_fragment(ctx, _tag)
            if il is None:
                return
            il.prepend(INSTR_CREATE_nop())
            if dr_replace_fragment(ctx, _tag, il):
                self.replaced.add(_tag)
                self.replacements += 1

        dr_insert_clean_call(ilist, ilist.first(), replace_self)

    basic_block = _hook
    trace = _hook

    def fragment_deleted(self, context, tag):
        self.deletions += 1
        self.replaced.discard(tag)


def _churn_options(closure_engine, policy="flush"):
    opts = RuntimeOptions.with_traces()
    opts.code_cache_limit = 700  # constant pressure (test_cache_and_stubs)
    opts.cache_evict_policy = policy
    opts.trace_threshold = 5
    opts.closure_engine = closure_engine
    opts.trace_events = True
    opts.trace_buffer = None  # unbounded: replay must be exact
    return opts


@pytest.mark.parametrize("policy", ["flush", "fifo"])
@pytest.mark.parametrize("closure_engine", [True, False])
def test_eviction_during_replacement_stays_transparent(
    loop_image, loop_native, closure_engine, policy
):
    client = _ChurningClient()
    dr, result = run_under(
        loop_image, _churn_options(closure_engine, policy), client=client
    )

    # The interplay actually happened: fragments were replaced AND the
    # cache evicted fragments (including replaced ones) mid-run.
    assert client.replacements >= 1
    assert result.events["fragments_replaced"] == client.replacements
    assert result.events["cache_evictions"] >= 1
    if policy == "fifo":
        # Per-victim accounting only exists under single-fragment
        # eviction; a flush drops whole units without it.
        assert result.events["cache_fragment_evictions"] >= 1
    assert result.events["fragments_deleted"] >= 1
    assert client.deletions == result.events["fragments_deleted"]
    # Tags were re-replaced after eviction rebuilt them.
    assert client.replacements > len(client.replaced)

    # No stale-stub execution: the app ran to completion with output
    # identical to native.
    assert result.exit_code == loop_native.exit_code
    assert result.output == loop_native.output

    # The event stream accounts for every deletion/eviction the stats
    # saw — nothing double-counted, nothing missed.
    observer = dr.observer
    assert observer.dropped == 0
    assert replay_stats(observer.events()) == dr.stats.as_dict()


@pytest.mark.parametrize("policy", ["flush", "fifo"])
def test_no_stale_fragments_remain(loop_image, policy):
    """After the run, every live cache entry is a non-deleted fragment
    and every linked stub points at a live fragment."""
    client = _ChurningClient()
    dr, _ = run_under(
        loop_image, _churn_options(True, policy), client=client
    )
    thread = dr.current_thread
    for cache in (thread.bb_cache, thread.trace_cache):
        for fragment in cache.fragments.values():
            assert not fragment.deleted
            for stub in fragment.exits:
                if stub.linked_to is not None:
                    assert not stub.linked_to.deleted


@pytest.mark.parametrize("closure_engine", [True, False])
def test_fifo_eviction_trace_heads_and_replacement(
    indirect_image, indirect_native, closure_engine
):
    """Single-fragment eviction interleaved with trace-head promotion
    and in-fragment replacement on the indirect workload: hair-trigger
    tracing means victims are routinely trace heads or trace members,
    and the churning client re-replaces every rebuild."""
    client = _ChurningClient()
    opts = _churn_options(closure_engine, policy="fifo")
    opts.trace_threshold = 3  # promotions throughout the run
    dr, result = run_under(indirect_image, opts, client=client)

    assert result.events["traces_built"] >= 1
    assert result.events["trace_head_counts"] >= 1
    assert result.events["cache_fragment_evictions"] >= 1
    assert client.replacements >= 1
    assert result.events["fragments_replaced"] == client.replacements

    assert result.exit_code == indirect_native.exit_code
    assert result.output == indirect_native.output

    observer = dr.observer
    assert observer.dropped == 0
    assert replay_stats(observer.events()) == dr.stats.as_dict()


def test_fifo_eviction_squashes_stale_recording(loop_image):
    """A FIFO eviction that deletes a block referenced by an
    in-progress trace recording must abandon the recording — the fifo
    analogue of the whole-flush squash (test_cache_and_stubs)."""
    from repro.core import DynamoRIO
    from repro.core.trace_builder import TraceRecording
    from repro.loader import Process

    opts = RuntimeOptions.with_traces()
    opts.cache_evict_policy = "fifo"
    opts.cache_consistency = True
    runtime = DynamoRIO(Process(loop_image), options=opts)
    thread = runtime.current_thread

    first = runtime._build_bb(loop_image.entry)
    recording = TraceRecording(first.tag)
    recording.append(first)
    thread.trace_in_progress = recording

    # Shrink the unit under its occupancy: the next build must evict
    # `first` (the FIFO front) out from under the recording.
    thread.bb_cache.limit = thread.bb_cache.used()
    runtime._build_bb(first.source_spans[0][1])

    assert first.deleted
    assert runtime.stats.cache_fragment_evictions >= 1
    assert thread.trace_in_progress is None
