"""Engine determinism regression: tuple ↔ closure ↔ chain.

The compiled engines (fragment step tables in ``repro.core.closures``;
chain super-tables in ``repro.core.chains``; the interpreter's
pre-bound decode closures) must be *bit-identical* to the
tuple-dispatch reference path on every simulated observable: cycles,
instruction counts, program output, exit code, and the full event/stat
dictionaries.  Only host wall-clock time may differ.

Each sample client exercises a different lowered-op surface: redundant
load removal rewrites straight-line exec ops, strength reduction changes
instruction costs, indirect-branch dispatch emits OP_IND_CHECK chains
with profilers, and custom traces reshape fragment boundaries.  Signals
and threads cover the alarm/safe-point and scheduler paths.

The chain engine runs with ``chain_threshold=1`` so even the short test
workloads promote chains immediately; a dedicated test asserts chains
really get built (a chain run that never chains would vacuously pass
the differential).
"""

import pytest

from repro.clients import (
    CustomTraces,
    IndirectBranchDispatch,
    RedundantLoadRemoval,
    StrengthReduction,
)
from repro.core import DynamoRIO, RuntimeOptions
from repro.loader import Process
from repro.machine.cost import CostModel
from repro.machine.interp import Interpreter
from repro.minicc import compile_source

from tests.conftest import INDIRECT_SRC, LOOP_SRC

SIGNAL_SRC = """
int ticks;

int on_alarm() {
    ticks++;
    if (ticks < 3) { alarm(200); }
    sigreturn;
    return 0;
}

int main() {
    int i;
    sighandler(&on_alarm);
    alarm(200);
    i = 0;
    while (ticks < 3) { i++; }
    print(ticks);
    return 0;
}
"""

CLIENTS = {
    "none": lambda: None,
    "redundant_load": RedundantLoadRemoval,
    "inc2add": StrengthReduction,
    "indirect_dispatch": IndirectBranchDispatch,
    "custom_traces": CustomTraces,
}

SOURCES = {
    "loop": LOOP_SRC,
    "indirect": INDIRECT_SRC,
    "signals": SIGNAL_SRC,
}

# The reference engine plus both compiled tiers; every differential in
# this module runs all three and asserts pairwise identity.
ENGINES = ("tuple", "closure", "chain")


def _apply_engine(options, engine):
    options.closure_engine = engine in ("closure", "chain")
    options.chain_engine = engine == "chain"
    if engine == "chain":
        # Promote at the first pass so the short test workloads
        # actually exercise stitched tables.
        options.chain_threshold = 1
    return options


@pytest.fixture(scope="module")
def images():
    return {name: compile_source(src) for name, src in SOURCES.items()}


def _make_runtime(image, client_factory, engine, factory=None):
    options = _apply_engine(
        (factory or RuntimeOptions.with_traces)(), engine
    )
    return DynamoRIO(
        Process(image),
        options=options,
        client=client_factory(),
        cost_model=CostModel(),
    )


def _run_runtime(image, client_factory, engine):
    return _make_runtime(image, client_factory, engine).run()


def _assert_identical(a, b):
    assert a.cycles == b.cycles
    assert a.instructions == b.instructions
    assert a.output == b.output
    assert a.exit_code == b.exit_code
    assert a.events == b.events


def _assert_all_identical(results):
    reference = results[0]
    for other in results[1:]:
        _assert_identical(reference, other)


@pytest.mark.parametrize("client_name", sorted(CLIENTS))
@pytest.mark.parametrize("source_name", sorted(SOURCES))
def test_runtime_engines_bit_identical(images, source_name, client_name):
    image = images[source_name]
    factory = CLIENTS[client_name]
    _assert_all_identical(
        [_run_runtime(image, factory, engine) for engine in ENGINES]
    )


def test_chain_runs_actually_chain(images):
    """The three-engine differentials are only meaningful if the chain
    runs execute stitched tables; assert chains get built and stay
    live on the plain loop workload."""
    runtime = _make_runtime(images["loop"], lambda: None, "chain")
    runtime.run()
    report = runtime.chains.report()
    assert report["chains_built"] > 0
    assert report["chains_live"] > 0


@pytest.mark.parametrize("mode", ["native", "emulation"])
@pytest.mark.parametrize("source_name", sorted(SOURCES))
def test_interpreter_engines_bit_identical(images, source_name, mode):
    image = images[source_name]
    results = [
        Interpreter(
            Process(image), CostModel(), mode=mode, engine=engine
        ).run()
        for engine in ("closure", "tuple")
    ]
    _assert_identical(results[0], results[1])


def test_threaded_workload_engines_bit_identical():
    src = """
int done;
int total;

int worker() {
    int i;
    for (i = 0; i < 40; i++) { total = total + i; }
    done = done + 1;
    return 0;
}

int main() {
    done = 0;
    total = 0;
    spawn(&worker, 0x790000);
    while (done < 1) { }
    print(total);
    return 0;
}
"""
    image = compile_source(src)
    _assert_all_identical(
        [_run_runtime(image, lambda: None, engine) for engine in ENGINES]
    )


def test_ablation_rows_bit_identical(images):
    """Every Table-1 configuration row agrees across all engines."""
    image = images["loop"]
    for factory in (
        RuntimeOptions.bb_cache_only,
        RuntimeOptions.with_direct_links,
        RuntimeOptions.with_indirect_links,
        RuntimeOptions.with_traces,
    ):
        _assert_all_identical(
            [
                _make_runtime(image, lambda: None, engine, factory).run()
                for engine in ENGINES
            ]
        )


# --------------------------------------------------- drtrace differential

def _run_traced(image, client_factory, engine):
    """Run with drtrace on (unbounded ring) and return (runtime, result)."""
    options = _apply_engine(RuntimeOptions.with_traces(), engine)
    options.trace_events = True
    options.trace_buffer = None
    runtime = DynamoRIO(
        Process(image),
        options=options,
        client=client_factory(),
        cost_model=CostModel(),
    )
    return runtime, runtime.run()


def _stream(runtime):
    """The recorded events minus the seq numbers (compared across runs)."""
    return [(e.kind, e.tag, e.data) for e in runtime.observer.events()]


def _check_traced_group(image, factory):
    from repro.observe import replay_stats

    runs = [_run_traced(image, factory, engine) for engine in ENGINES]
    _assert_all_identical([res for _, res in runs])

    # Replaying the event stream reconstructs every RuntimeStats counter
    # exactly, for all engines.
    for rt, _ in runs:
        assert rt.observer.dropped == 0
        assert replay_stats(rt.observer.events()) == rt.stats.as_dict()

    # The streams themselves are identical event by event.
    streams = [_stream(rt) for rt, _ in runs]
    for other in streams[1:]:
        assert streams[0] == other

    # Tracing must not perturb the simulated machine: tracing-off runs
    # of the compiled engines land on the same cycles/output.
    reference = runs[0][1]
    for engine in ("closure", "chain"):
        plain = _run_runtime(image, factory, engine)
        assert plain.cycles == reference.cycles
        assert plain.instructions == reference.instructions
        assert plain.output == reference.output


@pytest.mark.parametrize("client_name", ["none", "indirect_dispatch"])
@pytest.mark.parametrize("source_name", ["loop", "indirect"])
def test_traced_runs_replay_stats_and_match_engines(
    images, source_name, client_name
):
    _check_traced_group(images[source_name], CLIENTS[client_name])


@pytest.mark.slow
@pytest.mark.parametrize("client_name", sorted(CLIENTS))
@pytest.mark.parametrize("source_name", sorted(SOURCES))
def test_traced_runs_full_matrix(images, source_name, client_name):
    _check_traced_group(images[source_name], CLIENTS[client_name])


# ----------------------------------------------- drguard fault determinism

def _run_faulted(image, fault_kind, seed, engine):
    """A guarded run with a seeded fault-injecting client."""
    from repro.resilience.faultinject import FaultInjectingClient, FaultPlan

    options = _apply_engine(RuntimeOptions.with_traces(), engine)
    options.guard_clients = True
    options.cache_consistency = True
    options.trace_events = True
    options.trace_buffer = None
    client = FaultInjectingClient(
        FaultPlan(fault_kind, seed), inner=StrengthReduction()
    )
    runtime = DynamoRIO(
        Process(image), options=options, client=client,
        cost_model=CostModel(),
    )
    return runtime, runtime.run()


@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize(
    "fault_kind", ["raise_in_hook", "corrupt_instrlist"]
)
def test_faulted_runs_bit_identical_across_engines(images, fault_kind, seed):
    """Injected client faults — and the guard's recovery from them —
    are deterministic: the same fault plan produces the same faults,
    bailouts, cycles, and event stream on every engine, including the
    chain engine whose stitched tables the bailout flush dissolves."""
    runs = [
        _run_faulted(images["loop"], fault_kind, seed, engine)
        for engine in ENGINES
    ]
    _assert_all_identical([res for _, res in runs])
    reference = runs[0][0]
    assert reference.stats.client_faults > 0
    for rt, _ in runs[1:]:
        assert rt.stats.client_faults == reference.stats.client_faults
        assert rt.stats.fragment_bailouts == reference.stats.fragment_bailouts
    streams = [_stream(rt) for rt, _ in runs]
    for other in streams[1:]:
        assert streams[0] == other
