"""Closure engine ↔ tuple engine determinism regression.

The closure-compiled engines (fragment step tables in
``repro.core.closures``; the interpreter's pre-bound decode closures)
must be *bit-identical* to the tuple-dispatch reference paths on every
simulated observable: cycles, instruction counts, program output, exit
code, and the full event/stat dictionaries.  Only host wall-clock time
may differ.

Each sample client exercises a different lowered-op surface: redundant
load removal rewrites straight-line exec ops, strength reduction changes
instruction costs, indirect-branch dispatch emits OP_IND_CHECK chains
with profilers, and custom traces reshape fragment boundaries.  Signals
and threads cover the alarm/safe-point and scheduler paths.
"""

import pytest

from repro.clients import (
    CustomTraces,
    IndirectBranchDispatch,
    RedundantLoadRemoval,
    StrengthReduction,
)
from repro.core import DynamoRIO, RuntimeOptions
from repro.loader import Process
from repro.machine.cost import CostModel
from repro.machine.interp import Interpreter
from repro.minicc import compile_source

from tests.conftest import INDIRECT_SRC, LOOP_SRC

SIGNAL_SRC = """
int ticks;

int on_alarm() {
    ticks++;
    if (ticks < 3) { alarm(200); }
    sigreturn;
    return 0;
}

int main() {
    int i;
    sighandler(&on_alarm);
    alarm(200);
    i = 0;
    while (ticks < 3) { i++; }
    print(ticks);
    return 0;
}
"""

CLIENTS = {
    "none": lambda: None,
    "redundant_load": RedundantLoadRemoval,
    "inc2add": StrengthReduction,
    "indirect_dispatch": IndirectBranchDispatch,
    "custom_traces": CustomTraces,
}

SOURCES = {
    "loop": LOOP_SRC,
    "indirect": INDIRECT_SRC,
    "signals": SIGNAL_SRC,
}


@pytest.fixture(scope="module")
def images():
    return {name: compile_source(src) for name, src in SOURCES.items()}


def _run_runtime(image, client_factory, closure_engine):
    options = RuntimeOptions.with_traces()
    options.closure_engine = closure_engine
    runtime = DynamoRIO(
        Process(image),
        options=options,
        client=client_factory(),
        cost_model=CostModel(),
    )
    return runtime.run()


def _assert_identical(a, b):
    assert a.cycles == b.cycles
    assert a.instructions == b.instructions
    assert a.output == b.output
    assert a.exit_code == b.exit_code
    assert a.events == b.events


@pytest.mark.parametrize("client_name", sorted(CLIENTS))
@pytest.mark.parametrize("source_name", sorted(SOURCES))
def test_runtime_engines_bit_identical(images, source_name, client_name):
    image = images[source_name]
    factory = CLIENTS[client_name]
    closure = _run_runtime(image, factory, closure_engine=True)
    tuple_ = _run_runtime(image, factory, closure_engine=False)
    _assert_identical(closure, tuple_)


@pytest.mark.parametrize("mode", ["native", "emulation"])
@pytest.mark.parametrize("source_name", sorted(SOURCES))
def test_interpreter_engines_bit_identical(images, source_name, mode):
    image = images[source_name]
    results = [
        Interpreter(
            Process(image), CostModel(), mode=mode, engine=engine
        ).run()
        for engine in ("closure", "tuple")
    ]
    _assert_identical(results[0], results[1])


def test_threaded_workload_engines_bit_identical():
    src = """
int done;
int total;

int worker() {
    int i;
    for (i = 0; i < 40; i++) { total = total + i; }
    done = done + 1;
    return 0;
}

int main() {
    done = 0;
    total = 0;
    spawn(&worker, 0x790000);
    while (done < 1) { }
    print(total);
    return 0;
}
"""
    image = compile_source(src)
    closure = _run_runtime(image, lambda: None, closure_engine=True)
    tuple_ = _run_runtime(image, lambda: None, closure_engine=False)
    _assert_identical(closure, tuple_)


def test_ablation_rows_bit_identical(images):
    """Every Table-1 configuration row agrees across engines."""
    image = images["loop"]
    for factory in (
        RuntimeOptions.bb_cache_only,
        RuntimeOptions.with_direct_links,
        RuntimeOptions.with_indirect_links,
        RuntimeOptions.with_traces,
    ):
        options_a = factory()
        options_a.closure_engine = True
        options_b = factory()
        options_b.closure_engine = False
        a = DynamoRIO(Process(image), options=options_a,
                      cost_model=CostModel()).run()
        b = DynamoRIO(Process(image), options=options_b,
                      cost_model=CostModel()).run()
        _assert_identical(a, b)


# --------------------------------------------------- drtrace differential

def _run_traced(image, client_factory, closure_engine):
    """Run with drtrace on (unbounded ring) and return (runtime, result)."""
    options = RuntimeOptions.with_traces()
    options.closure_engine = closure_engine
    options.trace_events = True
    options.trace_buffer = None
    runtime = DynamoRIO(
        Process(image),
        options=options,
        client=client_factory(),
        cost_model=CostModel(),
    )
    return runtime, runtime.run()


def _stream(runtime):
    """The recorded events minus the seq numbers (compared across runs)."""
    return [(e.kind, e.tag, e.data) for e in runtime.observer.events()]


def _check_traced_pair(image, factory):
    from repro.observe import replay_stats

    rt_c, res_c = _run_traced(image, factory, closure_engine=True)
    rt_t, res_t = _run_traced(image, factory, closure_engine=False)
    _assert_identical(res_c, res_t)

    # Replaying the event stream reconstructs every RuntimeStats counter
    # exactly, for both engines.
    for rt in (rt_c, rt_t):
        assert rt.observer.dropped == 0
        assert replay_stats(rt.observer.events()) == rt.stats.as_dict()

    # The streams themselves are identical event by event.
    assert _stream(rt_c) == _stream(rt_t)

    # Tracing must not perturb the simulated machine: a tracing-off run
    # of the closure engine lands on the same cycles/output.
    plain = _run_runtime(image, factory, closure_engine=True)
    assert plain.cycles == res_c.cycles
    assert plain.instructions == res_c.instructions
    assert plain.output == res_c.output


@pytest.mark.parametrize("client_name", ["none", "indirect_dispatch"])
@pytest.mark.parametrize("source_name", ["loop", "indirect"])
def test_traced_runs_replay_stats_and_match_engines(
    images, source_name, client_name
):
    _check_traced_pair(images[source_name], CLIENTS[client_name])


@pytest.mark.slow
@pytest.mark.parametrize("client_name", sorted(CLIENTS))
@pytest.mark.parametrize("source_name", sorted(SOURCES))
def test_traced_runs_full_matrix(images, source_name, client_name):
    _check_traced_pair(images[source_name], CLIENTS[client_name])


# ----------------------------------------------- drguard fault determinism

def _run_faulted(image, fault_kind, seed, closure_engine):
    """A guarded run with a seeded fault-injecting client."""
    from repro.resilience.faultinject import FaultInjectingClient, FaultPlan

    options = RuntimeOptions.with_traces()
    options.closure_engine = closure_engine
    options.guard_clients = True
    options.cache_consistency = True
    options.trace_events = True
    options.trace_buffer = None
    client = FaultInjectingClient(
        FaultPlan(fault_kind, seed), inner=StrengthReduction()
    )
    runtime = DynamoRIO(
        Process(image), options=options, client=client,
        cost_model=CostModel(),
    )
    return runtime, runtime.run()


@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize(
    "fault_kind", ["raise_in_hook", "corrupt_instrlist"]
)
def test_faulted_runs_bit_identical_across_engines(images, fault_kind, seed):
    """Injected client faults — and the guard's recovery from them —
    are deterministic: the same fault plan produces the same faults,
    bailouts, cycles, and event stream on both engines."""
    rt_c, res_c = _run_faulted(images["loop"], fault_kind, seed, True)
    rt_t, res_t = _run_faulted(images["loop"], fault_kind, seed, False)
    _assert_identical(res_c, res_t)
    assert rt_c.stats.client_faults == rt_t.stats.client_faults > 0
    assert rt_c.stats.fragment_bailouts == rt_t.stats.fragment_bailouts
    assert _stream(rt_c) == _stream(rt_t)
