"""End-to-end verification: sample clients pass under
``options.verify_fragments`` and the runtime catches bad clients."""

import pytest

from repro.analysis import VerificationError
from repro.api.client import Client
from repro.api.dr import dr_insert_meta_instr
from repro.clients import (
    CustomTraces,
    IndirectBranchDispatch,
    InlineInstructionCounter,
    RedundantLoadRemoval,
    StrengthReduction,
)
from repro.core import RuntimeOptions
from repro.ir.create import (
    INSTR_CREATE_add,
    OPND_CREATE_INT32,
    OPND_CREATE_REG,
)
from repro.isa.registers import Reg

from tests.conftest import run_under


def verifying_options():
    options = RuntimeOptions.with_traces()
    options.verify_fragments = True
    return options


@pytest.mark.parametrize(
    "make_client",
    [
        RedundantLoadRemoval,
        StrengthReduction,
        CustomTraces,
        InlineInstructionCounter,
    ],
)
def test_clients_verify_on_loop(loop_image, loop_native, make_client):
    dr, result = run_under(
        loop_image, options=verifying_options(), client=make_client()
    )
    assert result.output == loop_native.output
    assert not any(d.is_error for d in dr.verifier_diagnostics)


def test_indirect_dispatch_verifies(indirect_image, indirect_native):
    dr, result = run_under(
        indirect_image,
        options=verifying_options(),
        client=IndirectBranchDispatch(),
    )
    assert result.output == indirect_native.output
    assert not any(d.is_error for d in dr.verifier_diagnostics)


class UnsafeClient(Client):
    """Clobbers a live register and live flags in every block."""

    def basic_block(self, context, tag, ilist):
        ilist.expand_bundles()
        bump = INSTR_CREATE_add(
            OPND_CREATE_REG(Reg.EAX), OPND_CREATE_INT32(1)
        )
        dr_insert_meta_instr(ilist, ilist.first(), bump)


def test_unsafe_client_is_caught(loop_image):
    with pytest.raises(VerificationError) as exc:
        run_under(loop_image, options=verifying_options(), client=UnsafeClient())
    assert any(
        d.rule in ("scratch-registers", "eflags-safety")
        for d in exc.value.diagnostics
    )


def test_verification_off_by_default(loop_image):
    # The same unsafe client goes unnoticed without the debug option —
    # the verifier is opt-in and charges nothing by default.
    dr, result = run_under(loop_image, client=UnsafeClient())
    assert dr.verifier_diagnostics == []
