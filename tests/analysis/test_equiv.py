"""Tests for the drequiv equivalence engine and its verifier rule."""

from repro.analysis.equiv import check_equivalence
from repro.analysis.verifier import verify_fragment
from repro.api.dr import instr_set_meta
from repro.core import DynamoRIO, RuntimeOptions
from repro.core.bb_builder import build_basic_block
from repro.ir.create import (
    INSTR_CREATE_add,
    INSTR_CREATE_mov,
    OPND_CREATE_INT32,
    OPND_CREATE_MEM,
    OPND_CREATE_REG,
)
from repro.ir.instr import Instr, LabelRef
from repro.ir.instrlist import copy_instructions
from repro.isa.opcodes import Opcode
from repro.isa.registers import Reg
from repro.loader import Process
from repro.machine.interp import run_native
from repro.minicc import compile_source
from repro.resilience.faultinject import FaultInjectingClient, FaultPlan

SRC = """
int main() {
    int i; int acc;
    acc = 0;
    for (i = 0; i < 30; i++) {
        acc = acc + i;
        if (acc > 100) { acc = acc - 50; }
    }
    print(acc);
    return 0;
}
"""


def _block(memory, tag):
    return build_basic_block(memory, tag)


def setup_image():
    image = compile_source(SRC)
    process = Process(image)
    return process.memory, process.entry


def errors(problems):
    return [p for p in problems if p.severity == "error"]


class TestCleanBlocks:
    def test_pristine_block_is_equivalent_to_itself(self):
        memory, entry = setup_image()
        ilist = _block(memory, entry)
        assert errors(check_equivalence(ilist, (entry,), memory)) == []

    def test_meta_instructions_are_erased(self):
        memory, entry = setup_image()
        ilist = _block(memory, entry)
        ilist.expand_bundles()
        meta = instr_set_meta(
            INSTR_CREATE_add(
                OPND_CREATE_REG(Reg.EAX), OPND_CREATE_INT32(1)
            )
        )
        ilist.insert_before(ilist.first(), meta)
        assert errors(check_equivalence(ilist, (entry,), memory)) == []


class TestDivergences:
    def test_nonmeta_computation_is_flagged(self):
        memory, entry = setup_image()
        ilist = _block(memory, entry)
        ilist.expand_bundles()
        # Same instruction as the meta test — but unmarked, it claims to
        # be application code the application never ran.
        ilist.insert_before(
            ilist.first(),
            INSTR_CREATE_add(OPND_CREATE_REG(Reg.EAX), OPND_CREATE_INT32(1)),
        )
        assert errors(check_equivalence(ilist, (entry,), memory))

    def test_nonmeta_store_is_flagged(self):
        memory, entry = setup_image()
        ilist = _block(memory, entry)
        ilist.expand_bundles()
        ilist.insert_before(
            ilist.first(),
            INSTR_CREATE_mov(
                OPND_CREATE_MEM(base=Reg.ESP, disp=-64), OPND_CREATE_INT32(1)
            ),
        )
        probs = errors(check_equivalence(ilist, (entry,), memory))
        assert probs and "store" in probs[0].message

    def test_orphan_internal_branch_is_flagged(self):
        # The corrupt_instrlist fault shape: a non-meta jmp to a label
        # that is not a translation of anything.
        memory, entry = setup_image()
        ilist = _block(memory, entry)
        ilist.expand_bundles()
        orphan = Instr.label()
        ilist.append(Instr.create(Opcode.JMP, LabelRef(orphan)))
        probs = errors(check_equivalence(ilist, (entry,), memory))
        assert probs and "internal label" in probs[0].message

    def test_dropped_exit_is_flagged(self):
        memory, entry = setup_image()
        ilist = _block(memory, entry)
        ilist.expand_bundles()
        ilist.remove(ilist.last())
        probs = errors(check_equivalence(ilist, (entry,), memory))
        assert probs and "ends before" in probs[0].message

    def test_wrong_branch_target_is_flagged(self):
        memory, entry = setup_image()
        ilist = _block(memory, entry)
        ilist.expand_bundles()
        last = ilist.last()
        copies = copy_instructions([last])
        from repro.isa.operands import PcOperand

        wrong = copies[0]
        wrong.set_target(PcOperand(0xDEAD))
        ilist.replace(last, wrong)
        assert errors(check_equivalence(ilist, (entry,), memory))


class TestVerifierRuleIntegration:
    def test_rule_noop_without_memory(self):
        memory, entry = setup_image()
        ilist = _block(memory, entry)
        diagnostics = verify_fragment(ilist, kind="bb", rules=["equivalence"])
        assert diagnostics == []

    def test_rule_fires_with_memory(self):
        memory, entry = setup_image()
        ilist = _block(memory, entry)
        ilist.expand_bundles()
        ilist.insert_before(
            ilist.first(),
            INSTR_CREATE_mov(
                OPND_CREATE_MEM(base=Reg.ESP, disp=-64), OPND_CREATE_INT32(1)
            ),
        )
        diagnostics = verify_fragment(
            ilist, kind="bb", rules=["equivalence"], tag=entry,
            source_tags=(entry,), memory=memory,
        )
        bad = [d for d in diagnostics if d.is_error]
        assert bad
        assert bad[0].rule == "equivalence"
        assert bad[0].tag == entry
        # Satellite: diagnostics carry a disassembly window.
        assert bad[0].window and ">>" in bad[0].window


class TestRuntimeIntegration:
    def test_clean_run_has_no_diagnostics(self):
        image = compile_source(SRC)
        native = run_native(Process(image))
        options = RuntimeOptions.with_traces()
        options.verify_fragments = True
        options.verify_equivalence = True
        runtime = DynamoRIO(Process(image), options=options)
        result = runtime.run()
        assert result.output == native.output
        assert [d for d in runtime.verifier_diagnostics if d.is_error] == []

    def test_corrupt_instrlist_is_caught_statically(self):
        image = compile_source(SRC)
        options = RuntimeOptions.with_traces()
        options.guard_clients = True
        options.verify_fragments = True
        options.verify_equivalence = True
        client = FaultInjectingClient(FaultPlan("corrupt_instrlist", 0))
        runtime = DynamoRIO(Process(image), options=options, client=client)
        runtime.run()
        assert client.injected > 0
        fired = [
            d
            for d in runtime.verifier_diagnostics
            if d.is_error and d.rule == "equivalence"
        ]
        assert fired
