"""Liveness edge cases: partial-eflags definitions and one-instruction
blocks.

``inc``/``dec`` are the ISA's partial flag definers — they write every
arithmetic flag *except* CF — so a CF consumer stays live straight
through them while the other five flags die.  Single-instruction lists
exercise the dataflow engine's boundary handling with no interior to
hide mistakes in.
"""

from repro.analysis import live_eflags, live_registers
from repro.analysis.liveness import (
    GPR_UNIVERSE,
    eflags_dead_before,
    find_dead_flags_point,
    registers_written_before_read,
)
from repro.ir.create import (
    INSTR_CREATE_add,
    INSTR_CREATE_dec,
    INSTR_CREATE_inc,
    INSTR_CREATE_jb,
    INSTR_CREATE_jmp,
    INSTR_CREATE_jz,
    INSTR_CREATE_mov,
    OPND_CREATE_INT32,
    OPND_CREATE_PC,
    OPND_CREATE_REG,
)
from repro.ir.instrlist import InstrList
from repro.isa.eflags import (
    EFLAGS_READ_ALL,
    EFLAGS_READ_CF,
    EFLAGS_READ_ZF,
)
from repro.isa.registers import Reg

EAX = OPND_CREATE_REG(Reg.EAX)
EBX = OPND_CREATE_REG(Reg.EBX)


class TestPartialEflagsDefs:
    def test_inc_does_not_kill_cf(self):
        # jb reads CF; inc writes all arithmetic flags *except* CF, so
        # CF liveness flows through it while the other five flags are
        # killed (they are redefined before any read).
        inc = INSTR_CREATE_inc(EBX)
        jb = INSTR_CREATE_jb(OPND_CREATE_PC(0x2000))
        il = InstrList([inc, jb])
        result = live_eflags(il)
        assert result.before(inc) == EFLAGS_READ_CF

    def test_dec_does_not_kill_cf(self):
        dec = INSTR_CREATE_dec(EBX)
        jb = INSTR_CREATE_jb(OPND_CREATE_PC(0x2000))
        il = InstrList([dec, jb])
        assert live_eflags(il).before(dec) == EFLAGS_READ_CF

    def test_full_def_kills_cf(self):
        # The control: add writes CF too, so nothing is live before it.
        add = INSTR_CREATE_add(EBX, OPND_CREATE_INT32(1))
        jb = INSTR_CREATE_jb(OPND_CREATE_PC(0x2000))
        il = InstrList([add, jb])
        assert live_eflags(il).before(add) == 0

    def test_inc_kills_zf(self):
        # A ZF consumer after inc reads the flag inc just wrote — dead
        # before the inc.
        inc = INSTR_CREATE_inc(EBX)
        jz = INSTR_CREATE_jz(OPND_CREATE_PC(0x2000))
        il = InstrList([inc, jz])
        assert live_eflags(il).before(inc) & EFLAGS_READ_ZF == 0

    def test_dead_flags_point_respects_partial_def(self):
        # Before the inc, CF is live (the jb still reads it), so the
        # only dead-flags point is past the branch — i.e. none.
        inc = INSTR_CREATE_inc(EBX)
        jb = INSTR_CREATE_jb(OPND_CREATE_PC(0x2000))
        il = InstrList([inc, jb])
        assert not eflags_dead_before(il, inc)
        assert find_dead_flags_point(il) is None


class TestSingleInstructionBlocks:
    def test_single_mov_register_liveness(self):
        mov = INSTR_CREATE_mov(EAX, EBX)
        il = InstrList([mov])
        result = live_registers(il)
        # Falling off the end exposes every register, so only the
        # written-and-not-read eax is dead before the mov.
        assert result.after(mov) == GPR_UNIVERSE
        assert Reg.EAX not in result.before(mov)
        assert Reg.EBX in result.before(mov)
        assert registers_written_before_read(il, mov) == {Reg.EAX}

    def test_single_full_flag_writer(self):
        add = INSTR_CREATE_add(EAX, OPND_CREATE_INT32(1))
        il = InstrList([add])
        result = live_eflags(il)
        assert result.after(add) == EFLAGS_READ_ALL
        assert result.before(add) == 0
        assert eflags_dead_before(il, add)
        assert find_dead_flags_point(il) is add

    def test_single_partial_flag_writer(self):
        inc = INSTR_CREATE_inc(EAX)
        il = InstrList([inc])
        # CF survives the partial def and is exposed at the end.
        assert live_eflags(il).before(inc) == EFLAGS_READ_CF

    def test_single_cti_is_a_barrier(self):
        jmp = INSTR_CREATE_jmp(OPND_CREATE_PC(0x2000))
        il = InstrList([jmp])
        assert live_eflags(il).before(jmp) == EFLAGS_READ_ALL
        assert live_registers(il).before(jmp) == GPR_UNIVERSE
        assert find_dead_flags_point(il) is None
