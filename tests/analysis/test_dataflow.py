"""Tests for the generic single-pass dataflow engine."""

from repro.analysis import (
    BACKWARD,
    FORWARD,
    DataflowProblem,
    live_eflags,
    live_registers,
    solve,
)
from repro.ir.instr import Instr, LabelRef
from repro.ir.instrlist import InstrList
from repro.ir.create import (
    INSTR_CREATE_call,
    INSTR_CREATE_cmp,
    INSTR_CREATE_jmp,
    INSTR_CREATE_jz,
    INSTR_CREATE_mov,
    OPND_CREATE_INT32,
    OPND_CREATE_PC,
    OPND_CREATE_REG,
)
from repro.isa.registers import Reg

EAX = OPND_CREATE_REG(Reg.EAX)
EBX = OPND_CREATE_REG(Reg.EBX)
ECX = OPND_CREATE_REG(Reg.ECX)


class WrittenRegs(DataflowProblem):
    """Forward may-analysis: registers written on some path so far."""

    direction = FORWARD

    def boundary(self):
        return frozenset()

    def transfer(self, instr, state):
        if instr.is_bundle or instr.is_label() or instr.is_cti():
            return state
        written = {
            op.reg for op in instr.dsts if op.is_reg()
        }
        return frozenset(state | written)

    def join(self, a, b):
        return a | b


def _branch_to(label):
    return INSTR_CREATE_jz(LabelRef(label))


class TestBackwardJoins:
    def test_branch_taken_path_keeps_register_live(self):
        # jz skips the write to ebx, so ebx stays live at the branch on
        # the taken path (it reaches the final read via the label).
        label = Instr.label()
        read_ebx = INSTR_CREATE_mov(EAX, EBX)
        il = InstrList(
            [
                INSTR_CREATE_cmp(EAX, OPND_CREATE_INT32(0)),
                _branch_to(label),
                INSTR_CREATE_mov(EBX, OPND_CREATE_INT32(1)),
                label,
                read_ebx,
                INSTR_CREATE_jmp(OPND_CREATE_PC(0x100)),
            ]
        )
        live = live_registers(il)
        jcc = [i for i in il if i.is_cond_branch()][0]
        assert Reg.EBX in live.before(jcc)
        # after the overwrite, ebx is trivially live (it was just written
        # and is read at the label)
        write = [i for i in il if not i.is_label() and i.dsts and i.dsts[0].is_reg()
                 and i.dsts[0].reg == Reg.EBX][0]
        assert Reg.EBX not in live.before(write)

    def test_fallthrough_only_liveness_without_branch(self):
        il = InstrList(
            [
                INSTR_CREATE_mov(EBX, OPND_CREATE_INT32(1)),
                INSTR_CREATE_mov(EAX, EBX),
            ]
        )
        live = live_registers(il)
        assert Reg.EBX not in live.before(il.first())

    def test_exit_cti_joins_exit_state(self):
        # A direct jmp out of the fragment keeps everything live.
        il = InstrList([INSTR_CREATE_jmp(OPND_CREATE_PC(0x100))])
        live = live_registers(il)
        assert Reg.EAX in live.before(il.first())

    def test_plain_call_does_not_fall_through(self):
        # A call exits via dispatch; flags written after the call in
        # list order cannot make flags dead before it.
        il = InstrList(
            [
                INSTR_CREATE_call(OPND_CREATE_PC(0x200)),
                INSTR_CREATE_cmp(EAX, OPND_CREATE_INT32(0)),
            ]
        )
        flags = live_eflags(il)
        assert flags.before(il.first()) != 0

    def test_inlined_call_falls_through(self):
        il = InstrList(
            [
                INSTR_CREATE_call(OPND_CREATE_PC(0x200)),
                INSTR_CREATE_cmp(EAX, OPND_CREATE_INT32(0)),
            ]
        )
        call = il.first()
        call.note = {"inline": True, "return_addr": 0x300}
        flags = live_eflags(il)
        # now the cmp (full flag write) is on the fall-through path, but
        # the call itself still joins the conservative exit state
        assert flags.before(il.first()) != 0
        cmp_instr = [i for i in il if not i.is_cti()][0]
        assert flags.before(cmp_instr) == 0


class TestForwardSolve:
    def test_straight_line_accumulation(self):
        il = InstrList(
            [
                INSTR_CREATE_mov(EAX, OPND_CREATE_INT32(1)),
                INSTR_CREATE_mov(EBX, OPND_CREATE_INT32(2)),
            ]
        )
        result = solve(WrittenRegs(), il)
        first, second = list(il)
        assert result.before(first) == frozenset()
        assert result.after(first) == {Reg.EAX}
        assert result.after(second) == {Reg.EAX, Reg.EBX}

    def test_label_join_unions_paths(self):
        label = Instr.label()
        last = INSTR_CREATE_mov(ECX, OPND_CREATE_INT32(0))
        il = InstrList(
            [
                INSTR_CREATE_cmp(EAX, OPND_CREATE_INT32(0)),
                _branch_to(label),
                INSTR_CREATE_mov(EBX, OPND_CREATE_INT32(1)),
                label,
                last,
            ]
        )
        result = solve(WrittenRegs(), il)
        # At the label both paths join: one wrote ebx, one did not.
        assert result.before(last) == {Reg.EBX}
        assert result.after(last) == {Reg.EBX, Reg.ECX}

    def test_unreachable_after_unconditional_jmp(self):
        dead = INSTR_CREATE_mov(EAX, OPND_CREATE_INT32(1))
        il = InstrList(
            [
                INSTR_CREATE_jmp(OPND_CREATE_PC(0x100)),
                dead,
            ]
        )
        result = solve(WrittenRegs(), il)
        assert result.before(dead) is None
        assert result.after(dead) is None

    def test_reachable_again_at_targeted_label(self):
        label = Instr.label()
        after_label = INSTR_CREATE_mov(ECX, OPND_CREATE_INT32(0))
        il = InstrList(
            [
                INSTR_CREATE_cmp(EAX, OPND_CREATE_INT32(0)),
                _branch_to(label),
                INSTR_CREATE_jmp(OPND_CREATE_PC(0x100)),
                label,
                after_label,
            ]
        )
        result = solve(WrittenRegs(), il)
        assert result.before(after_label) == frozenset()


class TestDirectionDispatch:
    def test_problem_direction_is_respected(self):
        assert WrittenRegs.direction == FORWARD

        class Back(WrittenRegs):
            direction = BACKWARD

        il = InstrList(
            [
                INSTR_CREATE_mov(EAX, OPND_CREATE_INT32(1)),
                INSTR_CREATE_mov(EBX, OPND_CREATE_INT32(2)),
            ]
        )
        fwd = solve(WrittenRegs(), il)
        back = solve(Back(), il)
        first = il.first()
        # forward: nothing written before the first instruction;
        # backward: "before" is computed from the end, so both writes
        # are already in the state.
        assert fwd.before(first) == frozenset()
        assert back.before(first) == {Reg.EAX, Reg.EBX}
