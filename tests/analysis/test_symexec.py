"""Unit tests for the drequiv symbolic evaluator."""

from repro.analysis.symexec import (
    SymState,
    add,
    band,
    const,
    flags_add,
    flags_inc,
    may_alias,
    render,
    shift,
    step,
    sub,
)
from repro.ir.create import (
    INSTR_CREATE_add,
    INSTR_CREATE_and,
    INSTR_CREATE_inc,
    INSTR_CREATE_movb,
    INSTR_CREATE_lea,
    INSTR_CREATE_pop,
    INSTR_CREATE_push,
    OPND_CREATE_INT32,
    OPND_CREATE_MEM,
    OPND_CREATE_REG,
)
from repro.isa.registers import Reg

EAX = OPND_CREATE_REG(Reg.EAX)
EBX = OPND_CREATE_REG(Reg.EBX)
ESP = OPND_CREATE_REG(Reg.ESP)


def run(state, *instrs):
    for instr in instrs:
        step(state, instr.opcode, instr.explicit_operands())
    return state


class TestCanonicalization:
    def test_const_folding_wraps(self):
        assert add(const(0xFFFFFFFF), const(2)) == const(1)

    def test_add_chain_flattens(self):
        x = ("init", "eax")
        assert add(add(x, const(4)), const(8)) == add(x, const(12))

    def test_add_zero_is_identity(self):
        x = ("init", "eax")
        assert add(x, const(0)) == x

    def test_sub_const_is_add_negated(self):
        x = ("init", "eax")
        assert sub(x, const(4)) == add(x, const(0xFFFFFFFC))

    def test_shift_by_zero_is_identity(self):
        x = ("init", "eax")
        assert shift("shl", x, const(0)) == x
        assert shift("shl", x, const(32)) == x  # count masked to 5 bits

    def test_pop_equals_lea_esp_adjustment(self):
        # The custom-traces client replaces an inlined `ret` with
        # `lea esp, [esp+4]`; both sides must reach the same esp.
        a = run(SymState(), INSTR_CREATE_pop(EAX))
        b = run(
            SymState(),
            INSTR_CREATE_lea(EAX, OPND_CREATE_MEM(base=Reg.ESP)),
            INSTR_CREATE_lea(ESP, OPND_CREATE_MEM(base=Reg.ESP, disp=4)),
        )
        assert a.regs[Reg.ESP] == b.regs[Reg.ESP]


class TestMemoryLog:
    def test_store_to_load_forwarding(self):
        s = SymState()
        run(s, INSTR_CREATE_push(EBX))
        loaded = s.load(s.regs[Reg.ESP], 4)
        assert loaded == ("init", "ebx")

    def test_aliasing_store_bumps_version(self):
        s = SymState()
        addr = s.regs[Reg.EAX]
        v0 = s.load(addr, 4)
        s.store(s.regs[Reg.EBX], 4, const(1))  # unknown base: may alias
        v1 = s.load(addr, 4)
        assert v0 != v1

    def test_disjoint_offsets_forward_past(self):
        s = SymState()
        base = s.regs[Reg.EAX]
        s.store(base, 4, const(7))
        s.store(add(base, const(8)), 4, const(9))  # provably disjoint
        assert s.load(base, 4) == const(7)

    def test_may_alias_same_base_overlap(self):
        base = ("init", "eax")
        assert may_alias(base, 4, add(base, const(2)), 4)
        assert not may_alias(base, 4, add(base, const(4)), 4)

    def test_may_alias_different_bases(self):
        assert may_alias(("init", "eax"), 4, ("init", "ebx"), 4)


class TestFlagFormulas:
    def test_inc_is_add_except_cf(self):
        # The inc2add client's enabling identity: inc and add-1 agree on
        # every flag except CF, which inc preserves.
        a = run(SymState(), INSTR_CREATE_inc(EAX))
        b = run(SymState(), INSTR_CREATE_add(EAX, OPND_CREATE_INT32(1)))
        assert a.regs[Reg.EAX] == b.regs[Reg.EAX]
        for name in ("PF", "AF", "ZF", "SF", "OF"):
            assert a.flags[name] == b.flags[name]
        assert a.flags["CF"] == ("initf", "CF")  # preserved
        assert b.flags["CF"] != ("initf", "CF")  # rewritten

    def test_identical_sequences_identical_flags(self):
        x = ("init", "eax")
        fa, fb = SymState().flags, SymState().flags
        flags_add(fa, x, const(1))
        flags_add(fb, x, const(1))
        assert fa == fb
        fi = SymState().flags
        flags_inc(fi, x)
        assert fi != fa  # CF differs: preserved vs rewritten

    def test_logic_zeroes_cf_of(self):
        s = run(SymState(), INSTR_CREATE_and(EAX, EBX))
        assert s.flags["CF"] == const(0)
        assert s.flags["OF"] == const(0)
        assert s.flags["AF"] == const(0)

    def test_byte_store_masks_value(self):
        s = SymState()
        run(s, INSTR_CREATE_movb(OPND_CREATE_MEM(base=Reg.ESP, size=1), EBX))
        _addr, size, value = s.stores[-1]
        assert size == 1
        assert value == band(("init", "ebx"), const(0xFF))


class TestRender:
    def test_render_is_compact(self):
        s = run(SymState(), INSTR_CREATE_push(EAX), INSTR_CREATE_pop(EBX))
        text = render(s.regs[Reg.EBX])
        assert isinstance(text, str) and text
