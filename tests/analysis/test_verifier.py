"""Fragment verifier tests: every rule passes valid fragments and fires
on crafted invalid ones."""

import pytest

from repro.analysis import (
    Severity,
    VerificationError,
    assert_fragment_valid,
    verify_fragment,
)
from repro.analysis.verifier import Rule, register_rule
from repro.api.dr import dr_insert_clean_call, instr_set_meta
from repro.ir.instr import Instr, LabelRef
from repro.ir.instrlist import InstrList
from repro.ir.create import (
    INSTR_CREATE_add,
    INSTR_CREATE_call,
    INSTR_CREATE_cmp,
    INSTR_CREATE_jmp,
    INSTR_CREATE_jz,
    INSTR_CREATE_mov,
    INSTR_CREATE_push,
    OPND_CREATE_INT32,
    OPND_CREATE_MEM,
    OPND_CREATE_PC,
    OPND_CREATE_REG,
)
from repro.isa.encoder import encode_instr
from repro.isa.opcodes import Opcode
from repro.isa.operands import PcOperand
from repro.isa.registers import Reg

EAX = OPND_CREATE_REG(Reg.EAX)
EBX = OPND_CREATE_REG(Reg.EBX)
ESP = OPND_CREATE_REG(Reg.ESP)


def errors(ilist, rule, **kw):
    return [
        d
        for d in verify_fragment(ilist, rules=[rule], **kw)
        if d.severity == Severity.ERROR
    ]


def warnings(ilist, rule, **kw):
    return [
        d
        for d in verify_fragment(ilist, rules=[rule], **kw)
        if d.severity == Severity.WARNING
    ]


def exit_jmp():
    return INSTR_CREATE_jmp(OPND_CREATE_PC(0x100))


class TestLinearity:
    def test_valid_forward_branch_passes(self):
        label = Instr.label()
        il = InstrList(
            [
                INSTR_CREATE_cmp(EAX, OPND_CREATE_INT32(0)),
                INSTR_CREATE_jz(LabelRef(label)),
                INSTR_CREATE_mov(EAX, OPND_CREATE_INT32(1)),
                label,
                exit_jmp(),
            ]
        )
        assert errors(il, "linearity") == []

    def test_backward_reference_fires(self):
        label = Instr.label()
        il = InstrList(
            [
                label,
                INSTR_CREATE_cmp(EAX, OPND_CREATE_INT32(0)),
                INSTR_CREATE_jz(LabelRef(label)),
                exit_jmp(),
            ]
        )
        found = errors(il, "linearity")
        assert any("backward" in d.message for d in found)

    def test_foreign_label_fires(self):
        elsewhere = Instr.label()
        il = InstrList([INSTR_CREATE_jz(LabelRef(elsewhere)), exit_jmp()])
        found = errors(il, "linearity")
        assert any("outside this fragment" in d.message for d in found)

    def test_exit_cti_to_internal_label_fires(self):
        label = Instr.label()
        bad = INSTR_CREATE_jz(LabelRef(label))
        bad.is_exit_cti = True
        il = InstrList([bad, label, exit_jmp()])
        found = errors(il, "linearity")
        assert any("exit CTI" in d.message for d in found)

    def test_call_to_internal_label_fires(self):
        label = Instr.label()
        bad = INSTR_CREATE_call(LabelRef(label))
        il = InstrList([bad, label, exit_jmp()])
        found = errors(il, "linearity")
        assert any("only jmp/jcc" in d.message for d in found)

    def test_unreachable_code_warns(self):
        il = InstrList(
            [exit_jmp(), INSTR_CREATE_mov(EAX, OPND_CREATE_INT32(1))]
        )
        found = warnings(il, "linearity")
        assert any("unreachable" in d.message for d in found)


class TestLevels:
    def test_valid_level4_round_trips(self):
        il = InstrList(
            [INSTR_CREATE_add(EAX, OPND_CREATE_INT32(1)), exit_jmp()]
        )
        assert errors(il, "levels") == []

    def test_valid_bundle_passes(self):
        raw = encode_instr(
            Opcode.ADD, (EAX, OPND_CREATE_INT32(1)), pc=0
        ) + encode_instr(Opcode.MOV, (EBX, EAX), pc=0)
        il = InstrList([Instr.bundle(raw, 0x1000)])
        assert errors(il, "levels") == []

    def test_bundle_with_cti_fires(self):
        raw = encode_instr(
            Opcode.ADD, (EAX, OPND_CREATE_INT32(1)), pc=0
        ) + encode_instr(Opcode.JMP, (PcOperand(0x100),), pc=0)
        il = InstrList([Instr.bundle(raw, 0x1000)])
        found = errors(il, "levels")
        assert any("control transfer" in d.message for d in found)

    def test_truncated_bundle_fires(self):
        raw = encode_instr(Opcode.ADD, (EAX, OPND_CREATE_INT32(1)), pc=0)
        il = InstrList([Instr.bundle(raw[:-1], 0x1000)])
        assert errors(il, "levels")


class TestEflagsSafety:
    def _list_with_live_flags(self, meta_instr):
        # jz reads ZF; the meta instr sits before it.
        return InstrList(
            [
                INSTR_CREATE_cmp(EAX, OPND_CREATE_INT32(0)),
                meta_instr,
                INSTR_CREATE_jz(OPND_CREATE_PC(0x100)),
                exit_jmp(),
            ]
        )

    def test_meta_flag_write_over_live_flags_fires(self):
        meta = instr_set_meta(INSTR_CREATE_add(EBX, OPND_CREATE_INT32(1)))
        found = errors(self._list_with_live_flags(meta), "eflags-safety")
        assert any("clobbers live application flags" in d.message for d in found)

    def test_app_flag_write_is_not_checked(self):
        app = INSTR_CREATE_add(EBX, OPND_CREATE_INT32(1))  # not meta
        assert errors(self._list_with_live_flags(app), "eflags-safety") == []

    def test_meta_write_at_dead_flags_point_passes(self):
        meta = instr_set_meta(INSTR_CREATE_add(EBX, OPND_CREATE_INT32(1)))
        il = InstrList(
            [
                meta,
                INSTR_CREATE_cmp(EAX, OPND_CREATE_INT32(0)),  # rewrites all
                INSTR_CREATE_jz(OPND_CREATE_PC(0x100)),
                exit_jmp(),
            ]
        )
        assert errors(il, "eflags-safety") == []

    def test_eflags_saved_note_exempts(self):
        meta = instr_set_meta(INSTR_CREATE_add(EBX, OPND_CREATE_INT32(1)))
        meta.note = {"eflags_saved": True}
        assert errors(self._list_with_live_flags(meta), "eflags-safety") == []


class TestScratchRegisters:
    def test_meta_write_to_live_register_fires(self):
        meta = instr_set_meta(INSTR_CREATE_mov(EAX, OPND_CREATE_INT32(7)))
        il = InstrList(
            [meta, INSTR_CREATE_mov(EBX, EAX), exit_jmp()]  # eax read after
        )
        found = errors(il, "scratch-registers")
        assert any("live register" in d.message for d in found)

    def test_meta_write_to_dead_register_passes(self):
        meta = instr_set_meta(INSTR_CREATE_mov(EAX, OPND_CREATE_INT32(7)))
        il = InstrList(
            [
                meta,
                INSTR_CREATE_mov(EAX, OPND_CREATE_INT32(0)),  # rewritten
                INSTR_CREATE_mov(EBX, EAX),
                exit_jmp(),
            ]
        )
        assert errors(il, "scratch-registers") == []

    def test_app_write_is_not_checked(self):
        app = INSTR_CREATE_mov(EAX, OPND_CREATE_INT32(7))
        il = InstrList([app, INSTR_CREATE_mov(EBX, EAX), exit_jmp()])
        assert errors(il, "scratch-registers") == []

    def test_restore_note_exempts(self):
        meta = instr_set_meta(
            INSTR_CREATE_mov(EAX, OPND_CREATE_MEM(disp=0x9000))
        )
        meta.note = {"restore": True}
        il = InstrList([meta, INSTR_CREATE_mov(EBX, EAX), exit_jmp()])
        assert errors(il, "scratch-registers") == []


class TestTransparency:
    def test_meta_push_fires(self):
        meta = instr_set_meta(INSTR_CREATE_push(EAX))
        il = InstrList([meta, exit_jmp()])
        found = errors(il, "transparency")
        assert any("application stack" in d.message for d in found)

    def test_meta_register_relative_store_fires(self):
        meta = instr_set_meta(
            INSTR_CREATE_mov(OPND_CREATE_MEM(base=Reg.EBP, disp=-4), EAX)
        )
        il = InstrList([meta, exit_jmp()])
        found = errors(il, "transparency")
        assert any("application-relative" in d.message for d in found)

    def test_meta_esp_write_fires(self):
        meta = instr_set_meta(INSTR_CREATE_mov(ESP, EAX))
        il = InstrList([meta, exit_jmp()])
        found = errors(il, "transparency")
        assert any("stack pointer" in d.message for d in found)

    def test_meta_exit_branch_fires(self):
        meta = instr_set_meta(INSTR_CREATE_jmp(OPND_CREATE_PC(0x500)))
        il = InstrList([meta, exit_jmp()])
        found = errors(il, "transparency")
        assert any("leaves the fragment" in d.message for d in found)

    def test_meta_branch_to_internal_label_passes(self):
        label = Instr.label()
        meta = instr_set_meta(INSTR_CREATE_jz(LabelRef(label)))
        il = InstrList(
            [INSTR_CREATE_cmp(EAX, OPND_CREATE_INT32(0)), meta, label, exit_jmp()]
        )
        assert errors(il, "transparency") == []

    def test_absolute_store_without_predicate_passes(self):
        meta = instr_set_meta(
            INSTR_CREATE_mov(OPND_CREATE_MEM(disp=0x9000), EAX)
        )
        il = InstrList([meta, exit_jmp()])
        assert errors(il, "transparency") == []

    def test_absolute_store_classified_by_predicate(self):
        meta = instr_set_meta(
            INSTR_CREATE_mov(OPND_CREATE_MEM(disp=0x9000), EAX)
        )
        il = InstrList([meta, exit_jmp()])
        runtime_private = errors(
            il, "transparency", is_runtime_addr=lambda a: True
        )
        app_memory = errors(
            il, "transparency", is_runtime_addr=lambda a: False
        )
        assert runtime_private == []
        assert any("outside" in d.message for d in app_memory)

    def test_app_push_is_not_checked(self):
        il = InstrList([INSTR_CREATE_push(EAX), exit_jmp()])
        assert errors(il, "transparency") == []


class TestFramework:
    def test_assert_fragment_valid_raises_with_diagnostics(self):
        meta = instr_set_meta(INSTR_CREATE_push(EAX))
        il = InstrList([meta, exit_jmp()])
        with pytest.raises(VerificationError) as exc:
            assert_fragment_valid(il, where="tag=0xdead")
        assert exc.value.diagnostics
        assert "tag=0xdead" in str(exc.value)

    def test_assert_fragment_valid_passes_clean_list(self):
        il = InstrList(
            [INSTR_CREATE_add(EAX, OPND_CREATE_INT32(1)), exit_jmp()]
        )
        assert assert_fragment_valid(il) == []

    def test_clean_call_pseudo_is_accepted(self):
        il = InstrList(
            [INSTR_CREATE_add(EAX, OPND_CREATE_INT32(1)), exit_jmp()]
        )
        dr_insert_clean_call(il, il.first(), lambda ctx: None)
        assert assert_fragment_valid(il) == []

    def test_duplicate_rule_id_rejected(self):
        with pytest.raises(ValueError):

            @register_rule
            class Duplicate(Rule):
                rule_id = "linearity"

                def check(self, ctx):
                    return iter(())

    def test_missing_rule_id_rejected(self):
        with pytest.raises(ValueError):

            @register_rule
            class Nameless(Rule):
                def check(self, ctx):
                    return iter(())

    def test_diagnostics_sorted_by_position(self):
        late = instr_set_meta(INSTR_CREATE_push(EAX))
        early = instr_set_meta(INSTR_CREATE_mov(ESP, EAX))
        il = InstrList([early, late, exit_jmp()])
        diags = [d for d in verify_fragment(il) if d.is_error]
        assert [d.index for d in diags] == sorted(d.index for d in diags)
