"""Workload suite tests: compilation, determinism, artifacts, transparency."""

import pytest

from repro.core import DynamoRIO, RuntimeOptions
from repro.isa.decoder import decode_full
from repro.isa.opcodes import Opcode
from repro.loader import Process
from repro.machine.interp import run_native
from repro.workloads import all_benchmarks, benchmark, fp_benchmarks, int_benchmarks, load_benchmark

ALL_NAMES = [b.name for b in all_benchmarks()]


class TestRegistry:
    def test_suite_composition(self):
        assert len(int_benchmarks()) == 12
        assert len(fp_benchmarks()) == 10
        # the paper's Table 1 columns exist
        assert benchmark("crafty").suite == "int"
        assert benchmark("vpr").suite == "int"
        # the paper's Figure 5 headline FP benchmark exists
        assert benchmark("mgrid").suite == "fp"

    def test_descriptions_present(self):
        for b in all_benchmarks():
            assert b.description

    def test_short_run_benchmarks_marked(self):
        assert benchmark("gcc").runs > 1
        assert benchmark("perlbmk").runs > 1
        assert benchmark("mgrid").runs == 1


@pytest.mark.parametrize("name", ALL_NAMES)
class TestEveryBenchmark:
    def test_compiles_and_runs(self, name):
        image = load_benchmark(name, "test")
        result = run_native(Process(image))
        assert result.exit_code == 0
        assert result.output  # every benchmark prints a checksum
        assert result.instructions > 10_000

    @pytest.mark.slow
    def test_deterministic(self, name):
        image = load_benchmark(name, "test")
        a = run_native(Process(image))
        b = run_native(Process(image))
        assert a.output == b.output
        assert a.cycles == b.cycles


# Transparency across the full suite is the expensive king of tests; it
# runs every benchmark under the full runtime configuration.  Deselected
# from the default run (see pyproject.toml); run with -m slow.
@pytest.mark.slow
@pytest.mark.parametrize("name", ALL_NAMES)
def test_transparent_under_full_runtime(name):
    image = load_benchmark(name, "test")
    native = run_native(Process(image))
    dr = DynamoRIO(Process(image), options=RuntimeOptions.with_traces())
    result = dr.run()
    assert result.output == native.output, name
    assert result.exit_code == native.exit_code, name


def _opcode_histogram(image):
    from collections import Counter

    counts = Counter()
    for section in image.sections:
        if section.writable:
            continue
        off = 0
        while off < len(section.data):
            try:
                d = decode_full(section.data, off, pc=section.addr + off)
            except Exception:
                break
            counts[d.opcode] += 1
            off += d.length
    return counts


class TestPaperArtifacts:
    """Each client's target artifact must exist in the right benchmarks."""

    def test_parser_has_jump_tables(self):
        counts = _opcode_histogram(load_benchmark("parser", "test"))
        assert counts[Opcode.JMP_IND] >= 1

    def test_perlbmk_has_indirect_calls(self):
        counts = _opcode_histogram(load_benchmark("perlbmk", "test"))
        assert counts[Opcode.CALL_IND] >= 1

    def test_fp_benchmarks_use_fp_opcodes(self):
        for name in ("mgrid", "swim", "applu"):
            counts = _opcode_histogram(load_benchmark(name, "test"))
            fp_ops = counts[Opcode.FLD] + counts[Opcode.FADD] + counts[Opcode.FMUL]
            assert fp_ops > 10, name

    def test_int_benchmarks_have_incdec(self):
        for name in ("gzip", "vortex", "parser"):
            counts = _opcode_histogram(load_benchmark(name, "test"))
            assert counts[Opcode.INC] + counts[Opcode.DEC] >= 1, name

    def test_call_density_highest_in_vortex_like(self):
        vortex = _opcode_histogram(load_benchmark("vortex", "test"))
        assert vortex[Opcode.CALL] >= 5

    def test_scales_change_work(self):
        small = run_native(Process(load_benchmark("vpr", 1)))
        bigger = run_native(Process(load_benchmark("vpr", 2)))
        assert bigger.instructions > small.instructions * 1.5
