"""Property-based end-to-end transparency fuzzing.

Hypothesis generates random (terminating-by-construction) MiniC
programs; each must produce byte-identical output natively and under
the full runtime with all four optimization clients applied.  This is
the strongest single property in the repository: it exercises the
compiler, the ISA, both executors, the trace builder, and every client
transformation at once.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.clients import make_all_optimizations
from repro.core import DynamoRIO, RuntimeOptions
from repro.loader import Process
from repro.machine.interp import run_native
from repro.minicc import compile_source

pytestmark = pytest.mark.slow

VARS = ["a", "b", "c", "d"]

atoms = st.one_of(
    st.integers(min_value=0, max_value=1000).map(str),
    st.sampled_from(VARS),
)


@st.composite
def expressions(draw, depth=2):
    if depth == 0:
        return draw(atoms)
    op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^", ">>", "<<"]))
    left = draw(expressions(depth=depth - 1))
    right = draw(expressions(depth=depth - 1))
    if op == "<<":
        right = draw(st.integers(min_value=0, max_value=8).map(str))
    if op == ">>":
        right = draw(st.integers(min_value=0, max_value=8).map(str))
    return "(%s %s %s)" % (left, op, right)


@st.composite
def statements(draw, depth=2):
    kind = draw(
        st.sampled_from(
            ["assign", "incdec", "if", "loop", "compound"]
            if depth > 0
            else ["assign", "incdec"]
        )
    )
    if kind == "assign":
        var = draw(st.sampled_from(VARS))
        return "%s = %s;" % (var, draw(expressions()))
    if kind == "incdec":
        var = draw(st.sampled_from(VARS))
        return "%s%s;" % (var, draw(st.sampled_from(["++", "--"])))
    if kind == "if":
        cond_op = draw(st.sampled_from(["<", ">", "==", "!=", "<=", ">="]))
        cond = "%s %s %s" % (
            draw(st.sampled_from(VARS)),
            cond_op,
            draw(atoms),
        )
        then = draw(statements(depth=depth - 1))
        if draw(st.booleans()):
            other = draw(statements(depth=depth - 1))
            return "if (%s) { %s } else { %s }" % (cond, then, other)
        return "if (%s) { %s }" % (cond, then)
    if kind == "loop":
        # bounded by construction: loop variable is private to the loop
        bound = draw(st.integers(min_value=1, max_value=12))
        body = draw(statements(depth=depth - 1))
        return "for (t = 0; t < %d; t++) { %s }" % (bound, body)
    body = [draw(statements(depth=depth - 1)) for _ in range(2)]
    return " ".join(body)


@st.composite
def programs(draw):
    seed_values = [draw(st.integers(0, 9999)) for _ in VARS]
    inits = "\n    ".join(
        "%s = %d;" % (var, value) for var, value in zip(VARS, seed_values)
    )
    body = "\n    ".join(draw(statements()) for _ in range(4))
    prints = "\n    ".join("print(%s);" % var for var in VARS)
    return (
        "int main() {\n"
        "    int a; int b; int c; int d; int t;\n"
        "    t = 0;\n"
        "    %s\n    %s\n    %s\n    return 0;\n}"
        % (inits, body, prints)
    )


@given(programs())
@settings(max_examples=40, deadline=None)
def test_random_programs_transparent_under_all_clients(source):
    image = compile_source(source)
    native = run_native(Process(image))
    opts = RuntimeOptions.with_traces()
    opts.trace_threshold = 3  # force trace building even on tiny runs
    runtime = DynamoRIO(
        Process(image), options=opts, client=make_all_optimizations()
    )
    result = runtime.run()
    assert result.output == native.output, source
    assert result.exit_code == native.exit_code, source


@given(programs())
@settings(max_examples=15, deadline=None)
def test_random_programs_transparent_under_bb_cache(source):
    image = compile_source(source)
    native = run_native(Process(image))
    result = DynamoRIO(
        Process(image), options=RuntimeOptions.bb_cache_only()
    ).run()
    assert result.output == native.output, source
