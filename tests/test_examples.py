"""Every example script must run cleanly (they are living documentation)."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
EXAMPLES = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)


def test_examples_exist():
    assert len(EXAMPLES) >= 3  # the deliverable floor; we ship more


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()  # every example narrates what it shows
