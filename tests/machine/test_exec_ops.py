import pytest

from repro.isa.opcodes import Opcode
from repro.isa.operands import OPND_IMM8, OPND_IMM32, OPND_MEM, OPND_REG
from repro.isa.registers import Reg
from repro.machine.cpu import CPU
from repro.machine.errors import MachineFault, ProgramExit
from repro.machine.exec_ops import (
    effective_address,
    execute_noncti,
    read_operand,
    write_operand,
)
from repro.machine.memory import Memory
from repro.machine.system import System


@pytest.fixture
def machine():
    return CPU(), Memory(size=0x10000), System()


def ex(machine, opcode, *ops):
    cpu, mem, system = machine
    execute_noncti(cpu, mem, system, opcode, ops)
    return cpu, mem, system


class TestAddressing:
    def test_effective_address(self, machine):
        cpu, _, _ = machine
        cpu.regs[Reg.EBX] = 0x1000
        cpu.regs[Reg.ECX] = 4
        op = OPND_MEM(base=Reg.EBX, index=Reg.ECX, scale=4, disp=0x20)
        assert effective_address(cpu, op) == 0x1030

    def test_address_wraps(self, machine):
        cpu, _, _ = machine
        cpu.regs[Reg.EBX] = 0xFFFFFFFF
        assert effective_address(cpu, OPND_MEM(base=Reg.EBX, disp=2)) == 1

    def test_read_sizes(self, machine):
        cpu, mem, _ = machine
        mem.write_u32(0x100, 0xAABBCCDD)
        cpu.regs[Reg.ESI] = 0x100
        assert read_operand(cpu, mem, OPND_MEM(base=Reg.ESI, size=1)) == 0xDD
        assert read_operand(cpu, mem, OPND_MEM(base=Reg.ESI, size=2)) == 0xCCDD
        assert read_operand(cpu, mem, OPND_MEM(base=Reg.ESI, size=4)) == 0xAABBCCDD

    def test_write_byte(self, machine):
        cpu, mem, _ = machine
        mem.write_u32(0x100, 0xFFFFFFFF)
        write_operand(cpu, mem, OPND_MEM(disp=0x100, size=1), 0xAB)
        assert mem.read_u32(0x100) == 0xFFFFFFAB


class TestDataMovement:
    def test_mov_reg_imm(self, machine):
        cpu, _, _ = ex(machine, Opcode.MOV, OPND_REG(Reg.EAX), OPND_IMM32(42))
        assert cpu.regs[Reg.EAX] == 42

    def test_movzx(self, machine):
        cpu, mem, _ = machine
        mem.write_u8(0x200, 0xFF)
        ex(machine, Opcode.MOVZX, OPND_REG(Reg.EAX), OPND_MEM(disp=0x200, size=1))
        assert cpu.regs[Reg.EAX] == 0xFF

    def test_movsx(self, machine):
        cpu, mem, _ = machine
        mem.write_u8(0x200, 0xFF)
        ex(machine, Opcode.MOVSX, OPND_REG(Reg.EAX), OPND_MEM(disp=0x200, size=1))
        assert cpu.regs[Reg.EAX] == 0xFFFFFFFF

    def test_lea_does_not_touch_memory(self, machine):
        cpu, mem, _ = machine
        cpu.regs[Reg.EBP] = 0x9000  # out of memory bounds: proves no access
        ex(machine, Opcode.LEA, OPND_REG(Reg.EAX), OPND_MEM(base=Reg.EBP, disp=-8))
        assert cpu.regs[Reg.EAX] == 0x8FF8

    def test_xchg(self, machine):
        cpu, _, _ = machine
        cpu.regs[Reg.EAX], cpu.regs[Reg.EBX] = 1, 2
        ex(machine, Opcode.XCHG, OPND_REG(Reg.EAX), OPND_REG(Reg.EBX))
        assert (cpu.regs[Reg.EAX], cpu.regs[Reg.EBX]) == (2, 1)


class TestStack:
    def test_push_pop(self, machine):
        cpu, mem, _ = machine
        cpu.regs[Reg.ESP] = 0x8000
        ex(machine, Opcode.PUSH, OPND_IMM32(77))
        assert cpu.regs[Reg.ESP] == 0x7FFC
        assert mem.read_u32(0x7FFC) == 77
        ex(machine, Opcode.POP, OPND_REG(Reg.EDI))
        assert cpu.regs[Reg.EDI] == 77
        assert cpu.regs[Reg.ESP] == 0x8000


class TestArithmetic:
    def test_div(self, machine):
        cpu, _, _ = machine
        cpu.regs[Reg.EAX] = 17
        cpu.regs[Reg.EBX] = 5
        ex(machine, Opcode.DIV, OPND_REG(Reg.EBX))
        assert cpu.regs[Reg.EAX] == 3
        assert cpu.regs[Reg.EDX] == 2

    def test_div_by_zero_faults(self, machine):
        with pytest.raises(MachineFault):
            ex(machine, Opcode.DIV, OPND_REG(Reg.EBX))

    def test_add_to_memory(self, machine):
        cpu, mem, _ = machine
        mem.write_u32(0x300, 10)
        ex(machine, Opcode.ADD, OPND_MEM(disp=0x300), OPND_IMM8(5))
        assert mem.read_u32(0x300) == 15

    def test_not_leaves_flags(self, machine):
        cpu, _, _ = machine
        cpu.eflags = 0xFF
        ex(machine, Opcode.NOT, OPND_REG(Reg.EAX))
        assert cpu.eflags == 0xFF
        assert cpu.regs[Reg.EAX] == 0xFFFFFFFF


class TestFixedPointFP:
    def test_fld_fst(self, machine):
        cpu, mem, _ = machine
        mem.write_u32(0x400, 1234)
        ex(machine, Opcode.FLD, OPND_REG(Reg.EAX), OPND_MEM(disp=0x400))
        assert cpu.regs[Reg.EAX] == 1234
        ex(machine, Opcode.FST, OPND_MEM(disp=0x404), OPND_REG(Reg.EAX))
        assert mem.read_u32(0x404) == 1234

    def test_fp_ops_do_not_touch_flags(self, machine):
        cpu, _, _ = machine
        cpu.eflags = 0x1234 & 0xFD5  # some flag pattern
        cpu.regs[Reg.EAX] = 3
        cpu.regs[Reg.EDX] = 4
        before = cpu.eflags
        ex(machine, Opcode.FMUL, OPND_REG(Reg.EAX), OPND_REG(Reg.EDX))
        assert cpu.regs[Reg.EAX] == 12
        assert cpu.eflags == before

    def test_fdiv_truncates_toward_zero(self, machine):
        cpu, _, _ = machine
        cpu.regs[Reg.EAX] = (-7) & 0xFFFFFFFF
        cpu.regs[Reg.EDX] = 2
        ex(machine, Opcode.FDIV, OPND_REG(Reg.EAX), OPND_REG(Reg.EDX))
        assert cpu.regs[Reg.EAX] == (-3) & 0xFFFFFFFF

    def test_fdiv_by_zero_faults(self, machine):
        cpu, _, _ = machine
        with pytest.raises(MachineFault):
            ex(machine, Opcode.FDIV, OPND_REG(Reg.EAX), OPND_REG(Reg.EDX))


class TestSyscalls:
    def test_exit(self, machine):
        cpu, _, system = machine
        cpu.regs[Reg.EAX] = 1
        cpu.regs[Reg.EBX] = 7
        with pytest.raises(ProgramExit) as exc:
            ex(machine, Opcode.SYSCALL)
        assert exc.value.code == 7
        assert system.exit_code == 7

    def test_write_byte_and_u32(self, machine):
        cpu, _, system = machine
        cpu.regs[Reg.EAX] = 2
        cpu.regs[Reg.EBX] = 0x41
        ex(machine, Opcode.SYSCALL)
        cpu.regs[Reg.EAX] = 3
        cpu.regs[Reg.EBX] = 0x12345678
        ex(machine, Opcode.SYSCALL)
        assert system.output_bytes() == b"A" + (0x12345678).to_bytes(4, "little")

    def test_unknown_syscall_faults(self, machine):
        cpu, _, _ = machine
        cpu.regs[Reg.EAX] = 99
        with pytest.raises(MachineFault):
            ex(machine, Opcode.SYSCALL)
