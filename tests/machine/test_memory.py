import pytest

from repro.machine.errors import MachineFault
from repro.machine.memory import Memory


class TestAccess:
    def test_u8_roundtrip(self):
        m = Memory(size=0x1000)
        m.write_u8(0x10, 0xAB)
        assert m.read_u8(0x10) == 0xAB

    def test_u32_little_endian(self):
        m = Memory(size=0x1000)
        m.write_u32(0x20, 0x12345678)
        assert m.read_u8(0x20) == 0x78
        assert m.read_u8(0x23) == 0x12
        assert m.read_u32(0x20) == 0x12345678

    def test_u16(self):
        m = Memory(size=0x1000)
        m.write_bytes(0x30, b"\xcd\xab")
        assert m.read_u16(0x30) == 0xABCD

    def test_bytes_roundtrip(self):
        m = Memory(size=0x1000)
        m.write_bytes(0x40, b"hello")
        assert m.read_bytes(0x40, 5) == b"hello"

    def test_wraps_value_to_32_bits(self):
        m = Memory(size=0x1000)
        m.write_u32(0, 0x1_2345_6789)
        assert m.read_u32(0) == 0x23456789

    def test_out_of_range_faults(self):
        m = Memory(size=0x100)
        with pytest.raises(MachineFault):
            m.read_u32(0x100)
        with pytest.raises(MachineFault):
            m.write_u8(0x4000, 1)


class TestRegions:
    def test_overlap_rejected(self):
        m = Memory(size=0x10000)
        m.add_region("a", 0x0, 0x100)
        with pytest.raises(MachineFault):
            m.add_region("b", 0x80, 0x100)

    def test_region_containing(self):
        m = Memory(size=0x10000)
        r = m.add_region("code", 0x1000, 0x100)
        assert m.region_containing(0x1050) is r
        assert m.region_containing(0x2000) is None

    def test_write_protection(self):
        m = Memory(size=0x10000)
        m.add_region("code", 0x1000, 0x100, writable=False)
        m.write_u32(0x1000, 1)  # protection off by default
        m.set_protection(True)
        with pytest.raises(MachineFault):
            m.write_u32(0x1000, 2)
        m.write_u32(0x5000, 3)  # outside any region: allowed

    def test_region_past_memory_rejected(self):
        m = Memory(size=0x100)
        with pytest.raises(MachineFault):
            m.add_region("big", 0x80, 0x100)
