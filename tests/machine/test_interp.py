"""Interpreter tests: semantics, cost events, native vs emulation."""

import pytest

from repro.asm import CodeBuilder, assemble, mem
from repro.isa.registers import Reg
from repro.loader import Process
from repro.machine.cost import CostModel, Family
from repro.machine.errors import MachineFault
from repro.machine.interp import Interpreter, run_emulated, run_native


SUM_LOOP = """
.entry main
.text
main:
    mov eax, 0
    mov ecx, 100
loop:
    add eax, ecx
    dec ecx
    jnz loop
    mov ebx, eax
    mov eax, 3
    syscall
    mov eax, 1
    mov ebx, 0
    syscall
"""


def run_src(src, **kw):
    return run_native(Process(assemble(src)), **kw)


class TestSemantics:
    def test_sum_loop(self):
        r = run_src(SUM_LOOP)
        assert int.from_bytes(r.output, "little") == 5050
        assert r.exit_code == 0

    def test_call_ret(self):
        src = """
.entry main
.text
double:
    add eax, eax
    ret
main:
    mov eax, 21
    call double
    mov ebx, eax
    mov eax, 3
    syscall
    mov eax, 1
    syscall
"""
        r = run_src(src)
        assert int.from_bytes(r.output, "little") == 42

    def test_indirect_call_through_register(self):
        src = """
.entry main
.text
f:
    mov eax, 99
    ret
main:
    mov edx, 0x1000
    calli edx        ; f is at the image base 0x1000
    mov ebx, eax
    mov eax, 3
    syscall
    mov eax, 1
    syscall
"""
        r = run_src(src)
        assert int.from_bytes(r.output, "little") == 99

    def test_recursion(self):
        # factorial(6) via recursion exercises deep call/ret + stack
        src = """
.entry main
.text
fact:
    cmp eax, 1
    jnbe rec
    mov eax, 1
    ret
rec:
    push eax
    dec eax
    call fact
    pop ecx
    imul eax, ecx
    ret
main:
    mov eax, 6
    call fact
    mov ebx, eax
    mov eax, 3
    syscall
    mov eax, 1
    syscall
"""
        r = run_src(src)
        assert int.from_bytes(r.output, "little") == 720

    def test_jump_table(self):
        b = CodeBuilder(base=0x1000)
        b.mov(Reg.EAX, 2)  # select case 2
        b.mov(Reg.EBX, b.label_address("table"))
        b.jmp_ind(mem(base=Reg.EBX, index=Reg.EAX, scale=4))
        b.label("case0")
        b.mov(Reg.EBX, 100)
        b.jmp("done")
        b.label("case1")
        b.mov(Reg.EBX, 200)
        b.jmp("done")
        b.label("case2")
        b.mov(Reg.EBX, 300)
        b.jmp("done")
        b.label("done")
        b.mov(Reg.EAX, 3)
        b.syscall()
        b.mov(Reg.EAX, 1)
        b.syscall()
        # table of code addresses appended after code
        b.label("table")
        code, labels = b.assemble()
        # rebuild with the table contents now that addresses are known
        for case in ("case0", "case1", "case2"):
            b.raw(labels[case].to_bytes(4, "little"))
        image = b.image(entry=0x1000)
        r = run_native(Process(image))
        assert int.from_bytes(r.output, "little") == 300

    def test_instruction_budget(self):
        src = """
.entry main
.text
main:
    jmp main
"""
        with pytest.raises(MachineFault):
            run_src(src, max_instructions=1000)


class TestCostModel:
    def test_emulation_slower_than_native(self):
        img = assemble(SUM_LOOP)
        native = run_native(Process(img))
        emulated = run_emulated(Process(img))
        assert emulated.output == native.output
        ratio = emulated.cycles / native.cycles
        assert ratio > 50  # paper Table 1: "several hundred"

    def test_deterministic(self):
        img = assemble(SUM_LOOP)
        r1 = run_native(Process(img))
        r2 = run_native(Process(img))
        assert r1.cycles == r2.cycles
        assert r1.instructions == r2.instructions

    def test_branch_events_counted(self):
        r = run_src(SUM_LOOP)
        assert r.events.get("branch_taken", 0) == 99
        assert r.events.get("branch_not_taken", 0) == 1

    def test_ras_predicts_matched_returns(self):
        src = """
.entry main
.text
f:
    ret
main:
    mov ecx, 50
loop:
    call f
    dec ecx
    jnz loop
    mov eax, 1
    syscall
"""
        r = run_src(src)
        # All returns match their calls: no RAS misses.
        assert r.events.get("ras_miss", 0) == 0

    def test_btb_miss_on_alternating_targets(self):
        # An indirect jump that alternates targets misses every time
        # after the first; one that repeats hits.
        src = """
.entry main
.text
main:
    mov edi, 0          ; loop counter
    mov ebx, 0x1000
loop:
    mov eax, edi
    and eax, 1
    shl eax, 2
    add eax, table
    jmpi dword [eax]
t0:
    jmp next
t1:
    jmp next
next:
    inc edi
    cmp edi, 20
    jnz loop
    mov eax, 1
    syscall
.data 0x100000
table: dd 0
       dd 0
"""
        # Patch the table with the code labels (the assembler cannot
        # reference code labels from data, so write them at runtime
        # here in the test).
        img = assemble(src)
        proc = Process(img)
        proc.memory.write_u32(0x100000, img.symbol("t0"))
        proc.memory.write_u32(0x100004, img.symbol("t1"))
        r = Interpreter(proc).run()
        assert r.events.get("btb_miss", 0) >= 19

    def test_p4_inc_slower_than_add(self):
        inc_src = """
.entry main
.text
main:
    mov ecx, 1000
loop:
    inc eax
    dec ecx
    jnz loop
    mov eax, 1
    syscall
"""
        add_src = inc_src.replace("inc eax", "add eax, 1")
        p4 = CostModel(Family.PENTIUM_IV)
        inc_cycles = run_native(Process(assemble(inc_src)), cost_model=p4).cycles
        add_cycles = run_native(Process(assemble(add_src)), cost_model=p4).cycles
        assert inc_cycles > add_cycles
        # And the opposite on the Pentium 3 (dec still in the loop).
        p3 = CostModel(Family.PENTIUM_III)
        inc_p3 = run_native(Process(assemble(inc_src)), cost_model=p3).cycles
        add_p3 = run_native(Process(assemble(add_src)), cost_model=p3).cycles
        assert add_p3 > inc_p3


class TestTransparencyBaseline:
    def test_native_and_emulated_state_identical(self):
        """Output equality between execution modes is the base case of
        the transparency property the runtime must preserve."""
        src = """
.entry main
.text
main:
    mov ecx, 10
    mov esi, 0x100000
loop:
    mov [esi], ecx
    mov eax, [esi]
    imul eax, ecx
    mov ebx, eax
    mov eax, 3
    syscall
    dec ecx
    jnz loop
    mov eax, 1
    mov ebx, 0
    syscall
"""
        img = assemble(src)
        a = run_native(Process(img))
        b = run_emulated(Process(img))
        assert a.output == b.output
        assert a.exit_code == b.exit_code
        assert a.instructions == b.instructions
