"""Branch predictor and cost model unit tests."""

from repro.isa.opcodes import Opcode, opcode_info
from repro.machine.cost import CostModel, CycleCounter, Family
from repro.machine.predictors import BranchTargetBuffer, ReturnAddressStack


class TestBTB:
    def test_first_encounter_misses(self):
        btb = BranchTargetBuffer()
        assert not btb.predict_and_update(0x100, 0x200)

    def test_repeated_target_hits(self):
        btb = BranchTargetBuffer()
        btb.predict_and_update(0x100, 0x200)
        assert btb.predict_and_update(0x100, 0x200)

    def test_alternating_targets_always_miss(self):
        btb = BranchTargetBuffer()
        btb.predict_and_update(0x100, 0x200)
        assert not btb.predict_and_update(0x100, 0x300)
        assert not btb.predict_and_update(0x100, 0x200)

    def test_sites_independent(self):
        btb = BranchTargetBuffer()
        btb.predict_and_update(0x100, 0x200)
        assert not btb.predict_and_update(0x104, 0x200)

    def test_reset(self):
        btb = BranchTargetBuffer()
        btb.predict_and_update(0x100, 0x200)
        btb.reset()
        assert not btb.predict_and_update(0x100, 0x200)


class TestRAS:
    def test_matched_call_return(self):
        ras = ReturnAddressStack()
        ras.push(0x500)
        assert ras.pop_and_check(0x500)

    def test_mismatched_return(self):
        ras = ReturnAddressStack()
        ras.push(0x500)
        assert not ras.pop_and_check(0x600)

    def test_underflow_mispredicts(self):
        ras = ReturnAddressStack()
        assert not ras.pop_and_check(0x500)

    def test_nesting(self):
        ras = ReturnAddressStack()
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop_and_check(0x200)
        assert ras.pop_and_check(0x100)

    def test_bounded_depth_drops_oldest(self):
        ras = ReturnAddressStack(depth=2)
        ras.push(0x100)
        ras.push(0x200)
        ras.push(0x300)  # 0x100 falls off
        assert ras.pop_and_check(0x300)
        assert ras.pop_and_check(0x200)
        assert not ras.pop_and_check(0x100)


class TestCostModel:
    def test_p4_incdec_stall(self):
        p4 = CostModel(Family.PENTIUM_IV)
        p3 = CostModel(Family.PENTIUM_III)
        info = opcode_info(Opcode.INC)
        assert p4.instr_cost(info, False, False) > p3.instr_cost(info, False, False)

    def test_p3_add_imm1_extra(self):
        p4 = CostModel(Family.PENTIUM_IV)
        p3 = CostModel(Family.PENTIUM_III)
        info = opcode_info(Opcode.ADD)
        assert p3.instr_cost(info, False, False, imm1=True) > p4.instr_cost(
            info, False, False, imm1=True
        )

    def test_memory_extras(self):
        cost = CostModel()
        info = opcode_info(Opcode.MOV)
        plain = cost.instr_cost(info, False, False)
        load = cost.instr_cost(info, True, False)
        store = cost.instr_cost(info, False, True)
        assert load == plain + cost.mem_read_extra
        assert store == plain + cost.mem_write_extra

    def test_fp_slower_than_int(self):
        cost = CostModel()
        assert cost.instr_cost(
            opcode_info(Opcode.FMUL), False, False
        ) > cost.instr_cost(opcode_info(Opcode.IMUL), False, False)

    def test_copy_is_independent(self):
        a = CostModel()
        b = a.copy()
        b.ibl_lookup = 999
        assert a.ibl_lookup != 999


class TestCycleCounter:
    def test_charge_and_count(self):
        counter = CycleCounter()
        counter.charge(10, "foo")
        counter.charge(5)
        counter.count("bar")
        assert counter.cycles == 15
        assert counter.events == {"foo": 1, "bar": 1}

    def test_merge(self):
        a, b = CycleCounter(), CycleCounter()
        a.charge(10, "x")
        b.charge(20, "x")
        b.charge(1, "y")
        a.merge(b)
        assert a.cycles == 31
        assert a.events == {"x": 2, "y": 1}
