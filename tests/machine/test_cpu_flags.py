"""IA-32 flag semantics tests, including hypothesis cross-checks."""

from hypothesis import given, settings, strategies as st

from repro.isa.eflags import CF, PF, AF, ZF, SF, OF
from repro.isa.opcodes import Opcode
from repro.machine.cpu import CPU

u32 = st.integers(min_value=0, max_value=0xFFFFFFFF)


def signed(v):
    return v - 0x100000000 if v & 0x80000000 else v


class TestAdd:
    def test_simple(self):
        cpu = CPU()
        assert cpu.flags_add(2, 3) == 5
        assert not cpu.get_flag(CF) and not cpu.get_flag(ZF)

    def test_carry(self):
        cpu = CPU()
        assert cpu.flags_add(0xFFFFFFFF, 1) == 0
        assert cpu.get_flag(CF) and cpu.get_flag(ZF)
        assert not cpu.get_flag(OF)  # -1 + 1 does not overflow signed

    def test_signed_overflow(self):
        cpu = CPU()
        cpu.flags_add(0x7FFFFFFF, 1)
        assert cpu.get_flag(OF) and cpu.get_flag(SF)
        assert not cpu.get_flag(CF)

    @given(u32, u32)
    @settings(max_examples=200)
    def test_flags_match_reference(self, a, b):
        cpu = CPU()
        res = cpu.flags_add(a, b)
        assert res == (a + b) & 0xFFFFFFFF
        assert cpu.get_flag(CF) == (a + b > 0xFFFFFFFF)
        assert cpu.get_flag(ZF) == (res == 0)
        assert cpu.get_flag(SF) == bool(res & 0x80000000)
        expected_of = not (-(2**31) <= signed(a) + signed(b) <= 2**31 - 1)
        assert cpu.get_flag(OF) == expected_of
        assert cpu.get_flag(PF) == (bin(res & 0xFF).count("1") % 2 == 0)


class TestSub:
    def test_borrow(self):
        cpu = CPU()
        assert cpu.flags_sub(1, 2) == 0xFFFFFFFF
        assert cpu.get_flag(CF) and cpu.get_flag(SF)

    @given(u32, u32)
    @settings(max_examples=200)
    def test_flags_match_reference(self, a, b):
        cpu = CPU()
        res = cpu.flags_sub(a, b)
        assert res == (a - b) & 0xFFFFFFFF
        assert cpu.get_flag(CF) == (a < b)
        assert cpu.get_flag(ZF) == (a == b)
        expected_of = not (-(2**31) <= signed(a) - signed(b) <= 2**31 - 1)
        assert cpu.get_flag(OF) == expected_of


class TestIncDec:
    """inc/dec preserve CF — the property the paper's strength-reduction
    client must check before substituting add/sub."""

    @given(u32, st.booleans())
    @settings(max_examples=100)
    def test_inc_preserves_cf(self, a, cf):
        cpu = CPU()
        cpu.set_flag(CF, cf)
        res = cpu.flags_inc(a)
        assert res == (a + 1) & 0xFFFFFFFF
        assert cpu.get_flag(CF) == cf  # untouched
        assert cpu.get_flag(ZF) == (res == 0)

    @given(u32, st.booleans())
    @settings(max_examples=100)
    def test_dec_preserves_cf(self, a, cf):
        cpu = CPU()
        cpu.set_flag(CF, cf)
        res = cpu.flags_dec(a)
        assert res == (a - 1) & 0xFFFFFFFF
        assert cpu.get_flag(CF) == cf

    @given(u32)
    @settings(max_examples=100)
    def test_inc_other_flags_match_add1(self, a):
        """Apart from CF, inc computes exactly add-1 flags — which is why
        the substitution is safe whenever CF is dead."""
        cpu_inc, cpu_add = CPU(), CPU()
        assert cpu_inc.flags_inc(a) == cpu_add.flags_add(a, 1)
        mask = ~CF & (CF | PF | AF | ZF | SF | OF)
        assert (cpu_inc.eflags & mask) == (cpu_add.eflags & mask)

    def test_inc_overflow(self):
        cpu = CPU()
        cpu.flags_inc(0x7FFFFFFF)
        assert cpu.get_flag(OF)


class TestLogic:
    def test_clears_cf_of(self):
        cpu = CPU()
        cpu.set_flag(CF, True)
        cpu.set_flag(OF, True)
        cpu.flags_logic(0xFF)
        assert not cpu.get_flag(CF) and not cpu.get_flag(OF)

    def test_zero(self):
        cpu = CPU()
        cpu.flags_logic(0)
        assert cpu.get_flag(ZF) and cpu.get_flag(PF)


class TestShifts:
    def test_shl_carry_out(self):
        cpu = CPU()
        assert cpu.flags_shl(0x80000000, 1) == 0
        assert cpu.get_flag(CF) and cpu.get_flag(ZF)

    def test_shl_zero_count_keeps_flags(self):
        cpu = CPU()
        cpu.set_flag(CF, True)
        assert cpu.flags_shl(5, 0) == 5
        assert cpu.get_flag(CF)

    def test_shr(self):
        cpu = CPU()
        assert cpu.flags_shr(0b101, 1) == 0b10
        assert cpu.get_flag(CF)

    def test_sar_sign_fill(self):
        cpu = CPU()
        assert cpu.flags_shr(0x80000000, 4, arithmetic=True) == 0xF8000000

    @given(u32, st.integers(0, 31))
    @settings(max_examples=100)
    def test_sar_matches_python_signed_shift(self, a, n):
        cpu = CPU()
        res = cpu.flags_shr(a, n, arithmetic=True)
        assert res == (signed(a) >> n) & 0xFFFFFFFF


class TestNegMul:
    def test_neg(self):
        cpu = CPU()
        assert cpu.flags_neg(1) == 0xFFFFFFFF
        assert cpu.get_flag(CF)
        cpu2 = CPU()
        cpu2.flags_neg(0)
        assert not cpu2.get_flag(CF) and cpu2.get_flag(ZF)

    def test_neg_int_min_overflows(self):
        cpu = CPU()
        assert cpu.flags_neg(0x80000000) == 0x80000000
        assert cpu.get_flag(OF)

    @given(u32, u32)
    @settings(max_examples=100)
    def test_imul_truncates(self, a, b):
        cpu = CPU()
        res = cpu.flags_imul(a, b)
        assert res == (signed(a) * signed(b)) & 0xFFFFFFFF
        fits = -(2**31) <= signed(a) * signed(b) <= 2**31 - 1
        assert cpu.get_flag(OF) == (not fits)
        assert cpu.get_flag(CF) == (not fits)


class TestConditions:
    def test_jz_jnz(self):
        cpu = CPU()
        cpu.flags_sub(5, 5)
        assert cpu.condition_holds(Opcode.JZ)
        assert not cpu.condition_holds(Opcode.JNZ)

    def test_signed_comparisons(self):
        cpu = CPU()
        cpu.flags_sub(1, 2)  # 1 < 2 signed
        assert cpu.condition_holds(Opcode.JL)
        assert cpu.condition_holds(Opcode.JLE)
        assert not cpu.condition_holds(Opcode.JNL)

    def test_unsigned_comparisons(self):
        cpu = CPU()
        cpu.flags_sub(1, 0xFFFFFFFF)  # 1 < 0xFFFFFFFF unsigned
        assert cpu.condition_holds(Opcode.JB)
        assert not cpu.condition_holds(Opcode.JNB)

    @given(u32, u32)
    @settings(max_examples=200)
    def test_all_comparison_conditions_consistent(self, a, b):
        cpu = CPU()
        cpu.flags_sub(a, b)
        sa, sb = signed(a), signed(b)
        assert cpu.condition_holds(Opcode.JZ) == (a == b)
        assert cpu.condition_holds(Opcode.JB) == (a < b)
        assert cpu.condition_holds(Opcode.JBE) == (a <= b)
        assert cpu.condition_holds(Opcode.JNBE) == (a > b)
        assert cpu.condition_holds(Opcode.JL) == (sa < sb)
        assert cpu.condition_holds(Opcode.JLE) == (sa <= sb)
        assert cpu.condition_holds(Opcode.JNL) == (sa >= sb)
        assert cpu.condition_holds(Opcode.JNLE) == (sa > sb)
