"""FaultPlan determinism and the chaos harness contract.

The fault-injection layer only earns its keep if it is *repeatable*:
the same ``(kind, seed)`` must misbehave at the same hook invocations
every run, on both engines, so a chaos failure reproduces from its
matrix cell alone.
"""

import pytest

from repro.ir.instr import LabelRef
from repro.isa.opcodes import Opcode
from repro.minicc import compile_source
from repro.resilience.faultinject import (
    FAULT_KINDS,
    FaultInjectingClient,
    FaultPlan,
    corrupt_instrlist,
)
from repro.tools import chaos


def test_fault_plan_is_deterministic():
    for kind in FAULT_KINDS:
        for seed in range(6):
            a = FaultPlan(kind, seed)
            b = FaultPlan(kind, seed)
            assert (a.start, a.period) == (b.start, b.period)
            assert [a.fires(n) for n in range(1, 30)] == [
                b.fires(n) for n in range(1, 30)
            ]


def test_fault_plan_schedule_shape():
    plan = FaultPlan("raise_in_hook", 0)
    fired = [n for n in range(1, 40) if plan.fires(n)]
    assert fired[0] == plan.start
    assert all(
        later - earlier == plan.period
        for earlier, later in zip(fired, fired[1:])
    )
    # Nothing before the start.
    assert not any(plan.fires(n) for n in range(1, plan.start))


def test_fault_plans_vary_with_seed_and_kind():
    schedules = {
        (kind, seed): (FaultPlan(kind, seed).start, FaultPlan(kind, seed).period)
        for kind in FAULT_KINDS
        for seed in range(8)
    }
    # Not all cells collapse to one schedule.
    assert len(set(schedules.values())) > 1


def test_unknown_fault_kind_rejected():
    with pytest.raises(ValueError):
        FaultPlan("made_up_kind", 0)


def test_corrupt_instrlist_targets_orphan_label(loop_image):
    from repro.core.bb_builder import build_basic_block
    from repro.loader import Process

    process = Process(loop_image)
    ilist = build_basic_block(process.memory, process.entry)
    members_before = set(map(id, ilist))
    corrupt_instrlist(ilist)
    tail = list(ilist)[-1]
    assert tail.opcode == Opcode.JMP
    assert isinstance(tail.target, LabelRef)
    # The branch targets a label instruction that is not in the list.
    assert id(tail.target.label) not in members_before
    assert tail.target.label not in list(ilist)


def test_injecting_client_delegates_to_inner(loop_image, loop_native):
    from repro.clients import StrengthReduction
    from repro.core import RuntimeOptions

    from tests.conftest import run_under

    options = RuntimeOptions.with_traces()
    options.guard_clients = True
    options.trace_events = True
    options.trace_buffer = None
    inner = StrengthReduction()
    client = FaultInjectingClient(FaultPlan("raise_in_hook", 1), inner=inner)
    runtime, result = run_under(loop_image, options=options, client=client)
    assert result.output == loop_native.output
    assert client.injected >= 1
    assert runtime.stats.client_faults >= 1
    # The inner client saw the non-faulting invocations.
    assert client.bb_calls > client.injected


def test_chaos_run_one_contract(loop_image):
    image = compile_source(chaos.LOOP_SRC)
    ok, detail, result = chaos.run_one(image, "rlr", "raise_in_hook", 0)
    assert ok, detail
    assert result is not None


def test_chaos_smc_workload_builds():
    image = chaos.build_smc_image()
    assert image.entry


def test_chaos_cli_smoke(capsys):
    assert chaos.main(["--seeds", "1", "--fault", "raise_in_hook"]) == 0
    out = capsys.readouterr().out
    assert "0 failures" in out
