"""drshield: runtime self-protection and the failsafe escalation ladder.

The contract under ``options.shield``:

* errant application stores into runtime-owned memory (code cache,
  exit stubs, IBL tables, runtime scratch) are trapped, attributed to
  a faulting application PC, and recovered by invalidating only the
  clobbered unit — output stays byte-identical to native;
* legitimate SMC into *application* code is not the shield's business:
  it keeps flowing through the cache-consistency path;
* internal faults at the runtime's chokepoints climb the ladder
  (retry → discard → flush → disable the faulting subsystem → detach
  to native) and never escape as a traceback;
* the forward-progress watchdog breaks translate/flush livelock;
* ladder events replay exactly onto the live stats and are identical
  across the tuple, closure, and chain engines;
* with the shield off, runs are bit-identical to pre-shield behavior.
"""

import pytest

from repro.core import DynamoRIO, RuntimeOptions
from repro.loader import Process
from repro.machine.interp import run_native
from repro.machine.memory import MachineFault, Memory
from repro.observe.events import replay_stats
from repro.resilience import RuntimeGuard, Shield
from repro.resilience.faultinject import RUNTIME_FAULT_KINDS, RuntimeFaultPlan
from repro.tools.chaos import build_smc_image

from tests.conftest import run_under

ENGINES = ("tuple", "closure", "chain")


def _shield_options(engine="closure", **overrides):
    options = RuntimeOptions.with_traces()
    options.shield = True
    options.trace_events = True
    options.trace_buffer = None
    options.precise_interrupts = True
    options.trace_threshold = 3
    options.closure_engine = engine != "tuple"
    options.chain_engine = engine == "chain"
    options.chain_threshold = 3
    for key, value in overrides.items():
        setattr(options, key, value)
    return options


def _run_with_plan(image, kind, seed=0, engine="closure", start=None,
                   period=None, **overrides):
    runtime = DynamoRIO(
        Process(image), options=_shield_options(engine, **overrides)
    )
    runtime.rguard.plan = RuntimeFaultPlan(
        kind, seed, start=start, period=period
    )
    result = runtime.run()
    return runtime, result


def _ladder_stream(runtime):
    return [
        (ev.kind, ev.tag, ev.data)
        for ev in runtime.observer.events()
        if ev.kind in ("shield_fault", "subsystem_disabled", "watchdog_trip")
    ]


# ------------------------------------------------------------- errant writes


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_errant_write_fuzz_recovers_bit_identical(
    loop_image, loop_native, engine, seed
):
    """Seeded errant stores into cache/stub/IBL/scratch: every one is
    trapped, attributed, recovered — and the program's output is still
    byte-identical to native."""
    runtime, result = _run_with_plan(
        loop_image, "errant_write", seed=seed, engine=engine
    )
    assert result.output == loop_native.output
    assert result.exit_code == loop_native.exit_code
    assert runtime.rguard.injected >= 1
    assert runtime.stats.shield_faults >= 1
    faults = [
        ev for ev in runtime.observer.events() if ev.kind == "shield_fault"
    ]
    for ev in faults:
        assert ev.data["kind"] == "errant_write"
        assert ev.data["region"] in ("code_cache", "runtime_heap")
        assert ev.data["owner"] in (
            "fragment", "stub", "unit", "cache", "ibl", "scratch"
        )
        # Attribution: the faulting *application* PC, not a cache address.
        assert isinstance(ev.data["pc"], int)
    assert replay_stats(runtime.observer.events()) == runtime.stats.as_dict()


def test_errant_write_ladder_identical_across_engines(loop_image):
    streams = []
    for engine in ENGINES:
        runtime, _ = _run_with_plan(
            loop_image, "errant_write", seed=1, engine=engine
        )
        streams.append(_ladder_stream(runtime))
    assert streams[0] == streams[1] == streams[2]
    assert streams[0]  # the plan actually fired


def test_errant_write_invalidates_only_the_clobbered_unit(
    loop_image, monkeypatch
):
    """Surgical recovery: a store into one cache unit flushes that unit
    and leaves everything else untouched."""
    flushed = []
    orig = DynamoRIO._flush_cache

    def spy(self, cache, thread=None):
        flushed.append(cache.name)
        return orig(self, cache, thread=thread)

    monkeypatch.setattr(DynamoRIO, "_flush_cache", spy)
    runtime, result = _run_with_plan(
        loop_image, "errant_write", seed=0, engine="closure"
    )
    hits = [
        ev.data for ev in runtime.observer.events()
        if ev.kind == "shield_fault" and ev.data["owner"] in
        ("fragment", "stub", "unit")
    ]
    assert hits, "no store landed in a cache unit for this seed"
    # Recovery flushed exactly the clobbered units — no detach, no
    # whole-cache teardown, and IBL/scratch hits flushed nothing.
    assert set(flushed) == {h["unit"] for h in hits}
    assert not runtime.detached


def test_smc_still_flows_through_cache_consistency():
    """A legitimate store into *application* code is SMC, not an errant
    write: the consistency path invalidates, the shield stays silent."""
    image = build_smc_image()
    native = run_native(Process(image))
    runtime, result = run_under(
        image, options=_shield_options(cache_consistency=True)
    )
    assert result.output == native.output
    assert result.exit_code == native.exit_code
    assert runtime.stats.smc_invalidations >= 1
    assert runtime.stats.shield_faults == 0
    assert runtime.shield.errant_faults == 0


# ------------------------------------------------------ escalation ladder


def test_persistent_build_fault_climbs_to_detach(loop_image, loop_native):
    """Every bb build raises: retry, flush+retry, then the ladder's
    last rung — a full detach — and the program finishes natively."""
    runtime, result = _run_with_plan(
        loop_image, "runtime_raise:bb_build", start=1, period=1
    )
    assert result.output == loop_native.output
    assert result.exit_code == loop_native.exit_code
    assert runtime.detached
    assert runtime.stats.detaches == 1
    assert runtime.stats.shield_faults == 3
    sites = [entry["site"] for entry in runtime.rguard.fault_log]
    assert sites == ["bb_build"] * 3


def test_transient_build_fault_recovers_by_retry(loop_image, loop_native):
    """One isolated build fault: the first rung (retry) absorbs it and
    the run never detaches or disables anything."""
    runtime, result = _run_with_plan(
        loop_image, "runtime_raise:bb_build", start=2, period=10**9
    )
    assert result.output == loop_native.output
    assert not runtime.detached
    assert runtime.stats.shield_faults == 1
    assert runtime.stats.subsystems_disabled == 0


def test_link_faults_disable_direct_linking(loop_image, loop_native):
    runtime, result = _run_with_plan(
        loop_image, "runtime_raise:link", start=1, period=1
    )
    assert result.output == loop_native.output
    assert "direct_linking" in runtime.rguard.disabled
    assert not runtime.options.link_direct
    assert runtime.stats.subsystems_disabled == 1
    disabled = [
        ev.data for ev in runtime.observer.events()
        if ev.kind == "subsystem_disabled"
    ]
    assert disabled == [
        {"subsystem": "direct_linking", "site": "link", "faults": 2}
    ]


def test_trace_faults_disable_traces(loop_image, loop_native):
    runtime, result = _run_with_plan(
        loop_image, "runtime_raise:trace", start=1, period=1
    )
    assert result.output == loop_native.output
    if "traces" in runtime.rguard.disabled:
        assert not runtime.options.traces
        # Disabled mid-run: no trace may have been finalized after that.
        assert runtime.stats.subsystems_disabled >= 1
    # Either way every fault was contained.
    assert runtime.stats.shield_faults == len(runtime.rguard.fault_log)


def test_chain_faults_disable_chains(loop_image, loop_native):
    runtime, result = _run_with_plan(
        loop_image, "runtime_raise:chain", start=1, period=1, engine="chain"
    )
    assert result.output == loop_native.output
    assert "chains" in runtime.rguard.disabled
    assert runtime.chains is None
    assert not runtime.options.chain_engine


def test_evict_faults_disable_fifo_eviction(loop_image, loop_native):
    runtime, result = _run_with_plan(
        loop_image, "runtime_raise:evict", start=1, period=1,
        code_cache_limit=256, cache_evict_policy="fifo",
    )
    assert result.output == loop_native.output
    assert "fifo_eviction" in runtime.rguard.disabled
    assert runtime.options.cache_evict_policy == "flush"


@pytest.mark.parametrize(
    "kind", [k for k in RUNTIME_FAULT_KINDS if k != "runtime_raise:chain"]
)
def test_every_fault_kind_contained_on_every_engine(
    indirect_image, indirect_native, kind
):
    """No seeded runtime fault, on any engine, escapes the ladder or
    perturbs the application."""
    for engine in ENGINES:
        runtime, result = _run_with_plan(
            indirect_image, kind, seed=0, engine=engine, start=1,
            code_cache_limit=(
                256 if kind in
                ("runtime_raise:evict", "runtime_raise:unlink") else None
            ),
            cache_evict_policy=(
                "fifo" if kind == "runtime_raise:evict" else "flush"
            ),
        )
        assert result.output == indirect_native.output, (kind, engine)
        assert result.exit_code == indirect_native.exit_code, (kind, engine)
        assert runtime.rguard.injected >= 1, (kind, engine)
        assert (
            replay_stats(runtime.observer.events())
            == runtime.stats.as_dict()
        ), (kind, engine)


# ------------------------------------------------------------- watchdog


def test_livelock_trips_watchdog_then_detaches(loop_image, loop_native):
    runtime, result = _run_with_plan(loop_image, "livelock", start=1)
    assert result.output == loop_native.output
    assert result.exit_code == loop_native.exit_code
    assert runtime.stats.watchdog_trips == 2
    assert runtime.detached
    trips = [
        ev.data for ev in runtime.observer.events()
        if ev.kind == "watchdog_trip"
    ]
    assert [t["trip"] for t in trips] == [1, 2]
    assert all(
        t["builds"] > runtime.options.shield_watchdog_limit for t in trips
    )


def test_watchdog_quiet_on_clean_run(loop_image):
    runtime, _ = run_under(loop_image, options=_shield_options())
    assert runtime.stats.watchdog_trips == 0
    # Tags built but not yet re-executed may hold a count of 1; none
    # may ever approach the trip threshold on a clean run.
    assert all(
        count <= 1
        for count in runtime.shield._builds_since_progress.values()
    )


# ------------------------------------------------------------ transparency


@pytest.mark.parametrize("engine", ENGINES)
def test_shield_off_and_on_bit_identical_when_clean(loop_image, engine):
    """A clean program can't tell the shield exists: cycles,
    instructions, output, and the full event stream are identical with
    it on or off."""
    def run(shield):
        return run_under(
            loop_image, options=_shield_options(engine, shield=shield)
        )

    rt_off, res_off = run(False)
    rt_on, res_on = run(True)
    assert res_on.cycles == res_off.cycles
    assert res_on.instructions == res_off.instructions
    assert res_on.output == res_off.output
    assert res_on.exit_code == res_off.exit_code
    streams = [
        [(e.kind, e.tag, e.data) for e in rt.observer.events()]
        for rt in (rt_off, rt_on)
    ]
    assert streams[0] == streams[1]
    assert rt_off.shield is None and rt_off.rguard is None
    assert isinstance(rt_on.shield, Shield)
    assert isinstance(rt_on.rguard, RuntimeGuard)
    assert rt_on.stats.shield_faults == 0


# -------------------------------------------------------- fault messages


def test_memory_faults_name_region_and_app_pc():
    mem = Memory(size=0x1000)
    mem.add_region("code", 0x100, 0x100, writable=False)
    mem.set_protection(True)
    mem.set_fault_context(lambda: 0x2040)
    with pytest.raises(MachineFault) as exc:
        mem.write_u32(0x110, 1)
    message = str(exc.value)
    assert "read-only region code" in message
    assert "app pc 0x2040" in message
    with pytest.raises(MachineFault) as exc:
        mem.read_u32(0xFFFF_FFF0)
    assert "app pc 0x2040" in str(exc.value)


def test_memory_faults_omit_context_when_unset():
    mem = Memory(size=0x1000)
    with pytest.raises(MachineFault) as exc:
        mem.read_u32(0x2000)
    assert "app pc" not in str(exc.value)
