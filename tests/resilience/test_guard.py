"""ClientGuard fault isolation: buggy clients cannot perturb the app.

The contract under ``options.guard_clients``:

* a hook that raises (or corrupts its instruction list, or blows the
  hook budget) is recorded as a client fault and the fragment is
  re-emitted from its pristine snapshot — the program's output and exit
  code stay identical to a native run;
* after ``client_fault_limit`` faults the client is quarantined (caches
  flushed, hooks skipped) and the run continues at native fidelity;
* deliberate halts (:class:`ClientHalt` subclasses) always propagate;
* a well-behaved client is bit-identical with the guard on or off.
"""

import pytest

from repro.api.client import Client
from repro.api.dr import (
    dr_get_profile,
    dr_insert_clean_call,
    dr_register_event_tracer,
)
from repro.clients import StrengthReduction
from repro.core import RuntimeOptions
from repro.observe import OVERHEAD_KEY
from repro.resilience import ClientGuard, ClientHalt, HookBudgetExceeded
from repro.resilience.faultinject import corrupt_instrlist

from tests.conftest import run_under


def _guarded_options(**overrides):
    options = RuntimeOptions.with_traces()
    options.guard_clients = True
    options.trace_events = True
    options.trace_buffer = None
    for key, value in overrides.items():
        setattr(options, key, value)
    return options


class RaisingBBClient(Client):
    """Raises from every basic-block hook."""

    def __init__(self):
        super().__init__()
        self.calls = 0

    def basic_block(self, context, tag, ilist):
        self.calls += 1
        raise RuntimeError("planted bb bug #%d" % self.calls)


class CorruptingBBClient(Client):
    """Returns normally but leaves the list unemittable."""

    def basic_block(self, context, tag, ilist):
        corrupt_instrlist(ilist)


class SpinningBBClient(Client):
    """Never returns from the hook (caught by the hook budget)."""

    def basic_block(self, context, tag, ilist):
        n = 0
        while True:
            n += 1


class HaltingClient(Client):
    class Stop(ClientHalt):
        pass

    def basic_block(self, context, tag, ilist):
        raise self.Stop("deliberate halt")


class FaultyEndTraceClient(Client):
    def end_trace(self, context, trace_tag, next_tag):
        raise ValueError("bad end_trace decision")


class FaultyCleanCallClient(Client):
    """Instruments every block with a clean call that raises."""

    def __init__(self):
        super().__init__()
        self.calls = 0

    def _broken(self, context):
        self.calls += 1
        raise KeyError("clean call bug")

    def basic_block(self, context, tag, ilist):
        first = next(iter(ilist), None)
        dr_insert_clean_call(ilist, first, self._broken)


@pytest.mark.parametrize(
    "client_factory", [RaisingBBClient, CorruptingBBClient]
)
def test_faulty_bb_hook_bails_out_and_quarantines(
    loop_image, loop_native, client_factory
):
    client = client_factory()
    runtime, result = run_under(
        loop_image, options=_guarded_options(), client=client
    )

    assert result.output == loop_native.output
    assert result.exit_code == loop_native.exit_code
    assert runtime.stats.client_faults == runtime.options.client_fault_limit
    assert runtime.stats.fragment_bailouts >= 1
    assert runtime.stats.client_quarantines == 1
    counts = runtime.observer.counts
    assert counts["client_fault"] == runtime.stats.client_faults
    assert counts["client_quarantined"] == 1
    assert counts["fragment_bailout"] == runtime.stats.fragment_bailouts
    assert runtime.guard.quarantined


def test_quarantine_stops_calling_hooks(loop_image, loop_native):
    client = RaisingBBClient()
    runtime, result = run_under(
        loop_image, options=_guarded_options(), client=client
    )
    assert result.output == loop_native.output
    # The hook faulted exactly fault_limit times, then stopped being
    # invoked at all — every post-quarantine build skips the client.
    assert client.calls == runtime.options.client_fault_limit


def test_profile_stays_consistent_after_quarantine(loop_image, loop_native):
    runtime, result = run_under(
        loop_image, options=_guarded_options(), client=RaisingBBClient()
    )
    assert result.output == loop_native.output
    profiler = runtime.observer.profiler
    # Attribution survives the mid-run cache flush: every simulated
    # cycle is either in a fragment or in runtime overhead.
    assert (
        profiler.attributed_cycles() + profiler.overhead_cycles()
        == profiler.total_cycles()
        == result.cycles
    )
    rows = dr_get_profile(runtime)
    assert rows
    assert all(row["tag"] != OVERHEAD_KEY for row in rows)


def test_guard_zero_overhead_for_well_behaved_client(loop_image):
    def run(guarded):
        options = RuntimeOptions.with_traces()
        options.trace_events = True
        options.trace_buffer = None
        if guarded:
            options.guard_clients = True
            options.cache_consistency = True
        return run_under(loop_image, options=options,
                         client=StrengthReduction())

    rt_off, res_off = run(guarded=False)
    rt_on, res_on = run(guarded=True)
    assert res_on.cycles == res_off.cycles
    assert res_on.instructions == res_off.instructions
    assert res_on.output == res_off.output
    assert res_on.exit_code == res_off.exit_code
    assert res_on.events == res_off.events
    streams = [
        [(e.kind, e.tag, e.data) for e in rt.observer.events()]
        for rt in (rt_off, rt_on)
    ]
    assert streams[0] == streams[1]
    assert rt_on.stats.client_faults == 0


def test_client_halt_propagates(loop_image):
    with pytest.raises(HaltingClient.Stop):
        run_under(loop_image, options=_guarded_options(),
                  client=HaltingClient())


def test_hook_budget_catches_runaway_hook(loop_image, loop_native):
    runtime, result = run_under(
        loop_image,
        options=_guarded_options(client_hook_budget=20000),
        client=SpinningBBClient(),
    )
    assert result.output == loop_native.output
    assert runtime.stats.client_faults >= 1
    assert any(
        entry["error"] == "HookBudgetExceeded"
        for entry in runtime.guard.fault_log
    )


def test_end_trace_fault_falls_back_to_default(loop_image, loop_native):
    runtime, result = run_under(
        loop_image, options=_guarded_options(),
        client=FaultyEndTraceClient(),
    )
    assert result.output == loop_native.output
    assert runtime.stats.client_faults >= 1
    assert any(
        entry["phase"] == "end_trace" for entry in runtime.guard.fault_log
    )
    # Traces still got built via the default heuristic (until quarantine).
    assert runtime.stats.traces_built >= 1


def test_faulty_clean_call_is_contained(loop_image, loop_native):
    client = FaultyCleanCallClient()
    runtime, result = run_under(
        loop_image, options=_guarded_options(client_fault_limit=5),
        client=client,
    )
    assert result.output == loop_native.output
    assert client.calls >= 1
    assert runtime.stats.client_faults == 5
    assert any(
        entry["phase"] == "clean_call" for entry in runtime.guard.fault_log
    )


def test_faulty_tracer_is_detached(loop_image, loop_native):
    seen = {"events": 0}

    class TracingClient(Client):
        def init(self):
            def tracer(event):
                seen["events"] += 1
                raise OSError("tracer bug")

            dr_register_event_tracer(self, tracer)

    runtime, result = run_under(
        loop_image, options=_guarded_options(), client=TracingClient()
    )
    assert result.output == loop_native.output
    # The tracer ran once, faulted, and was detached — not once per event.
    assert seen["events"] == 1
    assert any(
        entry["phase"] == "tracer" for entry in runtime.guard.fault_log
    )


def test_quarantine_detaches_client_observers(loop_image, loop_native):
    seen = []

    class TracingFaultyClient(Client):
        """Registers a well-behaved tracer but has a buggy bb hook."""

        def init(self):
            dr_register_event_tracer(self, lambda ev: seen.append(ev.kind))

        def basic_block(self, context, tag, ilist):
            raise RuntimeError("planted bb bug")

    runtime, result = run_under(
        loop_image, options=_guarded_options(), client=TracingFaultyClient()
    )
    assert result.output == loop_native.output
    assert runtime.stats.client_quarantines == 1
    # Quarantine goes through the detach path: the tracer registration
    # is gone from the observer — no client emit site survives — and
    # the bookkeeping list is cleared so a later detach/re-attach
    # cannot resurrect it.
    assert runtime._client_tracers == []
    assert runtime.observer.tracers == []
    # The tracer saw nothing after the quarantine event (which itself
    # is emitted only after the client's observers are gone).
    assert "client_quarantined" not in seen
    assert len(seen) < runtime.observer.total_emitted
    runtime, _ = run_under(loop_image, client=StrengthReduction())
    assert runtime.guard is None


def test_guard_only_exists_with_client(loop_image):
    options = _guarded_options()
    runtime, _ = run_under(loop_image, options=options, client=None)
    assert runtime.guard is None
    runtime, _ = run_under(
        loop_image, options=_guarded_options(), client=StrengthReduction()
    )
    assert isinstance(runtime.guard, ClientGuard)
    assert runtime.guard.faults == 0


def test_budget_exception_type():
    assert issubclass(HookBudgetExceeded, Exception)
    assert not issubclass(HookBudgetExceeded, ClientHalt)
