"""Cache consistency: stores into translated code invalidate fragments.

The self-modifying workload (from the chaos harness) patches the
immediate of its emitting ``mov`` mid-run.  Natively the interpreter's
decode cache notices the store; under the runtime the
``cache_consistency`` write-watch must invalidate the stale fragments
(and any traces that stitched them) so the rebuilt code sees the new
bytes.  Without the flag the stale translation keeps executing — which
is exactly the divergence the feature closes.
"""

import pytest

from repro.core import DynamoRIO, RuntimeOptions
from repro.core.code_cache import CodeRegionMap
from repro.loader import Process
from repro.machine.interp import run_native
from repro.tools.chaos import build_smc_image


@pytest.fixture(scope="module")
def smc_image():
    return build_smc_image()


@pytest.fixture(scope="module")
def smc_native(smc_image):
    return run_native(Process(smc_image))


def _smc_options(closure_engine, consistency=True):
    options = RuntimeOptions.with_traces()
    options.closure_engine = closure_engine
    options.cache_consistency = consistency
    options.trace_events = True
    options.trace_buffer = None
    options.trace_threshold = 3  # traces stitch the patched block early
    return options


def test_native_smc_output_shape(smc_native):
    # 7 iterations emit 'A', the patch lands in iteration 6 (after that
    # pass's call), the remaining 5 emit 'B'.
    assert smc_native.output == b"A" * 7 + b"B" * 5
    assert smc_native.exit_code == 0


@pytest.mark.parametrize("closure_engine", [True, False])
def test_smc_invalidation_matches_native(
    smc_image, smc_native, closure_engine
):
    runtime = DynamoRIO(
        Process(smc_image), options=_smc_options(closure_engine)
    )
    result = runtime.run()
    assert result.output == smc_native.output
    assert result.exit_code == smc_native.exit_code
    assert runtime.stats.smc_invalidations >= 1
    counts = runtime.observer.counts
    assert counts["smc_invalidate"] == runtime.stats.smc_invalidations
    # The invalidation deleted at least one fragment.
    assert runtime.stats.fragments_deleted >= 1


def test_smc_diverges_without_consistency(smc_image, smc_native):
    """The flag is load-bearing: without it the stale 'A' fragment keeps
    running and the patch is never picked up."""
    runtime = DynamoRIO(
        Process(smc_image),
        options=_smc_options(closure_engine=True, consistency=False),
    )
    result = runtime.run()
    assert result.output == b"A" * 12
    assert result.output != smc_native.output
    assert runtime.stats.smc_invalidations == 0


def test_smc_engines_bit_identical(smc_image):
    results = [
        DynamoRIO(
            Process(smc_image), options=_smc_options(engine)
        ).run()
        for engine in (True, False)
    ]
    a, b = results
    assert a.cycles == b.cycles
    assert a.instructions == b.instructions
    assert a.output == b.output
    assert a.events == b.events


def test_smc_invalidation_charges_cycles(smc_image):
    """Invalidation is modeled work: the consistency run costs more
    simulated cycles than a (wrong-output) run without it."""
    with_it = DynamoRIO(
        Process(smc_image), options=_smc_options(True)
    ).run()
    without = DynamoRIO(
        Process(smc_image),
        options=_smc_options(True, consistency=False),
    ).run()
    assert with_it.cycles > without.cycles


# ------------------------------------------------------------- region map


class _WatchRecorder:
    """Stands in for Memory: records the armed watch ranges."""

    def __init__(self):
        self.ranges = []

    def watch_range(self, start, end):
        self.ranges.append((start, end))


class _Frag:
    def __init__(self, tag):
        self.tag = tag
        self.deleted = False


def test_region_map_exact_overlap_filter():
    memory = _WatchRecorder()
    rmap = CodeRegionMap()
    frag = _Frag(0x1000)
    rmap.register(frag, ((0x1000, 0x1010),), "t0", memory)
    assert memory.ranges == [(0x1000, 0x1010)]
    assert len(rmap) == 1

    # Same 64-byte line, but no byte overlap: not a hit.
    assert rmap.overlapping(0x1010, 4) == []
    assert rmap.overlapping(0x0FF0, 0x10) == []
    # Exact overlaps, including single-byte and boundary-straddling.
    assert rmap.overlapping(0x100F, 1) == [(frag, "t0")]
    assert rmap.overlapping(0x0FFE, 4) == [(frag, "t0")]
    assert rmap.overlapping(0x1000, 0x10) == [(frag, "t0")]


def test_region_map_multi_span_and_unregister():
    memory = _WatchRecorder()
    rmap = CodeRegionMap()
    trace = _Frag(0x2000)
    # A trace stitched from two source regions: a write into either
    # span must report it (deduplicated, once).
    rmap.register(trace, ((0x2000, 0x2008), (0x2100, 0x2108)), "t0", memory)
    assert rmap.overlapping(0x2004, 1) == [(trace, "t0")]
    assert rmap.overlapping(0x2100, 2) == [(trace, "t0")]
    assert rmap.overlapping(0x2000, 0x200) == [(trace, "t0")]

    rmap.unregister(trace)
    assert len(rmap) == 0
    assert rmap.overlapping(0x2004, 1) == []
    # Unregistering twice is a no-op.
    rmap.unregister(trace)


def test_region_map_empty_spans_ignored():
    rmap = CodeRegionMap()
    frag = _Frag(0x3000)
    rmap.register(frag, ((0x3000, 0x3000),), "t0", _WatchRecorder())
    assert len(rmap) == 0
