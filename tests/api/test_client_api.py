"""Client API tests: hooks, transparency services, Figure 3 fidelity."""

import pytest

from repro.api.client import Client, DEFAULT_TRACE_END
from repro.api import dr
from repro.core import RuntimeOptions
from repro.machine.cost import CostModel, Family

from tests.core.conftest import run_under


class RecordingClient(Client):
    def __init__(self):
        super().__init__()
        self.calls = []

    def init(self):
        self.calls.append("init")

    def exit(self):
        self.calls.append("exit")

    def thread_init(self, context):
        self.calls.append("thread_init")

    def thread_exit(self, context):
        self.calls.append("thread_exit")

    def basic_block(self, context, tag, ilist):
        self.calls.append(("bb", tag))

    def trace(self, context, tag, ilist):
        self.calls.append(("trace", tag))

    def end_trace(self, context, trace_tag, next_tag):
        self.calls.append(("end_trace", trace_tag, next_tag))
        return DEFAULT_TRACE_END


class TestHookOrdering:
    def test_lifecycle_hooks(self, loop_image):
        client = RecordingClient()
        run_under(loop_image, client=client)
        assert client.calls[0] == "init"
        assert client.calls[1] == "thread_init"
        assert client.calls[-2] == "thread_exit"
        assert client.calls[-1] == "exit"

    def test_bb_hook_called_per_block(self, loop_image):
        client = RecordingClient()
        _dr, result = run_under(loop_image, client=client)
        bbs = [c for c in client.calls if isinstance(c, tuple) and c[0] == "bb"]
        assert len(bbs) == result.events["bbs_built"]

    def test_trace_hook_called_per_trace(self, loop_image):
        client = RecordingClient()
        opts = RuntimeOptions.with_traces()
        opts.trace_threshold = 5
        _dr, result = run_under(loop_image, opts, client=client)
        traces = [c for c in client.calls if isinstance(c, tuple) and c[0] == "trace"]
        assert len(traces) == result.events["traces_built"] > 0

    def test_end_trace_called_during_generation(self, loop_image):
        client = RecordingClient()
        opts = RuntimeOptions.with_traces()
        opts.trace_threshold = 5
        run_under(loop_image, opts, client=client)
        assert any(
            isinstance(c, tuple) and c[0] == "end_trace" for c in client.calls
        )

    def test_hooks_see_unique_tags(self, loop_image):
        client = RecordingClient()
        run_under(loop_image, client=client)
        bb_tags = [c[1] for c in client.calls if isinstance(c, tuple) and c[0] == "bb"]
        assert len(bb_tags) == len(set(bb_tags))


class TestTransparencyServices:
    def test_dr_printf_goes_to_private_log(self, loop_image):
        class Printer(Client):
            def exit(self):
                dr.dr_printf(self, "done %d", 42)

        client = Printer()
        _dr, result = run_under(loop_image, client=client)
        assert dr.dr_get_log(client) == ["done 42"]
        # nothing leaked into the application's output stream
        assert b"done" not in result.output

    def test_dr_global_alloc_in_runtime_region(self, loop_image):
        allocations = []

        class Allocator(Client):
            def init(self):
                allocations.append(dr.dr_global_alloc(self, 64))
                allocations.append(dr.dr_global_alloc(self, 128))

        drio, _ = run_under(loop_image, client=Allocator())
        heap = drio.memory.region("runtime_heap")
        for addr in allocations:
            assert heap.contains(addr)
        assert allocations[0] != allocations[1]

    def test_dr_thread_alloc(self, loop_image):
        got = []

        class ThreadAllocator(Client):
            def thread_init(self, context):
                got.append(dr.dr_thread_alloc(context, 32))

        drio, _ = run_under(loop_image, client=ThreadAllocator())
        assert got and drio.memory.region("runtime_heap").contains(got[0])

    def test_tls_field(self, loop_image):
        observed = []

        class TlsClient(Client):
            def thread_init(self, context):
                dr.dr_set_tls_field(context, {"mine": 1})

            def thread_exit(self, context):
                observed.append(dr.dr_get_tls_field(context))

        run_under(loop_image, client=TlsClient())
        assert observed == [{"mine": 1}]

    def test_spill_slots(self, loop_image):
        class Spiller(Client):
            def thread_exit(self, context):
                context.cpu.regs[0] = 0x1234
                dr.dr_save_reg(context, 0, 0)
                context.cpu.regs[0] = 0
                dr.dr_restore_reg(context, 0, 0)
                assert context.cpu.regs[0] == 0x1234

        run_under(loop_image, client=Spiller())


class TestProcessorIdentification:
    def test_family_matches_cost_model(self, loop_image):
        seen = []

        class FamilyClient(Client):
            def init(self):
                seen.append(dr.proc_get_family(self))

        run_under(
            loop_image,
            client=FamilyClient(),
            cost_model=CostModel(Family.PENTIUM_III),
        )
        assert seen == [Family.PENTIUM_III]


class TestCompatAliases:
    def test_figure3_style_walk(self, loop_image):
        """Walk instructions with the C-flavored aliases from Figure 3."""
        walked = []

        class Walker(Client):
            def basic_block(self, context, tag, ilist):
                ilist.decode_all()
                instr = dr.instrlist_first(ilist)
                while instr is not None:
                    next_instr = dr.instr_get_next(instr)
                    walked.append(dr.instr_get_opcode(instr))
                    instr = next_instr

        run_under(loop_image, client=Walker())
        assert walked

    def test_clean_call_receives_context(self, loop_image):
        contexts = []

        class CleanCaller(Client):
            def basic_block(self, context, tag, ilist):
                dr.dr_insert_clean_call(
                    ilist, ilist.first(), lambda ctx: contexts.append(ctx)
                )

        drio, _ = run_under(loop_image, client=CleanCaller())
        assert contexts
        assert all(ctx is drio.current_thread for ctx in contexts)

    def test_unattached_client_raises(self):
        client = Client()
        with pytest.raises(RuntimeError):
            client.runtime
