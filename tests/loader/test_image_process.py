import pytest

from repro.loader import Image, Process
from repro.machine.errors import MachineFault


class TestImage:
    def test_sections_and_symbols(self):
        img = Image(entry=0x1000)
        img.add_section(".text", 0x1000, b"\x90\x90")
        img.add_section(".data", 0x100000, b"\x01\x02", writable=True)
        img.add_symbol("main", 0x1000)
        assert img.symbol("main") == 0x1000
        assert img.code_bounds() == (0x1000, 0x1002)

    def test_overlapping_sections_rejected(self):
        img = Image()
        img.add_section("a", 0x1000, b"\x90" * 16)
        with pytest.raises(MachineFault):
            img.add_section("b", 0x1008, b"\x90")

    def test_load_into_memory(self):
        from repro.machine.memory import Memory

        img = Image()
        img.add_section(".text", 0x10, b"\xde\xad")
        mem = Memory(size=0x100)
        img.load_into(mem)
        assert mem.read_bytes(0x10, 2) == b"\xde\xad"


class TestProcess:
    def _image(self):
        img = Image(entry=0x1000)
        img.add_section(".text", 0x1000, b"\xf4")  # hlt
        return img

    def test_regions_disjoint(self):
        proc = Process(self._image())
        regions = proc.memory.regions()
        names = {r.name for r in regions}
        assert {"app_code", "app_data", "app_stack", "app_heap"} <= names
        for i, a in enumerate(regions):
            for b in regions[i + 1 :]:
                assert not a.overlaps(b), (a, b)

    def test_code_loaded(self):
        proc = Process(self._image())
        assert proc.memory.read_u8(0x1000) == 0xF4

    def test_stack_pointer_in_stack_region(self):
        proc = Process(self._image())
        sp = proc.initial_stack_pointer()
        assert proc.memory.region("app_stack").contains(sp - 4)

    def test_sbrk(self):
        proc = Process(self._image())
        a = proc.sbrk(100)
        b = proc.sbrk(100)
        assert b > a
        assert proc.memory.region("app_heap").contains(a)

    def test_fresh_copy_isolated(self):
        proc = Process(self._image())
        proc.memory.write_u32(0x100000, 42)
        clone = proc.fresh_copy()
        assert clone.memory.read_u32(0x100000) == 0
