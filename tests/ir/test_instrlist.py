import pytest

from repro.ir import Instr, InstrList
from repro.ir.instr import LabelRef
from repro.ir.create import (
    INSTR_CREATE_add,
    INSTR_CREATE_jmp,
    INSTR_CREATE_jnz,
    INSTR_CREATE_nop,
    OPND_CREATE_INT8,
    OPND_CREATE_PC,
    OPND_CREATE_REG,
)
from repro.isa.decoder import decode_full
from repro.isa.opcodes import Opcode
from repro.isa.registers import Reg

FIGURE2 = bytes.fromhex("8d34018b460c2b461c0fb74e08c1e1073bc10f8da20a0000")


def nops(n):
    return [INSTR_CREATE_nop() for _ in range(n)]


class TestLinkedList:
    def test_append_iter(self):
        il = InstrList(nops(3))
        assert len(il) == 3
        assert list(il)[0] is il.first()
        assert list(il)[-1] is il.last()

    def test_prepend(self):
        il = InstrList(nops(2))
        head = INSTR_CREATE_nop()
        il.prepend(head)
        assert il.first() is head
        assert len(il) == 3

    def test_insert_before_after(self):
        a, b, c = nops(3)
        il = InstrList([a, c])
        il.insert_after(a, b)
        assert [x for x in il] == [a, b, c]
        d = INSTR_CREATE_nop()
        il.insert_before(a, d)
        assert il.first() is d

    def test_remove_middle_and_ends(self):
        a, b, c = nops(3)
        il = InstrList([a, b, c])
        il.remove(b)
        assert [x for x in il] == [a, c]
        il.remove(a)
        assert il.first() is c and il.last() is c
        il.remove(c)
        assert len(il) == 0 and not il

    def test_replace(self):
        a, b, c = nops(3)
        il = InstrList([a, b, c])
        new = INSTR_CREATE_add(OPND_CREATE_REG(Reg.EAX), OPND_CREATE_INT8(1))
        b.is_exit_cti = True
        il.replace(b, new)
        assert [x for x in il] == [a, new, c]
        assert new.is_exit_cti  # bookkeeping carried over

    def test_double_link_rejected(self):
        a = INSTR_CREATE_nop()
        il = InstrList([a])
        il2 = InstrList()
        with pytest.raises(ValueError):
            il2.append(a)

    def test_removal_during_iteration_is_safe(self):
        il = InstrList(nops(5))
        for node in il:
            il.remove(node)
        assert len(il) == 0


class TestBundles:
    def test_from_code_level0_is_single_bundle(self):
        il = InstrList.from_code(FIGURE2, pc=0x1000, level=0)
        assert len(il) == 1
        assert il.first().is_bundle

    def test_instr_count_scans_bundles(self):
        il = InstrList.from_code(FIGURE2, pc=0x1000, level=0)
        assert il.instr_count() == 7

    def test_expand_bundles(self):
        il = InstrList.from_code(FIGURE2, pc=0x1000, level=0)
        il.expand_bundles()
        assert len(il) == 7
        assert il.instr_count() == 7

    def test_from_code_level1(self):
        il = InstrList.from_code(FIGURE2, pc=0x1000, level=1)
        assert len(il) == 7
        assert all(i.level == 1 for i in il)

    def test_decode_all_reaches_level3_raw_valid(self):
        il = InstrList.from_code(FIGURE2, pc=0x1000, level=0)
        il.decode_all()
        assert all(i.level == 3 for i in il)
        assert all(i.raw_bits_valid() for i in il)


class TestEncode:
    def test_roundtrip_preserves_bytes(self):
        il = InstrList.from_code(FIGURE2, pc=0x1000, level=0)
        il.decode_all()
        # jnl must be re-encoded (the list moves to pc 0x5000); everything
        # else is a raw copy.  Re-decode to verify semantics.
        out = il.encode(start_pc=0x5000)
        d = decode_full(out, len(out) - 6, pc=0x5000 + len(out) - 6)
        assert d.opcode == Opcode.JNL
        assert d.operands[0].pc == 0x1012 + 6 + 0xAA2

    def test_labels_resolve(self):
        il = InstrList()
        label = Instr.label()
        jmp = INSTR_CREATE_jmp(OPND_CREATE_PC(0))
        jmp.set_target(LabelRef(label))
        il.append(jmp)
        il.extend(nops(3))
        il.append(label)
        il.append(INSTR_CREATE_nop())
        raw = il.encode(start_pc=0x100)
        # jmp is rel32 (5 bytes), then 3 nops; label lands at +8.
        d = decode_full(raw, 0, pc=0x100)
        assert d.opcode == Opcode.JMP
        assert d.operands[0].pc == 0x108

    def test_unresolved_label_raises(self):
        il = InstrList()
        foreign_label = Instr.label()
        jmp = INSTR_CREATE_jmp(OPND_CREATE_PC(0))
        jmp.set_target(LabelRef(foreign_label))
        il.append(jmp)
        with pytest.raises(ValueError):
            il.encode(start_pc=0)

    def test_labels_encode_to_nothing(self):
        il = InstrList([Instr.label(), INSTR_CREATE_nop(), Instr.label()])
        assert il.encode(start_pc=0) == b"\x90"

    def test_conditional_branch_to_label(self):
        il = InstrList()
        label = Instr.label()
        jnz = INSTR_CREATE_jnz(OPND_CREATE_PC(0))
        jnz.set_target(LabelRef(label))
        il.append(jnz)
        il.append(INSTR_CREATE_nop())
        il.append(label)
        raw = il.encode(start_pc=0)
        d = decode_full(raw, 0, pc=0)
        assert d.opcode == Opcode.JNZ
        assert d.operands[0].pc == len(raw)  # label at end


class TestLinearity:
    def test_labels_targeted(self):
        il = InstrList()
        label = Instr.label()
        jnz = INSTR_CREATE_jnz(OPND_CREATE_PC(0))
        jnz.set_target(LabelRef(label))
        il.extend([jnz, INSTR_CREATE_nop(), label])
        assert il.labels_targeted() == {label}
