"""Tests for the five-level adaptive instruction representation."""

import pytest

from repro.ir import LEVEL_0, LEVEL_1, LEVEL_2, LEVEL_3, LEVEL_4, Instr
from repro.ir.instr import BundleError
from repro.isa.eflags import EFLAGS_WRITE_ALL, EFLAGS_WRITE_CF
from repro.isa.encoder import encode_instr
from repro.isa.opcodes import Opcode
from repro.isa.operands import OPND_IMM8, OPND_MEM, OPND_REG, OPND_PC as OPND_CREATE_PC
from repro.isa.registers import Reg

# Paper Figure 2 byte sequence: lea/mov/sub/movzx/shl/cmp/jnl.
FIGURE2 = bytes.fromhex("8d34018b460c2b461c0fb74e08c1e1073bc10f8da20a0000")


class TestLevel0:
    def test_bundle_holds_series(self):
        b = Instr.bundle(FIGURE2, pc=0x1000)
        assert b.level == LEVEL_0
        assert b.is_bundle
        assert b.raw == FIGURE2
        assert b.length == len(FIGURE2)

    def test_split_finds_boundaries(self):
        b = Instr.bundle(FIGURE2, pc=0x1000)
        pieces = b.split()
        assert [len(p.raw) for p in pieces] == [3, 3, 3, 4, 3, 2, 6]
        assert all(p.level == LEVEL_1 for p in pieces)
        assert pieces[0].raw_pc == 0x1000
        assert pieces[1].raw_pc == 0x1003

    def test_multi_instruction_bundle_rejects_opcode_query(self):
        b = Instr.bundle(FIGURE2, pc=0)
        with pytest.raises(BundleError):
            b.opcode

    def test_single_instruction_bundle_promotes_in_place(self):
        b = Instr.bundle(FIGURE2[:3], pc=0)
        assert b.opcode == Opcode.LEA  # implicit promotion

    def test_encode_is_byte_copy(self):
        b = Instr.bundle(FIGURE2, pc=0)
        assert b.encode() == FIGURE2


class TestLevelTransitions:
    def test_raw_to_level2_on_opcode_query(self):
        i = Instr.from_raw(FIGURE2[6:9], pc=0x1006)  # sub
        assert i.level == LEVEL_1
        assert i.opcode == Opcode.SUB
        assert i.level == LEVEL_2
        assert i.eflags == EFLAGS_WRITE_ALL

    def test_level2_to_level3_on_operand_query(self):
        i = Instr.from_raw(FIGURE2[3:6], pc=0x1003)  # mov eax, [esi+0xc]
        i.opcode
        assert i.level == LEVEL_2
        assert i.dst(0) == OPND_REG(Reg.EAX)
        assert i.level == LEVEL_3
        assert i.raw_bits_valid()  # level 3 keeps raw bits

    def test_mutation_moves_to_level4(self):
        i = Instr.from_raw(FIGURE2[3:6], pc=0x1003)
        i.set_dst(0, OPND_REG(Reg.EBX))
        assert i.level == LEVEL_4
        assert not i.raw_bits_valid()

    def test_skipping_levels_is_allowed(self):
        # Level 1 straight to mutation (Level 4) with no explicit steps.
        i = Instr.from_raw(FIGURE2[6:9], pc=0)
        i.set_opcode(Opcode.ADD)
        assert i.level == LEVEL_4
        assert i.opcode == Opcode.ADD
        assert i.eflags & EFLAGS_WRITE_CF

    def test_created_instruction_is_level4(self):
        i = Instr.create(Opcode.ADD, OPND_REG(Reg.EAX), OPND_IMM8(1))
        assert i.level == LEVEL_4
        assert not i.raw_bits_valid()


class TestEncoding:
    def test_level3_encode_copies_raw(self):
        raw = FIGURE2[9:13]  # movzx
        i = Instr.from_raw(raw, pc=0x1009)
        i.srcs  # decode fully
        assert i.level == LEVEL_3
        assert i.encode() == raw

    def test_level4_encode_rebuilds(self):
        i = Instr.create(Opcode.ADD, OPND_REG(Reg.EAX), OPND_IMM8(1))
        assert i.encode() == encode_instr(
            Opcode.ADD, (OPND_REG(Reg.EAX), OPND_IMM8(1))
        )

    def test_moved_branch_is_reencoded(self):
        # jnl at 0x1012 targeting 0x1aba; placed at a new pc it must be
        # re-encoded to preserve the absolute target.
        raw = FIGURE2[18:]
        i = Instr.from_raw(raw, pc=0x1012)
        target = 0x1012 + 6 + 0xAA2
        moved = i.encode(pc=0x2000)
        j = Instr.from_raw(moved, pc=0x2000)
        assert j.opcode == Opcode.JNL
        assert j.target.pc == target

    def test_unmoved_branch_copies_raw(self):
        raw = FIGURE2[18:]
        i = Instr.from_raw(raw, pc=0x1012)
        assert i.encode(pc=0x1012) == raw

    def test_non_cti_is_not_reencoded_when_moved(self):
        raw = FIGURE2[3:6]
        i = Instr.from_raw(raw, pc=0x1003)
        assert i.encode(pc=0x9999) == raw


class TestQueries:
    def test_reads_writes_memory(self):
        load = Instr.create(Opcode.MOV, OPND_REG(Reg.EAX), OPND_MEM(base=Reg.EBP, disp=-8))
        store = Instr.create(Opcode.MOV, OPND_MEM(base=Reg.EBP, disp=-8), OPND_REG(Reg.EAX))
        lea = Instr.create(Opcode.LEA, OPND_REG(Reg.EAX), OPND_MEM(base=Reg.EBP, disp=-8))
        assert load.reads_memory() and not load.writes_memory()
        assert store.writes_memory() and not store.reads_memory()
        assert not lea.reads_memory() and not lea.writes_memory()

    def test_push_has_implicit_esp(self):
        push = Instr.create(Opcode.PUSH, OPND_REG(Reg.EAX))
        assert push.uses_reg(Reg.ESP)
        assert push.writes_memory()

    def test_div_has_implicit_eax_edx(self):
        div = Instr.create(Opcode.DIV, OPND_REG(Reg.EBX))
        assert div.uses_reg(Reg.EAX)
        assert div.uses_reg(Reg.EDX)

    def test_cti_classification(self):
        assert Instr.create(Opcode.RET).is_ret()
        assert Instr.create(Opcode.RET).is_indirect_branch()
        jmp = Instr.create(Opcode.JMP, OPND_CREATE_PC(0x100))
        assert jmp.is_cti() and not jmp.is_cond_branch()

    def test_target_accessor(self):
        jmp = Instr.create(Opcode.JMP, OPND_CREATE_PC(0x100))
        assert jmp.target.pc == 0x100
        jmp.set_target(OPND_CREATE_PC(0x200))
        assert jmp.target.pc == 0x200

    def test_target_on_non_cti_raises(self):
        with pytest.raises(ValueError):
            Instr.create(Opcode.NOP).target


class TestAnnotations:
    def test_note_field(self):
        i = Instr.create(Opcode.NOP)
        assert i.note is None
        i.note = {"client": "data"}
        assert i.note == {"client": "data"}

    def test_copy_preserves_fields_but_unlinks(self):
        i = Instr.from_raw(FIGURE2[:3], pc=0x10)
        i.note = "x"
        c = i.copy()
        assert c.raw == i.raw and c.note == "x"
        assert c.prev is None and c.next is None


class TestMemoryFootprint:
    def test_footprint_grows_with_level(self):
        sizes = []
        for level in range(5):
            i = Instr.from_raw(FIGURE2[9:13], pc=0)
            if level >= 2:
                i.opcode
            if level >= 3:
                i.srcs
            if level == 4:
                i.set_dst(0, OPND_REG(Reg.EDX))
            sizes.append(i.memory_footprint())
        # Monotone non-decreasing until raw bits are dropped at level 4.
        assert sizes[0] <= sizes[1] <= sizes[2] <= sizes[3]
        assert sizes[3] > sizes[1]
