"""Stateful property test: InstrList linkage invariants.

Random sequences of list operations must preserve the doubly-linked
structure: forward and backward walks agree, the count matches, and
every node's owner field points at the list.
"""

from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.ir.create import INSTR_CREATE_nop
from repro.ir.instrlist import InstrList


class InstrListMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.il = InstrList()
        self.model = []  # the reference list of nodes

    # ----------------------------------------------------------------- rules

    @rule()
    def append(self):
        node = INSTR_CREATE_nop()
        self.il.append(node)
        self.model.append(node)

    @rule()
    def prepend(self):
        node = INSTR_CREATE_nop()
        self.il.prepend(node)
        self.model.insert(0, node)

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def insert_after(self, data):
        where = data.draw(st.sampled_from(self.model))
        node = INSTR_CREATE_nop()
        self.il.insert_after(where, node)
        self.model.insert(self.model.index(where) + 1, node)

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def insert_before(self, data):
        where = data.draw(st.sampled_from(self.model))
        node = INSTR_CREATE_nop()
        self.il.insert_before(where, node)
        self.model.insert(self.model.index(where), node)

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def remove(self, data):
        node = data.draw(st.sampled_from(self.model))
        self.il.remove(node)
        self.model.remove(node)
        assert node.owner is None
        assert node.prev is None and node.next is None

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def replace(self, data):
        old = data.draw(st.sampled_from(self.model))
        new = INSTR_CREATE_nop()
        self.il.replace(old, new)
        self.model[self.model.index(old)] = new

    # ------------------------------------------------------------ invariants

    @invariant()
    def forward_walk_matches_model(self):
        assert list(self.il) == self.model

    @invariant()
    def backward_walk_matches_model(self):
        nodes = []
        node = self.il.last()
        while node is not None:
            nodes.append(node)
            node = node.prev
        assert nodes == list(reversed(self.model))

    @invariant()
    def count_matches(self):
        assert len(self.il) == len(self.model)

    @invariant()
    def owners_consistent(self):
        for node in self.model:
            assert node.owner is self.il

    @invariant()
    def endpoints_consistent(self):
        if self.model:
            assert self.il.first() is self.model[0]
            assert self.il.last() is self.model[-1]
            assert self.il.first().prev is None
            assert self.il.last().next is None
        else:
            assert self.il.first() is None and self.il.last() is None


TestInstrListStateful = InstrListMachine.TestCase
