from repro.ir import create
from repro.ir.create import (
    INSTR_CREATE_add,
    INSTR_CREATE_call,
    INSTR_CREATE_inc,
    INSTR_CREATE_mov,
    INSTR_CREATE_push,
    INSTR_CREATE_ret,
    INSTR_CREATE_sub,
    OPND_CREATE_INT8,
    OPND_CREATE_MEM,
    OPND_CREATE_PC,
    OPND_CREATE_REG,
    instr_create_raw,
)
from repro.isa.opcodes import Opcode, OP_INFO
from repro.isa.registers import Reg
from repro.ir.shapes import explicit_arity


def test_macro_exists_for_every_opcode():
    """A macro is provided for every instruction (paper Section 3.2)."""
    for opcode, info in OP_INFO.items():
        if info.name == "<label>":
            continue
        name = {"jmp*": "jmp_ind", "call*": "call_ind"}.get(info.name, info.name)
        assert hasattr(create, "INSTR_CREATE_%s" % name), info.name


def test_add_fills_implicit_sources():
    i = INSTR_CREATE_add(OPND_CREATE_REG(Reg.EAX), OPND_CREATE_INT8(1))
    assert i.opcode == Opcode.ADD
    # binary shape: srcs = [src, dst], dsts = [dst]
    assert i.num_srcs() == 2 and i.num_dsts() == 1
    assert i.src(1) == OPND_CREATE_REG(Reg.EAX)


def test_paper_figure3_creation_pattern():
    """The exact creation pattern from the inc2add client (Figure 3)."""
    inc = INSTR_CREATE_inc(OPND_CREATE_REG(Reg.ECX))
    replacement = INSTR_CREATE_add(inc.dst(0), OPND_CREATE_INT8(1))
    replacement.set_prefixes(inc.prefixes)
    assert replacement.opcode == Opcode.ADD
    assert replacement.dst(0) == inc.dst(0)


def test_push_implicit_esp():
    i = INSTR_CREATE_push(OPND_CREATE_REG(Reg.EBX))
    assert any(op.is_reg() and op.reg == Reg.ESP for op in i.srcs)
    assert any(op.is_reg() and op.reg == Reg.ESP for op in i.dsts)


def test_call_and_ret_touch_stack():
    call = INSTR_CREATE_call(OPND_CREATE_PC(0x100))
    assert call.writes_memory()
    ret = INSTR_CREATE_ret()
    assert ret.reads_memory()
    assert ret.uses_reg(Reg.ESP)


def test_raw_creation_bypass():
    i = instr_create_raw(Opcode.SUB, OPND_CREATE_REG(Reg.ESP), OPND_CREATE_INT8(8))
    assert i.opcode == Opcode.SUB
    assert i.encode() == INSTR_CREATE_sub(
        OPND_CREATE_REG(Reg.ESP), OPND_CREATE_INT8(8)
    ).encode()


def test_mov_store_form():
    i = INSTR_CREATE_mov(
        OPND_CREATE_MEM(base=Reg.EBP, disp=-4), OPND_CREATE_REG(Reg.EAX)
    )
    assert i.writes_memory() and not i.reads_memory()


def test_arities_match_shapes():
    for opcode, info in OP_INFO.items():
        if info.name == "<label>":
            continue
        assert explicit_arity(opcode) in (0, 1, 2)
