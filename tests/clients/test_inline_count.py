"""Inline instruction counter: analysis-guided instrumentation."""

from repro.clients import InlineInstructionCounter, InstructionCounter
from repro.core import DynamoRIO, RuntimeOptions
from repro.loader import Process
from repro.machine.interp import run_native
from repro.workloads import load_benchmark


def run_with(image, client, options=None):
    dr = DynamoRIO(
        Process(image),
        options=options or RuntimeOptions.with_traces(),
        client=client,
    )
    return dr, dr.run()


def test_counts_match_clean_call_version():
    image = load_benchmark("vpr", 1)
    native = run_native(Process(image))
    inline = InlineInstructionCounter()
    _dr, inline_result = run_with(
        image, inline, RuntimeOptions.with_indirect_links()
    )
    clean = InstructionCounter()
    _dr, clean_result = run_with(
        image, clean, RuntimeOptions.with_indirect_links()
    )
    assert inline_result.output == native.output
    assert inline.executed == clean.executed == native.instructions


def test_mostly_inline():
    image = load_benchmark("vpr", 1)
    client = InlineInstructionCounter()
    run_with(image, client)
    assert client.inline_blocks > client.fallback_blocks


def test_much_cheaper_than_clean_calls():
    image = load_benchmark("vpr", 1)
    _dr, inline_result = run_with(image, InlineInstructionCounter())
    _dr, clean_result = run_with(image, InstructionCounter())
    assert inline_result.cycles < clean_result.cycles * 0.8


def test_counter_lives_in_runtime_memory():
    image = load_benchmark("vpr", 1)
    client = InlineInstructionCounter()
    dr, result = run_with(image, client)
    assert dr.memory.region("runtime_heap").contains(client.counter_addr)
    # and still transparent despite app-visible-address stores
    native = run_native(Process(image))
    assert result.output == native.output


def test_counts_survive_trace_promotion():
    """Traces are stitched from client-modified blocks, so the inline
    adds ride along into traces automatically."""
    image = load_benchmark("vpr", 1)
    native = run_native(Process(image))
    client = InlineInstructionCounter()
    opts = RuntimeOptions.with_traces()
    opts.trace_threshold = 5
    dr, result = run_with(image, client, opts)
    assert result.events["traces_built"] > 0
    assert client.executed == native.instructions
