"""Redundant load removal tests (paper Section 4.1)."""

from repro.clients import RedundantLoadRemoval
from repro.core import RuntimeOptions
from repro.ir.instrlist import InstrList
from repro.ir.create import (
    INSTR_CREATE_add,
    INSTR_CREATE_call,
    INSTR_CREATE_fld,
    INSTR_CREATE_inc,
    INSTR_CREATE_mov,
    OPND_CREATE_INT32,
    OPND_CREATE_MEM,
    OPND_CREATE_PC,
    OPND_CREATE_REG,
)
from repro.isa.opcodes import Opcode
from repro.isa.operands import RegOperand
from repro.isa.registers import Reg
from repro.loader import Process
from repro.machine.interp import run_native
from repro.minicc import compile_source

from tests.core.conftest import run_under

EAX = OPND_CREATE_REG(Reg.EAX)
EBX = OPND_CREATE_REG(Reg.EBX)
ECX = OPND_CREATE_REG(Reg.ECX)
SLOT = OPND_CREATE_MEM(base=Reg.EBP, disp=-8)
OTHER = OPND_CREATE_MEM(base=Reg.EBP, disp=-12)


def optimize(instrs):
    il = InstrList(instrs)
    client = RedundantLoadRemoval()
    client._optimize(il)
    return il, client


def opcodes(il):
    return [i.opcode for i in il if not i.is_label()]


class TestRemoval:
    def test_exact_reload_removed(self):
        il, client = optimize(
            [
                INSTR_CREATE_mov(EAX, SLOT),
                INSTR_CREATE_mov(EAX, SLOT),  # redundant, same register
            ]
        )
        assert client.loads_removed == 1
        assert len(list(il)) == 1

    def test_reload_into_other_register_becomes_move(self):
        il, client = optimize(
            [
                INSTR_CREATE_mov(EAX, SLOT),
                INSTR_CREATE_mov(EBX, SLOT),
            ]
        )
        assert client.loads_rewritten == 1
        ops = list(il)
        assert ops[1].opcode == Opcode.MOV
        assert isinstance(ops[1].src(0), RegOperand)

    def test_store_establishes_mirror(self):
        il, client = optimize(
            [
                INSTR_CREATE_mov(SLOT, EAX),  # store
                INSTR_CREATE_mov(EBX, SLOT),  # load of the same slot
            ]
        )
        assert client.loads_rewritten == 1

    def test_register_overwrite_kills_mirror(self):
        il, client = optimize(
            [
                INSTR_CREATE_mov(EAX, SLOT),
                INSTR_CREATE_mov(EAX, OPND_CREATE_INT32(0)),
                INSTR_CREATE_mov(EBX, SLOT),  # must reload
            ]
        )
        assert client.loads_removed == 0 and client.loads_rewritten == 0
        assert len(list(il)) == 3

    def test_provably_disjoint_store_keeps_mirror(self):
        """[ebp-12] cannot alias [ebp-8]: same base, disjoint ranges."""
        il, client = optimize(
            [
                INSTR_CREATE_mov(EAX, SLOT),
                INSTR_CREATE_mov(OTHER, ECX),  # disjoint stack slot
                INSTR_CREATE_mov(EBX, SLOT),
            ]
        )
        assert client.loads_rewritten == 1

    def test_possibly_aliasing_store_kills_mirrors(self):
        wild = OPND_CREATE_MEM(base=Reg.ESI, index=Reg.ECX, scale=4)
        il, client = optimize(
            [
                INSTR_CREATE_mov(EAX, SLOT),
                INSTR_CREATE_mov(wild, ECX),  # indexed: may alias anything
                INSTR_CREATE_mov(EBX, SLOT),
            ]
        )
        assert client.loads_removed == 0 and client.loads_rewritten == 0

    def test_different_base_registers_assumed_aliasing(self):
        other_base = OPND_CREATE_MEM(base=Reg.ESI, disp=-8)
        il, client = optimize(
            [
                INSTR_CREATE_mov(EAX, SLOT),
                INSTR_CREATE_mov(other_base, ECX),  # esi could equal ebp
                INSTR_CREATE_mov(EBX, SLOT),
            ]
        )
        assert client.loads_removed == 0 and client.loads_rewritten == 0

    def test_address_register_write_kills_dependent_mirror(self):
        indexed = OPND_CREATE_MEM(base=Reg.ESI, disp=4)
        il, client = optimize(
            [
                INSTR_CREATE_mov(EAX, indexed),
                INSTR_CREATE_inc(OPND_CREATE_REG(Reg.ESI)),  # address changes
                INSTR_CREATE_mov(EBX, indexed),
            ]
        )
        assert client.loads_removed == 0 and client.loads_rewritten == 0

    def test_call_kills_everything(self):
        il, client = optimize(
            [
                INSTR_CREATE_mov(EAX, SLOT),
                INSTR_CREATE_call(OPND_CREATE_PC(0x100)),
                INSTR_CREATE_mov(EBX, SLOT),
            ]
        )
        assert client.loads_removed == 0 and client.loads_rewritten == 0

    def test_alu_memory_operand_narrowed(self):
        il, client = optimize(
            [
                INSTR_CREATE_mov(EAX, SLOT),
                INSTR_CREATE_add(EBX, SLOT),  # folded load of same slot
            ]
        )
        assert client.loads_rewritten == 1
        add = list(il)[1]
        assert isinstance(add.src(0), RegOperand)

    def test_fld_handled_like_mov(self):
        il, client = optimize(
            [
                INSTR_CREATE_fld(EAX, SLOT),
                INSTR_CREATE_fld(EAX, SLOT),
            ]
        )
        assert client.loads_removed == 1

    def test_load_into_own_address_register_not_mirrored(self):
        self_addr = OPND_CREATE_MEM(base=Reg.EAX, disp=0)
        il, client = optimize(
            [
                INSTR_CREATE_mov(EAX, self_addr),  # eax = [eax]
                INSTR_CREATE_mov(EBX, self_addr),  # different address now!
            ]
        )
        assert client.loads_removed == 0 and client.loads_rewritten == 0


FP_STENCIL_SRC = """
float grid[256];
float out[256];
float total;
int main() {
    int i; int round;
    for (i = 0; i < 256; i++) { grid[i] = i * 7 + 3; }
    for (round = 0; round < 30; round++) {
        for (i = 1; i < 255; i++) {
            out[i] = grid[i-1] + grid[i] * 4 + grid[i+1] + out[i];
        }
    }
    total = 0;
    for (i = 0; i < 256; i++) { total = total + out[i]; }
    print(total);
    return 0;
}
"""


class TestEndToEnd:
    def test_fp_stencil_speedup_and_transparency(self):
        image = compile_source(FP_STENCIL_SRC)
        native = run_native(Process(image))
        _dr, base = run_under(image)
        client = RedundantLoadRemoval()
        _dr, optimized = run_under(image, client=client)
        assert optimized.output == native.output
        assert optimized.exit_code == native.exit_code
        assert client.loads_removed + client.loads_rewritten > 0
        assert optimized.cycles < base.cycles

    def test_per_block_mode(self):
        image = compile_source(FP_STENCIL_SRC)
        native = run_native(Process(image))
        client = RedundantLoadRemoval(optimize_blocks=True)
        _dr, result = run_under(
            image, RuntimeOptions.with_indirect_links(), client=client
        )
        assert result.output == native.output
        assert client.loads_removed + client.loads_rewritten > 0
