"""Strength-reduction client tests (paper Section 4.2 / Figure 3)."""

from repro.api.dr import dr_get_log
from repro.clients import StrengthReduction
from repro.ir.instrlist import InstrList
from repro.ir.create import (
    INSTR_CREATE_cmp,
    INSTR_CREATE_inc,
    INSTR_CREATE_jb,
    INSTR_CREATE_jnz,
    INSTR_CREATE_jz,
    INSTR_CREATE_mov,
    INSTR_CREATE_dec,
    OPND_CREATE_INT32,
    OPND_CREATE_PC,
    OPND_CREATE_REG,
)
from repro.isa.opcodes import Opcode
from repro.isa.registers import Reg
from repro.loader import Process
from repro.machine.cost import CostModel, Family
from repro.machine.interp import run_native
from repro.minicc import compile_source

from tests.core.conftest import run_under


def make_client_for_family(family):
    client = StrengthReduction()

    class _FakeRuntime:
        cost = CostModel(family)

    client._runtime = _FakeRuntime()
    client.init()
    return client


class TestTransformation:
    def _walk(self, il, family=Family.PENTIUM_IV):
        client = make_client_for_family(family)
        client._walk(None, il)
        return client

    def test_inc_with_dead_cf_replaced(self):
        il = InstrList(
            [
                INSTR_CREATE_inc(OPND_CREATE_REG(Reg.EAX)),
                # cmp writes CF without reading it: CF is dead at the inc
                INSTR_CREATE_cmp(OPND_CREATE_REG(Reg.EAX), OPND_CREATE_INT32(5)),
                INSTR_CREATE_jz(OPND_CREATE_PC(0x100)),
            ]
        )
        client = self._walk(il)
        assert client.num_converted == 1
        assert il.first().opcode == Opcode.ADD

    def test_inc_with_live_cf_kept(self):
        il = InstrList(
            [
                INSTR_CREATE_inc(OPND_CREATE_REG(Reg.EAX)),
                # jb reads CF: the inc must stay
                INSTR_CREATE_jb(OPND_CREATE_PC(0x100)),
            ]
        )
        client = self._walk(il)
        assert client.num_converted == 0
        assert il.first().opcode == Opcode.INC

    def test_dec_becomes_sub(self):
        il = InstrList(
            [
                INSTR_CREATE_dec(OPND_CREATE_REG(Reg.ECX)),
                INSTR_CREATE_cmp(OPND_CREATE_REG(Reg.ECX), OPND_CREATE_INT32(0)),
                INSTR_CREATE_jnz(OPND_CREATE_PC(0x100)),
            ]
        )
        client = self._walk(il)
        assert client.num_converted == 1
        first = il.first()
        assert first.opcode == Opcode.SUB
        assert first.src(0).value == 1

    def test_exit_cti_stops_the_scan(self):
        """Paper simplification: stop at the first exit."""
        jmp = INSTR_CREATE_jnz(OPND_CREATE_PC(0x100))
        jmp.is_exit_cti = True
        il = InstrList(
            [
                INSTR_CREATE_inc(OPND_CREATE_REG(Reg.EAX)),
                jmp,
                INSTR_CREATE_cmp(OPND_CREATE_REG(Reg.EAX), OPND_CREATE_INT32(5)),
            ]
        )
        client = self._walk(il)
        assert client.num_converted == 0

    def test_mov_is_transparent_to_the_scan(self):
        il = InstrList(
            [
                INSTR_CREATE_inc(OPND_CREATE_REG(Reg.EAX)),
                INSTR_CREATE_mov(OPND_CREATE_REG(Reg.EBX), OPND_CREATE_REG(Reg.EAX)),
                INSTR_CREATE_cmp(OPND_CREATE_REG(Reg.EAX), OPND_CREATE_INT32(5)),
            ]
        )
        client = self._walk(il)
        assert client.num_converted == 1

    def test_disabled_on_pentium3(self):
        il = InstrList(
            [
                INSTR_CREATE_inc(OPND_CREATE_REG(Reg.EAX)),
                INSTR_CREATE_cmp(OPND_CREATE_REG(Reg.EAX), OPND_CREATE_INT32(5)),
            ]
        )
        client = make_client_for_family(Family.PENTIUM_III)
        client.trace(None, 0, il)
        assert client.num_converted == 0
        assert il.first().opcode == Opcode.INC

    def test_prefixes_preserved(self):
        inc = INSTR_CREATE_inc(OPND_CREATE_REG(Reg.EAX))
        inc.set_prefixes(b"\x66")
        il = InstrList(
            [inc, INSTR_CREATE_cmp(OPND_CREATE_REG(Reg.EAX), OPND_CREATE_INT32(5))]
        )
        self._walk(il)
        assert il.first().prefixes == b"\x66"


INC_HEAVY_SRC = """
int counter;
int bound;
int main() {
    int i;
    counter = 0;
    bound = 4000;
    for (i = 0; i < bound; i++) {
        counter++;
    }
    print(counter);
    return 0;
}
"""


class TestEndToEnd:
    def test_speedup_on_p4_transparent(self):
        image = compile_source(INC_HEAVY_SRC)
        p4 = CostModel(Family.PENTIUM_IV)
        native = run_native(Process(image), cost_model=p4)
        _dr, base = run_under(image, cost_model=CostModel(Family.PENTIUM_IV))
        _dr, optimized = run_under(
            image,
            client=StrengthReduction(),
            cost_model=CostModel(Family.PENTIUM_IV),
        )
        assert optimized.output == native.output
        assert optimized.cycles < base.cycles  # the paper's speedup

    def test_noop_on_p3(self):
        image = compile_source(INC_HEAVY_SRC)
        client = StrengthReduction()
        _dr, result = run_under(
            image, client=client, cost_model=CostModel(Family.PENTIUM_III)
        )
        assert client.num_converted == 0
        assert dr_get_log(client) == ["kept original inc/dec"]

    def test_reports_conversions(self):
        image = compile_source(INC_HEAVY_SRC)
        client = StrengthReduction()
        run_under(image, client=client, cost_model=CostModel(Family.PENTIUM_IV))
        assert client.num_converted > 0
        log = dr_get_log(client)
        assert len(log) == 1 and log[0].startswith("converted")
