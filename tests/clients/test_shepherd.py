"""Program shepherding tests: the security use case (paper refs [23])."""

import pytest

from repro.clients import ProgramShepherding, SecurityViolation
from repro.core import DynamoRIO, RuntimeOptions
from repro.loader import Process
from repro.machine.interp import run_native
from repro.minicc import compile_source


CLEAN_SRC = """
int table[2];
int f(int x) { return x * 2; }
int g(int x) { return x + 9; }
int apply(int fn, int x) { int p; p = fn; return p(x); }
int main() {
    int i; int acc;
    table[0] = &f;
    table[1] = &g;
    acc = 0;
    for (i = 0; i < 400; i++) {
        acc = acc + apply(table[i & 1], i);
    }
    print(acc);
    return 0;
}
"""

# A corrupted function pointer: &f plus an offset lands mid-function.
CORRUPT_POINTER_SRC = """
int f(int x) { return x * 2; }
int main() {
    int p; int i; int acc;
    acc = 0;
    p = &f;
    for (i = 0; i < 50; i++) { acc = acc + i; }
    p = p + 3;        /* pointer arithmetic gone wrong */
    acc = acc + p(acc);
    print(acc);
    return 0;
}
"""

# A classic stack smash: writing past a local array clobbers the saved
# return address ([ebp+4]); the function "returns" to attacker data.
STACK_SMASH_SRC = """
int gadget_target;
int victim(int evil) {
    int buf[2];
    buf[0] = 1;
    buf[1] = 2;
    buf[3] = evil;    /* out of bounds: hits the return address */
    return buf[0];
}
int main() {
    victim(0x100000);  /* "return" into the data section */
    print(1);
    return 0;
}
"""


def run_shepherded(src, enforce=True):
    image = compile_source(src)
    client = ProgramShepherding(image=image, enforce=enforce)
    dr = DynamoRIO(
        Process(image), options=RuntimeOptions.with_traces(), client=client
    )
    result = dr.run()
    return client, result


class TestCleanPrograms:
    def test_no_violations_and_transparent(self):
        image = compile_source(CLEAN_SRC)
        native = run_native(Process(image))
        client, result = run_shepherded(CLEAN_SRC)
        assert result.output == native.output
        assert client.violations == []
        assert client.checks_performed > 400  # every ret and call*

    def test_whole_suite_benchmark_runs_clean(self):
        from repro.workloads import load_benchmark

        image = load_benchmark("perlbmk", 1)
        client = ProgramShepherding(image=image)
        result = DynamoRIO(
            Process(image), options=RuntimeOptions.with_traces(), client=client
        ).run()
        assert client.violations == []
        assert client.checks_performed > 0

    def test_enforcement_has_real_overhead(self):
        image = compile_source(CLEAN_SRC)
        base = DynamoRIO(
            Process(image), options=RuntimeOptions.with_traces()
        ).run()
        _client, shepherded = run_shepherded(CLEAN_SRC)
        assert shepherded.cycles > base.cycles  # checks are not free


class TestAttacks:
    def test_corrupted_function_pointer_blocked(self):
        with pytest.raises(SecurityViolation) as exc:
            run_shepherded(CORRUPT_POINTER_SRC)
        assert exc.value.kind == "indirect-entry"

    def test_corrupted_pointer_detect_only_mode(self):
        client, _result = run_shepherded(CORRUPT_POINTER_SRC, enforce=False)
        assert any(kind == "indirect-entry" for kind, _t in client.violations)

    def test_stack_smash_blocked_at_the_return(self):
        with pytest.raises(SecurityViolation) as exc:
            run_shepherded(STACK_SMASH_SRC)
        assert exc.value.kind == "return"
        assert exc.value.target == 0x100000

    def test_attack_would_succeed_without_shepherding(self):
        """Sanity: without the client the smashed return is followed
        (landing in the data section and faulting there, i.e. *after*
        the control-flow hijack — shepherding stops it before)."""
        from repro.machine.errors import MachineFault

        image = compile_source(STACK_SMASH_SRC)
        dr = DynamoRIO(Process(image), options=RuntimeOptions.with_traces())
        with pytest.raises(MachineFault):
            dr.run()
