"""Custom trace client tests (paper Section 4.4)."""

from repro.clients import CustomTraces
from repro.isa.opcodes import Opcode
from repro.loader import Process
from repro.machine.interp import run_native
from repro.minicc import compile_source

from tests.core.conftest import run_under


# A hot function invoked from six different call sites on alternating
# control-flow paths: the default (loop-centric) trace covers only one
# path, so the other five pay a hashtable lookup per return — exactly
# the weakness the paper's Section 4.4 describes.  Per-call-site custom
# traces inline the return with a continuation that always matches.
CALL_HEAVY_SRC = """
int compute(int x) { return x * 7 + 3; }
int main() {
    int i; int acc; int s;
    acc = 0;
    for (i = 0; i < 900; i++) {
        s = i %% 6;
        if (s == 0) { acc = acc + compute(acc + 1); }
        else if (s == 1) { acc = acc + compute(acc + 2); }
        else if (s == 2) { acc = acc + compute(acc + 3); }
        else if (s == 3) { acc = acc + compute(acc + 5); }
        else if (s == 4) { acc = acc + compute(acc + 7); }
        else { acc = acc + compute(acc + 11); }
        acc = acc & 0xFFFFF;
    }
    print(acc);
    return 0;
}
""" % ()


class TestCustomTraceShapes:
    def test_transparent(self):
        image = compile_source(CALL_HEAVY_SRC)
        native = run_native(Process(image))
        _dr, result = run_under(image, client=CustomTraces())
        assert result.output == native.output
        assert result.exit_code == native.exit_code

    def test_call_targets_marked_as_heads(self):
        image = compile_source(CALL_HEAVY_SRC)
        client = CustomTraces()
        dr, _ = run_under(image, client=client)
        assert client.heads_marked > 0
        # the runtime recorded the marks
        assert dr.pending_trace_heads

    def test_traces_built_at_function_entries(self):
        image = compile_source(CALL_HEAVY_SRC)
        client = CustomTraces()
        dr, result = run_under(image, client=client)
        assert result.events["traces_built"] > 0
        trace_tags = set(dr.current_thread.trace_cache.fragments)
        assert trace_tags & dr.pending_trace_heads

    def test_inlined_returns_removed(self):
        image = compile_source(CALL_HEAVY_SRC)
        client = CustomTraces()
        dr, _ = run_under(image, client=client)
        assert client.returns_removed > 0
        # removed returns show up as lea esp, [esp+4] in trace sources
        leas = 0
        for trace in dr.current_thread.trace_cache.fragments.values():
            for instr in trace.instrs_source:
                if (
                    instr.level >= 2
                    and not instr.is_label()
                    and instr.opcode == Opcode.LEA
                ):
                    op = instr.src(0)
                    if op.is_mem() and op.base is not None and op.disp == 4:
                        leas += 1
        assert leas > 0

    def test_fewer_return_checks_than_base(self):
        """Removed returns do not even execute the inline check."""
        image = compile_source(CALL_HEAVY_SRC)
        _dr, base = run_under(image)
        _dr, custom = run_under(image, client=CustomTraces())
        assert (
            custom.events["inline_check_hits"] < base.events["inline_check_hits"]
        )

    def test_speedup_on_recursion_heavy_code_at_scale(self):
        """The paper's win case: custom traces beat base DynamoRIO on
        call-dominated benchmarks once build costs amortize (crafty)."""
        from repro.workloads import load_benchmark

        image = load_benchmark("crafty", 4)
        _dr, base = run_under(image)
        _dr, custom = run_under(image, client=CustomTraces())
        assert custom.output == base.output
        assert custom.cycles < base.cycles

    def test_only_paired_returns_removed(self):
        """A return whose matching call is off-trace keeps its check —
        removing it would be unsound (any caller could be live)."""
        src = """
int leaf(int x) { return x + 1; }
int rec(int n) {
    if (n < 1) { return 0; }
    return rec(n - 1) + leaf(n);
}
int main() {
    int i; int acc;
    acc = 0;
    for (i = 0; i < 150; i++) { acc = acc + rec(12); }
    print(acc);
    return 0;
}
"""
        image = compile_source(src)
        native = run_native(Process(image))
        client = CustomTraces()
        _dr, result = run_under(image, client=client)
        # deep recursion with removal enabled must stay transparent
        assert result.output == native.output

    def test_remove_returns_can_be_disabled(self):
        image = compile_source(CALL_HEAVY_SRC)
        native = run_native(Process(image))
        client = CustomTraces(remove_returns=False)
        _dr, result = run_under(image, client=client)
        assert client.returns_removed == 0
        assert result.output == native.output

    def test_max_trace_blocks_limits_unrolling(self):
        image = compile_source(CALL_HEAVY_SRC)
        client = CustomTraces(max_trace_blocks=3)
        dr, result = run_under(image, client=client)
        assert result.events["traces_built"] > 0
