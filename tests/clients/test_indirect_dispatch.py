"""Adaptive indirect-branch dispatch tests (paper Section 4.3)."""

from repro.clients import IndirectBranchDispatch
from repro.loader import Process
from repro.machine.interp import run_native
from repro.minicc import compile_source

from tests.core.conftest import run_under


POLYMORPHIC_SRC = """
int table[4];
int h0(int x) { return x + 1; }
int h1(int x) { return x * 3; }
int h2(int x) { return x - 2; }
int h3(int x) { return x ^ 5; }
int main() {
    int i; int acc; int f;
    table[0] = &h0; table[1] = &h1; table[2] = &h2; table[3] = &h3;
    acc = 0;
    for (i = 0; i < 4000; i++) {
        f = table[i & 3];
        acc = acc + f(i);
    }
    print(acc);
    return 0;
}
"""

MONOMORPHIC_SRC = """
int table[1];
int only(int x) { return x * 2 + 1; }
int main() {
    int i; int acc; int f;
    table[0] = &only;
    acc = 0;
    for (i = 0; i < 800; i++) {
        f = table[0];
        acc = acc + f(i);
    }
    print(acc);
    return 0;
}
"""


class TestAdaptiveRewriting:
    def test_polymorphic_site_gets_dispatch_chain(self):
        image = compile_source(POLYMORPHIC_SRC)
        native = run_native(Process(image))
        client = IndirectBranchDispatch(sample_threshold=16)
        _dr, result = run_under(image, client=client)
        assert result.output == native.output
        assert client.traces_rewritten >= 1
        assert result.events["fragments_replaced"] >= 1
        assert result.events["dispatch_check_hits"] > 0

    def test_dispatch_reduces_hashtable_lookups(self):
        image = compile_source(POLYMORPHIC_SRC)
        _dr, base = run_under(image)
        _dr, optimized = run_under(
            image, client=IndirectBranchDispatch(sample_threshold=16)
        )
        assert optimized.events["ibl_hits"] < base.events["ibl_hits"] / 2
        assert optimized.cycles < base.cycles

    def test_profiling_call_kept_after_rewrite(self):
        """Paper: the profiling call stays, reached only when every
        compare misses."""
        image = compile_source(POLYMORPHIC_SRC)
        client = IndirectBranchDispatch(
            sample_threshold=16, max_targets=2, add_per_rewrite=1
        )
        _dr, result = run_under(image, client=client)
        # With room for only 2 of 4 targets, the profiler keeps firing.
        assert result.events["clean_calls"] > client.sample_threshold

    def test_targets_never_removed(self):
        image = compile_source(POLYMORPHIC_SRC)
        client = IndirectBranchDispatch(sample_threshold=16)
        run_under(image, client=client)
        for site in client.sites.values():
            # installed only grows (checked indirectly: every installed
            # target was sampled at least once and none disappear)
            assert len(site.installed) <= client.max_targets

    def test_monomorphic_site_stabilizes(self):
        """A stable target needs at most one rewrite (the single hot
        target is installed and then every dispatch check hits; the
        profiler goes quiet)."""
        image = compile_source(MONOMORPHIC_SRC)
        native = run_native(Process(image))
        client = IndirectBranchDispatch(sample_threshold=64)
        _dr, result = run_under(image, client=client)
        assert result.output == native.output
        assert client.traces_rewritten <= 1
        if client.traces_rewritten:
            # after stabilizing, checks hit and the hashtable is idle
            assert result.events["dispatch_check_hits"] > 0
            assert result.events["ibl_hits"] < 500

    def test_max_targets_bounds_chain(self):
        image = compile_source(POLYMORPHIC_SRC)
        client = IndirectBranchDispatch(sample_threshold=8, max_targets=2)
        _dr, result = run_under(image, client=client)
        for site in client.sites.values():
            assert len(site.installed) <= 2
