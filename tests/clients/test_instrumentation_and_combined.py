"""Instrumentation clients and the combined-optimizations client."""

from repro.api.dr import dr_get_log
from repro.clients import (
    CombinedClient,
    InstructionCounter,
    NullClient,
    OpcodeProfiler,
    make_all_optimizations,
)
from repro.core import RuntimeOptions

from tests.core.conftest import run_under


class TestNullClient:
    def test_sees_all_events(self, loop_image):
        client = NullClient()
        _dr, result = run_under(loop_image, client=client)
        assert client.bb_count == result.events["bbs_built"]
        assert client.trace_count == result.events["traces_built"]
        assert client.thread_inits == 1

    def test_does_not_change_behavior(self, loop_image, loop_native):
        _dr, result = run_under(loop_image, client=NullClient())
        assert result.output == loop_native.output


class TestInstructionCounter:
    def test_count_matches_native_execution(self, loop_image, loop_native):
        client = InstructionCounter()
        _dr, result = run_under(
            loop_image, RuntimeOptions.with_indirect_links(), client=client
        )
        assert result.output == loop_native.output
        # the clean-call counter sees exactly the application instructions
        assert client.executed == loop_native.instructions

    def test_reports_via_dr_printf(self, loop_image):
        client = InstructionCounter()
        run_under(loop_image, RuntimeOptions.with_indirect_links(), client=client)
        log = dr_get_log(client)
        assert len(log) == 1 and log[0].startswith("executed ")


class TestOpcodeProfiler:
    def test_histogram_collected(self, loop_image):
        client = OpcodeProfiler()
        _dr, result = run_under(loop_image, client=client)
        assert client.block_opcodes  # saw something
        assert sum(client.block_opcodes.values()) > 10
        assert "mov" in client.block_opcodes

    def test_trace_opcodes_tracked_separately(self, loop_image):
        client = OpcodeProfiler()
        opts = RuntimeOptions.with_traces()
        opts.trace_threshold = 5
        run_under(loop_image, opts, client=client)
        assert client.trace_opcodes


class TestCombined:
    def test_all_four_transparent(self, loop_image, loop_native):
        _dr, result = run_under(loop_image, client=make_all_optimizations())
        assert result.output == loop_native.output
        assert result.exit_code == loop_native.exit_code

    def test_all_four_beat_single_clients_usually(self, loop_image):
        _dr, base = run_under(loop_image)
        _dr, combined = run_under(loop_image, client=make_all_optimizations())
        # combined should not be drastically worse than base
        assert combined.cycles < base.cycles * 1.1

    def test_hooks_fan_out(self, loop_image):
        a, b = NullClient(), NullClient()
        _dr, result = run_under(loop_image, client=CombinedClient([a, b]))
        assert a.bb_count == b.bb_count == result.events["bbs_built"]

    def test_end_trace_first_non_default_wins(self):
        from repro.api.client import Client, END_TRACE, DEFAULT_TRACE_END

        calls = []

        class Defaulter(Client):
            def end_trace(self, context, trace_tag, next_tag):
                calls.append("default")
                return DEFAULT_TRACE_END

        class Ender(Client):
            def end_trace(self, context, trace_tag, next_tag):
                calls.append("ender")
                return END_TRACE

        class Never(Client):
            def end_trace(self, context, trace_tag, next_tag):
                calls.append("never")
                raise AssertionError("should not be consulted after Ender")

        combined = CombinedClient([Defaulter(), Ender(), Never()])
        assert combined.end_trace(None, 0, 0) == END_TRACE
        assert calls == ["default", "ender"]
