"""Smoke tests for the drequiv sweep CLI."""

from repro.tools.equiv_sweep import main


class TestEquivSweep:
    def test_single_benchmark_all_client_passes(self, capsys):
        rc = main(
            [
                "--benchmarks", "mgrid",
                "--clients", "all,ctrace",
                "--engine", "closure",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 failures" in out
