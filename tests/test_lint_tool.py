"""The ``python -m repro.tools.lint`` CLI: reports and exit codes."""

import pytest

from repro.tools.lint import main

SRC = """
int counter;
int bump(int x) { return x + 2; }
int main() {
    int i;
    counter = 0;
    for (i = 0; i < 5; i++) { counter = counter + bump(i); }
    print(counter);
    return 0;
}
"""


@pytest.fixture(scope="module")
def source_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("lint") / "prog.mc"
    path.write_text(SRC)
    return str(path)


def test_static_clean_program_exits_zero(source_file, capsys):
    assert main([source_file]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_static_inject_exits_nonzero(source_file, capsys):
    assert main([source_file, "--inject"]) == 1
    out = capsys.readouterr().out
    assert "[error]" in out


def test_dynamic_clean_client_exits_zero(source_file, capsys):
    assert main([source_file, "--client", "inscount-inline"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_dynamic_inject_exits_nonzero(source_file, capsys):
    assert main([source_file, "--client", "null", "--inject"]) == 1
    out = capsys.readouterr().out
    assert "[error]" in out


def test_rule_selection(source_file, capsys):
    # Injection is per-rule: each selected rule gets its own tabulated
    # violation planted and must flag it (exit 1 = every rule fired).
    assert main([source_file, "--inject", "--rules", "linearity,levels"]) == 1
    out = capsys.readouterr().out
    assert "rule linearity" in out
    assert "rule levels" in out
    # ... and unselected rules are not exercised at all.
    assert "eflags-safety" not in out


def test_inject_covers_every_registered_rule(source_file, capsys):
    # The full negative control plants one violation per registered rule
    # — equivalence included — and all of them must fire.
    assert main([source_file, "--inject"]) == 1
    out = capsys.readouterr().out
    for rule_id in (
        "linearity",
        "levels",
        "eflags-safety",
        "scratch-registers",
        "transparency",
        "equivalence",
    ):
        assert "rule %s" % rule_id in out, rule_id


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in (
        "linearity",
        "levels",
        "eflags-safety",
        "scratch-registers",
        "transparency",
        "equivalence",
    ):
        assert rule_id in out


def test_max_diagnostics_suppression(source_file, capsys):
    assert main([source_file, "--inject", "--max-diagnostics", "1"]) == 1
    out = capsys.readouterr().out
    assert "suppressed" in out
