"""The ``python -m repro.tools.lint`` CLI: reports and exit codes."""

import pytest

from repro.tools.lint import main

SRC = """
int counter;
int bump(int x) { return x + 2; }
int main() {
    int i;
    counter = 0;
    for (i = 0; i < 5; i++) { counter = counter + bump(i); }
    print(counter);
    return 0;
}
"""


@pytest.fixture(scope="module")
def source_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("lint") / "prog.mc"
    path.write_text(SRC)
    return str(path)


def test_static_clean_program_exits_zero(source_file, capsys):
    assert main([source_file]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_static_inject_exits_nonzero(source_file, capsys):
    assert main([source_file, "--inject"]) == 1
    out = capsys.readouterr().out
    assert "[error]" in out


def test_dynamic_clean_client_exits_zero(source_file, capsys):
    assert main([source_file, "--client", "inscount-inline"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_dynamic_inject_exits_nonzero(source_file, capsys):
    assert main([source_file, "--client", "null", "--inject"]) == 1
    out = capsys.readouterr().out
    assert "[error]" in out


def test_rule_selection(source_file, capsys):
    # With only the structural rules selected, the injected violation
    # (a liveness/transparency problem) goes unreported.
    assert main([source_file, "--inject", "--rules", "linearity,levels"]) == 0


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in (
        "linearity",
        "levels",
        "eflags-safety",
        "scratch-registers",
        "transparency",
    ):
        assert rule_id in out


def test_max_diagnostics_suppression(source_file, capsys):
    assert main([source_file, "--inject", "--max-diagnostics", "1"]) == 1
    out = capsys.readouterr().out
    assert "suppressed" in out
