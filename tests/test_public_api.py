"""The package's public surface: importable, documented, coherent."""

import repro


def test_version():
    assert repro.__version__


def test_top_level_exports():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_end_to_end_via_public_api_only():
    """The README quickstart, verbatim in spirit."""
    from repro import DynamoRIO, Process, RuntimeOptions, compile_source
    from repro.clients import RedundantLoadRemoval
    from repro.machine.interp import run_native

    image = compile_source(
        """
int main() {
    int i; int acc;
    acc = 0;
    for (i = 0; i < 2000; i++) { acc = acc + i * 3; }
    print(acc);
    return 0;
}
"""
    )
    native = run_native(Process(image))
    runtime = DynamoRIO(
        Process(image),
        options=RuntimeOptions.with_traces(),
        client=RedundantLoadRemoval(),
    )
    result = runtime.run()
    assert result.output == native.output
    assert result.cycles > 0


def test_every_public_module_has_docstring():
    import importlib
    import pkgutil

    import repro as root

    missing = []
    for module_info in pkgutil.walk_packages(root.__path__, prefix="repro."):
        module = importlib.import_module(module_info.name)
        if not (module.__doc__ or "").strip():
            missing.append(module_info.name)
    assert not missing, "modules without docstrings: %s" % missing
