"""End-to-end tests of ``python -m repro.tools.trace``."""

import json

import pytest

from repro.tools.trace import main

from tests.conftest import LOOP_SRC


@pytest.fixture()
def loop_source(tmp_path):
    path = tmp_path / "loop.mc"
    path.write_text(LOOP_SRC)
    return str(path)


def test_report_only(loop_source, capsys):
    assert main([loop_source]) == 0
    out = capsys.readouterr().out
    assert "drtrace report" in out
    assert "hot fragments" in out
    assert "fragment_emit" in out  # event counts section
    assert "run: " in out and "cycles" in out


def test_events_with_filter(loop_source, capsys):
    assert main([loop_source, "--events", "--filter", "ibl_hit,ibl_miss"]) == 0
    out = capsys.readouterr().out
    body = out.split("events (", 1)[1]
    assert "ibl_" in body
    assert "fragment_emit" not in body  # filtered out of the dump


def test_unknown_filter_kind_errors(loop_source, capsys):
    with pytest.raises(SystemExit):
        main([loop_source, "--filter", "no_such_kind"])
    assert "unknown event kind" in capsys.readouterr().err


def test_jsonl_export(loop_source, tmp_path, capsys):
    out_path = tmp_path / "events.jsonl"
    assert main([loop_source, "--jsonl", str(out_path), "--buffer", "0"]) == 0
    stdout = capsys.readouterr().out
    lines = out_path.read_text().splitlines()
    assert "wrote %d events" % len(lines) in stdout
    events = [json.loads(line) for line in lines]
    # Unbounded buffer: sequence numbers are gapless from 1.
    assert [e["seq"] for e in events] == list(range(1, len(events) + 1))
    assert any(e["event"] == "fragment_emit" for e in events)


def test_client_and_top_flags(loop_source, capsys):
    assert main([loop_source, "--client", "inscount-inline", "--top", "2"]) == 0
    out = capsys.readouterr().out
    assert "hot fragments (top 2" in out


def test_requires_a_program(capsys):
    with pytest.raises(SystemExit):
        main([])
    assert "source file or --benchmark" in capsys.readouterr().err
