"""FragmentProfiler unit tests (synthetic samples) plus the
acceptance-criterion run: attribution accounts for the run's total
simulated cycles, and tracing changes no cycle counts."""

from repro.core import RuntimeOptions
from repro.core.fragments import Fragment
from repro.observe.profiler import OVERHEAD_KEY, FragmentProfiler

from tests.conftest import run_under


def _frag(tag, kind="bb"):
    return Fragment(tag, kind)


class TestAttribution:
    def test_deltas_split_between_fragments_and_overhead(self):
        prof = FragmentProfiler()
        prof.enter_fragment(_frag(0x10), 100)  # 0..100 overhead
        prof.to_overhead(250)  # 100..250 in 0x10
        prof.enter_fragment(_frag(0x20), 300)  # 250..300 overhead
        prof.finalize(340)  # 300..340 in 0x20
        assert prof.overhead_cycles() == 100 + 50
        assert prof.attributed_cycles() == 150 + 40
        assert prof.total_cycles() == 340
        assert prof.fragment_count() == 2
        assert prof.entries(("bb", 0x10)) == 1

    def test_linked_chain_attributes_to_the_next_fragment(self):
        # Dispatch enters A, A falls through (linked) into B with no
        # overhead sample in between: the boundary is B's enter stamp.
        prof = FragmentProfiler()
        prof.enter_fragment(_frag(0xA), 0)
        prof.enter_fragment(_frag(0xB), 60)
        prof.finalize(100)
        assert prof._cycles[("bb", 0xA)] == 60
        assert prof._cycles[("bb", 0xB)] == 40
        assert OVERHEAD_KEY not in prof._cycles

    def test_replaced_fragment_accumulates_under_same_key(self):
        prof = FragmentProfiler()
        old, new = _frag(0x30), _frag(0x30)
        new.generation = 1
        prof.enter_fragment(old, 0)
        prof.to_overhead(10)
        prof.enter_fragment(new, 20)
        prof.finalize(50)
        assert prof.entries(("bb", 0x30)) == 2
        assert prof._cycles[("bb", 0x30)] == 10 + 30

    def test_hot_table_sorted_with_exact_shares(self):
        prof = FragmentProfiler()
        prof.enter_fragment(_frag(0x2, "trace"), 0)
        prof.enter_fragment(_frag(0x1), 700)
        prof.to_overhead(900)
        prof.finalize(1000)
        rows = prof.hot_fragments()
        assert [r["tag"] for r in rows] == [0x2, 0x1]
        assert rows[0]["kind"] == "trace"
        assert rows[0]["share"] == 0.7
        assert prof.hot_fragments(top=1) == rows[:1]


class TestAcceptanceCriterion:
    """ISSUE acceptance: with tracing on, hot-fragment cycle
    attribution is within 1% of total simulated cycles — satisfied via
    exact equality — and tracing off leaves cycles untouched."""

    def _traced_options(self):
        opts = RuntimeOptions.with_traces()
        opts.trace_events = True
        opts.trace_buffer = None
        return opts

    def test_attribution_accounts_for_every_cycle(self, loop_image):
        dr, result = run_under(loop_image, self._traced_options())
        prof = dr.observer.profiler
        attributed = prof.attributed_cycles()
        overhead = prof.overhead_cycles()
        # Exact: the profiler distributes deltas of the one cycle
        # counter, so nothing can be lost or double-counted.
        assert attributed + overhead == result.cycles
        assert abs(attributed + overhead - result.cycles) <= result.cycles * 0.01
        assert attributed > 0
        assert result.events["observe_attributed_cycles"] == attributed
        assert result.events["observe_overhead_cycles"] == overhead
        # Hot-table shares are fractions of the same exact total.
        rows = dr.observer.profiler.hot_fragments()
        assert rows
        assert sum(r["cycles"] for r in rows) == attributed
        total_share = sum(r["share"] for r in rows)
        assert abs(total_share - attributed / result.cycles) < 1e-9

    def test_tracing_off_is_cycle_identical(self, loop_image):
        _, traced = run_under(loop_image, self._traced_options())
        _, plain = run_under(loop_image, RuntimeOptions.with_traces())
        assert plain.cycles == traced.cycles
        assert plain.instructions == traced.instructions
        assert plain.output == traced.output
        assert "observe_events" not in plain.events
