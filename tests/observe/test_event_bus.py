"""Observer / event-bus mechanics, independent of the runtime."""

import io
import json

from repro.observe import (
    EV_FRAGMENT_EMIT,
    EV_IBL_HIT,
    EV_IBL_MISS,
    EVENT_KINDS,
    Event,
    Observer,
    format_event,
    format_report,
    write_jsonl,
)


class TestRingBuffer:
    def test_bounded_ring_drops_oldest_but_counts_stay_exact(self):
        obs = Observer(capacity=4)
        for i in range(10):
            obs.emit(EV_IBL_HIT, 0x1000 + i)
        assert obs.total_emitted == 10
        assert obs.dropped == 6
        recorded = obs.events()
        assert len(recorded) == 4
        # Oldest dropped: the survivors are the last four emitted.
        assert [e.seq for e in recorded] == [7, 8, 9, 10]
        # Aggregate counts never drop, even after the ring wraps.
        assert obs.counts[EV_IBL_HIT] == 10

    def test_unbounded_ring(self):
        obs = Observer(capacity=None)
        for i in range(100):
            obs.emit(EV_IBL_MISS, i)
        assert obs.dropped == 0
        assert len(obs.events()) == 100

    def test_kind_filtering(self):
        obs = Observer()
        obs.emit(EV_IBL_HIT, 1)
        obs.emit(EV_IBL_MISS, 2)
        obs.emit(EV_IBL_HIT, 3)
        hits = obs.events([EV_IBL_HIT])
        assert [e.tag for e in hits] == [1, 3]

    def test_payload_may_shadow_kind_and_tag(self):
        # emit(kind, tag, /) is positional-only: fragment events carry
        # their own "kind" (bb/trace) in the payload.
        obs = Observer()
        obs.emit(EV_FRAGMENT_EMIT, 0x42, kind="bb", tag="shadow")
        event = obs.events()[0]
        assert event.kind == EV_FRAGMENT_EMIT
        assert event.tag == 0x42
        assert event.data == {"kind": "bb", "tag": "shadow"}

    def test_tracers_see_every_event_in_order(self):
        obs = Observer(capacity=2)  # ring drops; tracers never do
        seen = []
        obs.tracers.append(seen.append)
        for i in range(5):
            obs.emit(EV_IBL_HIT, i)
        assert [e.tag for e in seen] == [0, 1, 2, 3, 4]

    def test_summary_fields_are_flat_ints(self):
        obs = Observer(capacity=2)
        for i in range(5):
            obs.emit(EV_IBL_HIT, i)
        obs.finalize(0)
        summary = obs.summary()
        assert summary["observe_events"] == 5
        assert summary["observe_events_dropped"] == 3
        assert summary["observe_event_kinds"] == 1
        assert all(isinstance(v, int) for v in summary.values())


class TestSinks:
    def test_event_to_dict_and_jsonl_round_trip(self):
        obs = Observer()
        obs.emit(EV_IBL_HIT, 0x99, fragment_kind="trace")
        obs.emit(EV_IBL_MISS, None)
        buf = io.StringIO()
        assert write_jsonl(obs.events(), buf) == 2
        lines = buf.getvalue().splitlines()
        first = json.loads(lines[0])
        assert first == {
            "seq": 1,
            "event": EV_IBL_HIT,
            "tag": 0x99,
            "fragment_kind": "trace",
        }
        second = json.loads(lines[1])
        assert "tag" not in second  # None tags are omitted

    def test_to_dict_keeps_payload_kind_and_event_kind(self):
        obs = Observer()
        obs.emit(EV_FRAGMENT_EMIT, 0x42, kind="bb")
        d = obs.events()[0].to_dict()
        assert d["event"] == EV_FRAGMENT_EMIT
        assert d["kind"] == "bb"

    def test_format_event_renders_tag_and_payload(self):
        line = format_event(Event(3, EV_IBL_HIT, 0x1000, {"a": 1}))
        assert "#3" in line
        assert EV_IBL_HIT in line
        assert "0x1000" in line
        assert "a=1" in line

    def test_format_report_mentions_counts_and_drops(self):
        obs = Observer(capacity=2)
        for i in range(3):
            obs.emit(EV_IBL_HIT, i)
        obs.finalize(0)
        report = format_report(obs, top=5, total_cycles=0)
        assert "drtrace report" in report
        assert EV_IBL_HIT in report
        assert "1 dropped" in report


def test_event_kinds_unique_and_lowercase():
    assert len(EVENT_KINDS) == len(set(EVENT_KINDS))
    assert all(k == k.lower() for k in EVENT_KINDS)
