"""JsonlSink: streaming export that survives a crashing run."""

import io
import json

import pytest

from repro.core import DynamoRIO, RuntimeOptions
from repro.loader import Process
from repro.observe import JsonlSink
from repro.observe.events import Event


def _event(seq, kind, tag=None, **data):
    return Event(seq, kind, tag, data)


class TestJsonlSinkUnit:
    def test_writes_one_json_object_per_event(self):
        buf = io.StringIO()
        sink = JsonlSink(buf)
        sink(_event(1, "fragment_emit", 0x1000, size=12))
        sink(_event(2, "ibl_hit", 0x2000))
        assert sink.written == 2
        lines = buf.getvalue().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["event"] == "fragment_emit"
        assert first["tag"] == 0x1000

    def test_kinds_filter(self):
        buf = io.StringIO()
        sink = JsonlSink(buf, kinds=["ibl_hit"])
        sink(_event(1, "fragment_emit", 0x1000))
        sink(_event(2, "ibl_hit", 0x2000))
        sink(_event(3, "ibl_miss", 0x2000))
        assert sink.written == 1
        assert json.loads(buf.getvalue())["event"] == "ibl_hit"

    def test_close_is_idempotent_and_stops_writes(self):
        buf = io.StringIO()
        sink = JsonlSink(buf)
        sink(_event(1, "ibl_hit"))
        sink.close()
        sink.close()
        sink(_event(2, "ibl_hit"))
        assert sink.written == 1
        # A caller-provided fp is flushed but not closed.
        assert not buf.closed

    def test_owns_path_and_closes_it(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(str(path)) as sink:
            sink(_event(1, "ibl_hit", 7))
        assert sink.closed
        assert json.loads(path.read_text())["tag"] == 7

    def test_events_survive_an_exception(self, tmp_path):
        """The whole point: a run that raises still leaves the events
        written so far on disk (the buffered exporter lost them all)."""
        path = tmp_path / "events.jsonl"
        with pytest.raises(RuntimeError):
            with JsonlSink(str(path)) as sink:
                sink(_event(1, "fragment_emit", 0x1000))
                sink(_event(2, "ibl_hit", 0x2000))
                raise RuntimeError("mid-run crash")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["seq"] == 2


class TestJsonlSinkStreaming:
    def test_streams_a_crashing_run(self, tmp_path, loop_image):
        """Registered as a tracer on a run that dies mid-flight, the
        sink still holds every event emitted before the crash."""
        from repro.api.client import Client

        class Bomb(Exception):
            pass

        class CrashingClient(Client):
            def basic_block(self, context, tag, ilist):
                if context.runtime.stats.bbs_built >= 5:
                    raise Bomb("client blew up (unguarded)")

        options = RuntimeOptions.with_traces()
        options.trace_events = True
        options.trace_buffer = None
        runtime = DynamoRIO(
            Process(loop_image), options=options, client=CrashingClient()
        )
        path = tmp_path / "crash.jsonl"
        with pytest.raises(Bomb):
            with JsonlSink(str(path)) as sink:
                runtime.observer.tracers.append(sink)
                runtime.run()
        lines = path.read_text().splitlines()
        assert sink.written == len(lines) > 0
        seqs = [json.loads(line)["seq"] for line in lines]
        assert seqs == sorted(seqs)
