"""Client-facing drtrace API: dr_register_event_tracer / dr_get_profile."""

from repro.api.client import Client
from repro.api.dr import dr_get_log, dr_get_profile, dr_register_event_tracer
from repro.clients.inline_count import InlineInstructionCounter
from repro.core import DynamoRIO, RuntimeOptions
from repro.loader import Process
from repro.observe import EV_FRAGMENT_EMIT

from tests.conftest import run_under


class _TracingClient(Client):
    """Registers a tracer from ``init`` — before any fragment exists —
    without the runtime option being set (lazy observer creation)."""

    def __init__(self):
        super().__init__()
        self.seen = []

    def init(self):
        dr_register_event_tracer(self, self.seen.append)


def test_tracer_streams_events_without_option(loop_image):
    client = _TracingClient()
    dr, result = run_under(loop_image, client=client)
    assert dr.observer is not None  # created on demand
    assert client.seen
    emits = [e for e in client.seen if e.kind == EV_FRAGMENT_EMIT]
    assert len(emits) == result.events["bbs_built"] + result.events[
        "traces_built"
    ] + result.events["fragments_replaced"]
    # The lazily created observer also feeds the summary counters.
    assert result.events["observe_events"] == len(client.seen)


def test_register_without_callback_just_enables(loop_image):
    dr = DynamoRIO(Process(loop_image), options=RuntimeOptions.with_traces())
    observer = dr_register_event_tracer(dr, None)
    assert dr.observer is observer
    assert observer.tracers == []
    # Registering again reuses the same observer.
    assert dr_register_event_tracer(dr, None) is observer
    result = dr.run()
    assert result.events["observe_events"] == observer.total_emitted


def test_profile_empty_when_disabled(loop_image):
    dr, _ = run_under(loop_image)
    assert dr.observer is None
    assert dr_get_profile(dr) == []


def test_profile_rows_when_enabled(loop_image):
    opts = RuntimeOptions.with_traces()
    opts.trace_events = True
    dr, result = run_under(loop_image, opts)
    rows = dr_get_profile(dr)
    assert rows
    assert dr_get_profile(dr, top=2) == rows[:2]
    assert all(
        set(row) == {"tag", "kind", "entries", "cycles", "share"}
        for row in rows
    )
    assert sum(r["cycles"] for r in rows) <= result.cycles


def test_inline_count_reports_hot_fragments(loop_image, loop_native):
    opts = RuntimeOptions.with_traces()
    opts.trace_events = True
    client = InlineInstructionCounter()
    run_under(loop_image, opts, client=client)
    log = dr_get_log(client)
    hot = [line for line in log if line.startswith("hot fragment:")]
    assert len(hot) == 3  # top=3 in the client's exit hook
    assert "kind=" in hot[0] and "cycles=" in hot[0]
    # Instrumentation stays correct with the profiler running.
    assert client.executed == loop_native.instructions


def test_inline_count_silent_without_profiler(loop_image):
    client = InlineInstructionCounter()
    run_under(loop_image, client=client)
    log = dr_get_log(client)
    assert not any(line.startswith("hot fragment:") for line in log)
