"""Smoke tests for the command-line tools."""


from repro.tools.disasm import disassemble_image, main as disasm_main
from repro.tools.run import main as run_main
from repro.minicc import compile_source


SRC = """
int main() {
    int i; int s;
    s = 0;
    for (i = 0; i < 50; i++) { s = s + i; }
    print(s);
    return 0;
}
"""


class TestDisasm:
    def test_disassembles_whole_image(self):
        image = compile_source(SRC)
        lines = list(disassemble_image(image))
        assert any("fn_main:" in line for line in lines)
        assert any("_start:" in line for line in lines)
        assert any("syscall" in line for line in lines)

    def test_eflags_column(self):
        image = compile_source(SRC)
        lines = list(disassemble_image(image, show_eflags=True))
        assert any("WCPAZSO" in line for line in lines)  # cmp/add rows

    def test_cli_benchmark(self, capsys):
        disasm_main(["--benchmark", "gap"])
        out = capsys.readouterr().out
        assert "fn_main:" in out

    def test_cli_source_file(self, tmp_path, capsys):
        path = tmp_path / "p.mc"
        path.write_text(SRC)
        disasm_main([str(path)])
        out = capsys.readouterr().out
        assert "fn_main:" in out


class TestRun:
    def test_cli_native_and_runtime(self, tmp_path, capsys):
        path = tmp_path / "p.mc"
        path.write_text(SRC)
        run_main([str(path), "--client", "rlr", "--stats"])
        out = capsys.readouterr().out
        assert "TRANSPARENT" in out
        assert "bbs_built" in out

    def test_cli_native_only(self, tmp_path, capsys):
        path = tmp_path / "p.mc"
        path.write_text(SRC)
        run_main([str(path), "--native-only"])
        out = capsys.readouterr().out
        assert "native:" in out and "runtime" not in out

    def test_cli_benchmark_with_all(self, capsys):
        run_main(["--benchmark", "vpr", "--scale", "1", "--client", "all"])
        out = capsys.readouterr().out
        assert "TRANSPARENT" in out

    def test_cli_shepherd(self, tmp_path, capsys):
        path = tmp_path / "p.mc"
        path.write_text(SRC)
        run_main([str(path), "--client", "shepherd"])
        out = capsys.readouterr().out
        assert "TRANSPARENT" in out

    def test_cli_p3_family(self, tmp_path, capsys):
        path = tmp_path / "p.mc"
        path.write_text(SRC)
        run_main([str(path), "--family", "p3", "--client", "inc2add"])
        out = capsys.readouterr().out
        assert "TRANSPARENT" in out
