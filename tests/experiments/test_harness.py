"""Experiment harness tests."""

import pytest

from repro.core import RuntimeOptions
from repro.experiments.harness import (
    Config,
    NATIVE,
    geometric_mean,
    measure,
    normalized_time,
)
from repro.machine.cost import Family


class TestMeasure:
    def test_native_measure(self):
        m = measure("vpr", 1, NATIVE)
        assert m["cycles"] > 0
        assert m["output"]

    def test_memoized(self):
        a = measure("vpr", 1, NATIVE)
        b = measure("vpr", 1, NATIVE)
        assert a is b

    def test_config_key_distinguishes(self):
        a = measure("vpr", 1, Config("bb", RuntimeOptions.bb_cache_only))
        b = measure("vpr", 1, Config("traces", RuntimeOptions.with_traces))
        assert a["cycles"] != b["cycles"]

    def test_multi_run_benchmark_sums_runs(self):
        from repro.workloads import benchmark

        runs = benchmark("gcc").runs
        assert runs > 1
        single = measure("vpr", 1, NATIVE)
        multi = measure("gcc", 1, NATIVE)
        # multi-run cycles are the sum over `runs` executions
        assert multi["cycles"] > 0

    def test_family_in_cache_key(self):
        p4 = measure("vpr", 1, Config("fam", family=Family.PENTIUM_IV))
        p3 = measure("vpr", 1, Config("fam", family=Family.PENTIUM_III))
        assert p4 is not p3


class TestNormalizedTime:
    def test_base_runtime_above_native(self):
        value = normalized_time("vpr", 1, Config("traces"))
        assert 0.9 < value < 5.0

    def test_transparency_enforced(self):
        # normalized_time raises if outputs differ; with correct
        # runtimes it must simply succeed
        normalized_time("gap", 1, Config("bb", RuntimeOptions.bb_cache_only))


class TestGeomean:
    def test_simple(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_single(self):
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_empty_is_nan(self):
        import math

        assert math.isnan(geometric_mean([]))


class TestTable1Module:
    def test_rows_cover_table(self):
        from repro.experiments import table1

        labels = [label for label, _ in table1.ROWS]
        assert labels == list(table1.PAPER)


class TestTable2Module:
    def test_collect_blocks(self):
        from repro.experiments import table2

        blocks = table2.collect_blocks("test", limit=50)
        assert len(blocks) == 50
        for pc, raw in blocks:
            assert len(raw) >= 1

    def test_process_levels_roundtrip(self):
        from repro.experiments import table2

        blocks = table2.collect_blocks("test", limit=20)
        for level in range(5):
            for pc, raw in blocks:
                il = table2.process_block_at_level(raw, pc, level)
                assert il.instr_count() >= 1

    def test_memory_monotone_until_raw_dropped(self):
        from repro.experiments import table2

        results = table2.run("test", repeats=1, limit=60)
        memories = [results[level][1] for level in range(5)]
        assert memories[0] < memories[1] <= memories[2] <= memories[3]
