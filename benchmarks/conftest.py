"""pytest-benchmark configuration for the experiment harness.

Every experiment is deterministic in *simulated cycles*; the benchmark
layer measures the wall-clock cost of regenerating each table/figure
row and — more importantly — prints the paper-style rows as it goes, so
``pytest benchmarks/ --benchmark-only`` regenerates every result.
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "paper: regenerates a table/figure from the paper"
    )


@pytest.fixture(scope="session")
def fast_bench_options():
    """One round, no warmup: these are macro-benchmarks."""
    return {"iterations": 1, "rounds": 1, "warmup_rounds": 0}
