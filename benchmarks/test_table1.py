"""Benchmark: regenerate Table 1 (mechanism ladder on crafty and vpr).

Run with ``pytest benchmarks/test_table1.py --benchmark-only``.
Each bench measures one row of the ladder and asserts the paper's
ordering; the printed table is the deliverable.
"""

import pytest

from repro.experiments import table1
from repro.experiments.harness import normalized_time


@pytest.mark.paper
@pytest.mark.parametrize("label,config", table1.ROWS, ids=[r[0] for r in table1.ROWS])
def test_table1_row(benchmark, fast_bench_options, label, config):
    result = benchmark.pedantic(
        lambda: {
            name: normalized_time(name, "test", config)
            for name in table1.BENCHMARKS
        },
        **fast_bench_options,
    )
    print("\n%-26s crafty=%.1f vpr=%.1f" % (label, result["crafty"], result["vpr"]))
    for value in result.values():
        assert value > 0.9  # a translator never beats native with no client


@pytest.mark.paper
def test_table1_full(benchmark, fast_bench_options, capsys):
    results = benchmark.pedantic(table1.run, args=("test",), **fast_bench_options)
    with capsys.disabled():
        print()
        table1.main("test")
    emulation = results["Emulation"]
    bb = results["+ Basic block cache"]
    direct = results["+ Link direct branches"]
    indirect = results["+ Link indirect branches"]
    traces = results["+ Traces"]
    for name in table1.BENCHMARKS:
        assert emulation[name] > bb[name] > direct[name] > indirect[name]
        assert traces[name] <= direct[name]
        assert emulation[name] > 100  # "several hundred"
