"""Benchmark: regenerate Figure 5 (normalized time per benchmark/client).

The full 22-benchmark x 6-configuration sweep is expensive; the default
bench target runs a representative subset covering every behavior class
(FP stencil, INT indirect-heavy, call-heavy, short-run).  Run
``python -m repro.experiments.figure5 small`` for the complete figure.
"""

import pytest

from repro.experiments import figure5

# One representative per behavior class keeps the bench affordable.
SUBSET = ["mgrid", "parser", "crafty", "gcc", "swim", "vortex"]


@pytest.mark.paper
def test_figure5_subset(benchmark, fast_bench_options, capsys):
    # "small" scale: the adaptive clients need enough run length to
    # amortize profiling and rewriting (matches the reported figure).
    results = benchmark.pedantic(
        figure5.run,
        kwargs={"scale": "small", "benchmarks": SUBSET},
        **fast_bench_options,
    )
    with capsys.disabled():
        print()
        header = "%-10s" + " %8s" * len(figure5.CONFIGS)
        row = "%-10s" + " %8.3f" * len(figure5.CONFIGS)
        print(header % (("benchmark",) + tuple(k for k, _ in figure5.CONFIGS)))
        for name in results:
            print(row % ((name,) + tuple(results[name][k] for k, _ in figure5.CONFIGS)))

    # Paper-shape assertions on the subset:
    # RLR is strongest on the FP stencils.
    assert results["mgrid"]["rlr"] < results["mgrid"]["base"]
    assert results["swim"]["rlr"] < results["swim"]["base"]
    # Indirect dispatch wins on the indirect-heavy INT benchmark.
    assert results["parser"]["ibdisp"] < results["parser"]["base"]
    # gcc (short runs, little reuse) gains nothing from optimization.
    assert results["gcc"]["all"] > 0.95 * results["gcc"]["base"]


@pytest.mark.paper
@pytest.mark.parametrize("name", SUBSET)
def test_figure5_benchmark_row(benchmark, fast_bench_options, name):
    result = benchmark.pedantic(
        figure5.run,
        kwargs={"scale": "test", "benchmarks": [name]},
        **fast_bench_options,
    )
    row = result[name]
    assert set(row) == {k for k, _ in figure5.CONFIGS}
    for value in row.values():
        assert value > 0.5
