#!/usr/bin/env python3
"""Host wall-clock benchmark: tuple vs closure vs chain engines.

Runs the tier-2 workload sweep through every execution engine of each
executor — the interpreter (``engine="closure"`` / ``engine="tuple"``)
and the DynamoRIO runtime (``options.closure_engine``, plus the chain
compiler behind ``options.chain_engine``) — timing host seconds while
asserting the *simulated* results (cycles, instructions, output) are
bit-identical across engines.  Simulated numbers measure the machine
being modelled; host seconds measure this Python implementation.  Only
the latter may change between engines.

Usage::

    PYTHONPATH=src python benchmarks/wallclock.py              # full sweep
    PYTHONPATH=src python benchmarks/wallclock.py --quick      # CI smoke
    PYTHONPATH=src python benchmarks/wallclock.py --quick \\
        --check BENCH_wallclock.json                           # drift gate

``--check`` compares the simulated cycles/instructions of every sweep
cell against a previously written JSON (host timings are machine-
dependent and deliberately ignored); any drift exits non-zero.  The
checked-in ``BENCH_wallclock.json`` doubles as the golden for CI;
``--commit``/``--date`` stamp its ``meta`` block so the artifact
records which revision produced it.
"""

import argparse
import json
import statistics
import sys
import time

from repro.core import DynamoRIO, RuntimeOptions
from repro.loader import Process
from repro.machine.cost import CostModel
from repro.machine.interp import Interpreter
from repro.workloads import load_benchmark

# (config key, kind).  "native" exercises the interpreter's decode-time
# closures; "bb"/"trace" exercise the fragment step tables under two
# Table-1 rows (indirect linking, full traces).
CONFIGS = (
    ("native", "interp"),
    ("bb", "runtime"),
    ("trace", "runtime"),
)

OPTION_FACTORIES = {
    "bb": RuntimeOptions.with_indirect_links,
    "trace": RuntimeOptions.with_traces,
}

FULL_WORKLOADS = ("crafty", "vpr", "gzip", "mcf", "mgrid")
QUICK_WORKLOADS = ("crafty", "vpr")


def _run_once(image, config, kind, engine):
    """One timed run; returns (seconds, RunResult)."""
    process = Process(image)
    if kind == "interp":
        interp = Interpreter(
            process, CostModel(), mode="native", engine=engine
        )
        start = time.perf_counter()
        result = interp.run()
        elapsed = time.perf_counter() - start
    else:
        options = OPTION_FACTORIES[config]()
        options.closure_engine = engine in ("closure", "chain")
        options.chain_engine = engine == "chain"
        runtime = DynamoRIO(process, options=options, cost_model=CostModel())
        start = time.perf_counter()
        result = runtime.run()
        elapsed = time.perf_counter() - start
    return elapsed, result


def _measure(image, config, kind, engine, repeats):
    """Median host seconds over ``repeats`` fresh runs + one result."""
    times = []
    result = None
    for _ in range(repeats):
        elapsed, result = _run_once(image, config, kind, engine)
        times.append(elapsed)
    return statistics.median(times), result


def _simulated(result):
    return (result.cycles, result.instructions, result.output)


def run_sweep(workloads, scale, repeats):
    cells = []
    for name in workloads:
        image = load_benchmark(name, scale)
        for config, kind in CONFIGS:
            # The chain engine only exists above the runtime's closure
            # tables; interp rows compare closure vs tuple only.
            engines = (
                ("closure", "tuple", "chain")
                if kind == "runtime"
                else ("closure", "tuple")
            )
            timings = {}
            results = {}
            for engine in engines:
                timings[engine], results[engine] = _measure(
                    image, config, kind, engine, repeats
                )
            reference = _simulated(results["closure"])
            for engine in engines:
                if _simulated(results[engine]) != reference:
                    raise AssertionError(
                        "engines diverged on %s/%s: closure=%r %s=%r"
                        % (
                            name,
                            config,
                            reference[:2],
                            engine,
                            _simulated(results[engine])[:2],
                        )
                    )
            closure_s = timings["closure"]
            tuple_s = timings["tuple"]
            chain_s = timings.get("chain")
            cell = {
                "workload": name,
                "config": config,
                "cycles": reference[0],
                "instructions": reference[1],
                "closure_s": round(closure_s, 4),
                "tuple_s": round(tuple_s, 4),
                "speedup": round(tuple_s / closure_s, 3),
                "chain_s": None if chain_s is None else round(chain_s, 4),
                "chain_speedup": (
                    None if chain_s is None
                    else round(closure_s / chain_s, 3)
                ),
            }
            cells.append(cell)
            chain_col = (
                "  chain %.3fs  %.2fx vs closure"
                % (chain_s, cell["chain_speedup"])
                if chain_s is not None
                else ""
            )
            print(
                "%-8s %-7s %12d cycles  closure %.3fs  tuple %.3fs  %.2fx%s"
                % (
                    name,
                    config,
                    reference[0],
                    closure_s,
                    tuple_s,
                    cell["speedup"],
                    chain_col,
                )
            )
    return cells


def geomean(values):
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))


def summarize(cells):
    per_config = {}
    for config, _kind in CONFIGS:
        speedups = [c["speedup"] for c in cells if c["config"] == config]
        per_config[config] = round(geomean(speedups), 3)
    chain_speedups = [
        c["chain_speedup"] for c in cells if c["chain_speedup"] is not None
    ]
    return {
        "geomean_speedup": round(geomean([c["speedup"] for c in cells]), 3),
        "per_config": per_config,
        # Chain engine vs the closure engine it stacks on, geomean over
        # the runtime rows (the chain compiler's acceptance number).
        "chain_vs_closure": (
            round(geomean(chain_speedups), 3) if chain_speedups else None
        ),
    }


def check_against(cells, golden_path, scale):
    """Gate on simulated-result drift vs a previous run's JSON."""
    with open(golden_path) as f:
        golden = json.load(f)
    if golden.get("scale") != scale:
        print(
            "check: golden scale %r != run scale %r; nothing comparable"
            % (golden.get("scale"), scale),
            file=sys.stderr,
        )
        return ["scale mismatch: golden %r vs run %r"
                % (golden.get("scale"), scale)]
    golden_cells = {
        (c["workload"], c["config"]): c for c in golden["results"]
    }
    drift = []
    for cell in cells:
        key = (cell["workload"], cell["config"])
        want = golden_cells.get(key)
        if want is None:
            continue  # golden may come from a different sweep size
        for field in ("cycles", "instructions"):
            if cell[field] != want[field]:
                drift.append(
                    "%s/%s: %s %d != golden %d"
                    % (key[0], key[1], field, cell[field], want[field])
                )
    return drift


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sweep, 1 repeat (CI smoke mode)",
    )
    parser.add_argument("--scale", default=None, help="workload scale")
    parser.add_argument(
        "--repeats", type=int, default=None, help="timed runs per cell"
    )
    parser.add_argument(
        "--output",
        default="BENCH_wallclock.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--check",
        metavar="GOLDEN",
        help="fail if simulated cycles/instructions drift from GOLDEN",
    )
    parser.add_argument(
        "--commit",
        default=None,
        help="revision hash recorded in the report's meta block",
    )
    parser.add_argument(
        "--date",
        default=None,
        help="ISO date recorded in the report's meta block",
    )
    args = parser.parse_args(argv)

    workloads = QUICK_WORKLOADS if args.quick else FULL_WORKLOADS
    scale = args.scale or ("test" if args.quick else "small")
    repeats = args.repeats or (1 if args.quick else 3)

    cells = run_sweep(workloads, scale, repeats)
    summary = summarize(cells)
    report = {
        "scale": scale,
        "repeats": repeats,
        "quick": args.quick,
        "python": sys.version.split()[0],
        "results": cells,
        "summary": summary,
        "meta": {
            "commit": args.commit,
            "date": args.date,
        },
    }
    chain_txt = (
        "  chain-vs-closure %.2fx" % summary["chain_vs_closure"]
        if summary["chain_vs_closure"] is not None
        else ""
    )
    print(
        "geomean speedup: %.2fx  (%s)%s"
        % (
            summary["geomean_speedup"],
            "  ".join(
                "%s %.2fx" % (k, v) for k, v in summary["per_config"].items()
            ),
            chain_txt,
        )
    )

    if args.check:
        drift = check_against(cells, args.check, scale)
        if drift:
            for line in drift:
                print("DRIFT: " + line, file=sys.stderr)
            return 1
        print("simulated results match %s" % args.check)

    with open(args.output, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print("wrote %s" % args.output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
