#!/usr/bin/env python3
"""Cache-pressure benchmark: flush vs fifo vs adaptive eviction.

For each workload the harness first probes the unconstrained code-
cache footprint, then replays the workload under capacity pressure —
``code_cache_limit`` pinned to fractions of that footprint — once per
eviction policy:

* ``flush``    whole-unit flush when a unit fills (the pre-adaptive
               default; DELI's fallback strategy),
* ``fifo``     single-fragment FIFO eviction with empty-slot reuse
               (DynamoRIO's own scheme, paper Section 6),
* ``adaptive`` fifo + working-set sizing (the limit is the *initial*
               size; units grow when the regenerated-vs-replaced ratio
               exceeds ``cache_regen_threshold``).

Every cell runs under all three execution engines (tuple, closure,
chain) and asserts the simulated results — cycles, instructions,
output, exit code — are bit-identical across engines; any divergence
exits non-zero.  Output and exit code must also be identical across
*policies* at the same limit (eviction may never change program
behavior, only overhead cycles).  Finally the harness gates the
tentpole claim: at every constrained limit, fifo must retranslate
strictly less than flush (retranslations = bbs + traces built).

Usage::

    PYTHONPATH=src python benchmarks/cache_pressure.py            # full
    PYTHONPATH=src python benchmarks/cache_pressure.py --quick    # CI
    PYTHONPATH=src python benchmarks/cache_pressure.py --quick \\
        --check BENCH_cache_pressure.json                         # gate

``--check`` compares every cell's simulated cycles/instructions (and
retranslation counts) against a previously written report; host
timings are machine-dependent and ignored.  The checked-in
``BENCH_cache_pressure.json`` is the quick-mode golden for CI;
``--commit``/``--date`` stamp its ``meta`` block.
"""

import argparse
import json
import statistics
import sys
import time

from repro.core import DynamoRIO, RuntimeOptions
from repro.loader import Process
from repro.machine.cost import CostModel
from repro.workloads import load_benchmark

# policy key -> (cache_evict_policy, cache_adaptive)
POLICIES = (
    ("flush", ("flush", False)),
    ("fifo", ("fifo", False)),
    ("adaptive", ("fifo", True)),
)

ENGINES = ("tuple", "closure", "chain")

FULL_WORKLOADS = ("crafty", "vpr", "gzip", "mcf", "mgrid")
QUICK_WORKLOADS = ("crafty", "mgrid")

# Constrained limits as fractions of the probed unconstrained
# footprint: heavy pressure and moderate pressure.
FULL_FRACTIONS = (0.4, 0.7)
QUICK_FRACTIONS = (0.5,)


def _options(policy_key, engine, limit):
    policy, adaptive = dict(POLICIES)[policy_key]
    options = RuntimeOptions()
    options.code_cache_limit = limit
    options.cache_evict_policy = policy
    options.cache_adaptive = adaptive
    options.closure_engine = engine in ("closure", "chain")
    options.chain_engine = engine == "chain"
    return options


def _run_once(image, policy_key, engine, limit):
    """One timed run; returns (seconds, RunResult)."""
    runtime = DynamoRIO(
        Process(image), options=_options(policy_key, engine, limit),
        cost_model=CostModel(),
    )
    start = time.perf_counter()
    result = runtime.run()
    elapsed = time.perf_counter() - start
    return elapsed, result


def _measure(image, policy_key, engine, limit, repeats):
    times = []
    result = None
    for _ in range(repeats):
        elapsed, result = _run_once(image, policy_key, engine, limit)
        times.append(elapsed)
    return statistics.median(times), result


def _simulated(result):
    return (result.cycles, result.instructions, result.output,
            result.exit_code)


def probe_footprint(image):
    """Unconstrained code-cache footprint: peak bytes of the fuller
    unit, doubled (limits split half/half between bb and trace units).
    Deterministic — derived limits are reproducible across runs."""
    runtime = DynamoRIO(
        Process(image), options=RuntimeOptions(), cost_model=CostModel()
    )
    runtime.run()
    peak = 0
    seen = set()
    for thread in runtime.threads:
        for cache in (thread.bb_cache, thread.trace_cache):
            if id(cache) in seen:
                continue
            seen.add(id(cache))
            peak = max(peak, cache.used())
    return 2 * peak


def retranslations(result):
    return result.events["bbs_built"] + result.events["traces_built"]


def run_sweep(workloads, scale, repeats, fractions):
    cells = []
    failures = []
    for name in workloads:
        image = load_benchmark(name, scale)
        footprint = probe_footprint(image)
        limits = [max(200, int(footprint * f)) for f in fractions]
        print("%-8s footprint %6d bytes -> limits %s" % (
            name, footprint, limits))
        for fraction, limit in zip(fractions, limits):
            behavior = None  # (output, exit_code), policy-invariant
            per_policy = {}
            for policy_key, _ in POLICIES:
                timings = {}
                results = {}
                for engine in ENGINES:
                    timings[engine], results[engine] = _measure(
                        image, policy_key, engine, limit, repeats
                    )
                reference = _simulated(results["closure"])
                for engine in ENGINES:
                    if _simulated(results[engine]) != reference:
                        failures.append(
                            "engine divergence: %s limit=%d %s: "
                            "closure=%r %s=%r"
                            % (name, limit, policy_key, reference[:2],
                               engine, _simulated(results[engine])[:2])
                        )
                if behavior is None:
                    behavior = (reference[2], reference[3])
                elif (reference[2], reference[3]) != behavior:
                    failures.append(
                        "policy changed program behavior: %s limit=%d %s"
                        % (name, limit, policy_key)
                    )
                result = results["closure"]
                ev = result.events
                cell = {
                    "workload": name,
                    "fraction": fraction,
                    "limit": limit,
                    "policy": policy_key,
                    "cycles": result.cycles,
                    "instructions": result.instructions,
                    "retranslations": retranslations(result),
                    "cache_evictions": ev["cache_evictions"],
                    "fragment_evictions": ev["cache_fragment_evictions"],
                    "cache_resizes": ev["cache_resizes"],
                    "tuple_s": round(timings["tuple"], 4),
                    "closure_s": round(timings["closure"], 4),
                    "chain_s": round(timings["chain"], 4),
                }
                cells.append(cell)
                per_policy[policy_key] = cell
                print(
                    "%-8s limit %6d %-8s %12d cycles  retrans %5d  "
                    "evict %5d/%-5d  resize %2d  %.3fs"
                    % (
                        name, limit, policy_key, result.cycles,
                        cell["retranslations"], ev["cache_evictions"],
                        ev["cache_fragment_evictions"], ev["cache_resizes"],
                        timings["closure"],
                    )
                )
            # The tentpole gate: single-fragment FIFO eviction must
            # retranslate strictly less than the whole-unit flush.
            flush_rt = per_policy["flush"]["retranslations"]
            fifo_rt = per_policy["fifo"]["retranslations"]
            if fifo_rt >= flush_rt:
                failures.append(
                    "fifo did not beat flush: %s limit=%d "
                    "retranslations fifo=%d flush=%d"
                    % (name, limit, fifo_rt, flush_rt)
                )
    return cells, failures


def summarize(cells):
    """Aggregate fifo/adaptive wins over flush across the matrix."""
    by_key = {}
    for cell in cells:
        by_key[(cell["workload"], cell["limit"], cell["policy"])] = cell
    ratios = {"fifo": [], "adaptive": []}
    cycle_ratios = {"fifo": [], "adaptive": []}
    for cell in cells:
        if cell["policy"] != "flush":
            continue
        for policy in ("fifo", "adaptive"):
            other = by_key.get((cell["workload"], cell["limit"], policy))
            if other is None:
                continue
            if other["retranslations"]:
                ratios[policy].append(
                    cell["retranslations"] / other["retranslations"]
                )
            cycle_ratios[policy].append(cell["cycles"] / other["cycles"])
    def geomean(values):
        if not values:
            return None
        product = 1.0
        for v in values:
            product *= v
        return round(product ** (1.0 / len(values)), 3)
    return {
        "retranslation_reduction": {
            k: geomean(v) for k, v in ratios.items()
        },
        "cycle_reduction": {
            k: geomean(v) for k, v in cycle_ratios.items()
        },
    }


def check_against(cells, golden_path, scale):
    """Gate on simulated-result drift vs a previous run's JSON."""
    with open(golden_path) as f:
        golden = json.load(f)
    if golden.get("scale") != scale:
        return ["scale mismatch: golden %r vs run %r"
                % (golden.get("scale"), scale)]
    golden_cells = {
        (c["workload"], c["limit"], c["policy"]): c
        for c in golden["results"]
    }
    drift = []
    for cell in cells:
        key = (cell["workload"], cell["limit"], cell["policy"])
        want = golden_cells.get(key)
        if want is None:
            continue
        for field in ("cycles", "instructions", "retranslations"):
            if cell[field] != want[field]:
                drift.append(
                    "%s/limit=%d/%s: %s %d != golden %d"
                    % (key[0], key[1], key[2], field, cell[field],
                       want[field])
                )
    return drift


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small sweep, 1 repeat (CI smoke mode)",
    )
    parser.add_argument("--scale", default=None, help="workload scale")
    parser.add_argument(
        "--repeats", type=int, default=None, help="timed runs per cell"
    )
    parser.add_argument(
        "--output", default="BENCH_cache_pressure.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--check", metavar="GOLDEN",
        help="fail if simulated results drift from GOLDEN",
    )
    parser.add_argument(
        "--commit", default=None,
        help="revision hash recorded in the report's meta block",
    )
    parser.add_argument(
        "--date", default=None,
        help="ISO date recorded in the report's meta block",
    )
    args = parser.parse_args(argv)

    workloads = QUICK_WORKLOADS if args.quick else FULL_WORKLOADS
    fractions = QUICK_FRACTIONS if args.quick else FULL_FRACTIONS
    scale = args.scale or "test"
    repeats = args.repeats or (1 if args.quick else 3)

    cells, failures = run_sweep(workloads, scale, repeats, fractions)
    summary = summarize(cells)
    report = {
        "scale": scale,
        "repeats": repeats,
        "quick": args.quick,
        "python": sys.version.split()[0],
        "results": cells,
        "summary": summary,
        "meta": {
            "commit": args.commit,
            "date": args.date,
        },
    }
    print(
        "retranslation reduction vs flush:  fifo %sx  adaptive %sx"
        % (summary["retranslation_reduction"]["fifo"],
           summary["retranslation_reduction"]["adaptive"])
    )
    print(
        "cycle reduction vs flush:          fifo %sx  adaptive %sx"
        % (summary["cycle_reduction"]["fifo"],
           summary["cycle_reduction"]["adaptive"])
    )

    status = 0
    for line in failures:
        print("FAIL: " + line, file=sys.stderr)
        status = 1

    if args.check:
        drift = check_against(cells, args.check, scale)
        if drift:
            for line in drift:
                print("DRIFT: " + line, file=sys.stderr)
            status = 1
        else:
            print("simulated results match %s" % args.check)

    with open(args.output, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print("wrote %s" % args.output)
    return status


if __name__ == "__main__":
    sys.exit(main())
