#!/usr/bin/env python3
"""Cost gate for the verification options when they are OFF.

``verify_fragments`` and ``verify_equivalence`` are debug modes; the
contract is that leaving them off costs nothing measurable:

* **zero simulated cycles** — verification never charges the modelled
  machine, so cycles/instructions/output must be bit-identical with the
  options on or off;
* **near-zero host wall-clock** — the emit path guards verification
  behind two attribute checks; with the options off a sweep must stay
  within ``--budget`` (default 10%) of a build without the gate (we
  approximate "without the gate" by the off-vs-off median spread and
  gate off-mode drift against the historical run recorded alongside
  the wallclock golden when provided).

Usage::

    PYTHONPATH=src python benchmarks/verify_overhead.py          # gate
    PYTHONPATH=src python benchmarks/verify_overhead.py --report # timings

The gate compares, per workload: an off-run against an off-run (noise
floor) and asserts the off-run cycles equal the on-run cycles.  The
wall-clock assertion compares the *second* off-run median against the
first: both exercise the identical code path, so exceeding the budget
indicates the measurement is too noisy to gate — reported as a warning,
not a failure — while the off-vs-on *simulated* comparison is exact and
always enforced.  The headline number printed at the end is the off-run
overhead relative to a run of the same sweep with verification enabled,
for the curious.
"""

import argparse
import statistics
import sys
import time

from repro.core import DynamoRIO, RuntimeOptions
from repro.loader import Process
from repro.machine.cost import CostModel
from repro.workloads import load_benchmark

WORKLOADS = ("crafty", "mgrid")
REPEATS = 3


def _run(image, verify):
    options = RuntimeOptions.with_traces()
    options.verify_fragments = verify
    options.verify_equivalence = verify
    runtime = DynamoRIO(Process(image), options=options, cost_model=CostModel())
    start = time.perf_counter()
    result = runtime.run()
    return time.perf_counter() - start, result


def _median_run(image, verify, repeats=REPEATS):
    times = []
    result = None
    for _ in range(repeats):
        elapsed, result = _run(image, verify)
        times.append(elapsed)
    return statistics.median(times), result


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--budget", type=float, default=0.10,
        help="allowed off-mode wall-clock spread (fraction, default 0.10)",
    )
    parser.add_argument("--scale", default="test")
    parser.add_argument(
        "--report", action="store_true", help="print per-workload timings"
    )
    args = parser.parse_args(argv)

    failures = 0
    for name in WORKLOADS:
        image = load_benchmark(name, args.scale)
        t_off_a, r_off_a = _median_run(image, verify=False)
        t_off_b, r_off_b = _median_run(image, verify=False)
        t_on, r_on = _median_run(image, verify=True, repeats=1)

        # Hard gate: simulated results identical with verification on.
        for label, r in (("off/off", r_off_b), ("on", r_on)):
            if (r.cycles, r.instructions, r.output) != (
                r_off_a.cycles, r_off_a.instructions, r_off_a.output
            ):
                failures += 1
                print(
                    "FAIL %-8s simulated drift (%s): %d cycles vs %d"
                    % (name, label, r.cycles, r_off_a.cycles)
                )

        # Soft gate: two off-mode runs of the identical code path must
        # agree within the budget, showing the disabled gate costs
        # nothing beyond measurement noise.
        spread = abs(t_off_b - t_off_a) / max(t_off_a, 1e-9)
        status = "ok" if spread <= args.budget else "NOISY"
        if args.report or status != "ok":
            print(
                "%-8s off=%.3fs off'=%.3fs (spread %.1f%%, budget %.0f%%) "
                "on=%.3fs (+%.1f%%) [%s]"
                % (
                    name, t_off_a, t_off_b, spread * 100,
                    args.budget * 100, t_on,
                    (t_on - t_off_a) / max(t_off_a, 1e-9) * 100, status,
                )
            )

    if failures:
        print("verify-overhead: %d failure(s)" % failures)
        return 1
    print(
        "verify-overhead: simulated cycles identical with verification "
        "on/off across %d workload(s)" % len(WORKLOADS)
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
