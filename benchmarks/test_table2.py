"""Benchmark: regenerate Table 2 (decode+encode per level).

This is the one table that *is* a microbenchmark: pytest-benchmark
times the decode+encode of the suite's basic blocks at each level.
"""

import pytest

from repro.experiments import table2


@pytest.fixture(scope="module")
def blocks():
    return table2.collect_blocks("test", limit=300)


@pytest.mark.paper
@pytest.mark.parametrize("level", range(5))
def test_table2_level(benchmark, blocks, level):
    def decode_encode_all():
        for pc, raw in blocks:
            table2.process_block_at_level(raw, pc, level)

    benchmark(decode_encode_all)


@pytest.mark.paper
def test_table2_full(benchmark, fast_bench_options, capsys):
    results = benchmark.pedantic(
        table2.run, kwargs={"scale": "test", "repeats": 1, "limit": 300},
        **fast_bench_options,
    )
    with capsys.disabled():
        print()
        print("Table 2 (measured):")
        for level in range(5):
            t, m = results[level]
            print("  level %d: %8.2f us  %10.1f bytes" % (level, t, m))
    # the paper's claims: monotone time, big 0->4 spread, memory steps.
    # Levels 1 and 2 are close by design (the level-2 decode adds only
    # the opcode/eflags table walk), so allow measurement noise there.
    times = [results[level][0] for level in range(5)]
    memories = [results[level][1] for level in range(5)]
    assert times[0] < times[1]
    assert times[1] <= times[2] * 1.4
    assert times[2] < times[3] * 1.2
    assert times[3] < times[4]
    assert times[4] / times[0] > 10
    assert memories[0] < memories[1]
    assert abs(memories[1] - memories[2]) / memories[1] < 0.05
    assert memories[3] > memories[2]
