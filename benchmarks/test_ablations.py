"""Benchmark: ablation sweeps for the design choices DESIGN.md lists."""

import pytest

from repro.experiments import ablations


@pytest.mark.paper
def test_trace_threshold_sweep(benchmark, fast_bench_options, capsys):
    results = benchmark.pedantic(
        ablations.trace_threshold_sweep, **fast_bench_options
    )
    with capsys.disabled():
        print()
        for threshold, value in results.items():
            print("  threshold=%4d  %.3f" % (threshold, value))
    # an extreme threshold must not beat every moderate one: the sweep
    # has a sweet spot (the counting/coverage tradeoff is real)
    assert min(results[20], results[80]) <= results[320] + 0.05


@pytest.mark.paper
def test_cache_limit_sweep(benchmark, fast_bench_options, capsys):
    results = benchmark.pedantic(ablations.cache_limit_sweep, **fast_bench_options)
    with capsys.disabled():
        print()
        for limit, value in results.items():
            print("  limit=%-9s %.3f" % (limit, value))
    # unlimited cache (the paper's configuration) is never worse than
    # the absurdly small cache
    assert results[None] <= results[1536]


@pytest.mark.paper
def test_dispatch_targets_sweep(benchmark, fast_bench_options, capsys):
    results = benchmark.pedantic(
        ablations.dispatch_targets_sweep, **fast_bench_options
    )
    with capsys.disabled():
        print()
        for n, value in results.items():
            print("  max_targets=%d  %.3f" % (n, value))
    # some dispatch beats none on the indirect-heavy benchmark
    assert min(results[2], results[4]) < results[0]


@pytest.mark.paper
def test_custom_trace_size_sweep(benchmark, fast_bench_options, capsys):
    results = benchmark.pedantic(
        ablations.custom_trace_size_sweep, **fast_bench_options
    )
    with capsys.disabled():
        print()
        for size, value in results.items():
            print("  max_blocks=%2d  %.3f" % (size, value))
    assert all(v > 0.5 for v in results.values())
