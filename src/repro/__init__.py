"""Reproduction of "An Infrastructure for Adaptive Dynamic Optimization"
(Bruening, Garnett, Amarasinghe — CGO 2003).

Public API surface:

* :class:`repro.core.DynamoRIO`, :class:`repro.core.RuntimeOptions` —
  the runtime;
* :class:`repro.api.Client` and :mod:`repro.api.dr` — the client
  interface;
* :mod:`repro.clients` — the paper's sample optimizations;
* :func:`repro.minicc.compile_source`, :class:`repro.loader.Process`,
  :func:`repro.machine.interp.run_native` — building and running
  programs;
* :mod:`repro.workloads` and :mod:`repro.experiments` — the evaluation.
"""

__version__ = "1.0.0"

from repro.api import Client
from repro.core import DynamoRIO, RuntimeOptions
from repro.loader import Process
from repro.machine.cost import CostModel, Family
from repro.minicc import compile_source

__all__ = [
    "Client",
    "DynamoRIO",
    "RuntimeOptions",
    "Process",
    "CostModel",
    "Family",
    "compile_source",
    "__version__",
]
