"""MiniC: a small C-like language compiled to RIO-32.

The paper evaluates on SPEC2000 binaries compiled with ``gcc -O3``; this
substrate has no gcc, so MiniC plays that role.  Its code generator
deliberately produces the artifacts each of the paper's optimizations
keys on:

* **redundant loads** — expression trees keep values in registers, but
  variables are reloaded from their stack/global homes across
  statements (IA-32's eight registers force exactly this in real gcc
  output, the paper's Section 4.1 observation);
* **inc/dec** — ``++``/``--`` statements and loop steps compile to
  ``inc``/``dec`` (Section 4.2's target);
* **indirect branches** — ``switch`` over dense cases compiles to a
  jump table, and function-pointer calls compile to ``call*``
  (Section 4.3's target);
* **call/return structure** — ordinary function calls with a cdecl-like
  convention (Section 4.4's target).

Public entry point: :func:`repro.minicc.compiler.compile_source`.
"""

from repro.minicc.compiler import compile_source, CompileError

__all__ = ["compile_source", "CompileError"]
