"""MiniC semantic analysis: symbol binding, type checking, frame layout."""

from repro.minicc import ast


class SemaError(Exception):
    def __init__(self, line, message):
        super().__init__("line %d: %s" % (line, message))
        self.line = line


class FunctionInfo:
    """Sema results for one function."""

    __slots__ = ("node", "frame_size", "param_offsets")

    def __init__(self, node):
        self.node = node
        self.frame_size = 0
        self.param_offsets = {}


class ProgramInfo:
    """Sema results for the whole program."""

    def __init__(self, program):
        self.program = program
        self.globals = {}  # name -> GlobalVar
        self.functions = {}  # name -> FunctionInfo
        self.uses_indirect_calls = False


def _elem_type(t):
    return t.elem if t.is_ptr() else t


class _FunctionChecker:
    def __init__(self, info, func_info):
        self.info = info
        self.func = func_info
        self.scopes = [{}]
        self.loop_depth = 0
        self.frame_offset = 0

    # -------------------------------------------------------------- scopes

    def push_scope(self):
        self.scopes.append({})

    def pop_scope(self):
        self.scopes.pop()

    def declare(self, name, binding, line):
        if name in self.scopes[-1]:
            raise SemaError(line, "redeclaration of %r" % name)
        self.scopes[-1][name] = binding

    def lookup(self, name):
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return self.info.globals.get(name)

    # ------------------------------------------------------------ checking

    def check(self):
        func = self.func.node
        for i, param in enumerate(func.params):
            if param.type.kind == "void":
                raise SemaError(param.line, "void parameter %r" % param.name)
            self.func.param_offsets[param.name] = 8 + 4 * i
            self.declare(param.name, param, param.line)
        self.check_block(func.body, new_scope=False)

    def check_block(self, block, new_scope=True):
        if new_scope:
            self.push_scope()
        for stmt in block.statements:
            self.check_stmt(stmt)
        if new_scope:
            self.pop_scope()

    def _alloc_local(self, var):
        size = 4 * (var.array_size or 1)
        self.frame_offset += size
        var.offset = -self.frame_offset
        self.func.node.locals.append(var)
        if self.frame_offset > self.func.frame_size:
            self.func.frame_size = self.frame_offset

    def check_stmt(self, stmt):
        if isinstance(stmt, ast.Block):
            self.check_block(stmt)
        elif isinstance(stmt, ast.DeclStmt):
            var = stmt.var
            if var.type.kind == "void":
                raise SemaError(var.line, "void variable %r" % var.name)
            if var.array_size is not None and var.type.is_ptr():
                raise SemaError(var.line, "array of pointers not supported")
            self._alloc_local(var)
            self.declare(var.name, var, var.line)
            if stmt.init is not None:
                if var.array_size is not None:
                    raise SemaError(var.line, "array initializers are global-only")
                t = self.check_expr(stmt.init)
                self._check_assignable(var.type, t, var.line)
        elif isinstance(stmt, ast.ExprStmt):
            self.check_expr(stmt.expr)
        elif isinstance(stmt, ast.Assign):
            target_t = self.check_lvalue(stmt.target)
            value_t = self.check_expr(stmt.value)
            if stmt.op in ("*=", "/=") and target_t.is_ptr():
                raise SemaError(stmt.line, "cannot %s a pointer" % stmt.op)
            self._check_assignable(target_t, value_t, stmt.line)
        elif isinstance(stmt, ast.IncDec):
            t = self.check_lvalue(stmt.target)
            if not t.is_int():
                raise SemaError(stmt.line, "++/-- requires an int lvalue")
        elif isinstance(stmt, ast.If):
            self._check_cond(stmt.cond)
            self.check_stmt(stmt.then)
            if stmt.otherwise is not None:
                self.check_stmt(stmt.otherwise)
        elif isinstance(stmt, ast.While):
            self._check_cond(stmt.cond)
            self.loop_depth += 1
            self.check_stmt(stmt.body)
            self.loop_depth -= 1
        elif isinstance(stmt, ast.For):
            self.push_scope()
            if stmt.init is not None:
                self.check_stmt(stmt.init)
            if stmt.cond is not None:
                self._check_cond(stmt.cond)
            if stmt.step is not None:
                self.check_stmt(stmt.step)
            self.loop_depth += 1
            self.check_stmt(stmt.body)
            self.loop_depth -= 1
            self.pop_scope()
        elif isinstance(stmt, ast.Switch):
            t = self.check_expr(stmt.value)
            if not t.is_int():
                raise SemaError(stmt.line, "switch value must be int")
            seen = set()
            for value, block in stmt.cases:
                if value in seen:
                    raise SemaError(stmt.line, "duplicate case %d" % value)
                seen.add(value)
                self.loop_depth += 1  # break allowed inside switch
                self.check_block(block)
                self.loop_depth -= 1
            if stmt.default is not None:
                self.loop_depth += 1
                self.check_block(stmt.default)
                self.loop_depth -= 1
        elif isinstance(stmt, ast.Return):
            rt = self.func.node.return_type
            if stmt.value is None:
                if rt.kind != "void":
                    raise SemaError(stmt.line, "missing return value")
            else:
                if rt.kind == "void":
                    raise SemaError(stmt.line, "void function returns a value")
                t = self.check_expr(stmt.value)
                self._check_assignable(rt, t, stmt.line)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if self.loop_depth == 0:
                raise SemaError(stmt.line, "break/continue outside loop")
        elif isinstance(stmt, ast.Print):
            self.check_expr(stmt.value)
        elif isinstance(stmt, ast.Exit):
            t = self.check_expr(stmt.value)
            if not t.is_int():
                raise SemaError(stmt.line, "exit() requires an int")
        elif isinstance(stmt, ast.SigHandler):
            t = self.check_expr(stmt.fn)
            if not t.is_int():
                raise SemaError(stmt.line, "sighandler() takes a function address")
        elif isinstance(stmt, ast.Alarm):
            t = self.check_expr(stmt.count)
            if not t.is_int():
                raise SemaError(stmt.line, "alarm() takes an instruction count")
        elif isinstance(stmt, ast.SigReturn):
            pass
        elif isinstance(stmt, ast.Spawn):
            fn_t = self.check_expr(stmt.fn)
            stack_t = self.check_expr(stmt.stack)
            if not fn_t.is_int() or not stack_t.is_int():
                raise SemaError(
                    stmt.line, "spawn() takes a function address and a stack"
                )
        else:
            raise AssertionError("unknown statement %r" % (stmt,))

    def _check_cond(self, cond):
        self.check_expr(cond)

    def _check_assignable(self, target_t, value_t, line):
        if target_t == value_t:
            return
        # int literals flow into float slots (fixed-point constants).
        if target_t.is_float() and value_t.is_int():
            return
        # function addresses are stored in ints
        if target_t.is_int() and value_t.is_int():
            return
        raise SemaError(
            line, "type mismatch: cannot assign %r to %r" % (value_t, target_t)
        )

    # ---------------------------------------------------------- expressions

    def check_lvalue(self, expr):
        if isinstance(expr, ast.Var):
            t = self.check_expr(expr)
            binding = expr.binding
            if isinstance(binding, (ast.GlobalVar, ast.LocalVar)) and (
                binding.array_size is not None
            ):
                raise SemaError(expr.line, "cannot assign to an array")
            return t
        if isinstance(expr, ast.Index):
            return self.check_expr(expr)
        raise SemaError(expr.line, "not an lvalue")

    def check_expr(self, expr):
        if isinstance(expr, ast.Num):
            return ast.INT
        if isinstance(expr, ast.Var):
            binding = self.lookup(expr.name)
            if binding is None:
                raise SemaError(expr.line, "undefined variable %r" % expr.name)
            expr.binding = binding
            t = binding.type
            if (
                isinstance(binding, (ast.GlobalVar, ast.LocalVar))
                and binding.array_size is not None
            ):
                t = ast.Type("ptr", binding.type)  # arrays decay to pointers
            expr.type = t
            return t
        if isinstance(expr, ast.Index):
            base_t = self.check_expr(expr.base)
            if not base_t.is_ptr():
                raise SemaError(expr.line, "indexing a non-array %r" % base_t)
            index_t = self.check_expr(expr.index)
            if not index_t.is_int():
                raise SemaError(expr.line, "array index must be int")
            expr.type = base_t.elem
            return expr.type
        if isinstance(expr, ast.Unary):
            t = self.check_expr(expr.operand)
            if expr.op in ("!", "~") and not t.is_int():
                raise SemaError(expr.line, "%s requires an int" % expr.op)
            if expr.op == "-" and t.is_ptr():
                raise SemaError(expr.line, "cannot negate a pointer")
            expr.type = ast.INT if expr.op in ("!",) else t
            return expr.type
        if isinstance(expr, ast.Binary):
            lt = self.check_expr(expr.left)
            rt = self.check_expr(expr.right)
            op = expr.op
            if op in ("&&", "||"):
                expr.type = ast.INT
                return expr.type
            if op in ("==", "!=", "<", "<=", ">", ">="):
                if lt != rt and not (lt.is_float() and rt.is_int()) and not (
                    rt.is_float() and lt.is_int()
                ):
                    raise SemaError(expr.line, "comparing %r with %r" % (lt, rt))
                expr.type = ast.INT
                return expr.type
            if op in ("%", "<<", ">>", "&", "|", "^"):
                if not (lt.is_int() and rt.is_int()):
                    raise SemaError(expr.line, "%s requires ints" % op)
                expr.type = ast.INT
                return expr.type
            # + - * /
            if lt.is_float() or rt.is_float():
                if not (
                    (lt.is_float() or lt.is_int())
                    and (rt.is_float() or rt.is_int())
                ):
                    raise SemaError(expr.line, "bad float arithmetic")
                expr.type = ast.FLOAT
                return expr.type
            if lt.is_ptr() or rt.is_ptr():
                raise SemaError(expr.line, "pointer arithmetic not supported")
            expr.type = ast.INT
            return expr.type
        if isinstance(expr, ast.Call):
            binding = self.lookup(expr.callee)
            if binding is None and expr.callee in self.info.functions:
                target = self.info.functions[expr.callee].node
                if len(expr.args) != len(target.params):
                    raise SemaError(
                        expr.line,
                        "%s takes %d args, got %d"
                        % (expr.callee, len(target.params), len(expr.args)),
                    )
                for arg, param in zip(expr.args, target.params):
                    at = self.check_expr(arg)
                    self._check_assignable(param.type, at, expr.line)
                expr.type = target.return_type
                expr.indirect = False
                return expr.type
            if binding is not None:
                # Call through a variable holding a function address.
                var = ast.Var(expr.callee, line=expr.line)
                t = self.check_expr(var)
                if not t.is_int():
                    raise SemaError(
                        expr.line, "indirect call through non-int %r" % t
                    )
                expr.indirect = True
                expr.callee = var  # rebind to the checked Var node
                for arg in expr.args:
                    self.check_expr(arg)
                self.info.uses_indirect_calls = True
                expr.type = ast.INT  # indirect calls return int
                return expr.type
            raise SemaError(expr.line, "undefined function %r" % (expr.callee,))
        if isinstance(expr, ast.AddrOf):
            if expr.name in self.info.functions:
                expr.type = ast.INT
                return expr.type
            binding = self.lookup(expr.name)
            if isinstance(binding, ast.GlobalVar) and binding.array_size is not None:
                expr.type = ast.Type("ptr", binding.type)
                return expr.type
            raise SemaError(
                expr.line,
                "& requires a function or global array, got %r" % expr.name,
            )
        raise AssertionError("unknown expression %r" % (expr,))


def analyze(program):
    """Run semantic analysis; returns a :class:`ProgramInfo`."""
    info = ProgramInfo(program)
    for g in program.globals:
        if g.name in info.globals:
            raise SemaError(g.line, "duplicate global %r" % g.name)
        if g.type.kind == "void":
            raise SemaError(g.line, "void global %r" % g.name)
        if g.array_size is not None and g.init is not None:
            if not isinstance(g.init, list):
                raise SemaError(g.line, "array %r needs a {...} initializer" % g.name)
            if len(g.init) > g.array_size:
                raise SemaError(g.line, "too many initializers for %r" % g.name)
        info.globals[g.name] = g
    for f in program.functions:
        if f.name in info.functions or f.name in info.globals:
            raise SemaError(f.line, "duplicate definition %r" % f.name)
        info.functions[f.name] = FunctionInfo(f)
    if "main" not in info.functions:
        raise SemaError(0, "no main() function")
    for func_info in info.functions.values():
        _FunctionChecker(info, func_info).check()
    return info
