"""MiniC abstract syntax tree node definitions.

Plain classes with __slots__; the parser builds these, sema annotates
them (``type`` fields), codegen walks them.
"""


class Node:
    __slots__ = ("line",)

    def __init__(self, line=0):
        self.line = line


# ------------------------------------------------------------------ types


class Type:
    """MiniC types: int, float, pointers to them, and functions."""

    __slots__ = ("kind", "elem")

    def __init__(self, kind, elem=None):
        self.kind = kind  # "int" | "float" | "ptr" | "func" | "void"
        self.elem = elem  # pointee for "ptr"

    def is_int(self):
        return self.kind == "int"

    def is_float(self):
        return self.kind == "float"

    def is_ptr(self):
        return self.kind == "ptr"

    def is_func(self):
        return self.kind == "func"

    def __eq__(self, other):
        return (
            isinstance(other, Type)
            and self.kind == other.kind
            and self.elem == other.elem
        )

    def __hash__(self):
        return hash((self.kind, self.elem))

    def __repr__(self):
        if self.kind == "ptr":
            return "%r*" % self.elem
        return self.kind


INT = Type("int")
FLOAT = Type("float")
VOID = Type("void")
FUNC = Type("func")
INT_PTR = Type("ptr", INT)
FLOAT_PTR = Type("ptr", FLOAT)


# ------------------------------------------------------------- declarations


class Program(Node):
    __slots__ = ("globals", "functions")

    def __init__(self, globals_, functions, line=0):
        super().__init__(line)
        self.globals = globals_
        self.functions = functions


class GlobalVar(Node):
    __slots__ = ("name", "type", "array_size", "init")

    def __init__(self, name, type_, array_size=None, init=None, line=0):
        super().__init__(line)
        self.name = name
        self.type = type_
        self.array_size = array_size  # None for scalars
        self.init = init  # int, or list of ints for arrays


class Param(Node):
    __slots__ = ("name", "type")

    def __init__(self, name, type_, line=0):
        super().__init__(line)
        self.name = name
        self.type = type_


class Function(Node):
    __slots__ = ("name", "return_type", "params", "body", "locals")

    def __init__(self, name, return_type, params, body, line=0):
        super().__init__(line)
        self.name = name
        self.return_type = return_type
        self.params = params
        self.body = body
        self.locals = []  # filled by sema: LocalVar list


class LocalVar(Node):
    __slots__ = ("name", "type", "array_size", "offset")

    def __init__(self, name, type_, array_size=None, line=0):
        super().__init__(line)
        self.name = name
        self.type = type_
        self.array_size = array_size
        self.offset = None  # ebp-relative, assigned by sema


# --------------------------------------------------------------- statements


class Block(Node):
    __slots__ = ("statements",)

    def __init__(self, statements, line=0):
        super().__init__(line)
        self.statements = statements


class DeclStmt(Node):
    __slots__ = ("var", "init")

    def __init__(self, var, init, line=0):
        super().__init__(line)
        self.var = var
        self.init = init


class ExprStmt(Node):
    __slots__ = ("expr",)

    def __init__(self, expr, line=0):
        super().__init__(line)
        self.expr = expr


class Assign(Node):
    __slots__ = ("target", "op", "value")

    def __init__(self, target, op, value, line=0):
        super().__init__(line)
        self.target = target  # Var or Index
        self.op = op  # "=", "+=", "-=", "*=", "/="
        self.value = value


class IncDec(Node):
    __slots__ = ("target", "op")

    def __init__(self, target, op, line=0):
        super().__init__(line)
        self.target = target
        self.op = op  # "++" | "--"


class If(Node):
    __slots__ = ("cond", "then", "otherwise")

    def __init__(self, cond, then, otherwise, line=0):
        super().__init__(line)
        self.cond = cond
        self.then = then
        self.otherwise = otherwise


class While(Node):
    __slots__ = ("cond", "body")

    def __init__(self, cond, body, line=0):
        super().__init__(line)
        self.cond = cond
        self.body = body


class For(Node):
    __slots__ = ("init", "cond", "step", "body")

    def __init__(self, init, cond, step, body, line=0):
        super().__init__(line)
        self.init = init
        self.cond = cond
        self.step = step
        self.body = body


class Switch(Node):
    __slots__ = ("value", "cases", "default")

    def __init__(self, value, cases, default, line=0):
        super().__init__(line)
        self.value = value
        self.cases = cases  # list of (int, Block)
        self.default = default  # Block or None


class Return(Node):
    __slots__ = ("value",)

    def __init__(self, value, line=0):
        super().__init__(line)
        self.value = value


class Break(Node):
    __slots__ = ()


class Continue(Node):
    __slots__ = ()


class Print(Node):
    __slots__ = ("value", "kind")

    def __init__(self, value, kind, line=0):
        super().__init__(line)
        self.value = value
        self.kind = kind  # "print" | "putc"


class Exit(Node):
    __slots__ = ("value",)

    def __init__(self, value, line=0):
        super().__init__(line)
        self.value = value


class Spawn(Node):
    """``spawn(&fn, stack_top);`` — start a thread at fn with the given
    stack.  The compiler plants a thread-exit trampoline as the thread
    function's return address."""

    __slots__ = ("fn", "stack")

    def __init__(self, fn, stack, line=0):
        super().__init__(line)
        self.fn = fn
        self.stack = stack


# -------------------------------------------------------------- expressions


class Num(Node):
    __slots__ = ("value", "type")

    def __init__(self, value, line=0):
        super().__init__(line)
        self.value = value
        self.type = INT


class Var(Node):
    __slots__ = ("name", "type", "binding")

    def __init__(self, name, line=0):
        super().__init__(line)
        self.name = name
        self.type = None
        self.binding = None  # LocalVar | Param | GlobalVar (set by sema)


class Index(Node):
    __slots__ = ("base", "index", "type")

    def __init__(self, base, index, line=0):
        super().__init__(line)
        self.base = base  # Var naming an array or pointer
        self.index = index
        self.type = None


class Unary(Node):
    __slots__ = ("op", "operand", "type")

    def __init__(self, op, operand, line=0):
        super().__init__(line)
        self.op = op  # "-", "!", "~"
        self.operand = operand
        self.type = None


class Binary(Node):
    __slots__ = ("op", "left", "right", "type")

    def __init__(self, op, left, right, line=0):
        super().__init__(line)
        self.op = op
        self.left = left
        self.right = right
        self.type = None


class Call(Node):
    __slots__ = ("callee", "args", "type", "indirect")

    def __init__(self, callee, args, line=0):
        super().__init__(line)
        self.callee = callee  # function name (str) or Var for fn pointers
        self.args = args
        self.type = None
        self.indirect = False


class AddrOf(Node):
    __slots__ = ("name", "type")

    def __init__(self, name, line=0):
        super().__init__(line)
        self.name = name  # function name or global array name
        self.type = None


class SigHandler(Node):
    """``sighandler(&fn);`` — install a signal handler."""

    __slots__ = ("fn",)

    def __init__(self, fn, line=0):
        super().__init__(line)
        self.fn = fn


class Alarm(Node):
    """``alarm(n);`` — request a one-shot alarm after n instructions."""

    __slots__ = ("count",)

    def __init__(self, count, line=0):
        super().__init__(line)
        self.count = count


class SigReturn(Node):
    """``sigreturn;`` — return from a signal handler (epilogue + iret)."""

    __slots__ = ()
