"""MiniC compiler driver: source text → executable Image."""

from repro.asm.builder import CodeBuilder
from repro.isa.registers import Reg
from repro.isa.operands import RegOperand
from repro.loader.process import Layout
from repro.minicc.codegen import DATA_BASE, CodegenError, FunctionCodegen, _fn_label
from repro.minicc.lexer import LexError
from repro.minicc.parser import ParseError, parse
from repro.minicc.sema import SemaError, analyze


class CompileError(Exception):
    """Any MiniC front-end or back-end error, with source line info."""


class Compiler:
    def __init__(self, info, base=Layout.CODE_BASE, data_base=DATA_BASE):
        self.info = info
        self.builder = CodeBuilder(base=base)
        self.data_base = data_base
        self.global_addr = {}
        self.data = bytearray()
        self.pending_tables = []  # (label, [target labels]) jump tables
        self.uses_spawn = False

    def layout_globals(self):
        addr = self.data_base
        for g in self.info.program.globals:
            self.global_addr[g.name] = addr
            count = g.array_size or 1
            values = [0] * count
            if g.init is not None:
                if isinstance(g.init, list):
                    values[: len(g.init)] = g.init
                else:
                    values[0] = g.init
            for v in values:
                self.data += (v & 0xFFFFFFFF).to_bytes(4, "little")
            addr += 4 * count

    def generate(self):
        b = self.builder
        # Entry stub: call main, exit with its return value.
        b.label("_start")
        b.call(_fn_label("main"))
        b.mov(Reg.EBX, RegOperand(Reg.EAX))
        b.mov(Reg.EAX, 1)
        b.syscall()
        for func_info in self.info.functions.values():
            FunctionCodegen(self, func_info).generate()
        if self.uses_spawn:
            # Thread functions "return" here (spawn plants this address
            # on the new stack): exit the calling thread.
            b.label("__thread_exit")
            b.mov(Reg.EAX, 5)
            b.syscall()
            b.jmp("__thread_exit")  # unreachable safety net
        # Jump tables go after all code so they are never executed.
        for label, targets in self.pending_tables:
            b.label(label)
            for target in targets:
                b.word_label(target)

    def image(self):
        sections = []
        if self.data:
            sections.append((".data", self.data_base, bytes(self.data)))
        return self.builder.image(entry="_start", data_sections=sections)


def compile_source(source, base=Layout.CODE_BASE, data_base=DATA_BASE):
    """Compile MiniC source to an executable :class:`Image`."""
    try:
        program = parse(source)
        info = analyze(program)
        compiler = Compiler(info, base=base, data_base=data_base)
        compiler.layout_globals()
        compiler.generate()
        return compiler.image()
    except (LexError, ParseError, SemaError, CodegenError) as exc:
        raise CompileError(str(exc)) from exc
