"""MiniC code generation to RIO-32 via :class:`~repro.asm.builder.CodeBuilder`.

Calling convention (cdecl-like):

* arguments pushed right-to-left; caller pops;
* return value in ``eax``; all registers caller-saved;
* ``ebp`` frame pointer; locals at negative offsets, params at
  ``[ebp+8+4i]``.

Expression trees evaluate in registers (pool: eax, ecx, edx, ebx, esi,
edi), but variables live in memory and are reloaded at each statement —
producing the cross-statement redundant loads the paper's Section 4.1
client removes.  Loop steps and ``++``/``--`` emit ``inc``/``dec``;
dense ``switch`` emits a bounds-checked jump table (an indirect jump);
float-typed arithmetic flows through the FP opcode family.
"""

from repro.asm.builder import mem
from repro.isa.opcodes import Opcode
from repro.isa.operands import ImmOperand, RegOperand
from repro.isa.registers import Reg
from repro.minicc import ast

DATA_BASE = 0x100000

_POOL = (Reg.EAX, Reg.ECX, Reg.EDX, Reg.EBX, Reg.ESI, Reg.EDI)

# Comparison operator → (jcc-if-true, jcc-if-false)
_CMP_JCC = {
    "==": (Opcode.JZ, Opcode.JNZ),
    "!=": (Opcode.JNZ, Opcode.JZ),
    "<": (Opcode.JL, Opcode.JNL),
    "<=": (Opcode.JLE, Opcode.JNLE),
    ">": (Opcode.JNLE, Opcode.JLE),
    ">=": (Opcode.JNL, Opcode.JL),
}

_INT_BINOP = {
    "+": Opcode.ADD,
    "-": Opcode.SUB,
    "&": Opcode.AND,
    "|": Opcode.OR,
    "^": Opcode.XOR,
    "*": Opcode.IMUL,
}

_FLOAT_BINOP = {
    "+": Opcode.FADD,
    "-": Opcode.FSUB,
    "*": Opcode.FMUL,
    "/": Opcode.FDIV,
}

_SHIFT_OPS = {"<<": Opcode.SHL, ">>": Opcode.SHR}


class CodegenError(Exception):
    pass


class _RegPool:
    """Tracks which expression-temporary registers are live.

    Allocation is round-robin rather than always-lowest: values linger
    in registers across statements instead of being immediately
    clobbered by the next expression — the register-use pattern real
    allocators produce, and what gives redundant-load analyses their
    cross-statement opportunities.
    """

    def __init__(self):
        self.busy = set()
        self._rotor = 0

    def alloc(self, exclude=()):
        n = len(_POOL)
        for step in range(n):
            reg = _POOL[(self._rotor + step) % n]
            if reg not in self.busy and reg not in exclude:
                self.busy.add(reg)
                self._rotor = (self._rotor + step + 1) % n
                return reg
        raise CodegenError("expression too complex: register pool exhausted")

    def free(self, reg):
        self.busy.discard(reg)

    def live(self):
        return [r for r in _POOL if r in self.busy]


class FunctionCodegen:
    def __init__(self, compiler, func_info):
        self.compiler = compiler
        self.builder = compiler.builder
        self.info = compiler.info
        self.func = func_info
        self.pool = _RegPool()
        self.break_labels = []
        self.continue_labels = []
        self._label_counter = 0

    # -------------------------------------------------------------- helpers

    def new_label(self, hint):
        self._label_counter += 1
        return ".L_%s_%s_%d" % (self.func.node.name, hint, self._label_counter)

    def var_home(self, binding):
        """The memory operand where a variable lives."""
        if isinstance(binding, ast.GlobalVar):
            return mem(disp=self.compiler.global_addr[binding.name])
        if isinstance(binding, ast.Param):
            return mem(base=Reg.EBP, disp=self.func.param_offsets[binding.name])
        if isinstance(binding, ast.LocalVar):
            return mem(base=Reg.EBP, disp=binding.offset)
        raise AssertionError("unknown binding %r" % (binding,))

    def _is_float(self, t):
        return t is not None and t.is_float()

    # ----------------------------------------------------------- expressions

    def gen_expr(self, expr):
        """Generate code leaving the value in a freshly allocated register."""
        b = self.builder
        if isinstance(expr, ast.Num):
            reg = self.pool.alloc()
            b.mov(reg, expr.value)
            return reg
        if isinstance(expr, ast.Var):
            binding = expr.binding
            if (
                isinstance(binding, (ast.GlobalVar, ast.LocalVar))
                and binding.array_size is not None
            ):
                # array decays to its address
                reg = self.pool.alloc()
                if isinstance(binding, ast.GlobalVar):
                    b.mov(reg, self.compiler.global_addr[binding.name])
                else:
                    b.lea(reg, mem(base=Reg.EBP, disp=binding.offset))
                return reg
            reg = self.pool.alloc()
            if self._is_float(expr.type):
                b.fld(reg, self.var_home(binding))
            else:
                b.mov(reg, self.var_home(binding))
            return reg
        if isinstance(expr, ast.Index):
            addr_op, held = self._index_operand(expr)
            reg = self.pool.alloc()
            if self._is_float(expr.type):
                b.fld(reg, addr_op)
            else:
                b.mov(reg, addr_op)
            if held is not None:
                self.pool.free(held)
            return reg
        if isinstance(expr, ast.Unary):
            reg = self.gen_expr(expr.operand)
            if expr.op == "-":
                if self._is_float(expr.operand.type):
                    tmp = self.pool.alloc()
                    b.mov(tmp, 0)
                    b.fsub(tmp, reg)
                    b.mov(reg, RegOperand(tmp))
                    self.pool.free(tmp)
                else:
                    b.neg(reg)
            elif expr.op == "~":
                b.not_(reg)
            elif expr.op == "!":
                # reg = (reg == 0)
                done = self.new_label("notz")
                b.cmp(reg, 0)
                b.mov(reg, 1)
                b.jz(done)
                b.mov(reg, 0)
                b.label(done)
            return reg
        if isinstance(expr, ast.Binary):
            return self._gen_binary(expr)
        if isinstance(expr, ast.Call):
            return self.gen_call(expr)
        if isinstance(expr, ast.AddrOf):
            reg = self.pool.alloc()
            if expr.name in self.info.functions:
                b.mov(reg, b.label_address(_fn_label(expr.name)))
            else:
                b.mov(reg, self.compiler.global_addr[expr.name])
            return reg
        raise AssertionError("unknown expression %r" % (expr,))

    def _index_operand(self, expr):
        """Memory operand for ``base[index]``.

        Returns ``(operand, held_reg)`` — ``held_reg`` (may be None) must
        be freed by the caller once the access is done.
        """
        b = self.builder
        binding = expr.base.binding
        # constant index fast path
        const = expr.index.value if isinstance(expr.index, ast.Num) else None
        if isinstance(binding, ast.GlobalVar) and binding.array_size is not None:
            addr = self.compiler.global_addr[binding.name]
            if const is not None:
                return mem(disp=addr + 4 * const), None
            ireg = self.gen_expr(expr.index)
            return mem(index=ireg, scale=4, disp=addr), ireg
        if isinstance(binding, ast.LocalVar) and binding.array_size is not None:
            if const is not None:
                return mem(base=Reg.EBP, disp=binding.offset + 4 * const), None
            ireg = self.gen_expr(expr.index)
            return (
                mem(base=Reg.EBP, index=ireg, scale=4, disp=binding.offset),
                ireg,
            )
        # pointer variable: load the pointer, then index
        preg = self.gen_expr(expr.base)
        if const is not None:
            return mem(base=preg, disp=4 * const), preg
        ireg = self.gen_expr(expr.index)
        # fold into one operand [preg + ireg*4]; both registers held —
        # free the index here, hand the pointer back to the caller.
        op = mem(base=preg, index=ireg, scale=4)
        # caller frees only one; free index after building the operand is
        # unsafe (operand still references it), so lea-combine instead.
        b.lea(preg, op)
        self.pool.free(ireg)
        return mem(base=preg), preg

    def _gen_binary(self, expr):
        b = self.builder
        op = expr.op
        if op in ("&&", "||"):
            return self._gen_shortcircuit(expr)
        if op in _CMP_JCC:
            rl = self.gen_expr(expr.left)
            rr_op, rr_held = self._rhs_operand(expr.right)
            b.cmp(rl, rr_op)
            if rr_held is not None:
                self.pool.free(rr_held)
            true_jcc, _ = _CMP_JCC[op]
            if not expr.left.type.is_int() or not expr.right.type.is_int():
                pass  # fixed-point compare uses the same cmp
            done = self.new_label("cmp")
            b.mov(rl, 1)
            b.instr(true_jcc, done)
            b.mov(rl, 0)
            b.label(done)
            return rl
        if self._is_float(expr.type):
            opcode = _FLOAT_BINOP.get(op)
            if opcode is None:
                raise CodegenError("float op %s unsupported" % op)
            # Fixed-point strength reduction, as a real compiler does:
            # division by a power-of-two constant is an arithmetic shift.
            if (
                op == "/"
                and isinstance(expr.right, ast.Num)
                and expr.right.value > 0
                and expr.right.value & (expr.right.value - 1) == 0
            ):
                rl = self.gen_expr(expr.left)
                shift = expr.right.value.bit_length() - 1
                b.sar(rl, ImmOperand(shift, 1))
                return rl
            rl = self.gen_expr(expr.left)
            rr_op, rr_held = self._rhs_operand(expr.right, allow_imm=False)
            b.instr(opcode, rl, rr_op)
            if rr_held is not None:
                self.pool.free(rr_held)
            return rl
        if op in _INT_BINOP:
            rl = self.gen_expr(expr.left)
            rr_op, rr_held = self._rhs_operand(expr.right)
            if op == "*" and isinstance(rr_op, ImmOperand):
                # imul has no imm form in RIO-32; materialize.
                tmp = self.pool.alloc()
                b.mov(tmp, rr_op)
                rr_op, rr_held = RegOperand(tmp), tmp
            b.instr(_INT_BINOP[op], rl, rr_op)
            if rr_held is not None:
                self.pool.free(rr_held)
            return rl
        if op in _SHIFT_OPS:
            rl = self.gen_expr(expr.left)
            if isinstance(expr.right, ast.Num):
                b.instr(_SHIFT_OPS[op], rl, ImmOperand(expr.right.value, 1))
                return rl
            # variable shift count must be in ecx
            rr = self.gen_expr(expr.right)
            return self._gen_variable_shift(op, rl, rr)
        if op in ("/", "%"):
            return self._gen_div(expr, op)
        raise AssertionError("unknown binary op %r" % op)

    def _rhs_operand(self, expr, allow_imm=True):
        """Right-hand operand: immediate, variable home, or register.

        Using the variable's memory home directly (``add eax, [ebp-8]``)
        matches how a real compiler folds loads into ALU ops — and
        leaves exactly the load-reuse opportunities RLR targets.
        """
        if allow_imm and isinstance(expr, ast.Num):
            return ImmOperand(expr.value, 4), None
        if isinstance(expr, ast.Var):
            binding = expr.binding
            is_array = (
                isinstance(binding, (ast.GlobalVar, ast.LocalVar))
                and binding.array_size is not None
            )
            if not is_array:
                return self.var_home(binding), None
        reg = self.gen_expr(expr)
        return RegOperand(reg), reg

    def _gen_shortcircuit(self, expr):
        b = self.builder
        result = self.pool.alloc()
        done = self.new_label("sc_done")
        if expr.op == "&&":
            false_label = self.new_label("sc_false")
            self.gen_cond(expr, None, false_label, fallthrough="true")
            b.mov(result, 1)
            b.jmp(done)
            b.label(false_label)
            b.mov(result, 0)
            b.label(done)
        else:
            true_label = self.new_label("sc_true")
            self.gen_cond(expr, true_label, None, fallthrough="false")
            b.mov(result, 0)
            b.jmp(done)
            b.label(true_label)
            b.mov(result, 1)
            b.label(done)
        return result

    def _gen_variable_shift(self, op, rl, rr):
        b = self.builder
        opcode = _SHIFT_OPS[op]
        if rr == Reg.ECX:
            if rl == Reg.ECX:
                raise CodegenError("shift with both operands in ecx")
            b.instr(opcode, rl, RegOperand(Reg.ECX))
            self.pool.free(rr)
            return rl
        # move count into ecx, saving it if live
        saved = Reg.ECX in self.pool.busy and Reg.ECX != rl
        if saved:
            b.push(Reg.ECX)
        if rl == Reg.ECX:
            # swap: value must leave ecx
            b.xchg(rl, rr)
            rl, rr = rr, rl
        b.mov(Reg.ECX, RegOperand(rr))
        b.instr(opcode, rl, RegOperand(Reg.ECX))
        if saved:
            b.pop(Reg.ECX)
        self.pool.free(rr)
        return rl

    def _gen_div(self, expr, op):
        b = self.builder
        rl = self.gen_expr(expr.left)
        rr = self.gen_expr(expr.right)
        # divisor must avoid eax/edx (div's implicit operands)
        if rr in (Reg.EAX, Reg.EDX):
            tmp = self.pool.alloc(exclude=(Reg.EAX, Reg.EDX))
            b.mov(tmp, RegOperand(rr))
            self.pool.free(rr)
            rr = tmp
        pushed = []
        if Reg.EDX in self.pool.busy and rl != Reg.EDX:
            b.push(Reg.EDX)
            pushed.append(Reg.EDX)
        if Reg.EAX in self.pool.busy and rl != Reg.EAX:
            b.push(Reg.EAX)
            pushed.append(Reg.EAX)
        if rl != Reg.EAX:
            b.mov(Reg.EAX, RegOperand(rl))
        b.div(rr)
        result = Reg.EAX if op == "/" else Reg.EDX
        if rl != result:
            b.mov(rl, RegOperand(result))
        for reg in reversed(pushed):
            b.pop(reg)
        self.pool.free(rr)
        return rl

    def gen_call(self, expr):
        b = self.builder
        live = self.pool.live()
        for reg in live:
            b.push(reg)
        # Arguments right-to-left.  Temporaries for argument evaluation
        # start from a clean pool snapshot; anything live was saved.
        for arg in reversed(expr.args):
            areg = self.gen_expr(arg)
            b.push(areg)
            self.pool.free(areg)
        if expr.indirect:
            freg = self.gen_expr(expr.callee)
            b.call_ind(freg)
            self.pool.free(freg)
        else:
            b.call(_fn_label(expr.callee))
        if expr.args:
            b.add(Reg.ESP, 4 * len(expr.args))
        dest = self.pool.alloc(exclude=live)
        if dest != Reg.EAX:
            b.mov(dest, RegOperand(Reg.EAX))
        for reg in reversed(live):
            b.pop(reg)
        return dest

    # ----------------------------------------------------------- conditions

    def gen_cond(self, expr, true_label, false_label, fallthrough):
        """Branching evaluation of a condition.

        Exactly one of ``true_label``/``false_label`` may be None when
        execution should fall through on that outcome (``fallthrough``
        names which outcome falls through: "true" or "false").
        """
        b = self.builder
        if isinstance(expr, ast.Binary) and expr.op in _CMP_JCC:
            rl = self.gen_expr(expr.left)
            rr_op, rr_held = self._rhs_operand(expr.right)
            b.cmp(rl, rr_op)
            self.pool.free(rl)
            if rr_held is not None:
                self.pool.free(rr_held)
            true_jcc, false_jcc = _CMP_JCC[expr.op]
            if fallthrough == "true":
                b.instr(false_jcc, false_label)
            else:
                b.instr(true_jcc, true_label)
            return
        if isinstance(expr, ast.Binary) and expr.op == "&&":
            fl = false_label or self.new_label("and_false")
            self.gen_cond(expr.left, None, fl, fallthrough="true")
            self.gen_cond(expr.right, true_label, false_label, fallthrough)
            if false_label is None:
                # right side falls through to true; left's false label
                # must skip to... the caller's fallthrough is "false",
                # contradiction — handled by the callers always passing
                # a concrete false label for &&.
                b.label(fl)
            return
        if isinstance(expr, ast.Binary) and expr.op == "||":
            tl = true_label or self.new_label("or_true")
            self.gen_cond(expr.left, tl, None, fallthrough="false")
            self.gen_cond(expr.right, true_label, false_label, fallthrough)
            if true_label is None:
                b.label(tl)
            return
        if isinstance(expr, ast.Unary) and expr.op == "!":
            self.gen_cond(
                expr.operand,
                false_label,
                true_label,
                "true" if fallthrough == "false" else "false",
            )
            return
        # general value: compare against zero
        reg = self.gen_expr(expr)
        b.cmp(reg, 0)
        self.pool.free(reg)
        if fallthrough == "true":
            b.jz(false_label)
        else:
            b.jnz(true_label)

    # ----------------------------------------------------------- statements

    def gen_stmt(self, stmt):
        b = self.builder
        if isinstance(stmt, ast.Block):
            for s in stmt.statements:
                self.gen_stmt(s)
        elif isinstance(stmt, ast.DeclStmt):
            if stmt.init is not None:
                reg = self.gen_expr(stmt.init)
                self._store(stmt.var, stmt.var.type, reg)
                self.pool.free(reg)
        elif isinstance(stmt, ast.ExprStmt):
            reg = self.gen_expr(stmt.expr)
            self.pool.free(reg)
        elif isinstance(stmt, ast.Assign):
            self.gen_assign(stmt)
        elif isinstance(stmt, ast.IncDec):
            self.gen_incdec(stmt)
        elif isinstance(stmt, ast.If):
            else_label = self.new_label("else")
            end_label = self.new_label("endif")
            self.gen_cond(
                stmt.cond,
                None,
                else_label if stmt.otherwise else end_label,
                fallthrough="true",
            )
            self.gen_stmt(stmt.then)
            if stmt.otherwise is not None:
                b.jmp(end_label)
                b.label(else_label)
                self.gen_stmt(stmt.otherwise)
            b.label(end_label)
        elif isinstance(stmt, ast.While):
            # Rotated (bottom-test) loop, like gcc -O: an entry guard,
            # then the body with a backward conditional branch at the
            # bottom.  The backward jcc is what makes the loop top a
            # natural trace head and places the flags-writing compare
            # *after* the body's inc/dec on the linear trace.
            top = self.new_label("while")
            test_label = self.new_label("whiletest")
            end = self.new_label("endwhile")
            self.gen_cond(stmt.cond, None, end, fallthrough="true")
            b.label(top)
            self.break_labels.append(end)
            self.continue_labels.append(test_label)
            self.gen_stmt(stmt.body)
            self.break_labels.pop()
            self.continue_labels.pop()
            b.label(test_label)
            self.gen_cond(stmt.cond, top, None, fallthrough="false")
            b.label(end)
        elif isinstance(stmt, ast.For):
            top = self.new_label("for")
            step_label = self.new_label("forstep")
            end = self.new_label("endfor")
            if stmt.init is not None:
                self.gen_stmt(stmt.init)
            if stmt.cond is not None:
                self.gen_cond(stmt.cond, None, end, fallthrough="true")
            b.label(top)
            self.break_labels.append(end)
            self.continue_labels.append(step_label)
            self.gen_stmt(stmt.body)
            self.break_labels.pop()
            self.continue_labels.pop()
            b.label(step_label)
            if stmt.step is not None:
                self.gen_stmt(stmt.step)
            if stmt.cond is not None:
                self.gen_cond(stmt.cond, top, None, fallthrough="false")
            else:
                b.jmp(top)
            b.label(end)
        elif isinstance(stmt, ast.Switch):
            self.gen_switch(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                reg = self.gen_expr(stmt.value)
                if reg != Reg.EAX:
                    b.mov(Reg.EAX, RegOperand(reg))
                self.pool.free(reg)
            b.jmp(self.epilogue_label)
        elif isinstance(stmt, ast.Break):
            b.jmp(self.break_labels[-1])
        elif isinstance(stmt, ast.Continue):
            b.jmp(self.continue_labels[-1])
        elif isinstance(stmt, ast.Print):
            reg = self.gen_expr(stmt.value)
            live = [r for r in self.pool.live() if r != reg]
            for r in live:
                b.push(r)
            if reg != Reg.EBX:
                if Reg.EBX in self.pool.busy:
                    b.push(Reg.EBX)
                    live.append(Reg.EBX)
                b.mov(Reg.EBX, RegOperand(reg))
            b.mov(Reg.EAX, 3 if stmt.kind == "print" else 2)
            b.syscall()
            for r in reversed(live):
                b.pop(r)
            self.pool.free(reg)
        elif isinstance(stmt, ast.Exit):
            reg = self.gen_expr(stmt.value)
            if reg != Reg.EBX:
                b.mov(Reg.EBX, RegOperand(reg))
            b.mov(Reg.EAX, 1)
            b.syscall()
            self.pool.free(reg)
        elif isinstance(stmt, ast.Spawn):
            self.gen_spawn(stmt)
        elif isinstance(stmt, ast.SigHandler):
            self._gen_ebx_syscall(stmt.fn, 6)
        elif isinstance(stmt, ast.Alarm):
            self._gen_ebx_syscall(stmt.count, 7)
        elif isinstance(stmt, ast.SigReturn):
            b.mov(Reg.ESP, RegOperand(Reg.EBP))
            b.pop(Reg.EBP)
            b.iret()
        else:
            raise AssertionError("unknown statement %r" % (stmt,))

    def _store(self, binding_or_var, t, reg):
        b = self.builder
        binding = (
            binding_or_var.binding
            if isinstance(binding_or_var, ast.Var)
            else binding_or_var
        )
        home = self.var_home(binding)
        if t is not None and t.is_float():
            b.fst(home, reg)
        else:
            b.mov(home, RegOperand(reg))

    def gen_assign(self, stmt):
        b = self.builder
        target = stmt.target
        value_is_float = self._is_float(
            target.type if target.type is not None else None
        )
        if stmt.op == "=":
            reg = self.gen_expr(stmt.value)
            if isinstance(target, ast.Var):
                self._store(target, target.type, reg)
            else:
                addr_op, held = self._index_operand(target)
                if value_is_float:
                    b.fst(addr_op, reg)
                else:
                    b.mov(addr_op, RegOperand(reg))
                if held is not None:
                    self.pool.free(held)
            self.pool.free(reg)
            return
        # compound assignment: load, op, store
        binop = {"+=": "+", "-=": "-", "*=": "*", "/=": "/"}[stmt.op]
        load = (
            target
            if isinstance(target, ast.Var)
            else ast.Index(target.base, target.index, line=stmt.line)
        )
        load.type = target.type
        combined = ast.Binary(binop, load, stmt.value, line=stmt.line)
        combined.type = target.type
        reg = self.gen_expr(combined)
        if isinstance(target, ast.Var):
            self._store(target, target.type, reg)
        else:
            addr_op, held = self._index_operand(target)
            if value_is_float:
                b.fst(addr_op, reg)
            else:
                b.mov(addr_op, RegOperand(reg))
            if held is not None:
                self.pool.free(held)
        self.pool.free(reg)

    def gen_incdec(self, stmt):
        b = self.builder
        opcode = Opcode.INC if stmt.op == "++" else Opcode.DEC
        target = stmt.target
        if isinstance(target, ast.Var):
            b.instr(opcode, self.var_home(target.binding))
        else:
            addr_op, held = self._index_operand(target)
            b.instr(opcode, addr_op)
            if held is not None:
                self.pool.free(held)

    def _gen_ebx_syscall(self, value_expr, number):
        """Syscall with one argument in ebx (sighandler/alarm)."""
        b = self.builder
        reg = self.gen_expr(value_expr)
        live = [r for r in self.pool.live() if r != reg]
        for r in live:
            b.push(r)
        if reg != Reg.EBX:
            if Reg.EBX in self.pool.busy:
                b.push(Reg.EBX)
                live.append(Reg.EBX)
            b.mov(Reg.EBX, RegOperand(reg))
        b.mov(Reg.EAX, number)
        b.syscall()
        for r in reversed(live):
            b.pop(r)
        self.pool.free(reg)

    def gen_spawn(self, stmt):
        """spawn(fn, stack): plant the thread-exit trampoline as the new
        thread's return address, then SYS_SPAWN (ebx=entry, ecx=esp)."""
        b = self.builder
        fn_reg = self.gen_expr(stmt.fn)
        sp_reg = self.gen_expr(stmt.stack)
        # [sp-4] = &__thread_exit; new esp = sp-4
        b.mov(
            mem(base=sp_reg, disp=-4),
            b.label_address("__thread_exit"),
        )
        b.lea(sp_reg, mem(base=sp_reg, disp=-4))
        live = [r for r in self.pool.live() if r not in (fn_reg, sp_reg)]
        for r in live:
            b.push(r)
        b.push(fn_reg)
        b.push(sp_reg)
        b.pop(Reg.ECX)  # stack pointer
        b.pop(Reg.EBX)  # entry
        b.mov(Reg.EAX, 4)
        b.syscall()
        for r in reversed(live):
            b.pop(r)
        self.pool.free(fn_reg)
        self.pool.free(sp_reg)
        self.compiler.uses_spawn = True

    def gen_switch(self, stmt):
        b = self.builder
        end = self.new_label("endswitch")
        default_label = self.new_label("default")
        case_labels = {value: self.new_label("case%d" % value) for value, _ in stmt.cases}
        reg = self.gen_expr(stmt.value)

        values = sorted(case_labels)
        dense = (
            len(values) >= 3
            and values[-1] - values[0] + 1 <= max(2 * len(values), 8)
            and values[-1] - values[0] + 1 <= 128
        )
        if dense:
            lo, hi = values[0], values[-1]
            table_label = self.new_label("jumptable")
            if lo != 0:
                b.sub(reg, lo)
            b.cmp(reg, hi - lo + 1)
            b.jnb(default_label)
            treg = self.pool.alloc()
            b.mov(treg, b.label_address(table_label))
            b.jmp_ind(mem(base=treg, index=reg, scale=4))
            self.pool.free(treg)
            self.pool.free(reg)
            # table in text, jumped over by construction (placed at end)
            self.compiler.pending_tables.append(
                (table_label, [case_labels.get(lo + i, default_label)
                               for i in range(hi - lo + 1)])
            )
        else:
            for value in values:
                b.cmp(reg, value)
                b.jz(case_labels[value])
            self.pool.free(reg)
            b.jmp(default_label)

        self.break_labels.append(end)
        for value, block in stmt.cases:
            b.label(case_labels[value])
            self.gen_stmt(block)
        b.label(default_label)
        if stmt.default is not None:
            self.gen_stmt(stmt.default)
        self.break_labels.pop()
        b.label(end)
        if not dense:
            return

    # -------------------------------------------------------------- function

    def generate(self):
        b = self.builder
        func = self.func.node
        b.label(_fn_label(func.name))
        self.epilogue_label = self.new_label("epilogue")
        b.push(Reg.EBP)
        b.mov(Reg.EBP, RegOperand(Reg.ESP))
        if self.func.frame_size:
            b.sub(Reg.ESP, self.func.frame_size)
        self.gen_stmt(func.body)
        b.label(self.epilogue_label)
        b.mov(Reg.ESP, RegOperand(Reg.EBP))
        b.pop(Reg.EBP)
        b.ret()


def _fn_label(name):
    return "fn_" + name
