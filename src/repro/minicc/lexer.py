"""MiniC lexer."""

import re
from collections import namedtuple

Token = namedtuple("Token", ["kind", "value", "line"])

KEYWORDS = frozenset(
    """int float void if else while for return break continue
    switch case default print putc exit spawn sighandler alarm sigreturn""".split()
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<num>0x[0-9a-fA-F]+|\d+)
  | (?P<ident>[A-Za-z_]\w*)
  | (?P<op><<=?|>>=?|<=|>=|==|!=|&&|\|\||\+\+|--|\+=|-=|\*=|/=|[-+*/%<>=!&|^~(){}\[\];,?:])
    """,
    re.VERBOSE | re.DOTALL,
)


class LexError(Exception):
    def __init__(self, line, message):
        super().__init__("line %d: %s" % (line, message))
        self.line = line


def tokenize(source):
    """Tokenize MiniC source into a list of Tokens (ending with 'eof')."""
    tokens = []
    pos = 0
    line = 1
    while pos < len(source):
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise LexError(line, "unexpected character %r" % source[pos])
        text = m.group(0)
        line += text.count("\n")
        pos = m.end()
        if m.lastgroup in ("ws", "comment"):
            continue
        if m.lastgroup == "num":
            tokens.append(Token("num", int(text, 0), line))
        elif m.lastgroup == "ident":
            kind = text if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line))
        else:
            tokens.append(Token(text, text, line))
    tokens.append(Token("eof", None, line))
    return tokens
