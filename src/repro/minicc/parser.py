"""MiniC recursive-descent parser."""

from repro.minicc import ast
from repro.minicc.lexer import tokenize


class ParseError(Exception):
    def __init__(self, line, message):
        super().__init__("line %d: %s" % (line, message))
        self.line = line


_ASSIGN_OPS = frozenset(("=", "+=", "-=", "*=", "/="))

# Binary operator precedence levels, loosest first.
_BINARY_LEVELS = [
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]


class Parser:
    def __init__(self, source):
        self.tokens = tokenize(source)
        self.pos = 0

    # ------------------------------------------------------------- helpers

    def peek(self, offset=0):
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self):
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def expect(self, kind):
        tok = self.next()
        if tok.kind != kind:
            raise ParseError(
                tok.line, "expected %r, found %r" % (kind, tok.value)
            )
        return tok

    def accept(self, kind):
        if self.peek().kind == kind:
            return self.next()
        return None

    def at_type(self):
        return self.peek().kind in ("int", "float", "void")

    # -------------------------------------------------------------- program

    def parse_program(self):
        globals_ = []
        functions = []
        while self.peek().kind != "eof":
            if not self.at_type():
                raise ParseError(
                    self.peek().line,
                    "expected declaration, found %r" % self.peek().value,
                )
            # lookahead: type ident '(' → function
            offset = 1
            if self.peek(offset).kind == "*":
                offset += 1
            if (
                self.peek(offset).kind == "ident"
                and self.peek(offset + 1).kind == "("
            ):
                functions.append(self.parse_function())
            else:
                globals_.append(self.parse_global())
        return ast.Program(globals_, functions)

    def parse_type(self):
        tok = self.next()
        if tok.kind == "int":
            base = ast.INT
        elif tok.kind == "float":
            base = ast.FLOAT
        elif tok.kind == "void":
            base = ast.VOID
        else:
            raise ParseError(tok.line, "expected type, found %r" % tok.value)
        if self.accept("*"):
            base = ast.Type("ptr", base)
        return base

    def parse_global(self):
        line = self.peek().line
        type_ = self.parse_type()
        name = self.expect("ident").value
        array_size = None
        init = None
        if self.accept("["):
            array_size = self.expect("num").value
            self.expect("]")
        if self.accept("="):
            if self.accept("{"):
                values = [self._signed_num()]
                while self.accept(","):
                    values.append(self._signed_num())
                self.expect("}")
                init = values
            else:
                init = self._signed_num()
        self.expect(";")
        return ast.GlobalVar(name, type_, array_size, init, line=line)

    def _signed_num(self):
        neg = self.accept("-")
        value = self.expect("num").value
        return -value if neg else value

    def parse_function(self):
        line = self.peek().line
        return_type = self.parse_type()
        name = self.expect("ident").value
        self.expect("(")
        params = []
        if self.peek().kind != ")":
            while True:
                ptype = self.parse_type()
                pname = self.expect("ident").value
                params.append(ast.Param(pname, ptype, line=self.peek().line))
                if not self.accept(","):
                    break
        self.expect(")")
        body = self.parse_block()
        return ast.Function(name, return_type, params, body, line=line)

    # ------------------------------------------------------------ statements

    def parse_block(self):
        line = self.expect("{").line
        statements = []
        while self.peek().kind != "}":
            statements.append(self.parse_statement())
        self.expect("}")
        return ast.Block(statements, line=line)

    def parse_statement(self):
        tok = self.peek()
        if tok.kind == "{":
            return self.parse_block()
        if self.at_type():
            return self.parse_decl_stmt()
        if tok.kind == "if":
            return self.parse_if()
        if tok.kind == "while":
            return self.parse_while()
        if tok.kind == "for":
            return self.parse_for()
        if tok.kind == "switch":
            return self.parse_switch()
        if tok.kind == "return":
            self.next()
            value = None
            if self.peek().kind != ";":
                value = self.parse_expr()
            self.expect(";")
            return ast.Return(value, line=tok.line)
        if tok.kind == "break":
            self.next()
            self.expect(";")
            return ast.Break(tok.line)
        if tok.kind == "continue":
            self.next()
            self.expect(";")
            return ast.Continue(tok.line)
        if tok.kind in ("print", "putc"):
            self.next()
            self.expect("(")
            value = self.parse_expr()
            self.expect(")")
            self.expect(";")
            return ast.Print(value, tok.kind, line=tok.line)
        if tok.kind == "exit":
            self.next()
            self.expect("(")
            value = self.parse_expr()
            self.expect(")")
            self.expect(";")
            return ast.Exit(value, line=tok.line)
        if tok.kind == "sighandler":
            self.next()
            self.expect("(")
            fn = self.parse_expr()
            self.expect(")")
            self.expect(";")
            return ast.SigHandler(fn, line=tok.line)
        if tok.kind == "alarm":
            self.next()
            self.expect("(")
            count = self.parse_expr()
            self.expect(")")
            self.expect(";")
            return ast.Alarm(count, line=tok.line)
        if tok.kind == "sigreturn":
            self.next()
            self.expect(";")
            return ast.SigReturn(tok.line)
        if tok.kind == "spawn":
            self.next()
            self.expect("(")
            fn = self.parse_expr()
            self.expect(",")
            stack = self.parse_expr()
            self.expect(")")
            self.expect(";")
            return ast.Spawn(fn, stack, line=tok.line)
        return self.parse_expr_statement()

    def parse_decl_stmt(self):
        line = self.peek().line
        type_ = self.parse_type()
        name = self.expect("ident").value
        array_size = None
        init = None
        if self.accept("["):
            array_size = self.expect("num").value
            self.expect("]")
        if self.accept("="):
            init = self.parse_expr()
        self.expect(";")
        var = ast.LocalVar(name, type_, array_size, line=line)
        return ast.DeclStmt(var, init, line=line)

    def parse_expr_statement(self):
        line = self.peek().line
        expr = self.parse_expr()
        tok = self.peek()
        if tok.kind in _ASSIGN_OPS:
            if not isinstance(expr, (ast.Var, ast.Index)):
                raise ParseError(tok.line, "assignment target is not an lvalue")
            self.next()
            value = self.parse_expr()
            self.expect(";")
            return ast.Assign(expr, tok.kind, value, line=line)
        if tok.kind in ("++", "--"):
            if not isinstance(expr, (ast.Var, ast.Index)):
                raise ParseError(tok.line, "++/-- target is not an lvalue")
            self.next()
            self.expect(";")
            return ast.IncDec(expr, tok.kind, line=line)
        self.expect(";")
        return ast.ExprStmt(expr, line=line)

    def parse_if(self):
        line = self.expect("if").line
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        then = self.parse_statement()
        otherwise = None
        if self.accept("else"):
            otherwise = self.parse_statement()
        return ast.If(cond, then, otherwise, line=line)

    def parse_while(self):
        line = self.expect("while").line
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        body = self.parse_statement()
        return ast.While(cond, body, line=line)

    def parse_for(self):
        line = self.expect("for").line
        self.expect("(")
        init = None
        if self.peek().kind != ";":
            if self.at_type():
                init = self.parse_decl_stmt()
            else:
                init = self.parse_expr_statement()
        else:
            self.expect(";")
        cond = None
        if self.peek().kind != ";":
            cond = self.parse_expr()
        self.expect(";")
        step = None
        if self.peek().kind != ")":
            step = self._parse_for_step()
        self.expect(")")
        body = self.parse_statement()
        return ast.For(init, cond, step, body, line=line)

    def _parse_for_step(self):
        line = self.peek().line
        expr = self.parse_expr()
        tok = self.peek()
        if tok.kind in _ASSIGN_OPS:
            self.next()
            value = self.parse_expr()
            return ast.Assign(expr, tok.kind, value, line=line)
        if tok.kind in ("++", "--"):
            self.next()
            return ast.IncDec(expr, tok.kind, line=line)
        return ast.ExprStmt(expr, line=line)

    def parse_switch(self):
        line = self.expect("switch").line
        self.expect("(")
        value = self.parse_expr()
        self.expect(")")
        self.expect("{")
        cases = []
        default = None
        while self.peek().kind != "}":
            if self.accept("case"):
                case_value = self._signed_num()
                self.expect(":")
                statements = []
                while self.peek().kind not in ("case", "default", "}"):
                    statements.append(self.parse_statement())
                cases.append((case_value, ast.Block(statements, line=line)))
            elif self.accept("default"):
                self.expect(":")
                statements = []
                while self.peek().kind not in ("case", "default", "}"):
                    statements.append(self.parse_statement())
                default = ast.Block(statements, line=line)
            else:
                raise ParseError(
                    self.peek().line,
                    "expected case/default, found %r" % self.peek().value,
                )
        self.expect("}")
        return ast.Switch(value, cases, default, line=line)

    # ----------------------------------------------------------- expressions

    def parse_expr(self, level=0):
        if level >= len(_BINARY_LEVELS):
            return self.parse_unary()
        left = self.parse_expr(level + 1)
        ops = _BINARY_LEVELS[level]
        while self.peek().kind in ops:
            tok = self.next()
            right = self.parse_expr(level + 1)
            left = ast.Binary(tok.kind, left, right, line=tok.line)
        return left

    def parse_unary(self):
        tok = self.peek()
        if tok.kind in ("-", "!", "~"):
            self.next()
            return ast.Unary(tok.kind, self.parse_unary(), line=tok.line)
        if tok.kind == "&":
            self.next()
            name = self.expect("ident").value
            return ast.AddrOf(name, line=tok.line)
        return self.parse_primary()

    def parse_primary(self):
        tok = self.next()
        if tok.kind == "num":
            return ast.Num(tok.value, line=tok.line)
        if tok.kind == "(":
            expr = self.parse_expr()
            self.expect(")")
            return expr
        if tok.kind == "ident":
            if self.peek().kind == "(":
                self.next()
                args = []
                if self.peek().kind != ")":
                    while True:
                        args.append(self.parse_expr())
                        if not self.accept(","):
                            break
                self.expect(")")
                return ast.Call(tok.value, args, line=tok.line)
            if self.peek().kind == "[":
                self.next()
                index = self.parse_expr()
                self.expect("]")
                return ast.Index(
                    ast.Var(tok.value, line=tok.line), index, line=tok.line
                )
            return ast.Var(tok.value, line=tok.line)
        raise ParseError(tok.line, "unexpected token %r" % (tok.value,))


def parse(source):
    return Parser(source).parse_program()
