"""``dr_*`` API routines and C-flavored aliases (paper Sections 3.2-3.5).

Transparency: clients must not share I/O buffers or allocators with the
application (Section 3.2).  ``dr_printf`` writes to a runtime-private
log, and ``dr_global_alloc`` / ``dr_thread_alloc`` carve memory out of
the *runtime* heap region — address-disjoint from every application
region, which tests verify.

The C-flavored aliases (``instr_get_opcode``, ``instrlist_first``, …)
exist so clients can be written to read like the paper's Figure 3.
"""

from repro.ir.instr import Instr
from repro.machine.cost import Family

# ----------------------------------------------------------- transparency


def dr_printf(client, fmt, *args):
    """Transparent output: appends to the runtime's private log."""
    runtime = client.runtime
    if not hasattr(runtime, "client_log"):
        runtime.client_log = []
    runtime.client_log.append(fmt % args if args else fmt)


def dr_get_log(client):
    """Read back everything dr_printf wrote (tests/tools)."""
    return list(getattr(client.runtime, "client_log", []))


class _RuntimeHeap:
    """Bump allocator over the runtime heap region."""

    def __init__(self, runtime):
        region = runtime.memory.region("runtime_heap")
        self.cursor = region.start
        self.end = region.end

    def alloc(self, size):
        addr = self.cursor
        self.cursor += (size + 15) & ~15
        if self.cursor > self.end:
            raise MemoryError("runtime heap exhausted")
        return addr


def dr_global_alloc(client, size):
    """Allocate runtime-private (never application-visible) memory."""
    runtime = client.runtime
    if not hasattr(runtime, "_dr_heap"):
        runtime._dr_heap = _RuntimeHeap(runtime)
    return runtime._dr_heap.alloc(size)


def dr_thread_alloc(context, size):
    """Thread-private runtime allocation."""
    runtime = context.runtime
    if not hasattr(runtime, "_dr_heap"):
        runtime._dr_heap = _RuntimeHeap(runtime)
    return runtime._dr_heap.alloc(size)


# ------------------------------------------------------- thread-local state


def dr_set_tls_field(context, value):
    """The generic thread-local storage field for clients."""
    context.client_field = value


def dr_get_tls_field(context):
    return context.client_field


def dr_save_reg(context, reg, slot):
    """Spill a register value to a thread-local slot (Section 3.2).

    In real DynamoRIO this emits a store into the fragment; here the
    clean-call mechanism makes the spill explicit at the API level.
    """
    context.spill_slots[slot] = context.cpu.regs[reg]


def dr_restore_reg(context, reg, slot):
    context.cpu.regs[reg] = context.spill_slots[slot]


# ----------------------------------------------------- processor information


def proc_get_family(client_or_runtime):
    """Identify the underlying processor (Section 3.2), enabling
    architecture-specific optimizations like Figure 3's."""
    runtime = getattr(client_or_runtime, "runtime", client_or_runtime)
    return runtime.cost.family


FAMILY_PENTIUM_III = Family.PENTIUM_III
FAMILY_PENTIUM_IV = Family.PENTIUM_IV


# ----------------------------------------------------- adaptive optimization


def dr_decode_fragment(context, tag):
    """Re-create the InstrList for a cached fragment (Section 3.4)."""
    return context.runtime.decode_fragment(context, tag)


def dr_replace_fragment(context, tag, ilist):
    """Install a new version of a fragment (Section 3.4).

    Safe to call from code reached *inside* the old fragment (a clean
    call): the current pass finishes in the old code and every later
    entry uses the new version.
    """
    return context.runtime.replace_fragment(context, tag, ilist)


# ------------------------------------------------------------- custom traces


def dr_mark_trace_head(context, tag):
    """Mark ``tag`` as a custom trace head (Section 3.5)."""
    context.runtime.mark_trace_head(tag)


# ----------------------------------------------------------- observability


def dr_register_event_tracer(client_or_context, fn):
    """Stream runtime events (drtrace) to ``fn(event)`` as they happen.

    Creates the runtime's :class:`~repro.observe.events.Observer` on
    demand when tracing was not enabled via
    ``RuntimeOptions(trace_events=True)`` — events before the first
    registration are then not observable.  Returns the observer, whose
    ring buffer / profiler can be queried after the run.
    """
    runtime = getattr(client_or_context, "runtime", client_or_context)
    observer = runtime.observer
    if observer is None:
        from repro.observe.events import Observer

        observer = Observer(
            runtime.options.trace_buffer,
            profile=getattr(runtime.options, "profile_fragments", True),
        )
        runtime.observer = observer
    if fn is not None:
        guard = getattr(runtime, "guard", None)
        if guard is not None:
            # drguard: a faulting tracer detaches instead of unwinding
            # the emit site it was called from.
            fn = guard.wrap_tracer(fn)
        observer.tracers.append(fn)
        # Track the registration (as actually installed, wrapper and
        # all) so detach and quarantine can unregister it — no client
        # emit site survives either.
        tracers = getattr(runtime, "_client_tracers", None)
        if tracers is not None:
            tracers.append(fn)
    return observer


def dr_get_profile(client_or_context, top=None):
    """The hot-fragment table of the per-fragment cycle profiler.

    Rows are dicts (``tag``, ``kind``, ``entries``, ``cycles``,
    ``share``) sorted hottest first; empty when tracing is disabled.
    """
    runtime = getattr(client_or_context, "runtime", client_or_context)
    observer = runtime.observer
    if observer is None:
        return []
    return observer.profiler.hot_fragments(top=top)


# ------------------------------------------------------ detach / re-attach


def dr_detach(client_or_context, reattach_after=None):
    """Detach the runtime from the application (paper Section 2's
    transparent exit).

    At the next application-consistent point — mid-fragment under
    ``RuntimeOptions(precise_interrupts=True)``, the next fragment
    boundary otherwise — every thread's state is translated back to
    pure application state (``repro.core.translate``), the code cache
    is flushed through the normal delete chokepoint (clients see
    ``fragment_deleted`` for every fragment), client event tracers are
    unregistered, and execution continues natively with bit-identical
    program output.  ``reattach_after`` resumes translated execution
    after that many native instructions; ``None`` stays native to
    program exit.  Safe to call from any client hook or clean call.
    """
    runtime = getattr(client_or_context, "runtime", client_or_context)
    runtime.detach(reattach_after=reattach_after)


def dr_reattach(client_or_context):
    """Turn a pending detach into a detach/re-attach bounce (the
    shortest native excursion), or cancel a scheduled stay-native
    detach by giving it an immediate re-attach.  No-op when no detach
    is pending."""
    runtime = getattr(client_or_context, "runtime", client_or_context)
    runtime.reattach()


# ------------------------------------------------------------- clean calls


def dr_insert_clean_call(ilist, where, fn):
    """Insert a call to client Python code at ``where`` (before it).

    ``fn(context)`` runs with the application context saved — the
    equivalent of DynamoRIO's clean-call insertion.  Returns the
    inserted pseudo-instruction.
    """
    pseudo = Instr.label()
    pseudo.note = {"clean_call": fn}
    pseudo.is_meta = True
    if where is None:
        ilist.append(pseudo)
    else:
        ilist.insert_before(where, pseudo)
    return pseudo


# --------------------------------------------------------- meta instructions


def instr_set_meta(instr, meta=True):
    """Mark ``instr`` as a meta-instruction: client instrumentation that
    executes for the client, not the application.

    The fragment verifier (``RuntimeOptions(verify_fragments=True)``)
    holds meta-instructions to the transparency rules: no clobbering of
    live eflags or registers, no writes to application memory.  Returns
    the instruction for chaining.
    """
    instr.is_meta = bool(meta)
    return instr


def instr_is_meta(instr):
    return instr.is_meta


def dr_insert_meta_instr(ilist, where, instr):
    """Insert ``instr`` before ``where`` (append when None), marked as a
    meta-instruction so the fragment verifier checks it for
    transparency."""
    instr_set_meta(instr)
    if where is None:
        ilist.append(instr)
    else:
        ilist.insert_before(where, instr)
    return instr


def dr_set_ind_branch_checker(instr, fn):
    """Attach an enforcement routine to an indirect-branch instruction.

    Unlike the profiler (reached only on dispatch misses), ``fn(context,
    target)`` runs on *every* execution, before control transfers — the
    hook security clients (program shepherding, reference [23] of the
    paper) use to validate targets.  Raise from ``fn`` to block the
    transfer.
    """
    note = instr.note if isinstance(instr.note, dict) else {}
    note["checker"] = fn
    instr.note = note


def dr_set_ind_branch_profiler(instr, fn):
    """Attach a profiling routine to an indirect-branch instruction.

    ``fn(context, target)`` runs whenever the branch misses all inlined
    dispatch targets — the profiling call of the paper's Figure 4.
    """
    note = instr.note if isinstance(instr.note, dict) else {}
    note["profiler"] = fn
    instr.note = note


def dr_get_ind_dispatch(instr):
    """The current inlined dispatch target list of an indirect branch."""
    note = instr.note if isinstance(instr.note, dict) else {}
    return list(note.get("dispatch", ()))


def dr_set_ind_dispatch(instr, tags):
    """Set the compare-and-branch dispatch chain (Figure 4) for an
    inlined indirect branch: each tag becomes a direct, linkable exit
    checked before the hashtable lookup."""
    note = instr.note if isinstance(instr.note, dict) else {}
    note["dispatch"] = tuple(tags)
    instr.note = note


# ------------------------------------------------------- custom exit stubs


def dr_set_exit_stub(instr, stub_ilist, always=False):
    """Prepend client instructions to the exit stub of an exit CTI
    (Section 3.2).  With ``always=True`` the exit goes through the stub
    even when linked."""
    instr.exit_stub_code = stub_ilist
    instr.exit_always_stub = always


# ----------------------------------------------------- C-flavored aliases


def instr_get_opcode(instr):
    return instr.opcode


def instr_get_eflags(instr):
    return instr.eflags


def instr_get_next(instr):
    return instr.next


def instr_get_prev(instr):
    return instr.prev


def instr_get_src(instr, i):
    return instr.src(i)


def instr_get_dst(instr, i):
    return instr.dst(i)


def instr_set_prefixes(instr, prefixes):
    instr.set_prefixes(prefixes)


def instr_get_prefixes(instr):
    return instr.prefixes


def instr_is_exit_cti(instr):
    return instr.is_exit_cti


def instr_destroy(_context, instr):
    """Free an instruction (a no-op under garbage collection, kept for
    Figure 3 fidelity)."""


def instrlist_first(ilist):
    return ilist.first()


def instrlist_last(ilist):
    return ilist.last()


def instrlist_replace(ilist, old, new):
    return ilist.replace(old, new)


def instrlist_remove(ilist, instr):
    return ilist.remove(instr)


def instrlist_insert_before(ilist, where, instr):
    return ilist.insert_before(where, instr)


def instrlist_insert_after(ilist, where, instr):
    return ilist.insert_after(where, instr)
