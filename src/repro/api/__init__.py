"""The DynamoRIO client API (paper Section 3).

``Client`` is the hook set of Table 3; ``repro.api.dr`` holds the
``dr_*`` routines (transparent I/O and allocation, register spills,
trace-head marking, fragment decode/replace) and C-flavored aliases so
client code can read like the paper's Figure 3.
"""

from repro.api.client import Client
from repro.api import dr

__all__ = ["Client", "dr"]
