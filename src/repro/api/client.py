"""The client hook interface (paper Table 3).

A client subclasses :class:`Client` and overrides the hooks it needs.
Hook names follow the paper's ``dynamorio_*`` imports, shortened:

==========================  ========================================
paper                       here
==========================  ========================================
``dynamorio_init``          ``init``
``dynamorio_exit``          ``exit``
``dynamorio_thread_init``   ``thread_init``
``dynamorio_thread_exit``   ``thread_exit``
``dynamorio_basic_block``   ``basic_block(context, tag, ilist)``
``dynamorio_trace``         ``trace(context, tag, ilist)``
``dynamorio_fragment_deleted``  ``fragment_deleted(context, tag)``
``dynamorio_end_trace``     ``end_trace(context, trace_tag, next_tag)``
==========================  ========================================

``context`` is an opaque per-thread pointer (the paper says clients
must not inspect it; here it is the ThreadContext, passed back into
``dr_*`` routines).  ``end_trace`` returns one of the module constants
``END_TRACE`` / ``CONTINUE_TRACE`` / ``DEFAULT_TRACE_END``.
"""

from repro.core.trace_builder import CONTINUE_TRACE, DEFAULT_TRACE_END, END_TRACE

__all__ = ["Client", "END_TRACE", "CONTINUE_TRACE", "DEFAULT_TRACE_END"]


class Client:
    """Base class for DynamoRIO clients; override the hooks you need."""

    def __init__(self):
        self._runtime = None

    # ------------------------------------------------------------- plumbing

    def attach(self, runtime):
        """Called by the runtime before ``init``; not a paper hook."""
        self._runtime = runtime

    @property
    def runtime(self):
        if self._runtime is None:
            raise RuntimeError("client is not attached to a runtime")
        return self._runtime

    # ------------------------------------------------------------ the hooks

    def init(self):
        """Client initialization (dynamorio_init)."""

    def exit(self):
        """Client finalization (dynamorio_exit)."""

    def thread_init(self, context):
        """Per-thread initialization (dynamorio_thread_init)."""

    def thread_exit(self, context):
        """Per-thread finalization (dynamorio_thread_exit)."""

    def basic_block(self, context, tag, ilist):
        """Process a newly built basic block (dynamorio_basic_block)."""

    def trace(self, context, tag, ilist):
        """Process a trace before it enters the trace cache
        (dynamorio_trace)."""

    def fragment_deleted(self, context, tag):
        """A fragment left the cache (dynamorio_fragment_deleted)."""

    def end_trace(self, context, trace_tag, next_tag):
        """Should the in-progress trace end before adding ``next_tag``?
        Return END_TRACE, CONTINUE_TRACE, or DEFAULT_TRACE_END
        (dynamorio_end_trace)."""
        return DEFAULT_TRACE_END
