"""Flat byte-addressable memory for the RIO-32 machine.

A single contiguous ``bytearray`` models the low portion of a 32-bit
address space.  Named *regions* give the loader and the runtime distinct,
non-overlapping address ranges (application code, application heap,
stack, and — crucially for the paper's transparency requirements — a
separate runtime heap and code cache that never alias application
memory).  Optional write protection catches a client or runtime bug that
scribbles over application code.
"""

from repro.machine.errors import MachineFault

_MASK32 = 0xFFFFFFFF

# Write-watch granularity: watched address ranges are rounded out to
# 64-byte lines, so the per-write fast path is one set-membership test.
WATCH_SHIFT = 6


class Region:
    """A named address range ``[start, start+size)``."""

    __slots__ = ("name", "start", "size", "writable")

    def __init__(self, name, start, size, writable=True):
        self.name = name
        self.start = start
        self.size = size
        self.writable = writable

    @property
    def end(self):
        return self.start + self.size

    def contains(self, addr):
        return self.start <= addr < self.end

    def overlaps(self, other):
        return self.start < other.end and other.start < self.end

    def __repr__(self):
        return "<Region %s [0x%x, 0x%x)%s>" % (
            self.name,
            self.start,
            self.end,
            "" if self.writable else " ro",
        )


class Memory:
    """Simulated physical memory with region bookkeeping."""

    def __init__(self, size=1 << 24):
        self.size = size
        self._bytes = bytearray(size)
        self._regions = {}
        self._protect = False
        # Write monitoring (cache consistency / SMC detection).  When no
        # ranges are watched ``_watch_pages is None`` and every write
        # path pays a single attribute test, mirroring ``_protect``.
        self._watch_pages = None
        self._watchers = ()
        # Optional fault-context provider (``fn() -> app PC or None``),
        # consulted on error paths only: raised faults then blame the
        # application instruction that performed the access.
        self._fault_pc = None

    # -------------------------------------------------------------- regions

    def add_region(self, name, start, size, writable=True):
        region = Region(name, start, size, writable=writable)
        if region.end > self.size:
            raise MachineFault(
                "region %s extends past memory (0x%x > 0x%x)"
                % (name, region.end, self.size)
            )
        for other in self._regions.values():
            if region.overlaps(other):
                raise MachineFault(
                    "region %s overlaps %s" % (region, other)
                )
        self._regions[name] = region
        return region

    def region(self, name):
        return self._regions[name]

    def regions(self):
        return list(self._regions.values())

    def region_containing(self, addr):
        for region in self._regions.values():
            if region.contains(addr):
                return region
        return None

    def set_protection(self, enabled):
        """Enable/disable write-protection checks (off = fast path)."""
        self._protect = bool(enabled)

    def set_fault_context(self, fn):
        """Register a fault-context provider: ``fn()`` returns the
        current application PC (or ``None``).  Consulted only when a
        fault is raised — never on the access fast path — so faults can
        name the application instruction responsible."""
        self._fault_pc = fn

    def _fault_detail(self, addr, with_region=True):
        """Diagnostic suffix for fault messages: the region containing
        ``addr`` (when known and wanted) and the attributed app PC."""
        parts = []
        if with_region:
            region = self.region_containing(addr)
            if region is not None:
                parts.append("region %s" % region.name)
        fn = self._fault_pc
        if fn is not None:
            pc = fn()
            if pc is not None:
                parts.append("app pc 0x%x" % pc)
        return " (%s)" % ", ".join(parts) if parts else ""

    def _check_write(self, addr, size):
        region = self.region_containing(addr)
        if region is not None and not region.writable:
            raise MachineFault(
                "write of %d bytes to read-only region %s at 0x%x%s"
                % (
                    size,
                    region.name,
                    addr,
                    self._fault_detail(addr, with_region=False),
                )
            )

    # --------------------------------------------------------- write watching

    def add_write_watcher(self, fn):
        """Register ``fn(addr, size)`` to run on writes into watched ranges.

        Watchers only fire for addresses covered by :meth:`watch_range`;
        they must not write to memory themselves.
        """
        self._watchers = self._watchers + (fn,)
        if self._watch_pages is None:
            self._watch_pages = set()

    def watch_range(self, start, end):
        """Watch writes touching ``[start, end)`` (rounded out to lines)."""
        if self._watch_pages is None:
            self._watch_pages = set()
        self._watch_pages.update(
            range(start >> WATCH_SHIFT, ((end - 1) >> WATCH_SHIFT) + 1)
        )

    def _notify_write(self, addr, size):
        for fn in self._watchers:
            fn(addr, size)

    # ------------------------------------------------------------- accessors

    def read_u8(self, addr):
        addr &= _MASK32
        if addr >= self.size:
            raise MachineFault(
                "read past memory at 0x%x%s"
                % (addr, self._fault_detail(addr))
            )
        return self._bytes[addr]

    def read_u16(self, addr):
        addr &= _MASK32
        if addr + 2 > self.size:
            raise MachineFault(
                "read past memory at 0x%x%s"
                % (addr, self._fault_detail(addr))
            )
        return int.from_bytes(self._bytes[addr : addr + 2], "little")

    def read_u32(self, addr):
        addr &= _MASK32
        if addr + 4 > self.size:
            raise MachineFault(
                "read past memory at 0x%x%s"
                % (addr, self._fault_detail(addr))
            )
        return int.from_bytes(self._bytes[addr : addr + 4], "little")

    def write_u8(self, addr, value):
        addr &= _MASK32
        if addr >= self.size:
            raise MachineFault(
                "write past memory at 0x%x%s"
                % (addr, self._fault_detail(addr))
            )
        if self._protect:
            self._check_write(addr, 1)
        self._bytes[addr] = value & 0xFF
        pages = self._watch_pages
        if pages is not None and (addr >> WATCH_SHIFT) in pages:
            self._notify_write(addr, 1)

    def write_u32(self, addr, value):
        addr &= _MASK32
        if addr + 4 > self.size:
            raise MachineFault(
                "write past memory at 0x%x%s"
                % (addr, self._fault_detail(addr))
            )
        if self._protect:
            self._check_write(addr, 4)
        self._bytes[addr : addr + 4] = (value & _MASK32).to_bytes(4, "little")
        pages = self._watch_pages
        if pages is not None and (
            (addr >> WATCH_SHIFT) in pages
            or ((addr + 3) >> WATCH_SHIFT) in pages
        ):
            self._notify_write(addr, 4)

    def read_bytes(self, addr, n):
        addr &= _MASK32
        if addr + n > self.size:
            raise MachineFault(
                "read past memory at 0x%x%s"
                % (addr, self._fault_detail(addr))
            )
        return bytes(self._bytes[addr : addr + n])

    def write_bytes(self, addr, data):
        addr &= _MASK32
        if addr + len(data) > self.size:
            raise MachineFault(
                "write past memory at 0x%x%s"
                % (addr, self._fault_detail(addr))
            )
        if self._protect:
            self._check_write(addr, len(data))
        self._bytes[addr : addr + len(data)] = data
        pages = self._watch_pages
        if pages is not None and len(data):
            first = addr >> WATCH_SHIFT
            last = (addr + len(data) - 1) >> WATCH_SHIFT
            if any(p in pages for p in range(first, last + 1)):
                self._notify_write(addr, len(data))

    def view(self):
        """The raw backing bytearray (for the decoder's fast paths)."""
        return self._bytes
