"""The simulated RIO-32 machine.

This is the hardware substrate the reproduction runs on: a flat 32-bit
byte-addressable memory, a flag-accurate CPU, a deterministic cycle cost
model (with Pentium 3 / Pentium 4 family quirks), and two reference
executors — *native* (direct execution cost) and *emulation* (the
several-hundred-times-slower interpreter baseline of the paper's
Table 1).
"""

from repro.machine.errors import MachineError, MachineFault, ProgramExit
from repro.machine.memory import Memory
from repro.machine.cpu import CPU
from repro.machine.cost import CostModel, Family, CycleCounter
from repro.machine.interp import Interpreter, RunResult

__all__ = [
    "MachineError",
    "MachineFault",
    "ProgramExit",
    "Memory",
    "CPU",
    "CostModel",
    "Family",
    "CycleCounter",
    "Interpreter",
    "RunResult",
]
