"""Reference executors: native execution and pure emulation.

``Interpreter`` executes a program image directly from memory.  In
*native* mode its cycle total models the program running on bare
hardware (instruction costs + branch penalties with BTB/RAS prediction);
in *emulation* mode every instruction additionally pays the interpreter
dispatch overhead — the several-hundred-fold slowdown of the paper's
Table 1 baseline.

The executor decodes each instruction once and memoizes the decode by
address.  Memoized decodes are invalidated on writes into decoded code
(self-modifying code): each decode registers a write watch on its byte
range, and a store that lands there evicts every decode on the touched
lines so the next execution re-decodes the new bytes — keeping native
runs a correct reference even for SMC workloads.  Decoding is a
*translation* step in the paper's sense:
besides the operand list, it binds a specialized execution closure
(:func:`repro.machine.exec_ops.compile_noncti`), the pre-summed cycle
cost, the fall-through pc, and — for conditional branches — a compiled
condition predicate into the :class:`_Decoded` record.  The hot quantum
loop is then "look up the decode, call its closure": all per-opcode
dispatch, operand isinstance chains and cost recomputation happen once
per *static* instruction instead of once per *dynamic* instruction, so
wall-clock simulation speed does not distort the *simulated* cycle
accounting (which is bit-identical to the pre-closure engine; the old
dispatch loop is retained as ``engine="tuple"`` for regression tests).
"""

from collections import namedtuple

from repro.isa.decoder import decode_full
from repro.isa.opcodes import OP_INFO, Opcode
from repro.machine.cost import CostModel, CycleCounter
from repro.machine.cpu import CPU, compile_condition
from repro.machine.errors import MachineFault, ProgramExit
from repro.machine.exec_ops import compile_noncti, execute_noncti, read_operand
from repro.machine.memory import WATCH_SHIFT
from repro.machine.predictors import BranchTargetBuffer, ReturnAddressStack
from repro.machine.system import (
    System,
    ThreadExit,
    pop_signal_frame,
    push_signal_frame,
)
from repro.observe.events import EV_SIGNAL_DELIVERED, EV_THREAD_SPAWN

_MASK32 = 0xFFFFFFFF

RunResult = namedtuple(
    "RunResult",
    ["cycles", "instructions", "output", "exit_code", "events"],
)

# Default safety net against runaway programs.
DEFAULT_MAX_INSTRUCTIONS = 100_000_000


class _Decoded(
    namedtuple(
        "_Decoded",
        ["opcode", "info", "ops", "length", "imm1", "cost", "execute",
         "next_pc", "cond"],
    )
):
    """One memoized decode.

    ``cost``    pre-summed native cycle cost (for CTIs: the base cost
                excluding branch penalties, which depend on the outcome).
    ``execute`` bound non-CTI execution closure, or ``None`` for
                control transfers and the HALT/SYSCALL safe-point
                opcodes, which the quantum loop handles out of line.
    ``next_pc`` the fall-through address (pc + length).
    ``cond``    compiled condition predicate for conditional branches.
    """

    __slots__ = ()


class _NativeThread:
    """Per-thread architectural state of the native machine."""

    __slots__ = ("cpu", "ras", "alive")

    def __init__(self, cpu, ras):
        self.cpu = cpu
        self.ras = ras
        self.alive = True


class Interpreter:
    """Executes RIO-32 code directly from a process's memory.

    Supports multiple application threads (SYS_SPAWN): threads are
    scheduled round-robin with an instruction quantum; each has its own
    CPU state and return-address stack, the BTB is shared (as in
    hardware).

    ``engine`` selects the quantum loop: ``"closure"`` (default) runs
    the decode-compiled closures; ``"tuple"`` runs the original
    interpretive dispatch.  Both produce bit-identical results.
    """

    def __init__(self, process, cost_model=None, mode="native", quantum=100,
                 engine="closure", observer=None, system=None, counter=None):
        if mode not in ("native", "emulation"):
            raise ValueError("mode must be 'native' or 'emulation'")
        if engine not in ("closure", "tuple"):
            raise ValueError("engine must be 'closure' or 'tuple'")
        self.process = process
        # drtrace: no fragments exist at this level, so only the system
        # events (signals, thread spawns) are observable.
        self.observer = observer
        self.cost = cost_model if cost_model is not None else CostModel()
        self.mode = mode
        self.quantum = quantum
        self.engine = engine
        self.cpu = CPU()
        # The runtime's detach path ("drdetach") hands its System and
        # CycleCounter in so the native continuation appends to the same
        # output stream, honors alarms armed under the cache, and keeps
        # one cycle/instruction total across the attach boundary.
        self.system = system if system is not None else System()
        self.counter = counter if counter is not None else CycleCounter()
        self.btb = BranchTargetBuffer()
        self.ras = ReturnAddressStack(self.cost.ras_depth)
        self._decode_cache = {}
        # SMC support: line number -> set of decoded pcs whose bytes
        # touch that line.  Populated lazily by _decode; a watched write
        # evicts the affected decodes (coarse, at line granularity —
        # safe because eviction only forces a re-decode).
        self._decode_pages = {}
        self._watch_installed = False
        # One view of the backing bytes suffices; SMC writes mutate the
        # same bytearray in place, so the view stays current.
        self._code_view = process.memory.view()
        self._instructions = 0
        self._threads = []

    # ------------------------------------------------------------ execution

    def _decode(self, pc):
        cached = self._decode_cache.get(pc)
        if cached is not None:
            return cached
        try:
            d = decode_full(self._code_view, pc, pc=pc)
        except Exception as exc:
            raise MachineFault("cannot decode at 0x%x: %s" % (pc, exc))
        info = OP_INFO[d.opcode]
        imm1 = (
            d.opcode in (Opcode.ADD, Opcode.SUB)
            and len(d.operands) == 2
            and d.operands[1].is_imm()
            and d.operands[1].value in (1, 0xFFFFFFFF)
        )
        next_pc = (pc + d.length) & _MASK32
        if info.is_cti:
            # Branch penalties depend on the dynamic outcome; the static
            # base cost is pre-summed here.
            cost = self.cost.instr_cost(info, False, False)
            execute = None
            cond = compile_condition(d.opcode) if info.is_cond_branch else None
        else:
            cost = self.cost.instr_cost(
                info,
                _explicit_reads_mem(d.opcode, info, d.operands),
                _explicit_writes_mem(info, d.operands),
                imm1,
            )
            cond = None
            if d.opcode is Opcode.HALT or d.opcode is Opcode.SYSCALL:
                # Safe-point opcodes: handled out of line by the quantum
                # loop (program exit / alarm re-arming).
                execute = None
            else:
                execute = compile_noncti(
                    d.opcode, d.operands, self.process.memory, self.system
                )
        decoded = _Decoded(
            d.opcode, info, d.operands, d.length, imm1, cost, execute,
            next_pc, cond,
        )
        self._decode_cache[pc] = decoded
        if not self._watch_installed:
            self._watch_installed = True
            self.process.memory.add_write_watcher(self._on_code_write)
        self.process.memory.watch_range(pc, pc + d.length)
        pages = self._decode_pages
        for page in range(pc >> WATCH_SHIFT, ((pc + d.length - 1) >> WATCH_SHIFT) + 1):
            pages.setdefault(page, set()).add(pc)
        return decoded

    def _on_code_write(self, addr, size):
        """Evict memoized decodes whose lines a store touched (SMC)."""
        cache = self._decode_cache
        pages = self._decode_pages
        for page in range(addr >> WATCH_SHIFT, ((addr + size - 1) >> WATCH_SHIFT) + 1):
            pcs = pages.pop(page, None)
            if pcs:
                for pc in pcs:
                    cache.pop(pc, None)

    def _spawn(self, entry, stack_pointer):
        thread = _NativeThread(CPU(), ReturnAddressStack(self.cost.ras_depth))
        thread.cpu.pc = entry & _MASK32
        thread.cpu.regs[4] = stack_pointer & _MASK32
        self._threads.append(thread)
        self.counter.count("threads_spawned")
        if self.observer is not None:
            self.observer.emit(
                EV_THREAD_SPAWN,
                thread.cpu.pc,
                thread_index=len(self._threads) - 1,
            )

    def adopt_thread(self, cpu):
        """Wrap an existing CPU as a native thread, with a fresh
        return-address stack (predictor state, not architectural state).
        The runtime's detach path uses this to continue its translated
        threads natively; the caller owns scheduling."""
        return _NativeThread(cpu, ReturnAddressStack(self.cost.ras_depth))

    def run(self, entry=None, max_instructions=DEFAULT_MAX_INSTRUCTIONS):
        """Run until program exit; returns a :class:`RunResult`."""
        main = _NativeThread(self.cpu, self.ras)
        main.cpu.pc = self.process.entry if entry is None else entry
        main.cpu.regs[4] = self.process.initial_stack_pointer()
        self._threads = [main]
        self.system.spawn_thread = self._spawn
        run_quantum = (
            self._run_quantum
            if self.engine == "closure"
            else self._run_quantum_tuple
        )
        exit_code = None
        rotor = 0
        try:
            while True:
                alive = [t for t in self._threads if t.alive]
                if not alive:
                    break
                thread = alive[rotor % len(alive)]
                rotor += 1
                if len(alive) > 1:
                    self.counter.charge(self.cost.thread_switch, "thread_switches")
                try:
                    run_quantum(thread, self.quantum, max_instructions)
                except ThreadExit:
                    thread.alive = False
        except ProgramExit as exit_:
            exit_code = exit_.code
        events = dict(self.counter.events)
        if self.observer is not None:
            self.observer.finalize(self.counter.cycles)
            events.update(self.observer.summary())
        return RunResult(
            cycles=self.counter.cycles,
            instructions=self._instructions,
            output=self.system.output_bytes(),
            exit_code=exit_code,
            events=events,
        )

    def _deliver_signal(self, cpu, n):
        """Redirect to the signal handler with a full signal frame.

        ``n`` is the current instruction count; the delivery latency
        (instructions past the alarm deadline — 0 or 1 here, since the
        native loop checks per instruction) feeds the same
        ``signal_latency`` accounting the runtime keeps, so detached
        continuations report comparably.
        """
        interrupted = cpu.pc
        latency = None
        if self.system.alarm_at is not None:
            latency = n - self.system.alarm_at
            events = self.counter.events
            events["signal_latency"] = (
                events.get("signal_latency", 0) + latency
            )
            if latency > events.get("signal_latency_max", -1):
                events["signal_latency_max"] = latency
        push_signal_frame(cpu, self.process.memory, cpu.pc)
        cpu.pc = self.system.signal_handler
        self.system.clear_alarm()
        self.system.signals_delivered += 1
        self.counter.charge(self.cost.signal_delivery, "signals_delivered")
        if self.observer is not None:
            data = {"handler": self.system.signal_handler}
            if latency is not None:
                data["latency"] = latency
            self.observer.emit(EV_SIGNAL_DELIVERED, interrupted, **data)

    def _run_quantum(self, thread, quantum, max_instructions):
        """Closure-driven quantum loop.

        Per dynamic instruction: one decode-cache lookup and one closure
        call.  The alarm bookkeeping is guarded by a local flag that only
        a SYSCALL (handled out of line) can flip, so workloads that never
        arm an alarm skip it entirely; the instruction budget check is
        folded into the loop limit.
        """
        cpu = thread.cpu
        # Fault context: memory errors raised during this quantum blame
        # this thread's current PC (consulted on error paths only).
        self.process.memory.set_fault_context(lambda: cpu.pc)
        counter = self.counter
        emulating = self.mode == "emulation"
        emu_cost = self.cost.emulate_per_instr
        system = self.system
        if self._instructions >= max_instructions:
            raise MachineFault(
                "instruction budget exhausted (%d)" % max_instructions
            )
        limit = self._instructions + quantum
        if limit > max_instructions:
            limit = max_instructions
        dcache_get = self._decode_cache.get
        decode = self._decode
        alarm_live = system.alarm_active
        n = self._instructions
        try:
            while n < limit:
                if alarm_live:
                    system.convert_alarm(n)
                    if system.alarm_due(n) and system.signal_handler:
                        self._deliver_signal(cpu, n)
                        alarm_live = system.alarm_active
                d = dcache_get(cpu.pc)
                if d is None:
                    d = decode(cpu.pc)
                n += 1
                if emulating:
                    counter.cycles += emu_cost
                execute = d.execute
                if execute is not None:
                    counter.cycles += d.cost
                    execute(cpu)
                    cpu.pc = d.next_pc
                    continue
                opcode = d.opcode
                if opcode is Opcode.SYSCALL:
                    counter.cycles += d.cost
                    system.syscall(cpu)
                    cpu.pc = d.next_pc
                    alarm_live = system.alarm_active
                    continue
                if opcode is Opcode.HALT:
                    raise ProgramExit(cpu.regs[0])
                self._execute_cti_fast(d, cpu.pc, thread)
        finally:
            self._instructions = n

    def _execute_cti_fast(self, d, pc, thread):
        """Control transfers using the decode's precomputed fields."""
        cpu = thread.cpu
        mem = self.process.memory
        cost = self.cost
        counter = self.counter
        opcode = d.opcode
        base = d.cost
        fallthrough = d.next_pc

        if d.cond is not None:
            if d.cond(cpu.eflags):
                counter.charge(base + cost.taken_branch_penalty, "branch_taken")
                cpu.pc = d.ops[0].pc
            else:
                counter.charge(base, "branch_not_taken")
                cpu.pc = fallthrough
        elif opcode is Opcode.JMP:
            counter.charge(base + cost.taken_branch_penalty)
            cpu.pc = d.ops[0].pc
        elif opcode is Opcode.CALL:
            counter.charge(base + cost.taken_branch_penalty)
            cpu.regs[4] = (cpu.regs[4] - 4) & _MASK32
            mem.write_u32(cpu.regs[4], fallthrough)
            thread.ras.push(fallthrough)
            cpu.pc = d.ops[0].pc
        elif opcode is Opcode.CALL_IND:
            target = read_operand(cpu, mem, d.ops[0])
            penalty = 0
            if not self.btb.predict_and_update(pc, target):
                penalty = cost.indirect_mispredict
                counter.count("btb_miss")
            counter.charge(base + cost.taken_branch_penalty + penalty)
            cpu.regs[4] = (cpu.regs[4] - 4) & _MASK32
            mem.write_u32(cpu.regs[4], fallthrough)
            thread.ras.push(fallthrough)
            cpu.pc = target
        elif opcode is Opcode.JMP_IND:
            target = read_operand(cpu, mem, d.ops[0])
            penalty = 0
            if not self.btb.predict_and_update(pc, target):
                penalty = cost.indirect_mispredict
                counter.count("btb_miss")
            counter.charge(base + cost.taken_branch_penalty + penalty)
            cpu.pc = target
        elif opcode is Opcode.RET:
            target = mem.read_u32(cpu.regs[4])
            cpu.regs[4] = (cpu.regs[4] + 4) & _MASK32
            penalty = 0
            if not thread.ras.pop_and_check(target):
                penalty = cost.ras_mispredict
                counter.count("ras_miss")
            counter.charge(base + cost.taken_branch_penalty + penalty)
            cpu.pc = target
        elif opcode is Opcode.IRET:
            target = pop_signal_frame(cpu, mem)
            # no RAS benefit: interrupt returns are unpredicted
            counter.charge(
                base + cost.taken_branch_penalty + cost.indirect_mispredict
            )
            cpu.pc = target
        else:
            raise MachineFault("unhandled CTI %r" % (opcode,))

    # ------------------------------------------------ reference tuple engine

    def _run_quantum_tuple(self, thread, quantum, max_instructions):
        """The pre-closure dispatch loop, kept verbatim as the regression
        reference: determinism tests assert that the closure engine
        produces bit-identical cycles/instructions/output against it."""
        cpu = thread.cpu
        mem = self.process.memory
        # Fault context: memory errors raised during this quantum blame
        # this thread's current PC (consulted on error paths only).
        mem.set_fault_context(lambda: cpu.pc)
        cost = self.cost
        counter = self.counter
        emulating = self.mode == "emulation"
        system = self.system
        limit = self._instructions + quantum
        while self._instructions < limit:
            if system.alarm_in is not None or system.alarm_at is not None:
                system.convert_alarm(self._instructions)
                if system.alarm_due(self._instructions) and system.signal_handler:
                    self._deliver_signal(cpu, self._instructions)
            if self._instructions >= max_instructions:
                raise MachineFault(
                    "instruction budget exhausted (%d)" % max_instructions
                )
            pc = cpu.pc
            d = self._decode(pc)
            self._instructions += 1
            if emulating:
                counter.charge(cost.emulate_per_instr)
            info = d.info
            if not info.is_cti:
                if d.opcode == Opcode.HALT:
                    raise ProgramExit(cpu.regs[0])
                counter.cycles += cost.instr_cost(
                    info,
                    _explicit_reads_mem(d.opcode, info, d.ops),
                    _explicit_writes_mem(info, d.ops),
                    d.imm1,
                )
                execute_noncti(cpu, mem, self.system, d.opcode, d.ops)
                cpu.pc = (pc + d.length) & _MASK32
                continue
            self._execute_cti(d, pc, thread)

    def _execute_cti(self, d, pc, thread):
        cpu = thread.cpu
        mem = self.process.memory
        cost = self.cost
        counter = self.counter
        opcode = d.opcode
        base = cost.instr_cost(d.info, False, False)
        fallthrough = (pc + d.length) & _MASK32

        if opcode == Opcode.JMP:
            counter.charge(base + cost.taken_branch_penalty)
            cpu.pc = d.ops[0].pc
        elif d.info.is_cond_branch:
            if cpu.condition_holds(opcode):
                counter.charge(base + cost.taken_branch_penalty, "branch_taken")
                cpu.pc = d.ops[0].pc
            else:
                counter.charge(base, "branch_not_taken")
                cpu.pc = fallthrough
        elif opcode == Opcode.CALL:
            counter.charge(base + cost.taken_branch_penalty)
            cpu.regs[4] = (cpu.regs[4] - 4) & _MASK32
            mem.write_u32(cpu.regs[4], fallthrough)
            thread.ras.push(fallthrough)
            cpu.pc = d.ops[0].pc
        elif opcode == Opcode.CALL_IND:
            target = read_operand(cpu, mem, d.ops[0])
            penalty = 0
            if not self.btb.predict_and_update(pc, target):
                penalty = cost.indirect_mispredict
                counter.count("btb_miss")
            counter.charge(base + cost.taken_branch_penalty + penalty)
            cpu.regs[4] = (cpu.regs[4] - 4) & _MASK32
            mem.write_u32(cpu.regs[4], fallthrough)
            thread.ras.push(fallthrough)
            cpu.pc = target
        elif opcode == Opcode.JMP_IND:
            target = read_operand(cpu, mem, d.ops[0])
            penalty = 0
            if not self.btb.predict_and_update(pc, target):
                penalty = cost.indirect_mispredict
                counter.count("btb_miss")
            counter.charge(base + cost.taken_branch_penalty + penalty)
            cpu.pc = target
        elif opcode == Opcode.RET:
            target = mem.read_u32(cpu.regs[4])
            cpu.regs[4] = (cpu.regs[4] + 4) & _MASK32
            penalty = 0
            if not thread.ras.pop_and_check(target):
                penalty = cost.ras_mispredict
                counter.count("ras_miss")
            counter.charge(base + cost.taken_branch_penalty + penalty)
            cpu.pc = target
        elif opcode == Opcode.IRET:
            target = pop_signal_frame(cpu, mem)
            # no RAS benefit: interrupt returns are unpredicted
            counter.charge(
                base + cost.taken_branch_penalty + cost.indirect_mispredict
            )
            cpu.pc = target
        else:
            raise MachineFault("unhandled CTI %r" % (opcode,))


def _explicit_reads_mem(opcode, info, ops):
    if opcode == Opcode.LEA:
        return False
    # For stores the first (destination) operand is memory; reads scan
    # the remaining source-side operands.
    if not ops:
        return False
    if info.shape in ("mov", "lea", "binary", "shift", "unary"):
        first_is_dst = True
    else:
        first_is_dst = False
    for i, op in enumerate(ops):
        if op.is_mem():
            if i == 0 and first_is_dst and info.shape == "mov":
                continue  # pure store
            return True
    return False


def _explicit_writes_mem(info, ops):
    if not ops:
        return False
    if info.shape in ("mov", "binary", "shift", "unary"):
        return ops[0].is_mem()
    return False


def run_native(process, cost_model=None, max_instructions=DEFAULT_MAX_INSTRUCTIONS):
    """Convenience: run a process natively and return its RunResult."""
    return Interpreter(process, cost_model, mode="native").run(
        max_instructions=max_instructions
    )


def run_emulated(process, cost_model=None, max_instructions=DEFAULT_MAX_INSTRUCTIONS):
    """Convenience: run under pure emulation (Table 1 baseline)."""
    return Interpreter(process, cost_model, mode="emulation").run(
        max_instructions=max_instructions
    )
