"""Reference executors: native execution and pure emulation.

``Interpreter`` executes a program image directly from memory.  In
*native* mode its cycle total models the program running on bare
hardware (instruction costs + branch penalties with BTB/RAS prediction);
in *emulation* mode every instruction additionally pays the interpreter
dispatch overhead — the several-hundred-fold slowdown of the paper's
Table 1 baseline.

The executor decodes each instruction once and memoizes the decode by
address (invalidated never: application code is immutable under this
substrate), so *wall-clock* simulation speed does not distort the
*simulated* cycle accounting.
"""

from collections import namedtuple

from repro.isa.decoder import decode_full
from repro.isa.opcodes import OP_INFO, Opcode
from repro.machine.cost import CostModel, CycleCounter
from repro.machine.cpu import CPU
from repro.machine.errors import MachineFault, ProgramExit
from repro.machine.exec_ops import execute_noncti, read_operand
from repro.machine.predictors import BranchTargetBuffer, ReturnAddressStack
from repro.machine.system import (
    System,
    ThreadExit,
    pop_signal_frame,
    push_signal_frame,
)

_MASK32 = 0xFFFFFFFF

RunResult = namedtuple(
    "RunResult",
    ["cycles", "instructions", "output", "exit_code", "events"],
)

# Default safety net against runaway programs.
DEFAULT_MAX_INSTRUCTIONS = 100_000_000


class _Decoded(namedtuple("_Decoded", ["opcode", "info", "ops", "length", "imm1"])):
    __slots__ = ()


class _NativeThread:
    """Per-thread architectural state of the native machine."""

    __slots__ = ("cpu", "ras", "alive")

    def __init__(self, cpu, ras):
        self.cpu = cpu
        self.ras = ras
        self.alive = True


class Interpreter:
    """Executes RIO-32 code directly from a process's memory.

    Supports multiple application threads (SYS_SPAWN): threads are
    scheduled round-robin with an instruction quantum; each has its own
    CPU state and return-address stack, the BTB is shared (as in
    hardware).
    """

    def __init__(self, process, cost_model=None, mode="native", quantum=100):
        if mode not in ("native", "emulation"):
            raise ValueError("mode must be 'native' or 'emulation'")
        self.process = process
        self.cost = cost_model if cost_model is not None else CostModel()
        self.mode = mode
        self.quantum = quantum
        self.cpu = CPU()
        self.system = System()
        self.counter = CycleCounter()
        self.btb = BranchTargetBuffer()
        self.ras = ReturnAddressStack(self.cost.ras_depth)
        self._decode_cache = {}
        self._instructions = 0
        self._threads = []

    # ------------------------------------------------------------ execution

    def _decode(self, pc):
        cached = self._decode_cache.get(pc)
        if cached is not None:
            return cached
        mem = self.process.memory
        try:
            d = decode_full(mem.view(), pc, pc=pc)
        except Exception as exc:
            raise MachineFault("cannot decode at 0x%x: %s" % (pc, exc))
        info = OP_INFO[d.opcode]
        imm1 = (
            d.opcode in (Opcode.ADD, Opcode.SUB)
            and len(d.operands) == 2
            and d.operands[1].is_imm()
            and d.operands[1].value in (1, 0xFFFFFFFF)
        )
        decoded = _Decoded(d.opcode, info, d.operands, d.length, imm1)
        self._decode_cache[pc] = decoded
        return decoded

    def _spawn(self, entry, stack_pointer):
        thread = _NativeThread(CPU(), ReturnAddressStack(self.cost.ras_depth))
        thread.cpu.pc = entry & _MASK32
        thread.cpu.regs[4] = stack_pointer & _MASK32
        self._threads.append(thread)
        self.counter.count("threads_spawned")

    def run(self, entry=None, max_instructions=DEFAULT_MAX_INSTRUCTIONS):
        """Run until program exit; returns a :class:`RunResult`."""
        main = _NativeThread(self.cpu, self.ras)
        main.cpu.pc = self.process.entry if entry is None else entry
        main.cpu.regs[4] = self.process.initial_stack_pointer()
        self._threads = [main]
        self.system.spawn_thread = self._spawn
        exit_code = None
        rotor = 0
        try:
            while True:
                alive = [t for t in self._threads if t.alive]
                if not alive:
                    break
                thread = alive[rotor % len(alive)]
                rotor += 1
                if len(alive) > 1:
                    self.counter.charge(self.cost.thread_switch, "thread_switches")
                try:
                    self._run_quantum(thread, self.quantum, max_instructions)
                except ThreadExit:
                    thread.alive = False
        except ProgramExit as exit_:
            exit_code = exit_.code
        return RunResult(
            cycles=self.counter.cycles,
            instructions=self._instructions,
            output=self.system.output_bytes(),
            exit_code=exit_code,
            events=dict(self.counter.events),
        )

    def _deliver_signal(self, cpu):
        """Redirect to the signal handler with a full signal frame."""
        push_signal_frame(cpu, self.process.memory, cpu.pc)
        cpu.pc = self.system.signal_handler
        self.system.clear_alarm()
        self.system.signals_delivered += 1
        self.counter.charge(self.cost.signal_delivery, "signals_delivered")

    def _run_quantum(self, thread, quantum, max_instructions):
        cpu = thread.cpu
        mem = self.process.memory
        cost = self.cost
        counter = self.counter
        emulating = self.mode == "emulation"
        system = self.system
        limit = self._instructions + quantum
        while self._instructions < limit:
            if system.alarm_in is not None or system.alarm_at is not None:
                system.convert_alarm(self._instructions)
                if system.alarm_due(self._instructions) and system.signal_handler:
                    self._deliver_signal(cpu)
            if self._instructions >= max_instructions:
                raise MachineFault(
                    "instruction budget exhausted (%d)" % max_instructions
                )
            pc = cpu.pc
            d = self._decode(pc)
            self._instructions += 1
            if emulating:
                counter.charge(cost.emulate_per_instr)
            info = d.info
            if not info.is_cti:
                if d.opcode == Opcode.HALT:
                    raise ProgramExit(cpu.regs[0])
                counter.cycles += cost.instr_cost(
                    info,
                    _explicit_reads_mem(d),
                    _explicit_writes_mem(d),
                    d.imm1,
                )
                execute_noncti(cpu, mem, self.system, d.opcode, d.ops)
                cpu.pc = (pc + d.length) & _MASK32
                continue
            self._execute_cti(d, pc, thread)

    def _execute_cti(self, d, pc, thread):
        cpu = thread.cpu
        mem = self.process.memory
        cost = self.cost
        counter = self.counter
        opcode = d.opcode
        base = cost.instr_cost(d.info, False, False)
        fallthrough = (pc + d.length) & _MASK32

        if opcode == Opcode.JMP:
            counter.charge(base + cost.taken_branch_penalty)
            cpu.pc = d.ops[0].pc
        elif d.info.is_cond_branch:
            if cpu.condition_holds(opcode):
                counter.charge(base + cost.taken_branch_penalty, "branch_taken")
                cpu.pc = d.ops[0].pc
            else:
                counter.charge(base, "branch_not_taken")
                cpu.pc = fallthrough
        elif opcode == Opcode.CALL:
            counter.charge(base + cost.taken_branch_penalty)
            cpu.regs[4] = (cpu.regs[4] - 4) & _MASK32
            mem.write_u32(cpu.regs[4], fallthrough)
            thread.ras.push(fallthrough)
            cpu.pc = d.ops[0].pc
        elif opcode == Opcode.CALL_IND:
            target = read_operand(cpu, mem, d.ops[0])
            penalty = 0
            if not self.btb.predict_and_update(pc, target):
                penalty = cost.indirect_mispredict
                counter.count("btb_miss")
            counter.charge(base + cost.taken_branch_penalty + penalty)
            cpu.regs[4] = (cpu.regs[4] - 4) & _MASK32
            mem.write_u32(cpu.regs[4], fallthrough)
            thread.ras.push(fallthrough)
            cpu.pc = target
        elif opcode == Opcode.JMP_IND:
            target = read_operand(cpu, mem, d.ops[0])
            penalty = 0
            if not self.btb.predict_and_update(pc, target):
                penalty = cost.indirect_mispredict
                counter.count("btb_miss")
            counter.charge(base + cost.taken_branch_penalty + penalty)
            cpu.pc = target
        elif opcode == Opcode.RET:
            target = mem.read_u32(cpu.regs[4])
            cpu.regs[4] = (cpu.regs[4] + 4) & _MASK32
            penalty = 0
            if not thread.ras.pop_and_check(target):
                penalty = cost.ras_mispredict
                counter.count("ras_miss")
            counter.charge(base + cost.taken_branch_penalty + penalty)
            cpu.pc = target
        elif opcode == Opcode.IRET:
            target = pop_signal_frame(cpu, mem)
            # no RAS benefit: interrupt returns are unpredicted
            counter.charge(
                base + cost.taken_branch_penalty + cost.indirect_mispredict
            )
            cpu.pc = target
        else:
            raise MachineFault("unhandled CTI %r" % (opcode,))


def _explicit_reads_mem(d):
    if d.opcode == Opcode.LEA:
        return False
    # For stores the first (destination) operand is memory; reads scan
    # the remaining source-side operands.
    ops = d.ops
    if not ops:
        return False
    if d.info.shape in ("mov", "lea", "binary", "shift", "unary"):
        first_is_dst = True
    else:
        first_is_dst = False
    for i, op in enumerate(ops):
        if op.is_mem():
            if i == 0 and first_is_dst and d.info.shape == "mov":
                continue  # pure store
            return True
    return False


def _explicit_writes_mem(d):
    ops = d.ops
    if not ops:
        return False
    if d.info.shape in ("mov", "binary", "shift", "unary"):
        return ops[0].is_mem()
    return False


def run_native(process, cost_model=None, max_instructions=DEFAULT_MAX_INSTRUCTIONS):
    """Convenience: run a process natively and return its RunResult."""
    return Interpreter(process, cost_model, mode="native").run(
        max_instructions=max_instructions
    )


def run_emulated(process, cost_model=None, max_instructions=DEFAULT_MAX_INSTRUCTIONS):
    """Convenience: run under pure emulation (Table 1 baseline)."""
    return Interpreter(process, cost_model, mode="emulation").run(
        max_instructions=max_instructions
    )
