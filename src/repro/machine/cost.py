"""Deterministic cycle cost model for the RIO-32 machine.

The paper's measurements come from real hardware effects; this model
encodes the same effects as explicit, documented parameters so that the
*events* — not wall-clock noise — determine every reported number:

* per-instruction execution costs (with the Pentium-family quirk the
  strength-reduction client exploits: ``inc``/``dec`` stall on the P4's
  partial-flags update, so ``add 1`` is cheaper there, and vice versa on
  the P3);
* pipeline penalties: taken branches, indirect-branch (BTB) and return
  (RAS) mispredictions;
* runtime event costs charged by the dynamic translator: context
  switches, basic-block/trace construction, linking, the indirect-branch
  hashtable lookup, and the per-instruction cost of pure emulation.

All program-level experiments report *ratios* of total cycles, which is
exactly what the paper reports (normalized execution time).
"""

from enum import Enum


class Family(Enum):
    """Processor family, selectable per machine (paper Section 4.2)."""

    PENTIUM_III = 3
    PENTIUM_IV = 4


# Base cycles per cost class, shared by both families.
_BASE_COSTS = {
    "mov": 1,
    "load": 1,
    "store": 1,
    "alu": 1,
    "incdec": 1,
    "shift": 1,
    "mul": 4,
    "div": 24,
    "push": 2,
    "pop": 2,
    "xchg": 2,
    "fload": 2,
    "fstore": 2,
    "fadd": 4,
    "fmul": 6,
    "fdiv": 24,
    "nop": 1,
    "halt": 1,
    "syscall": 40,
    "jmp": 1,
    "jcc": 1,
    "jmp_ind": 2,
    "call": 2,
    "call_ind": 3,
    "ret": 2,
}


class CostModel:
    """All tunable cycle costs.  Instances are mutable for ablations."""

    def __init__(self, family=Family.PENTIUM_IV):
        self.family = family
        self.base_costs = dict(_BASE_COSTS)
        # Family quirks: P4 pays a partial-flags stall on inc/dec; the
        # P3 instead pays a micro-op penalty on add-with-immediate
        # relative to inc (the "opposite is true on the Pentium 3").
        self.incdec_p4_stall = 3
        self.addsub_imm1_p3_extra = 1
        # Memory operand extras (beyond the class base): a P4 L1 load
        # is ~4 cycles of latency, so folding a load into an ALU op or
        # removing it outright (the RLR client) is worth real cycles.
        self.mem_read_extra = 3
        self.mem_write_extra = 2
        # Hardware branch penalties.
        self.taken_branch_penalty = 3
        self.indirect_mispredict = 14
        self.ras_mispredict = 14
        self.ras_depth = 16
        # Thread scheduling and (optional) shared-cache synchronization.
        self.thread_switch = 120
        self.shared_cache_sync = 60
        # Asynchronous signal delivery (kernel → handler redirect).
        self.signal_delivery = 150
        # Runtime (software) event costs.
        self.context_switch = 250
        self.dispatch = 150
        self.bb_build_base = 500
        self.bb_build_per_instr = 60
        self.trace_build_base = 900
        self.trace_build_per_instr = 90
        self.link_cost = 40
        self.ibl_lookup = 25
        self.fragment_entry = 2
        # Cache consistency: invalidating the fragments translated from
        # a written code region (unlink + delete bookkeeping).
        self.smc_invalidate = 120
        # Calibrated so pure emulation lands at the paper's "slowdown
        # factor of several hundred" on crafty/vpr (Table 1 row 1).
        self.emulate_per_instr = 800
        # Client event costs (charged when a client hook runs).
        self.client_bb_hook_per_instr = 15
        self.client_trace_hook_per_instr = 30

    def instr_cost(self, info, reads_mem, writes_mem, imm1=False):
        """Execution cost of one instruction.

        ``reads_mem``/``writes_mem`` refer to explicit memory operands;
        implicit stack traffic is folded into the class base cost.
        ``imm1`` marks an add/sub with an immediate of 1 (the strength-
        reduction alternative to inc/dec) for the P3-side quirk.
        """
        cost = self.base_costs[info.cost_class]
        if info.cost_class == "incdec" and self.family == Family.PENTIUM_IV:
            cost += self.incdec_p4_stall
        if imm1 and self.family == Family.PENTIUM_III:
            cost += self.addsub_imm1_p3_extra
        if reads_mem:
            cost += self.mem_read_extra
        if writes_mem:
            cost += self.mem_write_extra
        return cost

    def copy(self):
        import copy as _copy

        return _copy.deepcopy(self)


class CycleCounter:
    """Accumulates cycles and named event counts."""

    __slots__ = ("cycles", "events")

    def __init__(self):
        self.cycles = 0
        self.events = {}

    def charge(self, cycles, event=None):
        self.cycles += cycles
        if event is not None:
            self.events[event] = self.events.get(event, 0) + 1

    def count(self, event):
        """Record an event without charging cycles."""
        self.events[event] = self.events.get(event, 0) + 1

    def merge(self, other):
        self.cycles += other.cycles
        for key, value in other.events.items():
            self.events[key] = self.events.get(key, 0) + value
