"""Execution semantics for non-control-transfer RIO-32 instructions.

Control transfers are *not* handled here: the execution driver (the
native interpreter, or the runtime's fragment executor) owns them,
because resolving a branch needs context the instruction alone lacks
(fall-through address, return-address push, link state).  Everything
else — data movement, arithmetic, stack ops, syscalls — is executed by
:func:`execute_noncti` against a :class:`~repro.machine.cpu.CPU`,
:class:`~repro.machine.memory.Memory` and
:class:`~repro.machine.system.System`.
"""

from repro.isa.opcodes import Opcode
from repro.isa.operands import ImmOperand, MemOperand, RegOperand
from repro.machine.errors import MachineFault

_MASK32 = 0xFFFFFFFF
_SIGN = 0x80000000


def effective_address(cpu, op):
    """Compute the 32-bit effective address of a memory operand."""
    addr = op.disp
    if op.base is not None:
        addr += cpu.regs[op.base]
    if op.index is not None:
        addr += cpu.regs[op.index] * op.scale
    return addr & _MASK32


def read_operand(cpu, mem, op):
    """Read an operand's value (zero-extended for sub-word memory)."""
    if isinstance(op, RegOperand):
        return cpu.regs[op.reg]
    if isinstance(op, ImmOperand):
        return op.value & _MASK32
    if isinstance(op, MemOperand):
        addr = effective_address(cpu, op)
        if op.size == 4:
            return mem.read_u32(addr)
        if op.size == 2:
            return mem.read_u16(addr)
        return mem.read_u8(addr)
    raise MachineFault("cannot read operand %r" % (op,))


def write_operand(cpu, mem, op, value):
    if isinstance(op, RegOperand):
        cpu.regs[op.reg] = value & _MASK32
        return
    if isinstance(op, MemOperand):
        addr = effective_address(cpu, op)
        if op.size == 4:
            mem.write_u32(addr, value)
        elif op.size == 1:
            mem.write_u8(addr, value)
        else:
            raise MachineFault("2-byte stores are not part of RIO-32")
        return
    raise MachineFault("cannot write operand %r" % (op,))


def _sign_extend(value, size):
    bits = size * 8
    sign_bit = 1 << (bits - 1)
    return (value ^ sign_bit) - sign_bit & _MASK32


def _signed(value):
    return value - 0x100000000 if value & _SIGN else value


def execute_noncti(cpu, mem, system, opcode, ops):
    """Execute one non-CTI instruction given its explicit operands."""
    if opcode == Opcode.MOV:
        write_operand(cpu, mem, ops[0], read_operand(cpu, mem, ops[1]))
    elif opcode == Opcode.ADD:
        a = read_operand(cpu, mem, ops[0])
        b = read_operand(cpu, mem, ops[1])
        write_operand(cpu, mem, ops[0], cpu.flags_add(a, b))
    elif opcode == Opcode.SUB:
        a = read_operand(cpu, mem, ops[0])
        b = read_operand(cpu, mem, ops[1])
        write_operand(cpu, mem, ops[0], cpu.flags_sub(a, b))
    elif opcode == Opcode.CMP:
        a = read_operand(cpu, mem, ops[0])
        b = read_operand(cpu, mem, ops[1])
        cpu.flags_sub(a, b)
    elif opcode == Opcode.INC:
        write_operand(
            cpu, mem, ops[0], cpu.flags_inc(read_operand(cpu, mem, ops[0]))
        )
    elif opcode == Opcode.DEC:
        write_operand(
            cpu, mem, ops[0], cpu.flags_dec(read_operand(cpu, mem, ops[0]))
        )
    elif opcode == Opcode.LEA:
        cpu.regs[ops[0].reg] = effective_address(cpu, ops[1])
    elif opcode == Opcode.MOVZX:
        write_operand(cpu, mem, ops[0], read_operand(cpu, mem, ops[1]))
    elif opcode == Opcode.MOVSX:
        raw = read_operand(cpu, mem, ops[1])
        write_operand(cpu, mem, ops[0], _sign_extend(raw, ops[1].size))
    elif opcode == Opcode.MOVB_STORE:
        write_operand(cpu, mem, ops[0], read_operand(cpu, mem, ops[1]) & 0xFF)
    elif opcode == Opcode.AND:
        res = read_operand(cpu, mem, ops[0]) & read_operand(cpu, mem, ops[1])
        write_operand(cpu, mem, ops[0], cpu.flags_logic(res))
    elif opcode == Opcode.OR:
        res = read_operand(cpu, mem, ops[0]) | read_operand(cpu, mem, ops[1])
        write_operand(cpu, mem, ops[0], cpu.flags_logic(res))
    elif opcode == Opcode.XOR:
        res = read_operand(cpu, mem, ops[0]) ^ read_operand(cpu, mem, ops[1])
        write_operand(cpu, mem, ops[0], cpu.flags_logic(res))
    elif opcode == Opcode.TEST:
        cpu.flags_logic(
            read_operand(cpu, mem, ops[0]) & read_operand(cpu, mem, ops[1])
        )
    elif opcode == Opcode.NOT:
        write_operand(
            cpu, mem, ops[0], ~read_operand(cpu, mem, ops[0]) & _MASK32
        )
    elif opcode == Opcode.NEG:
        write_operand(
            cpu, mem, ops[0], cpu.flags_neg(read_operand(cpu, mem, ops[0]))
        )
    elif opcode == Opcode.SHL:
        a = read_operand(cpu, mem, ops[0])
        n = read_operand(cpu, mem, ops[1]) & 31
        write_operand(cpu, mem, ops[0], cpu.flags_shl(a, n))
    elif opcode == Opcode.SHR:
        a = read_operand(cpu, mem, ops[0])
        n = read_operand(cpu, mem, ops[1]) & 31
        write_operand(cpu, mem, ops[0], cpu.flags_shr(a, n))
    elif opcode == Opcode.SAR:
        a = read_operand(cpu, mem, ops[0])
        n = read_operand(cpu, mem, ops[1]) & 31
        write_operand(cpu, mem, ops[0], cpu.flags_shr(a, n, arithmetic=True))
    elif opcode == Opcode.IMUL:
        a = read_operand(cpu, mem, ops[0])
        b = read_operand(cpu, mem, ops[1])
        write_operand(cpu, mem, ops[0], cpu.flags_imul(a, b))
    elif opcode == Opcode.DIV:
        divisor = read_operand(cpu, mem, ops[0])
        if divisor == 0:
            raise MachineFault("divide by zero")
        dividend = cpu.regs[0]  # eax (RIO-32 simplification: not edx:eax)
        q, r = divmod(dividend, divisor)
        cpu.regs[0] = q & _MASK32
        cpu.regs[2] = r & _MASK32
        cpu.flags_logic(q & _MASK32)  # deterministic defined flags
    elif opcode == Opcode.PUSH:
        value = read_operand(cpu, mem, ops[0])
        cpu.regs[4] = (cpu.regs[4] - 4) & _MASK32
        mem.write_u32(cpu.regs[4], value)
    elif opcode == Opcode.POP:
        value = mem.read_u32(cpu.regs[4])
        cpu.regs[4] = (cpu.regs[4] + 4) & _MASK32
        write_operand(cpu, mem, ops[0], value)
    elif opcode == Opcode.XCHG:
        a = read_operand(cpu, mem, ops[0])
        b = read_operand(cpu, mem, ops[1])
        write_operand(cpu, mem, ops[0], b)
        write_operand(cpu, mem, ops[1], a)
    elif opcode == Opcode.FLD or opcode == Opcode.FST:
        write_operand(cpu, mem, ops[0], read_operand(cpu, mem, ops[1]))
    elif opcode == Opcode.FADD:
        a = read_operand(cpu, mem, ops[0])
        b = read_operand(cpu, mem, ops[1])
        write_operand(cpu, mem, ops[0], (a + b) & _MASK32)
    elif opcode == Opcode.FSUB:
        a = read_operand(cpu, mem, ops[0])
        b = read_operand(cpu, mem, ops[1])
        write_operand(cpu, mem, ops[0], (a - b) & _MASK32)
    elif opcode == Opcode.FMUL:
        a = _signed(read_operand(cpu, mem, ops[0]))
        b = _signed(read_operand(cpu, mem, ops[1]))
        write_operand(cpu, mem, ops[0], (a * b) & _MASK32)
    elif opcode == Opcode.FDIV:
        b = _signed(read_operand(cpu, mem, ops[1]))
        if b == 0:
            raise MachineFault("fdiv by zero")
        a = _signed(read_operand(cpu, mem, ops[0]))
        q = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            q = -q
        write_operand(cpu, mem, ops[0], q & _MASK32)
    elif opcode == Opcode.NOP or opcode == Opcode.LABEL:
        pass
    elif opcode == Opcode.SYSCALL:
        system.syscall(cpu)
    else:
        raise MachineFault("execute_noncti cannot execute %r" % (opcode,))


# --------------------------------------------------------------------------
# Closure compilation: the translate-once counterpart of execute_noncti.
#
# ``compile_noncti(opcode, ops, mem, system)`` specializes one decoded
# instruction into a Python closure ``fn(cpu)`` with its operand
# accessors (register index, immediate value, effective-address thunk)
# and flag helpers bound in.  Both executors call these from their hot
# loops, so per-dynamic-instruction work drops from "tuple unpack +
# opcode dispatch + isinstance chains" to a single call.  Semantics are
# bit-identical to execute_noncti by construction; any operand form the
# compiler does not recognize falls back to a closure that simply calls
# execute_noncti.
# --------------------------------------------------------------------------


def compile_ea(op):
    """Compile a MemOperand's effective-address computation: fn(cpu)->addr."""
    base = op.base
    index = op.index
    scale = op.scale
    disp = op.disp
    if base is None and index is None:
        addr = disp & _MASK32
        return lambda cpu: addr
    if index is None:
        if disp == 0:
            return lambda cpu: cpu.regs[base] & _MASK32
        return lambda cpu: (disp + cpu.regs[base]) & _MASK32
    if base is None:
        return lambda cpu: (disp + cpu.regs[index] * scale) & _MASK32
    return lambda cpu: (
        disp + cpu.regs[base] + cpu.regs[index] * scale
    ) & _MASK32


def compile_read(op, mem):
    """Compile an operand read: fn(cpu) -> zero-extended value."""
    if isinstance(op, RegOperand):
        reg = op.reg
        return lambda cpu: cpu.regs[reg]
    if isinstance(op, ImmOperand):
        value = op.value & _MASK32
        return lambda cpu: value
    if isinstance(op, MemOperand):
        ea = compile_ea(op)
        if op.size == 4:
            read = mem.read_u32
        elif op.size == 2:
            read = mem.read_u16
        else:
            read = mem.read_u8
        return lambda cpu: read(ea(cpu))
    return None


def compile_write(op, mem):
    """Compile an operand write: fn(cpu, value)."""
    if isinstance(op, RegOperand):
        reg = op.reg

        def write_reg(cpu, value):
            cpu.regs[reg] = value & _MASK32

        return write_reg
    if isinstance(op, MemOperand):
        ea = compile_ea(op)
        if op.size == 4:
            write = mem.write_u32
        elif op.size == 1:
            write = mem.write_u8
        else:
            return None  # 2-byte stores are not part of RIO-32
        return lambda cpu, value: write(ea(cpu), value)
    return None


def _comp_mov(ops, mem, system):
    src = ops[1]
    dst = ops[0]
    if isinstance(dst, RegOperand):
        d = dst.reg
        if isinstance(src, RegOperand):
            s = src.reg

            def mov_rr(cpu):
                regs = cpu.regs
                regs[d] = regs[s]

            return mov_rr
        if isinstance(src, ImmOperand):
            v = src.value & _MASK32

            def mov_ri(cpu):
                cpu.regs[d] = v

            return mov_ri
        if isinstance(src, MemOperand) and src.size == 4:
            # Load: collapse the read/write thunk composition.
            ea = compile_ea(src)
            read = mem.read_u32

            def mov_rm(cpu):
                cpu.regs[d] = read(ea(cpu))

            return mov_rm
    elif isinstance(dst, MemOperand) and dst.size == 4:
        ea = compile_ea(dst)
        write = mem.write_u32
        if isinstance(src, RegOperand):
            s = src.reg

            def mov_mr(cpu):
                write(ea(cpu), cpu.regs[s])

            return mov_mr
        if isinstance(src, ImmOperand):
            v = src.value & _MASK32

            def mov_mi(cpu):
                write(ea(cpu), v)

            return mov_mi
    r = compile_read(src, mem)
    w = compile_write(dst, mem)
    if r is None or w is None:
        return None
    return lambda cpu: w(cpu, r(cpu))


def _comp_movb_store(ops, mem, system):
    r = compile_read(ops[1], mem)
    w = compile_write(ops[0], mem)
    if r is None or w is None:
        return None
    return lambda cpu: w(cpu, r(cpu) & 0xFF)


def _comp_movsx(ops, mem, system):
    src = ops[1]
    if not isinstance(src, MemOperand):
        return None
    r = compile_read(src, mem)
    w = compile_write(ops[0], mem)
    if r is None or w is None:
        return None
    sign_bit = 1 << (src.size * 8 - 1)
    return lambda cpu: w(cpu, ((r(cpu) ^ sign_bit) - sign_bit) & _MASK32)


def _comp_add(ops, mem, system):
    dst = ops[0]
    r1 = compile_read(ops[1], mem)
    if r1 is None:
        return None
    if isinstance(dst, RegOperand):
        d = dst.reg

        def add_reg(cpu):
            regs = cpu.regs
            regs[d] = cpu.flags_add(regs[d], r1(cpu))

        return add_reg
    r0 = compile_read(dst, mem)
    w = compile_write(dst, mem)
    if r0 is None or w is None:
        return None
    return lambda cpu: w(cpu, cpu.flags_add(r0(cpu), r1(cpu)))


def _comp_sub(ops, mem, system):
    dst = ops[0]
    r1 = compile_read(ops[1], mem)
    if r1 is None:
        return None
    if isinstance(dst, RegOperand):
        d = dst.reg

        def sub_reg(cpu):
            regs = cpu.regs
            regs[d] = cpu.flags_sub(regs[d], r1(cpu))

        return sub_reg
    r0 = compile_read(dst, mem)
    w = compile_write(dst, mem)
    if r0 is None or w is None:
        return None
    return lambda cpu: w(cpu, cpu.flags_sub(r0(cpu), r1(cpu)))


def _comp_cmp(ops, mem, system):
    r0 = compile_read(ops[0], mem)
    r1 = compile_read(ops[1], mem)
    if r0 is None or r1 is None:
        return None
    return lambda cpu: cpu.flags_sub(r0(cpu), r1(cpu))


def _comp_test(ops, mem, system):
    r0 = compile_read(ops[0], mem)
    r1 = compile_read(ops[1], mem)
    if r0 is None or r1 is None:
        return None
    return lambda cpu: cpu.flags_logic(r0(cpu) & r1(cpu))


def _comp_inc(ops, mem, system):
    dst = ops[0]
    if isinstance(dst, RegOperand):
        d = dst.reg

        def inc_reg(cpu):
            regs = cpu.regs
            regs[d] = cpu.flags_inc(regs[d])

        return inc_reg
    r = compile_read(dst, mem)
    w = compile_write(dst, mem)
    if r is None or w is None:
        return None
    return lambda cpu: w(cpu, cpu.flags_inc(r(cpu)))


def _comp_dec(ops, mem, system):
    dst = ops[0]
    if isinstance(dst, RegOperand):
        d = dst.reg

        def dec_reg(cpu):
            regs = cpu.regs
            regs[d] = cpu.flags_dec(regs[d])

        return dec_reg
    r = compile_read(dst, mem)
    w = compile_write(dst, mem)
    if r is None or w is None:
        return None
    return lambda cpu: w(cpu, cpu.flags_dec(r(cpu)))


def _comp_lea(ops, mem, system):
    if not isinstance(ops[0], RegOperand) or not isinstance(ops[1], MemOperand):
        return None
    d = ops[0].reg
    ea = compile_ea(ops[1])

    def lea(cpu):
        cpu.regs[d] = ea(cpu)

    return lea


def _make_logic(pyop):
    def comp(ops, mem, system):
        dst = ops[0]
        r1 = compile_read(ops[1], mem)
        if r1 is None:
            return None
        if isinstance(dst, RegOperand):
            d = dst.reg
            if pyop == "and":

                def logic_reg(cpu):
                    regs = cpu.regs
                    regs[d] = cpu.flags_logic(regs[d] & r1(cpu))

            elif pyop == "or":

                def logic_reg(cpu):
                    regs = cpu.regs
                    regs[d] = cpu.flags_logic(regs[d] | r1(cpu))

            else:

                def logic_reg(cpu):
                    regs = cpu.regs
                    regs[d] = cpu.flags_logic(regs[d] ^ r1(cpu))

            return logic_reg
        r0 = compile_read(dst, mem)
        w = compile_write(dst, mem)
        if r0 is None or w is None:
            return None
        if pyop == "and":
            return lambda cpu: w(cpu, cpu.flags_logic(r0(cpu) & r1(cpu)))
        if pyop == "or":
            return lambda cpu: w(cpu, cpu.flags_logic(r0(cpu) | r1(cpu)))
        return lambda cpu: w(cpu, cpu.flags_logic(r0(cpu) ^ r1(cpu)))

    return comp


def _comp_not(ops, mem, system):
    r = compile_read(ops[0], mem)
    w = compile_write(ops[0], mem)
    if r is None or w is None:
        return None
    return lambda cpu: w(cpu, ~r(cpu) & _MASK32)


def _comp_neg(ops, mem, system):
    r = compile_read(ops[0], mem)
    w = compile_write(ops[0], mem)
    if r is None or w is None:
        return None
    return lambda cpu: w(cpu, cpu.flags_neg(r(cpu)))


def _make_shift(kind):
    def comp(ops, mem, system):
        r0 = compile_read(ops[0], mem)
        r1 = compile_read(ops[1], mem)
        w = compile_write(ops[0], mem)
        if r0 is None or r1 is None or w is None:
            return None
        if kind == "shl":
            return lambda cpu: w(cpu, cpu.flags_shl(r0(cpu), r1(cpu) & 31))
        if kind == "shr":
            return lambda cpu: w(cpu, cpu.flags_shr(r0(cpu), r1(cpu) & 31))
        return lambda cpu: w(
            cpu, cpu.flags_shr(r0(cpu), r1(cpu) & 31, arithmetic=True)
        )

    return comp


def _comp_imul(ops, mem, system):
    r0 = compile_read(ops[0], mem)
    r1 = compile_read(ops[1], mem)
    w = compile_write(ops[0], mem)
    if r0 is None or r1 is None or w is None:
        return None
    return lambda cpu: w(cpu, cpu.flags_imul(r0(cpu), r1(cpu)))


def _comp_div(ops, mem, system):
    r = compile_read(ops[0], mem)
    if r is None:
        return None

    def div(cpu):
        divisor = r(cpu)
        if divisor == 0:
            raise MachineFault("divide by zero")
        regs = cpu.regs
        q, rem = divmod(regs[0], divisor)
        regs[0] = q & _MASK32
        regs[2] = rem & _MASK32
        cpu.flags_logic(q & _MASK32)

    return div


def _comp_push(ops, mem, system):
    r = compile_read(ops[0], mem)
    if r is None:
        return None
    write_u32 = mem.write_u32

    def push(cpu):
        value = r(cpu)  # read before moving esp (push %esp semantics)
        regs = cpu.regs
        sp = (regs[4] - 4) & _MASK32
        regs[4] = sp
        write_u32(sp, value)

    return push


def _comp_pop(ops, mem, system):
    w = compile_write(ops[0], mem)
    if w is None:
        return None
    read_u32 = mem.read_u32

    def pop(cpu):
        regs = cpu.regs
        value = read_u32(regs[4])
        regs[4] = (regs[4] + 4) & _MASK32
        w(cpu, value)

    return pop


def _comp_xchg(ops, mem, system):
    r0 = compile_read(ops[0], mem)
    r1 = compile_read(ops[1], mem)
    w0 = compile_write(ops[0], mem)
    w1 = compile_write(ops[1], mem)
    if r0 is None or r1 is None or w0 is None or w1 is None:
        return None

    def xchg(cpu):
        a = r0(cpu)
        b = r1(cpu)
        w0(cpu, b)
        w1(cpu, a)

    return xchg


def _comp_fadd(ops, mem, system):
    r0 = compile_read(ops[0], mem)
    r1 = compile_read(ops[1], mem)
    w = compile_write(ops[0], mem)
    if r0 is None or r1 is None or w is None:
        return None
    return lambda cpu: w(cpu, (r0(cpu) + r1(cpu)) & _MASK32)


def _comp_fsub(ops, mem, system):
    r0 = compile_read(ops[0], mem)
    r1 = compile_read(ops[1], mem)
    w = compile_write(ops[0], mem)
    if r0 is None or r1 is None or w is None:
        return None
    return lambda cpu: w(cpu, (r0(cpu) - r1(cpu)) & _MASK32)


def _comp_fmul(ops, mem, system):
    r0 = compile_read(ops[0], mem)
    r1 = compile_read(ops[1], mem)
    w = compile_write(ops[0], mem)
    if r0 is None or r1 is None or w is None:
        return None

    def fmul(cpu):
        a = _signed(r0(cpu))
        b = _signed(r1(cpu))
        w(cpu, (a * b) & _MASK32)

    return fmul


def _comp_fdiv(ops, mem, system):
    r0 = compile_read(ops[0], mem)
    r1 = compile_read(ops[1], mem)
    w = compile_write(ops[0], mem)
    if r0 is None or r1 is None or w is None:
        return None

    def fdiv(cpu):
        b = _signed(r1(cpu))
        if b == 0:
            raise MachineFault("fdiv by zero")
        a = _signed(r0(cpu))
        q = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            q = -q
        w(cpu, q & _MASK32)

    return fdiv


def _comp_nop(ops, mem, system):
    return lambda cpu: None


def _comp_syscall(ops, mem, system):
    syscall = system.syscall
    return lambda cpu: syscall(cpu)


_NONCTI_COMPILERS = {
    Opcode.MOV: _comp_mov,
    Opcode.MOVZX: _comp_mov,
    Opcode.MOVSX: _comp_movsx,
    Opcode.MOVB_STORE: _comp_movb_store,
    Opcode.ADD: _comp_add,
    Opcode.SUB: _comp_sub,
    Opcode.CMP: _comp_cmp,
    Opcode.TEST: _comp_test,
    Opcode.INC: _comp_inc,
    Opcode.DEC: _comp_dec,
    Opcode.LEA: _comp_lea,
    Opcode.AND: _make_logic("and"),
    Opcode.OR: _make_logic("or"),
    Opcode.XOR: _make_logic("xor"),
    Opcode.NOT: _comp_not,
    Opcode.NEG: _comp_neg,
    Opcode.SHL: _make_shift("shl"),
    Opcode.SHR: _make_shift("shr"),
    Opcode.SAR: _make_shift("sar"),
    Opcode.IMUL: _comp_imul,
    Opcode.DIV: _comp_div,
    Opcode.PUSH: _comp_push,
    Opcode.POP: _comp_pop,
    Opcode.XCHG: _comp_xchg,
    Opcode.FLD: _comp_mov,
    Opcode.FST: _comp_mov,
    Opcode.FADD: _comp_fadd,
    Opcode.FSUB: _comp_fsub,
    Opcode.FMUL: _comp_fmul,
    Opcode.FDIV: _comp_fdiv,
    Opcode.NOP: _comp_nop,
    Opcode.LABEL: _comp_nop,
    Opcode.SYSCALL: _comp_syscall,
}


def compile_noncti(opcode, ops, mem, system):
    """Compile one non-CTI instruction into a closure ``fn(cpu)``.

    Always returns a callable: unrecognized opcode/operand combinations
    get a fallback closure delegating to :func:`execute_noncti`, so
    behavior (including the exact faults raised) never diverges from
    the interpretive path.
    """
    compiler = _NONCTI_COMPILERS.get(opcode)
    fn = None
    if compiler is not None:
        try:
            fn = compiler(ops, mem, system)
        except Exception:
            fn = None
    if fn is not None:
        return fn
    return lambda cpu: execute_noncti(cpu, mem, system, opcode, ops)
