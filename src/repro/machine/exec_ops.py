"""Execution semantics for non-control-transfer RIO-32 instructions.

Control transfers are *not* handled here: the execution driver (the
native interpreter, or the runtime's fragment executor) owns them,
because resolving a branch needs context the instruction alone lacks
(fall-through address, return-address push, link state).  Everything
else — data movement, arithmetic, stack ops, syscalls — is executed by
:func:`execute_noncti` against a :class:`~repro.machine.cpu.CPU`,
:class:`~repro.machine.memory.Memory` and
:class:`~repro.machine.system.System`.
"""

from repro.isa.opcodes import Opcode
from repro.isa.operands import ImmOperand, MemOperand, RegOperand
from repro.machine.errors import MachineFault

_MASK32 = 0xFFFFFFFF
_SIGN = 0x80000000


def effective_address(cpu, op):
    """Compute the 32-bit effective address of a memory operand."""
    addr = op.disp
    if op.base is not None:
        addr += cpu.regs[op.base]
    if op.index is not None:
        addr += cpu.regs[op.index] * op.scale
    return addr & _MASK32


def read_operand(cpu, mem, op):
    """Read an operand's value (zero-extended for sub-word memory)."""
    if isinstance(op, RegOperand):
        return cpu.regs[op.reg]
    if isinstance(op, ImmOperand):
        return op.value & _MASK32
    if isinstance(op, MemOperand):
        addr = effective_address(cpu, op)
        if op.size == 4:
            return mem.read_u32(addr)
        if op.size == 2:
            return mem.read_u16(addr)
        return mem.read_u8(addr)
    raise MachineFault("cannot read operand %r" % (op,))


def write_operand(cpu, mem, op, value):
    if isinstance(op, RegOperand):
        cpu.regs[op.reg] = value & _MASK32
        return
    if isinstance(op, MemOperand):
        addr = effective_address(cpu, op)
        if op.size == 4:
            mem.write_u32(addr, value)
        elif op.size == 1:
            mem.write_u8(addr, value)
        else:
            raise MachineFault("2-byte stores are not part of RIO-32")
        return
    raise MachineFault("cannot write operand %r" % (op,))


def _sign_extend(value, size):
    bits = size * 8
    sign_bit = 1 << (bits - 1)
    return (value ^ sign_bit) - sign_bit & _MASK32


def _signed(value):
    return value - 0x100000000 if value & _SIGN else value


def execute_noncti(cpu, mem, system, opcode, ops):
    """Execute one non-CTI instruction given its explicit operands."""
    if opcode == Opcode.MOV:
        write_operand(cpu, mem, ops[0], read_operand(cpu, mem, ops[1]))
    elif opcode == Opcode.ADD:
        a = read_operand(cpu, mem, ops[0])
        b = read_operand(cpu, mem, ops[1])
        write_operand(cpu, mem, ops[0], cpu.flags_add(a, b))
    elif opcode == Opcode.SUB:
        a = read_operand(cpu, mem, ops[0])
        b = read_operand(cpu, mem, ops[1])
        write_operand(cpu, mem, ops[0], cpu.flags_sub(a, b))
    elif opcode == Opcode.CMP:
        a = read_operand(cpu, mem, ops[0])
        b = read_operand(cpu, mem, ops[1])
        cpu.flags_sub(a, b)
    elif opcode == Opcode.INC:
        write_operand(
            cpu, mem, ops[0], cpu.flags_inc(read_operand(cpu, mem, ops[0]))
        )
    elif opcode == Opcode.DEC:
        write_operand(
            cpu, mem, ops[0], cpu.flags_dec(read_operand(cpu, mem, ops[0]))
        )
    elif opcode == Opcode.LEA:
        cpu.regs[ops[0].reg] = effective_address(cpu, ops[1])
    elif opcode == Opcode.MOVZX:
        write_operand(cpu, mem, ops[0], read_operand(cpu, mem, ops[1]))
    elif opcode == Opcode.MOVSX:
        raw = read_operand(cpu, mem, ops[1])
        write_operand(cpu, mem, ops[0], _sign_extend(raw, ops[1].size))
    elif opcode == Opcode.MOVB_STORE:
        write_operand(cpu, mem, ops[0], read_operand(cpu, mem, ops[1]) & 0xFF)
    elif opcode == Opcode.AND:
        res = read_operand(cpu, mem, ops[0]) & read_operand(cpu, mem, ops[1])
        write_operand(cpu, mem, ops[0], cpu.flags_logic(res))
    elif opcode == Opcode.OR:
        res = read_operand(cpu, mem, ops[0]) | read_operand(cpu, mem, ops[1])
        write_operand(cpu, mem, ops[0], cpu.flags_logic(res))
    elif opcode == Opcode.XOR:
        res = read_operand(cpu, mem, ops[0]) ^ read_operand(cpu, mem, ops[1])
        write_operand(cpu, mem, ops[0], cpu.flags_logic(res))
    elif opcode == Opcode.TEST:
        cpu.flags_logic(
            read_operand(cpu, mem, ops[0]) & read_operand(cpu, mem, ops[1])
        )
    elif opcode == Opcode.NOT:
        write_operand(
            cpu, mem, ops[0], ~read_operand(cpu, mem, ops[0]) & _MASK32
        )
    elif opcode == Opcode.NEG:
        write_operand(
            cpu, mem, ops[0], cpu.flags_neg(read_operand(cpu, mem, ops[0]))
        )
    elif opcode == Opcode.SHL:
        a = read_operand(cpu, mem, ops[0])
        n = read_operand(cpu, mem, ops[1]) & 31
        write_operand(cpu, mem, ops[0], cpu.flags_shl(a, n))
    elif opcode == Opcode.SHR:
        a = read_operand(cpu, mem, ops[0])
        n = read_operand(cpu, mem, ops[1]) & 31
        write_operand(cpu, mem, ops[0], cpu.flags_shr(a, n))
    elif opcode == Opcode.SAR:
        a = read_operand(cpu, mem, ops[0])
        n = read_operand(cpu, mem, ops[1]) & 31
        write_operand(cpu, mem, ops[0], cpu.flags_shr(a, n, arithmetic=True))
    elif opcode == Opcode.IMUL:
        a = read_operand(cpu, mem, ops[0])
        b = read_operand(cpu, mem, ops[1])
        write_operand(cpu, mem, ops[0], cpu.flags_imul(a, b))
    elif opcode == Opcode.DIV:
        divisor = read_operand(cpu, mem, ops[0])
        if divisor == 0:
            raise MachineFault("divide by zero")
        dividend = cpu.regs[0]  # eax (RIO-32 simplification: not edx:eax)
        q, r = divmod(dividend, divisor)
        cpu.regs[0] = q & _MASK32
        cpu.regs[2] = r & _MASK32
        cpu.flags_logic(q & _MASK32)  # deterministic defined flags
    elif opcode == Opcode.PUSH:
        value = read_operand(cpu, mem, ops[0])
        cpu.regs[4] = (cpu.regs[4] - 4) & _MASK32
        mem.write_u32(cpu.regs[4], value)
    elif opcode == Opcode.POP:
        value = mem.read_u32(cpu.regs[4])
        cpu.regs[4] = (cpu.regs[4] + 4) & _MASK32
        write_operand(cpu, mem, ops[0], value)
    elif opcode == Opcode.XCHG:
        a = read_operand(cpu, mem, ops[0])
        b = read_operand(cpu, mem, ops[1])
        write_operand(cpu, mem, ops[0], b)
        write_operand(cpu, mem, ops[1], a)
    elif opcode == Opcode.FLD or opcode == Opcode.FST:
        write_operand(cpu, mem, ops[0], read_operand(cpu, mem, ops[1]))
    elif opcode == Opcode.FADD:
        a = read_operand(cpu, mem, ops[0])
        b = read_operand(cpu, mem, ops[1])
        write_operand(cpu, mem, ops[0], (a + b) & _MASK32)
    elif opcode == Opcode.FSUB:
        a = read_operand(cpu, mem, ops[0])
        b = read_operand(cpu, mem, ops[1])
        write_operand(cpu, mem, ops[0], (a - b) & _MASK32)
    elif opcode == Opcode.FMUL:
        a = _signed(read_operand(cpu, mem, ops[0]))
        b = _signed(read_operand(cpu, mem, ops[1]))
        write_operand(cpu, mem, ops[0], (a * b) & _MASK32)
    elif opcode == Opcode.FDIV:
        b = _signed(read_operand(cpu, mem, ops[1]))
        if b == 0:
            raise MachineFault("fdiv by zero")
        a = _signed(read_operand(cpu, mem, ops[0]))
        q = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            q = -q
        write_operand(cpu, mem, ops[0], q & _MASK32)
    elif opcode == Opcode.NOP or opcode == Opcode.LABEL:
        pass
    elif opcode == Opcode.SYSCALL:
        system.syscall(cpu)
    else:
        raise MachineFault("execute_noncti cannot execute %r" % (opcode,))
