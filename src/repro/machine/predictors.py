"""Branch predictors of the simulated hardware.

Two deterministic predictors model the effects the paper leans on:

* a **BTB** (branch target buffer) of unlimited capacity that predicts
  each indirect branch site's *last* target — capturing target locality,
  which is exactly what makes the indirect-branch-dispatch client
  profitable;
* a **RAS** (return address stack) of bounded depth — the paper notes
  the Pentium predicts returns well natively, an advantage DynamoRIO
  loses because it translates returns into indirect jumps.
"""


class BranchTargetBuffer:
    """Last-target predictor, keyed by branch site address."""

    def __init__(self):
        self._last = {}

    def predict_and_update(self, site, target):
        """True if the prediction was correct (target unchanged)."""
        hit = self._last.get(site) == target
        self._last[site] = target
        return hit

    def reset(self):
        self._last.clear()


class ReturnAddressStack:
    """Bounded shadow stack of predicted return addresses."""

    def __init__(self, depth=16):
        self.depth = depth
        self._stack = []

    def push(self, return_address):
        self._stack.append(return_address)
        if len(self._stack) > self.depth:
            self._stack.pop(0)

    def pop_and_check(self, actual):
        """True if the return was predicted correctly."""
        if not self._stack:
            return False
        return self._stack.pop() == actual

    def reset(self):
        self._stack.clear()
