"""Machine-level exceptions."""


class MachineError(Exception):
    """Base class for all simulated-machine errors."""


class MachineFault(MachineError):
    """A hardware fault: bad memory access, divide by zero, bad opcode."""


class ProgramExit(Exception):
    """The running program exited (via ``syscall`` exit or ``hlt``).

    Not a :class:`MachineError`: this is the normal way a program ends.
    """

    def __init__(self, code):
        super().__init__("program exited with code %d" % code)
        self.code = code
