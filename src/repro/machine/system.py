"""The minimal OS surface of the RIO-32 machine.

Programs talk to the outside world through the ``syscall`` instruction
with the call number in ``eax``:

====  =========  ============================================
eax   argument   effect
====  =========  ============================================
1     ebx        exit the program with status ``ebx``
2     ebx        write the low byte of ``ebx`` to the output
3     ebx        write ``ebx`` as 4 little-endian output bytes
4     ebx, ecx   spawn a thread at pc=``ebx`` with esp=``ecx``
5     —          exit the calling thread
6     ebx        install the signal handler at address ``ebx``
7     ebx        request a (one-shot) alarm signal after ``ebx``
                 more instructions
====  =========  ============================================

Alarm signals are delivered by the executor at a *safe point* (between
instructions natively; at a fragment boundary under the runtime — the
paper's Section 2 interception requirement: the handler, like all
application code, executes under the code cache).  Delivery pushes a
full *signal frame* (eflags, the seven non-esp GPRs, then the
interrupted pc), since the handler — compiled with the ordinary calling
convention — is free to clobber caller-saved registers that the
interrupted code still needs; ``iret`` unwinds the frame.

The output stream is how every correctness test compares native
execution with execution under the runtime: identical output (and exit
code) is the observable definition of transparency.

Thread syscalls dispatch to executor-provided handlers (the native
interpreter and the runtime each manage their own thread contexts —
the latter with thread-private code caches, the paper's Section 2).
"""

from repro.machine.errors import MachineFault, ProgramExit

SYS_EXIT = 1
SYS_WRITE_BYTE = 2
SYS_WRITE_U32 = 3
SYS_SPAWN = 4
SYS_THREAD_EXIT = 5
SYS_SIGHANDLER = 6
SYS_ALARM = 7


class ThreadExit(Exception):
    """The calling thread ended (not the whole program)."""


class System:
    """Syscall handler and program output buffer."""

    def __init__(self):
        self.output = bytearray()
        self.exit_code = None
        # Set by executors that support threads.
        self.spawn_thread = None
        # Signal state: handler address; alarm as "in N instructions"
        # (converted by the executor to an absolute count at its next
        # safe point).
        self.signal_handler = None
        self.alarm_in = None
        self.alarm_at = None
        # Fast-path guard: True iff alarm_in or alarm_at is set.  The
        # executors test this single flag per safe point instead of the
        # two-field bookkeeping check, and skip conversion/delivery
        # logic entirely for workloads that never arm an alarm.
        self.alarm_active = False
        self.signals_delivered = 0

    def syscall(self, cpu):
        number = cpu.regs[0]  # eax
        arg = cpu.regs[3]  # ebx
        if number == SYS_EXIT:
            self.exit_code = arg
            raise ProgramExit(arg)
        if number == SYS_WRITE_BYTE:
            self.output.append(arg & 0xFF)
            return
        if number == SYS_WRITE_U32:
            self.output += (arg & 0xFFFFFFFF).to_bytes(4, "little")
            return
        if number == SYS_SPAWN:
            if self.spawn_thread is None:
                raise MachineFault("this executor does not support threads")
            self.spawn_thread(entry=cpu.regs[3], stack_pointer=cpu.regs[1])
            return
        if number == SYS_THREAD_EXIT:
            raise ThreadExit()
        if number == SYS_SIGHANDLER:
            self.signal_handler = arg & 0xFFFFFFFF
            return
        if number == SYS_ALARM:
            self.alarm_in = arg & 0xFFFFFFFF
            self.alarm_active = True
            return
        raise MachineFault("unknown syscall %d" % number)

    def convert_alarm(self, current_instructions):
        """Turn a relative alarm request into an absolute deadline."""
        if self.alarm_in is not None:
            self.alarm_at = current_instructions + self.alarm_in
            self.alarm_in = None
            self.alarm_active = True

    def alarm_due(self, current_instructions):
        return self.alarm_at is not None and current_instructions >= self.alarm_at

    def clear_alarm(self):
        self.alarm_at = None
        self.alarm_active = self.alarm_in is not None

    def output_bytes(self):
        return bytes(self.output)


_MASK32 = 0xFFFFFFFF
# Saved in this push order (esp excluded: it is implied by the frame).
_FRAME_REGS = (7, 6, 5, 3, 2, 1, 0)  # edi, esi, ebp, ebx, edx, ecx, eax


def push_signal_frame(cpu, memory, interrupted_pc):
    """Build a signal frame on the application stack.

    Layout (top of stack last): eflags, edi, esi, ebp, ebx, edx, ecx,
    eax, interrupted_pc.  The handler runs with this as its "return
    address" area and unwinds it with ``iret``.
    """
    regs = cpu.regs
    sp = regs[4]
    sp = (sp - 4) & _MASK32
    memory.write_u32(sp, cpu.eflags)
    for reg in _FRAME_REGS:
        sp = (sp - 4) & _MASK32
        memory.write_u32(sp, regs[reg])
    sp = (sp - 4) & _MASK32
    memory.write_u32(sp, interrupted_pc)
    regs[4] = sp


def pop_signal_frame(cpu, memory):
    """Unwind a signal frame (the ``iret`` semantics); returns the
    interrupted pc to resume at."""
    regs = cpu.regs
    sp = regs[4]
    target = memory.read_u32(sp)
    sp = (sp + 4) & _MASK32
    for reg in reversed(_FRAME_REGS):
        regs[reg] = memory.read_u32(sp)
        sp = (sp + 4) & _MASK32
    cpu.eflags = memory.read_u32(sp)
    sp = (sp + 4) & _MASK32
    regs[4] = sp
    return target
