"""CPU state and IA-32-faithful eflags arithmetic.

The CPU holds the eight GPRs, the eflags register, and the program
counter.  Flag computation follows IA-32 semantics for the six
arithmetic flags; where IA-32 leaves a flag *undefined* (shifts by more
than one, multiplies), RIO-32 defines a deterministic value so that
native and translated executions are exactly comparable — the property
every transparency test in this repository relies on.
"""

from repro.isa.eflags import CF, PF, AF, ZF, SF, OF
from repro.isa.opcodes import Opcode

_MASK32 = 0xFFFFFFFF
_SIGN = 0x80000000

# Parity lookup for the low result byte (PF set when even number of bits).
_PARITY = bytes(
    1 if bin(i).count("1") % 2 == 0 else 0 for i in range(256)
)

_ALL_FLAGS = CF | PF | AF | ZF | SF | OF


class CPU:
    """Architectural register state."""

    __slots__ = ("regs", "eflags", "pc")

    def __init__(self):
        self.regs = [0] * 8
        self.eflags = 0
        self.pc = 0

    def copy(self):
        c = CPU()
        c.regs = list(self.regs)
        c.eflags = self.eflags
        c.pc = self.pc
        return c

    def state_tuple(self):
        """Hashable snapshot for state-equality assertions in tests."""
        return (tuple(self.regs), self.eflags, self.pc)

    def get_flag(self, bit):
        return bool(self.eflags & bit)

    def set_flag(self, bit, value):
        if value:
            self.eflags |= bit
        else:
            self.eflags &= ~bit

    # -------------------------------------------------------- flag updates

    def _set_result_flags(self, res):
        """ZF, SF, PF from a 32-bit result; returns res for chaining."""
        f = self.eflags & ~(ZF | SF | PF)
        if res == 0:
            f |= ZF
        if res & _SIGN:
            f |= SF
        if _PARITY[res & 0xFF]:
            f |= PF
        self.eflags = f
        return res

    def flags_add(self, a, b, carry_in=0):
        """Full add with IA-32 flags; returns the 32-bit result."""
        full = a + b + carry_in
        res = full & _MASK32
        f = self.eflags & ~_ALL_FLAGS
        if full > _MASK32:
            f |= CF
        if (~(a ^ b) & (a ^ res)) & _SIGN:
            f |= OF
        if (a ^ b ^ res) & 0x10:
            f |= AF
        if res == 0:
            f |= ZF
        if res & _SIGN:
            f |= SF
        if _PARITY[res & 0xFF]:
            f |= PF
        self.eflags = f
        return res

    def flags_sub(self, a, b, update_cf=True):
        """Subtract with IA-32 flags; ``update_cf=False`` models dec."""
        res = (a - b) & _MASK32
        keep = self.eflags & ~_ALL_FLAGS
        if not update_cf:
            keep |= self.eflags & CF
        f = keep
        if update_cf and a < b:
            f |= CF
        if ((a ^ b) & (a ^ res)) & _SIGN:
            f |= OF
        if (a ^ b ^ res) & 0x10:
            f |= AF
        if res == 0:
            f |= ZF
        if res & _SIGN:
            f |= SF
        if _PARITY[res & 0xFF]:
            f |= PF
        self.eflags = f
        return res

    def flags_inc(self, a):
        """inc: add 1 leaving CF untouched (the paper's Section 4.2 hazard)."""
        res = (a + 1) & _MASK32
        f = (self.eflags & ~_ALL_FLAGS) | (self.eflags & CF)
        if (~(a ^ 1) & (a ^ res)) & _SIGN:
            f |= OF
        if (a ^ 1 ^ res) & 0x10:
            f |= AF
        if res == 0:
            f |= ZF
        if res & _SIGN:
            f |= SF
        if _PARITY[res & 0xFF]:
            f |= PF
        self.eflags = f
        return res

    def flags_dec(self, a):
        return self.flags_sub(a, 1, update_cf=False)

    def flags_logic(self, res):
        """and/or/xor/test: CF=OF=AF=0, ZF/SF/PF from result."""
        f = self.eflags & ~_ALL_FLAGS
        if res == 0:
            f |= ZF
        if res & _SIGN:
            f |= SF
        if _PARITY[res & 0xFF]:
            f |= PF
        self.eflags = f
        return res

    def flags_shl(self, a, n):
        n &= 31
        if n == 0:
            return a  # flags unchanged, like IA-32
        res = (a << n) & _MASK32
        cf = (a >> (32 - n)) & 1
        f = self.eflags & ~_ALL_FLAGS
        if cf:
            f |= CF
        # OF defined only for n == 1 on IA-32; RIO-32 defines it always.
        if bool(res & _SIGN) != bool(cf):
            f |= OF
        if res == 0:
            f |= ZF
        if res & _SIGN:
            f |= SF
        if _PARITY[res & 0xFF]:
            f |= PF
        self.eflags = f
        return res

    def flags_shr(self, a, n, arithmetic=False):
        n &= 31
        if n == 0:
            return a
        cf = (a >> (n - 1)) & 1
        if arithmetic and a & _SIGN:
            res = ((a - (1 << 32)) >> n) & _MASK32
        else:
            res = a >> n
        f = self.eflags & ~_ALL_FLAGS
        if cf:
            f |= CF
        if not arithmetic and n == 1 and a & _SIGN:
            f |= OF
        if res == 0:
            f |= ZF
        if res & _SIGN:
            f |= SF
        if _PARITY[res & 0xFF]:
            f |= PF
        self.eflags = f
        return res

    def flags_neg(self, a):
        res = (-a) & _MASK32
        f = self.eflags & ~_ALL_FLAGS
        if a != 0:
            f |= CF
        if a == _SIGN:
            f |= OF
        if (0 ^ a ^ res) & 0x10:
            f |= AF
        if res == 0:
            f |= ZF
        if res & _SIGN:
            f |= SF
        if _PARITY[res & 0xFF]:
            f |= PF
        self.eflags = f
        return res

    def flags_imul(self, a, b):
        sa = a - (1 << 32) if a & _SIGN else a
        sb = b - (1 << 32) if b & _SIGN else b
        full = sa * sb
        res = full & _MASK32
        sres = res - (1 << 32) if res & _SIGN else res
        f = self.eflags & ~_ALL_FLAGS
        if full != sres:  # result did not fit: CF and OF set
            f |= CF | OF
        if res == 0:
            f |= ZF
        if res & _SIGN:
            f |= SF
        if _PARITY[res & 0xFF]:
            f |= PF
        self.eflags = f
        return res

    # ------------------------------------------------------ branch predicates

    def condition_holds(self, opcode):
        """Evaluate a Jcc condition against current flags."""
        e = self.eflags
        if opcode == Opcode.JZ:
            return bool(e & ZF)
        if opcode == Opcode.JNZ:
            return not e & ZF
        if opcode == Opcode.JB:
            return bool(e & CF)
        if opcode == Opcode.JNB:
            return not e & CF
        if opcode == Opcode.JBE:
            return bool(e & (CF | ZF))
        if opcode == Opcode.JNBE:
            return not e & (CF | ZF)
        if opcode == Opcode.JS:
            return bool(e & SF)
        if opcode == Opcode.JNS:
            return not e & SF
        if opcode == Opcode.JL:
            return bool(e & SF) != bool(e & OF)
        if opcode == Opcode.JNL:
            return bool(e & SF) == bool(e & OF)
        if opcode == Opcode.JLE:
            return bool(e & ZF) or bool(e & SF) != bool(e & OF)
        if opcode == Opcode.JNLE:
            return not e & ZF and bool(e & SF) == bool(e & OF)
        if opcode == Opcode.JO:
            return bool(e & OF)
        if opcode == Opcode.JNO:
            return not e & OF
        raise ValueError("not a conditional branch: %r" % (opcode,))


# Precompiled Jcc predicates over an eflags value, used by the closure-
# compiled executors so hot branches skip the condition_holds dispatch
# chain.  Each returns a truthy/falsy value identical in truth value to
# CPU.condition_holds for the same flags.
_CF_OR_ZF = CF | ZF

_CONDITION_FNS = {
    Opcode.JZ: lambda e: e & ZF,
    Opcode.JNZ: lambda e: not e & ZF,
    Opcode.JB: lambda e: e & CF,
    Opcode.JNB: lambda e: not e & CF,
    Opcode.JBE: lambda e: e & _CF_OR_ZF,
    Opcode.JNBE: lambda e: not e & _CF_OR_ZF,
    Opcode.JS: lambda e: e & SF,
    Opcode.JNS: lambda e: not e & SF,
    Opcode.JL: lambda e: bool(e & SF) != bool(e & OF),
    Opcode.JNL: lambda e: bool(e & SF) == bool(e & OF),
    Opcode.JLE: lambda e: bool(e & ZF) or bool(e & SF) != bool(e & OF),
    Opcode.JNLE: lambda e: not e & ZF and bool(e & SF) == bool(e & OF),
    Opcode.JO: lambda e: e & OF,
    Opcode.JNO: lambda e: not e & OF,
}


def compile_condition(opcode):
    """Return a predicate ``fn(eflags) -> truthy`` for a Jcc opcode."""
    try:
        return _CONDITION_FNS[opcode]
    except KeyError:
        raise ValueError("not a conditional branch: %r" % (opcode,))
