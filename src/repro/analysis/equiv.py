"""drequiv: symbolic translation-equivalence of fragments and traces.

The back half of the checker built on :mod:`repro.analysis.symexec`:
given an emitted fragment's InstrList and the tags of the application
blocks it was translated from, prove that the fragment computes the same
function of the initial machine state — registers, the six flags, and
the sequence of application memory stores — at every *observable* point,
modulo the transformations the runtime and its clients are sanctioned to
make.

The two sides are walked independently with one carried symbolic state
each:

* the **source reference** decodes every block fresh from application
  memory (:func:`~repro.core.bb_builder.build_basic_block`) and flattens
  it into an ordered list of *expectations* — one per block terminal
  (conditional exit, jump, call, indirect branch) or block-ending event
  (syscall, hlt);
* the **fragment side** flattens the emitted instruction stream into an
  ordered list of *observables* at the same construct kinds.

Matching the two lists in order sidesteps the hardest part of trace
verification — stitched segment boundaries are invisible in the
fragment (elided jumps emit no code at all) — because an elided jump is
simply an expectation that consumes zero observables.

Sanctioned differences:

* meta-marked client instructions and clean-call labels are erased
  (their safety is the structural rules' charge, not drequiv's);
* a mid-trace conditional may appear inverted (opposite jcc targeting
  the old fall-through) when the taken side stays on the trace;
* a mid-trace direct jump to the next segment is elided;
* calls and indirect branches inlined into a trace push/pop exactly as
  their exit forms do and are compared as such;
* a return deleted by the custom-traces client must leave behind the
  stack-pointer adjustment tagged ``note["ret_removed"]``; the target
  equality is checked symbolically, but the client's claim that the
  popped target equals the trace continuation is *assumed* (reported as
  a warning — it is a dynamic property no static check can prove);
* flags are not compared at a ``syscall`` boundary: RIO-32 declares the
  kernel clobbers all six, so both sides re-seed them with matching
  fresh symbols afterwards.

Everything else — a non-meta branch to an internal label, client code
that rewrites an application instruction to compute a different
expression, a store log that diverges — is an equivalence error.
"""

from repro.analysis.symexec import (
    FLAG_ORDER,
    SymexecError,
    SymState,
    const,
    render,
    step,
)
from repro.core.bb_builder import build_basic_block
from repro.ir.instr import LabelRef
from repro.ir.instrlist import copy_instructions
from repro.isa.opcodes import JCC_OPPOSITE, Opcode
from repro.isa.registers import REG_NAMES, Reg
from repro.machine.errors import MachineFault

ERROR = "error"
WARNING = "warning"


class Problem:
    """One equivalence finding; ``instr`` anchors fragment-side findings
    to an instruction of the verified list for diagnostics."""

    __slots__ = ("severity", "message", "instr")

    def __init__(self, severity, message, instr=None):
        self.severity = severity
        self.message = message
        self.instr = instr

    def __repr__(self):
        return "<Problem %s: %s>" % (self.severity, self.message)


class _Site:
    """One expectation or observable."""

    __slots__ = (
        "kind",  # "cond" | "jmp" | "call" | "ind" | "syscall" | "halt"
        "jcc",
        "target",  # pc (int) for direct kinds, expression for "ind"
        "fall",  # cond expectations: fall-through pc
        "ret_addr",  # call kinds: pushed return address (int)
        "inline",  # fragment call/ind: stays on trace
        "assumed",  # fragment ind synthesized from a removed return
        "last",  # source: belongs to the final segment
        "next",  # source: tag of the following segment (or None)
        "tag",  # source: tag of the segment this came from
        "snap",  # SymState.snapshot() at this point
        "instr",  # fragment: originating instruction (pre-copy)
    )

    def __init__(self, kind, **fields):
        self.kind = kind
        for name in self.__slots__[1:]:
            setattr(self, name, fields.get(name))


def _flatten(ilist, originals=None):
    """Expand Level-0 bundles; yields ``(instr, original)`` pairs where
    ``original`` is the pre-copy instruction to anchor diagnostics to
    (the bundle itself for split instructions), or None."""
    out = []
    nodes = list(ilist)
    if originals is None:
        originals = nodes
    for instr, orig in zip(nodes, originals):
        if instr.is_bundle:
            for piece in instr.split():
                out.append((piece, orig))
        else:
            out.append((instr, orig))
    return out


def _return_address(instr):
    note = instr.note
    if isinstance(note, dict) and note.get("return_addr") is not None:
        return note["return_addr"]
    if instr.raw_bits_valid() and instr.raw_pc is not None:
        return instr.raw_pc + len(instr.raw)
    return None


# ---------------------------------------------------------------- source


def _walk_source(source_tags, memory, max_bb_instrs):
    """Build the expectation list by symbolically executing the pristine
    blocks; returns (expectations, state, problems)."""
    state = SymState()
    expects = []
    problems = []
    n = len(source_tags)
    for i, tag in enumerate(source_tags):
        last = i == n - 1
        nxt = None if last else source_tags[i + 1]
        try:
            ilist = build_basic_block(memory, tag, max_instrs=max_bb_instrs)
        except MachineFault as exc:
            problems.append(
                Problem(
                    ERROR,
                    "cannot rebuild source block 0x%x: %s" % (tag, exc),
                )
            )
            return expects, state, problems
        pending_cond = None
        for instr, _orig in _flatten(ilist):
            opcode = instr.opcode
            if instr.is_label():
                continue
            if not instr.is_cti():
                if opcode == Opcode.SYSCALL:
                    expects.append(
                        _Site("syscall", snap=state.snapshot(), tag=tag, last=last)
                    )
                    state.syscall_havoc()
                elif opcode == Opcode.HALT:
                    expects.append(
                        _Site("halt", snap=state.snapshot(), tag=tag, last=last)
                    )
                else:
                    try:
                        step(state, opcode, instr.explicit_operands())
                    except SymexecError as exc:
                        problems.append(
                            Problem(
                                ERROR,
                                "source block 0x%x: %s" % (tag, exc),
                            )
                        )
                        return expects, state, problems
                continue

            # Block terminals.
            if instr.is_cond_branch():
                pending_cond = (opcode, instr.target.pc)
                continue
            if opcode == Opcode.JMP:
                target = instr.target.pc
                if pending_cond is not None:
                    jcc, taken = pending_cond
                    pending_cond = None
                    if last:
                        expects.append(
                            _Site(
                                "cond", jcc=jcc, target=taken, fall=target,
                                last=True, next=None, tag=tag,
                                snap=state.snapshot(),
                            )
                        )
                        expects.append(
                            _Site(
                                "jmp", target=target, last=True, next=None,
                                tag=tag, snap=state.snapshot(),
                            )
                        )
                    else:
                        expects.append(
                            _Site(
                                "cond", jcc=jcc, target=taken, fall=target,
                                last=False, next=nxt, tag=tag,
                                snap=state.snapshot(),
                            )
                        )
                else:
                    expects.append(
                        _Site(
                            "jmp", target=target, last=last, next=nxt,
                            tag=tag, snap=state.snapshot(),
                        )
                    )
                continue
            if opcode == Opcode.CALL:
                ret_addr = _return_address(instr)
                state.push(const(ret_addr))
                expects.append(
                    _Site(
                        "call", target=instr.target.pc, ret_addr=ret_addr,
                        last=last, next=nxt, tag=tag, snap=state.snapshot(),
                    )
                )
                continue
            # Indirect terminal: ret / iret / jmp* / call*.
            if instr.is_ret():
                texpr = state.pop_value()
            elif opcode == Opcode.IRET:
                texpr = state.pop_signal_frame()
            else:
                texpr = state.read_operand(instr.target)
                if instr.is_call():
                    state.push(const(_return_address(instr)))
            expects.append(
                _Site(
                    "ind", target=texpr, last=last, next=nxt, tag=tag,
                    snap=state.snapshot(),
                )
            )
    return expects, state, problems


# -------------------------------------------------------------- fragment


def _is_meta(instr):
    return bool(instr.is_meta)


def _note(instr, key):
    note = instr.note
    if isinstance(note, dict):
        return note.get(key)
    return None


def _walk_fragment(ilist, nodes):
    """Build the observable list from the emitted stream; returns
    (observables, state, problems, aborted)."""
    state = SymState()
    observables = []
    problems = []
    flat = _flatten(copy_instructions(ilist), originals=nodes)
    # Positions of labels within the flattened copy, for meta-branch
    # span validation.
    label_pos = {}
    for pos, (instr, _orig) in enumerate(flat):
        if not instr.is_bundle and instr.is_label():
            label_pos[id(instr)] = pos

    for pos, (instr, orig) in enumerate(flat):
        if instr.is_label():
            continue
        if _is_meta(instr):
            if instr.is_cti():
                target = instr.target
                if not isinstance(target, LabelRef):
                    problems.append(
                        Problem(
                            ERROR,
                            "meta control transfer leaves the fragment; "
                            "drequiv cannot erase it",
                            instr=orig,
                        )
                    )
                    return observables, state, problems, True
                span_end = label_pos.get(id(target.label))
                if span_end is None or span_end <= pos:
                    # Linearity's problem; nothing to verify semantically.
                    continue
                for j in range(pos + 1, span_end):
                    inner = flat[j][0]
                    if not inner.is_label() and not _is_meta(inner):
                        problems.append(
                            Problem(
                                ERROR,
                                "meta branch spans application "
                                "instructions; their execution becomes "
                                "conditional and cannot be verified",
                                instr=orig,
                            )
                        )
                        return observables, state, problems, True
            continue

        if _note(instr, "ret_removed") is not None:
            # The custom-traces client deleted an inlined return and left
            # the stack adjustment behind: synthesize the indirect
            # observable the return would have produced.  The popped
            # target is compared symbolically; that it equals the trace
            # continuation is the client's (unprovable) claim.
            texpr = state.load(state.regs[Reg.ESP], 4)
            try:
                step(state, instr.opcode, instr.explicit_operands())
            except SymexecError as exc:
                problems.append(Problem(ERROR, str(exc), instr=orig))
                return observables, state, problems, True
            observables.append(
                _Site(
                    "ind", target=texpr, inline=True, assumed=True,
                    snap=state.snapshot(), instr=orig,
                )
            )
            continue

        if not instr.is_cti():
            opcode = instr.opcode
            if opcode == Opcode.SYSCALL:
                observables.append(
                    _Site("syscall", snap=state.snapshot(), instr=orig)
                )
                state.syscall_havoc()
            elif opcode == Opcode.HALT:
                observables.append(
                    _Site("halt", snap=state.snapshot(), instr=orig)
                )
            else:
                try:
                    step(state, opcode, instr.explicit_operands())
                except SymexecError as exc:
                    problems.append(Problem(ERROR, str(exc), instr=orig))
                    return observables, state, problems, True
            continue

        # Non-meta control transfer.
        target = instr.target
        if isinstance(target, LabelRef):
            problems.append(
                Problem(
                    ERROR,
                    "non-meta control flow to an internal label: the "
                    "application never branched here; fragment is not a "
                    "translation of its source blocks",
                    instr=orig,
                )
            )
            return observables, state, problems, True
        opcode = instr.opcode
        if instr.is_cond_branch():
            observables.append(
                _Site(
                    "cond", jcc=opcode, target=target.pc,
                    snap=state.snapshot(), instr=orig,
                )
            )
            continue
        if opcode == Opcode.JMP:
            observables.append(
                _Site(
                    "jmp", target=target.pc, snap=state.snapshot(), instr=orig
                )
            )
            continue
        if opcode == Opcode.CALL:
            ret_addr = _return_address(instr)
            if ret_addr is None:
                problems.append(
                    Problem(ERROR, "call without a return address", instr=orig)
                )
                return observables, state, problems, True
            state.push(const(ret_addr))
            observables.append(
                _Site(
                    "call", target=target.pc, ret_addr=ret_addr,
                    inline=bool(_note(instr, "inline")),
                    snap=state.snapshot(), instr=orig,
                )
            )
            continue
        # Indirect.
        if instr.is_ret():
            texpr = state.pop_value()
        elif opcode == Opcode.IRET:
            texpr = state.pop_signal_frame()
        else:
            texpr = state.read_operand(target)
            if instr.is_call():
                ret_addr = _return_address(instr)
                if ret_addr is None:
                    problems.append(
                        Problem(
                            ERROR, "call without a return address", instr=orig
                        )
                    )
                    return observables, state, problems, True
                state.push(const(ret_addr))
        observables.append(
            _Site(
                "ind", target=texpr,
                inline=_note(instr, "inline_target") is not None,
                snap=state.snapshot(), instr=orig,
            )
        )
    return observables, state, problems, False


# --------------------------------------------------------------- matching


def _compare_states(exp, ob, src_stores, frag_stores, where, compare_flags=True):
    """Diff two snapshots; returns a list of mismatch strings."""
    diffs = []
    se, so = exp.snap, ob.snap
    for r in range(8):
        a = so["regs"][r]
        b = se["regs"][r]
        if a != b:
            diffs.append(
                "%s: reg %s differs: fragment=%s source=%s"
                % (where, REG_NAMES[Reg(r)], render(a), render(b))
            )
    if compare_flags:
        for name in FLAG_ORDER:
            a = so["flags"][name]
            b = se["flags"][name]
            if a != b:
                diffs.append(
                    "%s: flag %s differs: fragment=%s source=%s"
                    % (where, name, render(a), render(b))
                )
    if so["stores"] != se["stores"]:
        diffs.append(
            "%s: store count differs: fragment logged %d, source %d"
            % (where, so["stores"], se["stores"])
        )
    else:
        for k in range(so["stores"]):
            fa, fs, fv = frag_stores[k]
            sa, ss, sv = src_stores[k]
            if fa != sa or fs != ss or fv != sv:
                diffs.append(
                    "%s: store #%d differs: fragment [%s:%d]=%s, "
                    "source [%s:%d]=%s"
                    % (
                        where, k, render(fa), fs, render(fv),
                        render(sa), ss, render(sv),
                    )
                )
    return diffs


def _describe(exp, index):
    names = {
        "cond": "conditional exit",
        "jmp": "jump exit",
        "call": "call",
        "ind": "indirect branch",
        "syscall": "syscall",
        "halt": "hlt",
    }
    return "%s #%d (source block 0x%x)" % (names[exp.kind], index, exp.tag)


def _match(expects, observables, src_state, frag_state):
    problems = []
    src_stores = src_state.stores
    frag_stores = frag_state.stores
    oi = 0

    def fail(message, instr=None):
        problems.append(Problem(ERROR, message, instr=instr))

    for index, exp in enumerate(expects):
        where = _describe(exp, index)

        if exp.kind == "jmp" and not exp.last:
            # Mid-trace direct jump: stitched out when it targets the
            # next segment — an expectation consuming zero observables.
            if exp.target != exp.next:
                fail(
                    "%s: recorded continuation 0x%x does not match jump "
                    "target 0x%x" % (where, exp.next, exp.target)
                )
                return problems
            if (
                oi < len(observables)
                and observables[oi].kind == "jmp"
                and observables[oi].target == exp.target
            ):
                ob = observables[oi]
                oi += 1
                problems.extend(
                    p_to_problems(
                        _compare_states(exp, ob, src_stores, frag_stores, where),
                        ob,
                    )
                )
            continue

        if oi >= len(observables):
            fail(
                "fragment ends before its source: no code matches %s" % where
            )
            return problems
        ob = observables[oi]
        oi += 1

        if exp.kind in ("syscall", "halt"):
            if ob.kind != exp.kind:
                fail(
                    "%s: fragment has %s here instead" % (where, ob.kind),
                    instr=ob.instr,
                )
                return problems
            # Flags are contract-undefined across a syscall and
            # unobservable at hlt; compare registers and memory only.
            problems.extend(
                p_to_problems(
                    _compare_states(
                        exp, ob, src_stores, frag_stores, where,
                        compare_flags=False,
                    ),
                    ob,
                )
            )
            continue

        if exp.kind == "cond":
            if ob.kind != exp.kind:
                fail(
                    "%s: fragment has a %s here instead" % (where, ob.kind),
                    instr=ob.instr,
                )
                return problems
            straight = ob.jcc == exp.jcc and ob.target == exp.target
            inverted = (
                not exp.last
                and ob.jcc == JCC_OPPOSITE.get(exp.jcc)
                and ob.target == exp.fall
                and exp.target == exp.next
            )
            if straight and not exp.last and exp.fall != exp.next:
                fail(
                    "%s: branch kept but fall-through 0x%x is not the "
                    "recorded continuation 0x%x"
                    % (where, exp.fall, exp.next),
                    instr=ob.instr,
                )
                return problems
            if not straight and not inverted:
                fail(
                    "%s: expected %s -> 0x%x%s, fragment has %s -> 0x%x"
                    % (
                        where, exp.jcc.name.lower(), exp.target,
                        (
                            " (or inverted %s -> 0x%x)"
                            % (
                                JCC_OPPOSITE[exp.jcc].name.lower(), exp.fall
                            )
                            if not exp.last
                            else ""
                        ),
                        ob.jcc.name.lower(), ob.target,
                    ),
                    instr=ob.instr,
                )
                return problems
            problems.extend(
                p_to_problems(
                    _compare_states(exp, ob, src_stores, frag_stores, where),
                    ob,
                )
            )
            continue

        if exp.kind == "jmp":  # last segment
            if ob.kind != "jmp" or ob.target != exp.target:
                fail(
                    "%s: expected jmp -> 0x%x, fragment has %s"
                    % (
                        where, exp.target,
                        "%s -> %s" % (ob.kind, getattr(ob, "target", "?")),
                    ),
                    instr=ob.instr,
                )
                return problems
            problems.extend(
                p_to_problems(
                    _compare_states(exp, ob, src_stores, frag_stores, where),
                    ob,
                )
            )
            continue

        if exp.kind == "call":
            if ob.kind != "call" or ob.target != exp.target:
                fail(
                    "%s: expected call -> 0x%x, fragment has %s"
                    % (where, exp.target, ob.kind),
                    instr=ob.instr,
                )
                return problems
            if ob.ret_addr != exp.ret_addr:
                fail(
                    "%s: return address differs: fragment pushes 0x%x, "
                    "source 0x%x" % (where, ob.ret_addr, exp.ret_addr),
                    instr=ob.instr,
                )
                return problems
            if not exp.last and not ob.inline:
                fail(
                    "%s: mid-trace call was not inlined" % where,
                    instr=ob.instr,
                )
                return problems
            problems.extend(
                p_to_problems(
                    _compare_states(exp, ob, src_stores, frag_stores, where),
                    ob,
                )
            )
            continue

        if exp.kind == "ind":
            if ob.kind != "ind":
                fail(
                    "%s: fragment has a %s here instead" % (where, ob.kind),
                    instr=ob.instr,
                )
                return problems
            if ob.target != exp.target:
                fail(
                    "%s: target expression differs: fragment computes %s, "
                    "source %s"
                    % (where, render(ob.target), render(exp.target)),
                    instr=ob.instr,
                )
                return problems
            if ob.assumed:
                problems.append(
                    Problem(
                        WARNING,
                        "%s: return removed by client; that its target "
                        "0x%x continues the trace is assumed, not proven"
                        % (where, exp.next if exp.next is not None else 0),
                        instr=ob.instr,
                    )
                )
            problems.extend(
                p_to_problems(
                    _compare_states(exp, ob, src_stores, frag_stores, where),
                    ob,
                )
            )
            continue

    if oi < len(observables):
        extra = observables[oi]
        fail(
            "fragment continues past its source: unexpected %s after the "
            "final exit" % extra.kind,
            instr=extra.instr,
        )
    return problems


def p_to_problems(diff_strings, ob):
    return [Problem(ERROR, d, instr=ob.instr) for d in diff_strings]


# ------------------------------------------------------------ entry point


def check_equivalence(ilist, source_tags, memory, max_bb_instrs=256, nodes=None):
    """Compare an emitted fragment against its source blocks.

    ``ilist`` is the (pre-lowering) instruction list headed for the
    cache; it is copied, never mutated.  ``source_tags`` is the ordered
    tuple of application block tags (one for a basic block, the stitched
    sequence for a trace).  ``memory`` is the application memory the
    reference blocks are rebuilt from.  Returns a list of
    :class:`Problem`.
    """
    if not source_tags:
        return [Problem(ERROR, "fragment has no source tags to verify against")]
    if nodes is None:
        nodes = list(ilist)
    expects, src_state, src_problems = _walk_source(
        tuple(source_tags), memory, max_bb_instrs
    )
    if src_problems:
        return src_problems
    observables, frag_state, frag_problems, aborted = _walk_fragment(
        ilist, nodes
    )
    if aborted:
        return frag_problems
    return frag_problems + _match(expects, observables, src_state, frag_state)
