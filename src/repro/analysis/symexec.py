"""Symbolic small-step evaluation of RIO-32 instruction sequences.

drequiv's front half: execute a straight-line run of instructions over a
*symbolic* machine state — registers and flags hold canonicalized
expression trees, memory is an append-only store log with versioned
loads — producing a transfer-function summary that
:mod:`repro.analysis.equiv` compares between an emitted fragment and the
application blocks it was translated from.

Expressions are nested tuples whose first element names the operator::

    ("init", "eax")            initial register value
    ("initf", "CF")            initial flag value
    ("const", 0x10)            32-bit constant
    ("add", a, b)              wrap-around add (const operand kept last)
    ("load", addr, size, v)    memory read; ``v`` versions aliasing stores

plus one node kind per remaining ALU operator and per flag-producing
formula (``("addcf", a, b)`` is the carry of ``a + b`` and so on).
Plain tuple equality is the equivalence test, so canonicalization does
all the real work:

* constants fold through every operator, using the exact arithmetic of
  :mod:`repro.machine.cpu` / :mod:`repro.machine.exec_ops`;
* ``add`` chains flatten and keep their constant last, so ``pop``'s
  ``esp+4`` and a client's ``lea esp, [esp+4]`` are structurally equal;
* subtracting a constant becomes adding its negation;
* ``inc``/``dec`` produce the same flag nodes as ``add r, 1`` /
  ``sub r, 1`` apart from the preserved CF — exactly the identity the
  strength-reduction client relies on;
* a load takes the value of the latest *exactly matching* store
  (store-to-load forwarding), and otherwise a version counting the
  stores that may alias it — mirroring the redundant-load-removal
  client's conservative ``_may_alias`` so its rewrites cancel out.

The evaluator is deliberately *defining* rather than approximating:
every operator the concrete machine defines deterministically gets a
deterministic node here, so two sides agree iff they computed the same
function of the initial state, modulo expression canonicalization.
"""

from repro.isa.opcodes import Opcode
from repro.isa.operands import ImmOperand, MemOperand, RegOperand
from repro.isa.registers import REG_NAMES, Reg

_MASK32 = 0xFFFFFFFF
_SIGN = 0x80000000

FLAG_ORDER = ("CF", "PF", "AF", "ZF", "SF", "OF")

_PARITY = bytes(1 if bin(i).count("1") % 2 == 0 else 0 for i in range(256))


class SymexecError(Exception):
    """The sequence contains something the evaluator cannot model."""


# ------------------------------------------------------------ constructors


def const(v):
    return ("const", v & _MASK32)


CONST_0 = const(0)
CONST_1 = const(1)


def is_const(e):
    return e[0] == "const"


def add(a, b):
    """Canonical wrap-around add: constants fold, chains flatten, the
    constant operand stays last."""
    if is_const(a) and is_const(b):
        return const(a[1] + b[1])
    if is_const(a):
        a, b = b, a
    if is_const(b):
        if b[1] == 0:
            return a
        if a[0] == "add" and is_const(a[2]):
            return add(a[1], const(a[2][1] + b[1]))
        return ("add", a, b)
    if a[0] == "add" and is_const(a[2]):
        # (x + c) + y  ->  (x + y) + c : keeps the constant last.
        return add(add(a[1], b), a[2])
    if b[0] == "add" and is_const(b[2]):
        return add(add(a, b[1]), b[2])
    return ("add", a, b)


def sub(a, b):
    if is_const(b):
        return add(a, const(-b[1]))
    if is_const(a) and is_const(b):
        return const(a[1] - b[1])
    return ("sub", a, b)


def _fold2(op, a, b, fn):
    if is_const(a) and is_const(b):
        return const(fn(a[1], b[1]))
    return (op, a, b)


def band(a, b):
    # Idempotent re-masking collapses: (x & c) & c == x & c.  Byte
    # stores mask twice (once in step(), once in the size-1 store path);
    # canonicalizing keeps the two spellings comparable.
    if (
        isinstance(b, tuple) and b[0] == "const"
        and isinstance(a, tuple) and a[0] == "and"
        and a[2] == b
    ):
        return a
    return _fold2("and", a, b, lambda x, y: x & y)


def bor(a, b):
    return _fold2("or", a, b, lambda x, y: x | y)


def bxor(a, b):
    return _fold2("xor", a, b, lambda x, y: x ^ y)


def bnot(a):
    if is_const(a):
        return const(~a[1])
    return ("not", a)


def neg(a):
    if is_const(a):
        return const(-a[1])
    return ("neg", a)


def imul(a, b):
    # Signed wrap-around product equals the unsigned one mod 2**32.
    return _fold2("imul", a, b, lambda x, y: x * y)


def _shl_v(a, n):
    return (a << (n & 31)) & _MASK32


def _shr_v(a, n):
    return a >> (n & 31)


def _sar_v(a, n):
    n &= 31
    if a & _SIGN:
        return ((a - (1 << 32)) >> n) & _MASK32
    return a >> n


def shift(kind, a, n):
    """kind in ('shl', 'shr', 'sar'); count already masked to 5 bits."""
    if is_const(n) and (n[1] & 31) == 0:
        return a
    fn = {"shl": _shl_v, "shr": _shr_v, "sar": _sar_v}[kind]
    return _fold2(kind, a, n, fn)


def sx(a, size):
    """Sign-extend a ``size``-byte value to 32 bits."""
    if is_const(a):
        bits = size * 8
        sign_bit = 1 << (bits - 1)
        return const((a[1] ^ sign_bit) - sign_bit)
    return ("sx", a, size)


def _sgn(v):
    return v - (1 << 32) if v & _SIGN else v


def udiv_q(a, b):
    if is_const(a) and is_const(b) and b[1] != 0:
        return const(a[1] // b[1])
    return ("udivq", a, b)


def udiv_r(a, b):
    if is_const(a) and is_const(b) and b[1] != 0:
        return const(a[1] % b[1])
    return ("udivr", a, b)


def fdiv(a, b):
    if is_const(a) and is_const(b) and _sgn(b[1]) != 0:
        sa, sb = _sgn(a[1]), _sgn(b[1])
        q = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            q = -q
        return const(q)
    return ("fdiv", a, b)


# ---------------------------------------------------------- flag formulas
#
# One node kind per defined flag formula of repro.machine.cpu; constant
# operands fold with the exact concrete arithmetic.  Flag values are
# const(0)/const(1) when known.


def _flag(b):
    return CONST_1 if b else CONST_0


def _fold_flag(op, operands, fn):
    if all(is_const(e) for e in operands):
        return _flag(fn(*[e[1] for e in operands]))
    return (op,) + tuple(operands)


def res_zf(r):
    return _fold_flag("zf", (r,), lambda v: v == 0)


def res_sf(r):
    return _fold_flag("sf", (r,), lambda v: bool(v & _SIGN))


def res_pf(r):
    return _fold_flag("pf", (r,), lambda v: bool(_PARITY[v & 0xFF]))


def _result_flags(flags, r):
    flags["ZF"] = res_zf(r)
    flags["SF"] = res_sf(r)
    flags["PF"] = res_pf(r)


def flags_add(flags, a, b):
    r = add(a, b)
    flags["CF"] = _fold_flag("addcf", (a, b), lambda x, y: x + y > _MASK32)
    flags["OF"] = _fold_flag(
        "addof",
        (a, b),
        lambda x, y: bool((~(x ^ y) & (x ^ ((x + y) & _MASK32))) & _SIGN),
    )
    flags["AF"] = _fold_flag(
        "addaf", (a, b), lambda x, y: bool((x ^ y ^ ((x + y) & _MASK32)) & 0x10)
    )
    _result_flags(flags, r)
    return r


def flags_sub(flags, a, b, update_cf=True):
    r = sub(a, b)
    if update_cf:
        flags["CF"] = _fold_flag("subcf", (a, b), lambda x, y: x < y)
    flags["OF"] = _fold_flag(
        "subof",
        (a, b),
        lambda x, y: bool(((x ^ y) & (x ^ ((x - y) & _MASK32))) & _SIGN),
    )
    flags["AF"] = _fold_flag(
        "subaf", (a, b), lambda x, y: bool((x ^ y ^ ((x - y) & _MASK32)) & 0x10)
    )
    _result_flags(flags, r)
    return r


def flags_inc(flags, a):
    # Same nodes as add(a, 1) except CF is untouched — the identity that
    # makes ``inc r`` and ``add r, 1`` summaries agree at every point
    # where the strength-reduction client's CF-deadness proof holds.
    r = add(a, CONST_1)
    flags["OF"] = _fold_flag(
        "addof",
        (a, CONST_1),
        lambda x, y: bool((~(x ^ y) & (x ^ ((x + y) & _MASK32))) & _SIGN),
    )
    flags["AF"] = _fold_flag(
        "addaf",
        (a, CONST_1),
        lambda x, y: bool((x ^ y ^ ((x + y) & _MASK32)) & 0x10),
    )
    _result_flags(flags, r)
    return r


def flags_dec(flags, a):
    return flags_sub(flags, a, CONST_1, update_cf=False)


def flags_logic(flags, r):
    flags["CF"] = CONST_0
    flags["OF"] = CONST_0
    flags["AF"] = CONST_0
    _result_flags(flags, r)
    return r


def flags_neg(flags, a):
    r = neg(a)
    flags["CF"] = _fold_flag("negcf", (a,), lambda x: x != 0)
    flags["OF"] = _fold_flag("negof", (a,), lambda x: x == _SIGN)
    flags["AF"] = _fold_flag(
        "negaf", (a,), lambda x: bool((x ^ ((-x) & _MASK32)) & 0x10)
    )
    _result_flags(flags, r)
    return r


def flags_shift(flags, kind, a, n):
    """Shift with a count expression already masked to 5 bits.

    A constant count reproduces ``cpu.flags_shl``/``flags_shr`` exactly
    (count 0 leaves state untouched); a symbolic count folds the
    *incoming* flag expressions into opaque nodes, because the concrete
    machine preserves flags when the runtime count happens to be zero.
    """
    if is_const(n):
        c = n[1] & 31
        if c == 0:
            return a
        r = shift(kind, a, n)
        if kind == "shl":
            flags["CF"] = _fold_flag(
                "shlcf", (a, n), lambda x, y: bool((x >> (32 - (y & 31))) & 1)
            )
            flags["OF"] = _fold_flag(
                "shlof",
                (a, n),
                lambda x, y: bool(_shl_v(x, y) & _SIGN)
                != bool((x >> (32 - (y & 31))) & 1),
            )
        else:
            flags["CF"] = _fold_flag(
                "shrcf", (a, n), lambda x, y: bool((x >> ((y & 31) - 1)) & 1)
            )
            if kind == "shr" and c == 1:
                flags["OF"] = _fold_flag("shrof", (a,), lambda x: bool(x & _SIGN))
            else:
                flags["OF"] = CONST_0
        flags["AF"] = CONST_0
        _result_flags(flags, r)
        return r
    old = dict(flags)
    r = ("shiftv", kind, a, n)
    for name in FLAG_ORDER:
        flags[name] = ("shiftfl", kind, name, a, n, old[name])
    return r


def flags_imul(flags, a, b):
    r = imul(a, b)

    def _cc(x, y):
        full = _sgn(x) * _sgn(y)
        return full != _sgn(full & _MASK32)

    cc = _fold_flag("imulcc", (a, b), _cc)
    flags["CF"] = cc
    flags["OF"] = cc
    flags["AF"] = CONST_0
    _result_flags(flags, r)
    return r


# ------------------------------------------------------------------ state


def _decompose(addr):
    """Split an address expression into (symbolic base, constant offset).

    A purely constant address gets base ``None``.  Disjointness is only
    ever concluded for equal bases — the same conservative rule the
    redundant-load-removal client applies at the operand level.
    """
    if is_const(addr):
        return None, addr[1]
    if addr[0] == "add" and is_const(addr[2]):
        return addr[1], addr[2][1]
    return addr, 0


def may_alias(addr_a, size_a, addr_b, size_b):
    base_a, off_a = _decompose(addr_a)
    base_b, off_b = _decompose(addr_b)
    if base_a != base_b:
        return True
    # Same symbolic base: disjoint iff the byte intervals are, with no
    # wrap-around in either interval.
    if off_a + size_a > 0x100000000 or off_b + size_b > 0x100000000:
        return True
    return off_a < off_b + size_b and off_b < off_a + size_a


class SymState:
    """One side's symbolic machine state.

    ``regs`` maps register index to expression, ``flags`` maps flag name
    to expression, ``stores`` is the append-only log of
    ``(addr, size, value)`` and ``events`` counts syscalls so the
    post-syscall havoc symbols are deterministically named per side.
    """

    __slots__ = ("regs", "flags", "stores", "syscalls")

    def __init__(self):
        self.regs = {r: ("init", REG_NAMES[Reg(r)]) for r in range(8)}
        self.flags = {name: ("initf", name) for name in FLAG_ORDER}
        self.stores = []
        self.syscalls = 0

    # ------------------------------------------------------------- memory

    def store(self, addr, size, value):
        self.stores.append((addr, size, value))

    def load(self, addr, size):
        """Read memory: forward the latest exactly-matching store, else a
        versioned load expression (version = one past the index of the
        last may-aliasing store)."""
        for i in range(len(self.stores) - 1, -1, -1):
            s_addr, s_size, s_value = self.stores[i]
            if s_addr == addr and s_size == size:
                return s_value
            if may_alias(addr, size, s_addr, s_size):
                return ("load", addr, size, i + 1)
        return ("load", addr, size, 0)

    # ----------------------------------------------------------- operands

    def effective_address(self, op):
        expr = None
        if op.base is not None:
            expr = self.regs[op.base]
        if op.index is not None:
            term = imul(self.regs[op.index], const(op.scale))
            expr = term if expr is None else add(expr, term)
        if expr is None:
            return const(op.disp)
        return add(expr, const(op.disp))

    def read_operand(self, op):
        if isinstance(op, RegOperand):
            return self.regs[op.reg]
        if isinstance(op, ImmOperand):
            return const(op.value)
        if isinstance(op, MemOperand):
            return self.load(self.effective_address(op), op.size)
        raise SymexecError("cannot read operand %r" % (op,))

    def write_operand(self, op, value):
        if isinstance(op, RegOperand):
            self.regs[op.reg] = value
            return
        if isinstance(op, MemOperand):
            if op.size == 4:
                self.store(self.effective_address(op), 4, value)
            elif op.size == 1:
                self.store(self.effective_address(op), 1, band(value, const(0xFF)))
            else:
                raise SymexecError("2-byte stores are not part of RIO-32")
            return
        raise SymexecError("cannot write operand %r" % (op,))

    # -------------------------------------------------------- stack / CTI

    def push(self, value):
        sp = add(self.regs[Reg.ESP], const(-4))
        self.regs[Reg.ESP] = sp
        self.store(sp, 4, value)

    def pop_value(self):
        sp = self.regs[Reg.ESP]
        value = self.load(sp, 4)
        self.regs[Reg.ESP] = add(sp, const(4))
        return value

    def pop_signal_frame(self):
        """The ``iret`` semantics of :func:`machine.system.pop_signal_frame`:
        pop the interrupted pc, restore the seven frame registers, then
        eflags (each flag becomes a bit of the restored word)."""
        target = self.pop_value()
        for reg in (0, 1, 2, 3, 5, 6, 7):  # eax,ecx,edx,ebx,ebp,esi,edi
            self.regs[reg] = self.pop_value()
        flags_word = self.pop_value()
        for name in FLAG_ORDER:
            self.flags[name] = ("flagbit", flags_word, name)
        return target

    def syscall_havoc(self):
        """RIO-32 declares ``syscall`` writes all six flags (liveness
        treats them as dead across it), so both sides re-seed the flags
        with matching fresh symbols, named by per-side syscall count."""
        k = self.syscalls
        self.syscalls += 1
        for name in FLAG_ORDER:
            self.flags[name] = ("sysfl", k, name)

    # ---------------------------------------------------------- snapshots

    def snapshot(self):
        """A comparable picture of the full state at an observable."""
        return {
            "regs": dict(self.regs),
            "flags": dict(self.flags),
            "stores": len(self.stores),
        }


# ----------------------------------------------------------- instruction


def step(state, opcode, ops):
    """Symbolically execute one non-CTI instruction (the counterpart of
    :func:`repro.machine.exec_ops.execute_noncti`).

    ``SYSCALL`` and ``HALT`` are *not* stepped here — they are
    observables the equivalence driver snapshots around; it calls
    :meth:`SymState.syscall_havoc` itself after comparing.
    """
    flags = state.flags
    if opcode == Opcode.MOV or opcode == Opcode.MOVZX:
        state.write_operand(ops[0], state.read_operand(ops[1]))
    elif opcode == Opcode.ADD:
        a = state.read_operand(ops[0])
        b = state.read_operand(ops[1])
        state.write_operand(ops[0], flags_add(flags, a, b))
    elif opcode == Opcode.SUB:
        a = state.read_operand(ops[0])
        b = state.read_operand(ops[1])
        state.write_operand(ops[0], flags_sub(flags, a, b))
    elif opcode == Opcode.CMP:
        flags_sub(flags, state.read_operand(ops[0]), state.read_operand(ops[1]))
    elif opcode == Opcode.INC:
        state.write_operand(ops[0], flags_inc(flags, state.read_operand(ops[0])))
    elif opcode == Opcode.DEC:
        state.write_operand(ops[0], flags_dec(flags, state.read_operand(ops[0])))
    elif opcode == Opcode.LEA:
        state.regs[ops[0].reg] = state.effective_address(ops[1])
    elif opcode == Opcode.MOVSX:
        state.write_operand(ops[0], sx(state.read_operand(ops[1]), ops[1].size))
    elif opcode == Opcode.MOVB_STORE:
        state.write_operand(ops[0], band(state.read_operand(ops[1]), const(0xFF)))
    elif opcode == Opcode.AND:
        r = band(state.read_operand(ops[0]), state.read_operand(ops[1]))
        state.write_operand(ops[0], flags_logic(flags, r))
    elif opcode == Opcode.OR:
        r = bor(state.read_operand(ops[0]), state.read_operand(ops[1]))
        state.write_operand(ops[0], flags_logic(flags, r))
    elif opcode == Opcode.XOR:
        r = bxor(state.read_operand(ops[0]), state.read_operand(ops[1]))
        state.write_operand(ops[0], flags_logic(flags, r))
    elif opcode == Opcode.TEST:
        flags_logic(
            flags, band(state.read_operand(ops[0]), state.read_operand(ops[1]))
        )
    elif opcode == Opcode.NOT:
        state.write_operand(ops[0], bnot(state.read_operand(ops[0])))
    elif opcode == Opcode.NEG:
        state.write_operand(ops[0], flags_neg(flags, state.read_operand(ops[0])))
    elif opcode in (Opcode.SHL, Opcode.SHR, Opcode.SAR):
        kind = {Opcode.SHL: "shl", Opcode.SHR: "shr", Opcode.SAR: "sar"}[opcode]
        a = state.read_operand(ops[0])
        n = band(state.read_operand(ops[1]), const(31))
        state.write_operand(ops[0], flags_shift(flags, kind, a, n))
    elif opcode == Opcode.IMUL:
        a = state.read_operand(ops[0])
        b = state.read_operand(ops[1])
        state.write_operand(ops[0], flags_imul(flags, a, b))
    elif opcode == Opcode.DIV:
        divisor = state.read_operand(ops[0])
        dividend = state.regs[Reg.EAX]
        q = udiv_q(dividend, divisor)
        state.regs[Reg.EAX] = q
        state.regs[Reg.EDX] = udiv_r(dividend, divisor)
        flags_logic(flags, q)
    elif opcode == Opcode.PUSH:
        state.push(state.read_operand(ops[0]))
    elif opcode == Opcode.POP:
        value = state.load(state.regs[Reg.ESP], 4)
        state.regs[Reg.ESP] = add(state.regs[Reg.ESP], const(4))
        state.write_operand(ops[0], value)
    elif opcode == Opcode.XCHG:
        a = state.read_operand(ops[0])
        b = state.read_operand(ops[1])
        state.write_operand(ops[0], b)
        state.write_operand(ops[1], a)
    elif opcode == Opcode.FLD or opcode == Opcode.FST:
        state.write_operand(ops[0], state.read_operand(ops[1]))
    elif opcode == Opcode.FADD:
        state.write_operand(
            ops[0], add(state.read_operand(ops[0]), state.read_operand(ops[1]))
        )
    elif opcode == Opcode.FSUB:
        state.write_operand(
            ops[0], sub(state.read_operand(ops[0]), state.read_operand(ops[1]))
        )
    elif opcode == Opcode.FMUL:
        state.write_operand(
            ops[0], imul(state.read_operand(ops[0]), state.read_operand(ops[1]))
        )
    elif opcode == Opcode.FDIV:
        state.write_operand(
            ops[0], fdiv(state.read_operand(ops[0]), state.read_operand(ops[1]))
        )
    elif opcode == Opcode.NOP or opcode == Opcode.LABEL:
        pass
    else:
        raise SymexecError("cannot symbolically execute %r" % (opcode,))


def render(expr, limit=96):
    """Compact, truncated rendering of an expression for diagnostics."""
    text = _render(expr)
    if len(text) > limit:
        text = text[: limit - 3] + "..."
    return text


def _render(expr):
    op = expr[0]
    if op == "const":
        return "0x%x" % expr[1]
    if op == "init":
        return expr[1]
    if op == "initf":
        return expr[1] + "0"
    if op == "load":
        return "mem%d[%s:%d]" % (expr[3], _render(expr[1]), expr[2])
    parts = [_render(e) if isinstance(e, tuple) else str(e) for e in expr[1:]]
    return "%s(%s)" % (op, ", ".join(parts))
