"""Dataflow analyses over linear instruction streams.

The paper's single-entry/multiple-exit restriction is what makes these
analyses linear scans rather than fixed-point iterations — this package
is the demonstration of that claim.  Used by the optimization clients
(flags-liveness scans) and by instrumentation clients that need to
insert flag-writing code without saving eflags.
"""

from repro.analysis.liveness import (
    eflags_dead_before,
    find_dead_flags_point,
    instr_use_def,
    registers_written_before_read,
)

__all__ = [
    "eflags_dead_before",
    "find_dead_flags_point",
    "instr_use_def",
    "registers_written_before_read",
]
