"""Static analysis over linear instruction streams.

The paper's single-entry/multiple-exit restriction is what makes these
analyses single passes rather than fixed-point iterations — this package
is the demonstration of that claim.  Three layers:

* :mod:`repro.analysis.dataflow` — the generic lattice/solver framework
  (one backward or forward pass over a linear InstrList);
* :mod:`repro.analysis.liveness` — register and eflags liveness
  instantiated on the framework; used by the optimization clients
  (flags-liveness scans) and by instrumentation clients that need to
  insert flag-writing code without saving eflags;
* :mod:`repro.analysis.verifier` (+ :mod:`repro.analysis.rules`) — the
  fragment verifier: a pluggable rule registry producing structured
  diagnostics over fragments headed for the code cache, enabled at
  runtime with ``RuntimeOptions(verify_fragments=True)`` and offline via
  ``python -m repro.tools.lint``.
"""

from repro.analysis.dataflow import (
    BACKWARD,
    DataflowProblem,
    DataflowResult,
    FORWARD,
    solve,
)
from repro.analysis.liveness import (
    GPR_UNIVERSE,
    EflagsLiveness,
    RegisterLiveness,
    eflags_dead_before,
    find_dead_flags_point,
    instr_use_def,
    live_eflags,
    live_registers,
    registers_written_before_read,
)
from repro.analysis.verifier import (
    Diagnostic,
    Rule,
    Severity,
    VerificationError,
    all_rules,
    assert_fragment_valid,
    register_rule,
    verify_fragment,
)

__all__ = [
    "BACKWARD",
    "DataflowProblem",
    "DataflowResult",
    "Diagnostic",
    "EflagsLiveness",
    "FORWARD",
    "GPR_UNIVERSE",
    "RegisterLiveness",
    "Rule",
    "Severity",
    "VerificationError",
    "all_rules",
    "assert_fragment_valid",
    "eflags_dead_before",
    "find_dead_flags_point",
    "instr_use_def",
    "live_eflags",
    "live_registers",
    "register_rule",
    "registers_written_before_read",
    "solve",
    "verify_fragment",
]
