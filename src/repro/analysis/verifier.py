"""Fragment verifier: static checks over InstrLists headed for the cache.

The client API is only safe under invariants the runtime never
mechanically enforces: fragments are linear single-entry/multiple-exit
streams, client-inserted code must respect eflags and register liveness
(the paper's Figure 3 discipline), and meta-instructions must stay
transparent to the application.  A buggy client — or a bug in trace
stitching — otherwise corrupts the code cache silently.

This module is the framework; the checks themselves live in
:mod:`repro.analysis.rules`, registered through :func:`register_rule` so
out-of-tree clients can add their own.  Each rule walks one fragment and
yields structured :class:`Diagnostic` objects (rule id, severity,
instruction, message).

Entry points:

* :func:`verify_fragment` — run rules, return diagnostics;
* :func:`assert_fragment_valid` — raise :class:`VerificationError` when
  any diagnostic is an error (the ``options.verify_fragments`` debug
  mode in :mod:`repro.core.emit`);
* ``python -m repro.tools.lint`` — the offline report over a workload.
"""

from repro.analysis.liveness import live_eflags, live_registers


class Severity:
    """Diagnostic severities, comparable by :func:`is_error`."""

    ERROR = "error"
    WARNING = "warning"


class Diagnostic:
    """One finding: a rule, a severity, an instruction, a message.

    ``tag`` (the fragment's application tag) and ``window`` (a short
    disassembly excerpt around the offending instruction) are attached
    by :func:`verify_fragment` when available, so a failure is
    actionable without re-running under a debugger.
    """

    __slots__ = ("rule", "severity", "instr", "message", "index", "tag", "window")

    def __init__(self, rule, severity, instr, message, index=None):
        self.rule = rule
        self.severity = severity
        self.instr = instr
        self.message = message
        self.index = index  # position within the fragment, labels included
        self.tag = None
        self.window = None

    @property
    def is_error(self):
        return self.severity == Severity.ERROR

    def format(self):
        where = "" if self.index is None else "@%d " % self.index
        tag = "" if self.tag is None else "tag=0x%x " % self.tag
        head = "%s[%s] %s%s%s" % (self.rule, self.severity, tag, where, self.message)
        if self.window:
            head += "\n" + self.window
        return head

    def __repr__(self):
        return "<Diagnostic %s>" % self.format()


class VerificationError(Exception):
    """A fragment failed verification; ``diagnostics`` holds the errors."""

    def __init__(self, diagnostics, where=None):
        self.diagnostics = list(diagnostics)
        self.where = where
        lines = [d.format() for d in self.diagnostics]
        prefix = "fragment verification failed"
        if where:
            prefix += " (%s)" % where
        super().__init__("%s:\n  %s" % (prefix, "\n  ".join(lines)))


class FragmentContext:
    """Shared, lazily computed state handed to every rule.

    ``kind`` is ``"bb"``, ``"trace"``, or ``"stub"``.  ``is_runtime_addr``
    is an optional predicate classifying absolute addresses as
    runtime-private (transparent for clients to write) versus
    application memory; without it the transparency rule gives absolute
    writes the benefit of the doubt, which is what the offline linter
    wants.
    """

    def __init__(self, ilist, kind="bb", is_runtime_addr=None, tag=None,
                 source_tags=None, memory=None, max_bb_instrs=256):
        self.ilist = ilist
        self.kind = kind
        self.is_runtime_addr = is_runtime_addr
        self.tag = tag
        # Equivalence-rule inputs: the ordered application block tags the
        # fragment translates, and the memory to rebuild them from.  The
        # equivalence rule is a no-op when memory is None.
        self.source_tags = source_tags
        self.memory = memory
        self.max_bb_instrs = max_bb_instrs
        self.nodes = list(ilist)
        self.position = {id(n): i for i, n in enumerate(self.nodes)}
        self._reg_live = None
        self._flag_live = None

    @property
    def reg_liveness(self):
        if self._reg_live is None:
            self._reg_live = live_registers(self.ilist)
        return self._reg_live

    @property
    def flag_liveness(self):
        if self._flag_live is None:
            self._flag_live = live_eflags(self.ilist)
        return self._flag_live

    @staticmethod
    def is_clean_call(instr):
        return isinstance(instr.note, dict) and bool(instr.note.get("clean_call"))

    @staticmethod
    def is_meta(instr):
        return bool(instr.is_meta)

    def note(self, instr, key):
        if isinstance(instr.note, dict):
            return instr.note.get(key)
        return None


class Rule:
    """Base class for verifier rules.

    Subclasses set ``rule_id``/``description`` and implement
    :meth:`check`, yielding diagnostics (most easily through the
    :meth:`error`/:meth:`warning` helpers).
    """

    rule_id = None
    description = ""

    def check(self, ctx):
        raise NotImplementedError
        yield  # pragma: no cover

    def error(self, ctx, instr, message):
        return Diagnostic(
            self.rule_id,
            Severity.ERROR,
            instr,
            message,
            index=ctx.position.get(id(instr)),
        )

    def warning(self, ctx, instr, message):
        return Diagnostic(
            self.rule_id,
            Severity.WARNING,
            instr,
            message,
            index=ctx.position.get(id(instr)),
        )


_REGISTRY = {}


def register_rule(cls):
    """Class decorator: instantiate and register a :class:`Rule`.

    Registration order is preserved; a rule id may be registered once.
    """
    if not cls.rule_id:
        raise ValueError("rule %r needs a rule_id" % (cls,))
    if cls.rule_id in _REGISTRY:
        raise ValueError("duplicate rule id %r" % (cls.rule_id,))
    _REGISTRY[cls.rule_id] = cls()
    return cls


def all_rules():
    """The registered rules, in registration order."""
    return list(_REGISTRY.values())


def get_rule(rule_id):
    return _REGISTRY[rule_id]


def _disassembly_window(ctx, index, radius=2):
    """A short, marker-annotated disassembly excerpt around ``index``."""
    lo = max(0, index - radius)
    hi = min(len(ctx.nodes), index + radius + 1)
    lines = []
    for i in range(lo, hi):
        node = ctx.nodes[i]
        try:
            text = node.disassemble()
        except Exception:
            text = repr(node)
        marker = ">>" if i == index else "  "
        lines.append("    %s @%-3d %s" % (marker, i, text))
    return "\n".join(lines)


def verify_fragment(ilist, kind="bb", rules=None, is_runtime_addr=None,
                    tag=None, source_tags=None, memory=None,
                    max_bb_instrs=256):
    """Run verifier rules over one fragment's InstrList.

    Returns the diagnostics sorted by instruction position (errors
    before warnings at the same instruction).  ``rules`` restricts the
    run to an iterable of rule ids.  ``tag``/``source_tags``/``memory``
    feed the equivalence rule and the diagnostic headers; the fragment
    tag and a disassembly window around the offending instruction are
    attached to every finding.
    """
    ctx = FragmentContext(
        ilist, kind=kind, is_runtime_addr=is_runtime_addr, tag=tag,
        source_tags=source_tags, memory=memory, max_bb_instrs=max_bb_instrs,
    )
    selected = all_rules() if rules is None else [get_rule(r) for r in rules]
    diagnostics = []
    for rule in selected:
        diagnostics.extend(rule.check(ctx))
    diagnostics.sort(
        key=lambda d: (
            d.index if d.index is not None else len(ctx.nodes),
            d.severity != Severity.ERROR,
            d.rule,
        )
    )
    for d in diagnostics:
        if d.tag is None:
            d.tag = tag
        if d.window is None and d.index is not None:
            d.window = _disassembly_window(ctx, d.index)
    return diagnostics


def assert_fragment_valid(ilist, kind="bb", rules=None, is_runtime_addr=None,
                          where=None, tag=None, source_tags=None, memory=None,
                          max_bb_instrs=256):
    """Verify and raise :class:`VerificationError` on any error.

    Returns the full diagnostic list (which may still carry warnings)
    when the fragment passes.
    """
    diagnostics = verify_fragment(
        ilist, kind=kind, rules=rules, is_runtime_addr=is_runtime_addr,
        tag=tag, source_tags=source_tags, memory=memory,
        max_bb_instrs=max_bb_instrs,
    )
    errors = [d for d in diagnostics if d.is_error]
    if errors:
        raise VerificationError(errors, where=where)
    return diagnostics


# Importing the rules package registers the built-in rules.  Placed last
# so the rule modules can import the names defined above.
from repro.analysis import rules as _builtin_rules  # noqa: E402,F401
