"""Eflags safety for client-inserted (meta) instructions.

The Figure 3 discipline: a client may insert flag-writing code only
where the application's condition codes are dead, or it must bracket
the insertion with an explicit save/restore.  This rule runs the
backward eflags liveness solution and reports every meta instruction
whose flag writes land on flags some later application instruction may
still read.

An instruction carrying a truthy ``note["eflags_saved"]`` is exempt:
the client asserts it restores the flags itself (e.g. via lahf/sahf
equivalents or a clean-call spill).
"""

from repro.analysis.verifier import Rule, register_rule
from repro.isa.eflags import (
    EFLAGS_WRITE_ALL,
    eflags_to_string,
    reads_to_writes,
    writes_to_reads,
)


def _flag_list(read_mask):
    """Render a read-effects mask as a flag-name list, e.g. ``CF, ZF``."""
    letters = eflags_to_string(reads_to_writes(read_mask))
    return letters[1:] if letters.startswith("W") else letters


@register_rule
class EflagsSafetyRule(Rule):
    rule_id = "eflags-safety"
    description = (
        "meta instructions write condition codes only where the "
        "application's flags are dead (or under an explicit save)"
    )

    def check(self, ctx):
        for instr in ctx.nodes:
            if instr.is_bundle or not ctx.is_meta(instr):
                continue
            if instr.is_label():
                continue
            writes = instr.eflags & EFLAGS_WRITE_ALL
            if not writes:
                continue
            if ctx.note(instr, "eflags_saved"):
                continue
            clobbered = writes_to_reads(writes) & ctx.flag_liveness.after(instr)
            if clobbered:
                yield self.error(
                    ctx,
                    instr,
                    "meta %s clobbers live application flags %s; insert at "
                    "a dead-flags point (find_dead_flags_point) or "
                    "save/restore eflags"
                    % (instr.info.name, _flag_list(clobbered)),
                )
