"""Level-of-detail consistency (the paper's Section 3.1 invariants).

The adaptive representation is only sound while each level tells the
truth: Level-0 bundles must still be clean straight-line byte runs
(mutating one is a client bug — they must be expanded first), raw bits
claimed valid must still decode to the recorded opcode, every
instruction headed for the cache must have an encoder template, and a
Level-4 instruction must survive an encode→decode round trip — the
property that makes ``emit`` a byte-copy-or-template-search with no
third case.
"""

from repro.analysis.verifier import Rule, register_rule
from repro.ir.instr import LabelRef
from repro.ir.levels import LEVEL_2, LEVEL_3, LEVEL_4
from repro.isa.decoder import decode_boundary, decode_full, decode_opcode
from repro.isa.encoder import EncodeError, encode_instr
from repro.isa.opcodes import OP_INFO
from repro.isa.operands import PcOperand
from repro.isa.templates import has_template


@register_rule
class LevelConsistencyRule(Rule):
    rule_id = "levels"
    description = (
        "bundles decode cleanly and stay straight-line, raw bits match "
        "decoded opcodes, every instruction has an encoder template, "
        "Level-4 instructions round-trip encode→decode"
    )

    def check(self, ctx):
        for instr in ctx.nodes:
            if instr.is_bundle:
                yield from self._check_bundle(ctx, instr)
                continue
            if instr.level < LEVEL_2:
                # Level 1: raw bytes of exactly one instruction.
                yield from self._check_raw(ctx, instr)
                continue
            if instr.is_label():
                continue
            yield from self._check_decoded(ctx, instr)

    # ------------------------------------------------------------- level 0

    def _check_bundle(self, ctx, instr):
        raw = instr.raw
        if not raw:
            yield self.error(ctx, instr, "Level-0 bundle with no raw bytes")
            return
        off = 0
        while off < len(raw):
            try:
                opcode, _eflags, length = decode_opcode(raw, off)
            except Exception as exc:
                yield self.error(
                    ctx,
                    instr,
                    "bundle bytes undecodable at +%d: %s" % (off, exc),
                )
                return
            if OP_INFO[opcode].is_cti:
                yield self.error(
                    ctx,
                    instr,
                    "bundle contains a control transfer (%s at +%d); "
                    "bundles must be straight-line runs"
                    % (OP_INFO[opcode].name, off),
                )
            off += length
        if off != len(raw):
            yield self.error(
                ctx,
                instr,
                "bundle boundary overrun: decode consumed %d of %d bytes"
                % (off, len(raw)),
            )

    # ------------------------------------------------------------- level 1

    def _check_raw(self, ctx, instr):
        raw = instr.raw
        if not raw:
            yield self.error(ctx, instr, "Level-1 instruction with no raw bytes")
            return
        try:
            n = decode_boundary(raw, 0)
        except Exception as exc:
            yield self.error(ctx, instr, "raw bytes undecodable: %s" % exc)
            return
        if n != len(raw):
            yield self.error(
                ctx,
                instr,
                "raw length %d disagrees with decoded boundary %d"
                % (len(raw), n),
            )

    # ----------------------------------------------------------- level 2-4

    def _check_decoded(self, ctx, instr):
        if not has_template(instr.opcode):
            yield self.error(
                ctx,
                instr,
                "opcode %s has no encoder template and cannot enter the "
                "cache" % instr.info.name,
            )
            return
        if instr.raw_bits_valid():
            if instr.level in (LEVEL_2, LEVEL_3):
                try:
                    opcode, _eflags, _length = decode_opcode(instr.raw, 0)
                except Exception as exc:
                    yield self.error(
                        ctx, instr, "raw bytes undecodable: %s" % exc
                    )
                    return
                if opcode != instr.opcode:
                    yield self.error(
                        ctx,
                        instr,
                        "stale raw bits: bytes decode to %s but instruction "
                        "claims %s (mutation without invalidation)"
                        % (OP_INFO[opcode].name, instr.info.name),
                    )
            return
        if instr.level == LEVEL_4:
            yield from self._check_round_trip(ctx, instr)

    def _check_round_trip(self, ctx, instr):
        explicit = tuple(
            PcOperand(0) if isinstance(op, LabelRef) else op
            for op in instr.explicit_operands()
        )
        try:
            raw = encode_instr(
                instr.opcode, explicit, pc=0, prefixes=instr.prefixes
            )
        except EncodeError as exc:
            yield self.error(
                ctx,
                instr,
                "no encoding for %s %r: %s" % (instr.info.name, explicit, exc),
            )
            return
        try:
            d = decode_full(raw, 0, pc=0)
        except Exception as exc:
            yield self.error(
                ctx,
                instr,
                "encoded bytes %s do not decode: %s" % (raw.hex(), exc),
            )
            return
        if d.opcode != instr.opcode:
            yield self.error(
                ctx,
                instr,
                "round-trip infidelity: %s encodes to bytes that decode "
                "as %s" % (instr.info.name, OP_INFO[d.opcode].name),
            )
        elif d.eflags != instr.eflags:
            yield self.error(
                ctx,
                instr,
                "round-trip infidelity: eflags effects changed for %s"
                % instr.info.name,
            )
