"""Rule: the fragment is a faithful translation of its source blocks.

Thin adapter over :mod:`repro.analysis.equiv` (drequiv).  The symbolic
check needs two inputs the structural rules don't: the ordered source
block tags and the application memory to rebuild them from.  When either
is missing from the :class:`~repro.analysis.verifier.FragmentContext`
(the offline linter's static sweep over raw decoded blocks, or a unit
test that built an InstrList from nothing) the rule is a no-op rather
than a false positive.  Exit stubs are runtime glue with no application
counterpart, so ``kind == "stub"`` is skipped too.

Soundness split: drequiv *erases* meta instructions wholesale and trusts
the eflags-safety, scratch, and transparency rules to prove the erasure
valid (dead flags, dead registers, no application stores).  Run it
alongside those rules — ``verify_fragments`` + ``verify_equivalence`` —
for the full proof.
"""

from repro.analysis import equiv
from repro.analysis.verifier import Rule, register_rule


@register_rule
class EquivalenceRule(Rule):
    rule_id = "equivalence"
    description = (
        "fragment's symbolic summary matches its source application blocks"
    )

    def check(self, ctx):
        if ctx.kind == "stub" or ctx.memory is None or not ctx.source_tags:
            return
        problems = equiv.check_equivalence(
            ctx.ilist,
            ctx.source_tags,
            ctx.memory,
            max_bb_instrs=ctx.max_bb_instrs,
            nodes=ctx.nodes,
        )
        for p in problems:
            if p.severity == equiv.ERROR:
                yield self.error(ctx, p.instr, p.message)
            else:
                yield self.warning(ctx, p.instr, p.message)
