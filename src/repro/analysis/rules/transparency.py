"""Transparency lint for client-inserted (meta) instructions.

The paper's Section 3.3: the runtime must remain invisible to the
application.  Client code woven into a fragment therefore must not

* touch the application stack or stack pointer (``push``/``pop``/
  ``call``/``ret`` and friends, or any write through/into ``esp``);
* write application memory — any memory destination addressed through
  registers is application-relative; an absolute destination is allowed
  only when it lands in runtime-private memory (heap, code cache), as
  classified by the :class:`~repro.analysis.verifier.FragmentContext`'s
  ``is_runtime_addr`` predicate.  Offline, with no runtime to ask, an
  absolute write gets the benefit of the doubt;
* transfer control outside the fragment on its own — meta control flow
  is limited to forward branches to internal labels; everything else
  must go through clean calls or exit stubs the runtime mangles.
"""

from repro.analysis.verifier import Rule, register_rule
from repro.ir.instr import LabelRef
from repro.isa.opcodes import Opcode
from repro.isa.operands import MemOperand, RegOperand
from repro.isa.registers import Reg

# Opcodes that implicitly use the application stack or trap to the
# kernel; never transparent when client-inserted.
_FORBIDDEN_META_OPS = {
    Opcode.PUSH: "pushes onto the application stack",
    Opcode.POP: "pops the application stack",
    Opcode.CALL: "pushes a return address onto the application stack",
    Opcode.CALL_IND: "pushes a return address onto the application stack",
    Opcode.RET: "pops the application stack",
    Opcode.IRET: "pops the application stack",
    Opcode.SYSCALL: "enters the kernel outside runtime control",
    Opcode.HALT: "halts the application",
}


@register_rule
class TransparencyRule(Rule):
    rule_id = "transparency"
    description = (
        "meta instructions avoid the application stack, application "
        "memory writes, and out-of-fragment control flow"
    )

    def check(self, ctx):
        for instr in ctx.nodes:
            if instr.is_bundle or not ctx.is_meta(instr):
                continue
            if instr.is_label():
                continue

            reason = _FORBIDDEN_META_OPS.get(instr.opcode)
            if reason is not None:
                yield self.error(
                    ctx,
                    instr,
                    "meta %s %s; use a clean call instead"
                    % (instr.info.name, reason),
                )
                continue

            if instr.is_cti():
                if not isinstance(instr.target, LabelRef):
                    yield self.error(
                        ctx,
                        instr,
                        "meta control transfer leaves the fragment; meta "
                        "branches may only target internal labels",
                    )
                continue

            for op in instr.dsts:
                if isinstance(op, RegOperand):
                    if op.reg == Reg.ESP:
                        yield self.error(
                            ctx,
                            instr,
                            "meta %s modifies the application stack pointer"
                            % instr.info.name,
                        )
                elif isinstance(op, MemOperand):
                    yield from self._check_mem_write(ctx, instr, op)

    def _check_mem_write(self, ctx, instr, op):
        if op.base is not None or op.index is not None:
            yield self.error(
                ctx,
                instr,
                "meta %s writes application-relative memory %r; clients "
                "may only write runtime-private absolute addresses"
                % (instr.info.name, op),
            )
            return
        if ctx.is_runtime_addr is None:
            return  # offline: cannot classify, give benefit of the doubt
        if not ctx.is_runtime_addr(op.disp & 0xFFFFFFFF):
            yield self.error(
                ctx,
                instr,
                "meta %s writes absolute address 0x%x outside "
                "runtime-private memory"
                % (instr.info.name, op.disp & 0xFFFFFFFF),
            )
