"""Built-in fragment verifier rules.

Importing this package registers every built-in rule with the
:mod:`repro.analysis.verifier` registry, in a deliberate order: cheap
structural checks first (linearity, level consistency), then the
dataflow-backed safety rules (eflags, scratch registers, transparency),
and last the symbolic translation-equivalence check (drequiv), which
leans on the earlier rules to justify erasing meta instructions.

Out-of-tree rules register the same way::

    from repro.analysis.verifier import Rule, register_rule

    @register_rule
    class MyRule(Rule):
        rule_id = "my-rule"
        def check(self, ctx):
            ...
            yield self.error(ctx, instr, "message")
"""

from repro.analysis.rules import linearity  # noqa: F401  (isort: skip)
from repro.analysis.rules import levels  # noqa: F401
from repro.analysis.rules import eflags_safety  # noqa: F401
from repro.analysis.rules import scratch  # noqa: F401
from repro.analysis.rules import transparency  # noqa: F401
from repro.analysis.rules import equivalence  # noqa: F401
