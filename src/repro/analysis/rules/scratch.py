"""Scratch-register safety for client-inserted (meta) instructions.

A meta instruction may freely write a register that is *dead* — no path
from here reads it before the application rewrites it — which is what
:func:`repro.analysis.liveness.registers_written_before_read` hands to
clients.  Writing a *live* register destroys application state the
fragment still needs.

A proper spill/use/restore sequence passes without special-casing: the
restore's write is what kills the register's liveness over the scratch
region, so the intermediate scratch writes see a dead register.  An
instruction that deliberately reinstates application state (the restore
itself, when expressed as an inserted instruction rather than a clean
call) declares it with a truthy ``note["restore"]``.
"""

from repro.analysis.liveness import instr_use_def
from repro.analysis.verifier import Rule, register_rule
from repro.isa.registers import REG_NAMES


@register_rule
class ScratchRegisterRule(Rule):
    rule_id = "scratch-registers"
    description = (
        "meta instructions write only dead registers (scratch) unless "
        "marked as a restore"
    )

    def check(self, ctx):
        for instr in ctx.nodes:
            if instr.is_bundle or not ctx.is_meta(instr):
                continue
            if instr.is_label():
                continue
            if ctx.note(instr, "restore"):
                continue
            _reads, writes = instr_use_def(instr)
            if not writes:
                continue
            clobbered = writes & ctx.reg_liveness.after(instr)
            if clobbered:
                names = ", ".join(
                    REG_NAMES[r] for r in sorted(clobbered)
                )
                yield self.error(
                    ctx,
                    instr,
                    "meta %s writes live register(s) %s without a spill; "
                    "pick a dead register (registers_written_before_read) "
                    "or save/restore around the insertion"
                    % (instr.info.name, names),
                )
