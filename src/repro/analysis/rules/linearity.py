"""Linearity: fragments are single-entry, multiple-exit, join-free.

The paper's Section 3.1 restriction, enforced by construction in
:class:`~repro.ir.instrlist.InstrList` for the *builders* but trivially
violated by a buggy client: every control transfer must either leave
the fragment (a direct exit, an indirect branch) or be a forward branch
to a LABEL inside the same list; backward label references create
internal joins/loops the lowering cannot express; labels nobody targets
are dead weight; and exit CTIs must actually exit.
"""

from repro.analysis.verifier import Rule, register_rule
from repro.ir.instr import LabelRef
from repro.isa.opcodes import Opcode


@register_rule
class LinearityRule(Rule):
    rule_id = "linearity"
    description = (
        "single entry, every CTI exits or forward-branches to an "
        "internal label, no stray labels"
    )

    def check(self, ctx):
        label_pos = {}
        for i, node in enumerate(ctx.nodes):
            if not node.is_bundle and node.level >= 2 and node.is_label():
                label_pos[id(node)] = i
        targeted = set()

        # Forward reachability: code after an unconditional transfer is
        # dead unless a targeted label re-enters it.
        reachable = True

        for i, instr in enumerate(ctx.nodes):
            if instr.is_bundle:
                continue
            if instr.is_label():
                if id(instr) in targeted:
                    reachable = True
                continue
            if not reachable:
                yield self.warning(
                    ctx,
                    instr,
                    "unreachable: follows an unconditional transfer with "
                    "no intervening targeted label",
                )
            if not instr.is_cti():
                continue

            target = instr.target
            if isinstance(target, LabelRef):
                label = target.label
                if instr.is_exit_cti:
                    yield self.error(
                        ctx,
                        instr,
                        "exit CTI targets an internal label; exits must "
                        "leave the fragment",
                    )
                if instr.opcode != Opcode.JMP and not instr.is_cond_branch():
                    yield self.error(
                        ctx,
                        instr,
                        "only jmp/jcc may target internal labels, not %s"
                        % instr.info.name,
                    )
                pos = label_pos.get(id(label))
                if pos is None:
                    yield self.error(
                        ctx, instr, "branch targets a label outside this fragment"
                    )
                else:
                    targeted.add(id(label))
                    if pos <= i:
                        yield self.error(
                            ctx,
                            instr,
                            "backward label reference creates an internal "
                            "join point (fragments must stay linear)",
                        )
                if instr.is_cond_branch():
                    continue  # falls through; stays reachable
            elif instr.is_cond_branch() or self._falls_through(ctx, instr):
                continue
            reachable = False

    @staticmethod
    def _falls_through(ctx, instr):
        # Trace-inlined constructs continue on-trace past the CTI.
        return bool(
            ctx.note(instr, "inline") or ctx.note(instr, "inline_target") is not None
        )
