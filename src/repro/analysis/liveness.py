"""Liveness on linear streams: eflags and registers.

Both analyses are *backward* dataflow problems solved in one pass by
:mod:`repro.analysis.dataflow` — the efficiency the paper buys with its
single-entry, multiple-exit restriction.  Conservatism at the edges:
any control transfer that can leave the fragment (an exit CTI, an
indirect branch, a call, a clean call) is assumed to expose every flag
and register to unknown code, as is falling off the end of the list and
any un-decoded Level-0 bundle.

The query helpers (:func:`eflags_dead_before`,
:func:`find_dead_flags_point`, :func:`registers_written_before_read`)
keep the historical forward-scan API; internally they read the backward
solution, which additionally handles client-inserted intra-fragment
label branches precisely instead of treating them as barriers.
"""

from repro.analysis.dataflow import BACKWARD, DataflowProblem, solve
from repro.isa.eflags import EFLAGS_READ_ALL, writes_to_reads
from repro.isa.operands import MemOperand, RegOperand
from repro.isa.registers import Reg

# The general-purpose register universe, derived from the ISA definition
# so the analysis cannot drift from ``repro.isa.registers``.
GPR_UNIVERSE = frozenset(Reg)


def _is_clean_call(instr):
    return isinstance(instr.note, dict) and bool(instr.note.get("clean_call"))


def _is_barrier(instr):
    """Instructions past which liveness is unknowable."""
    if _is_clean_call(instr):
        return True
    return instr.is_cti() or instr.is_exit_cti


def instr_use_def(instr):
    """``(regs_read, regs_written)`` for one instruction.

    Address registers of memory operands count as reads; memory
    contents are not tracked here.
    """
    reads = set()
    writes = set()
    for op in instr.srcs:
        if isinstance(op, RegOperand):
            reads.add(op.reg)
        elif isinstance(op, MemOperand):
            reads.update(op.address_registers())
    for op in instr.dsts:
        if isinstance(op, RegOperand):
            writes.add(op.reg)
        elif isinstance(op, MemOperand):
            reads.update(op.address_registers())
    return reads, writes


class RegisterLiveness(DataflowProblem):
    """Backward register liveness; states are frozensets of ``Reg``."""

    direction = BACKWARD

    def boundary(self):
        return GPR_UNIVERSE

    def transfer(self, instr, state):
        if instr.is_bundle or _is_clean_call(instr):
            # un-decoded code / a clean call: unknown uses
            return GPR_UNIVERSE
        if instr.is_label():
            return state
        reads, writes = instr_use_def(instr)
        if writes or reads:
            return frozenset((state - writes) | reads)
        return state

    def join(self, a, b):
        return a | b


class EflagsLiveness(DataflowProblem):
    """Backward eflags liveness; states are read-effect bitmasks."""

    direction = BACKWARD

    def boundary(self):
        return EFLAGS_READ_ALL

    def transfer(self, instr, state):
        if instr.is_bundle or _is_clean_call(instr):
            return EFLAGS_READ_ALL
        if instr.is_label():
            return state
        effects = instr.eflags
        return (state & ~writes_to_reads(effects)) | (effects & EFLAGS_READ_ALL)

    def join(self, a, b):
        return a | b


def live_registers(ilist):
    """Solve register liveness over the whole list.

    Returns a :class:`~repro.analysis.dataflow.DataflowResult` whose
    ``before``/``after`` states are frozensets of live ``Reg`` values.
    """
    return solve(RegisterLiveness(), ilist)


def live_eflags(ilist):
    """Solve eflags liveness over the whole list.

    Returns a :class:`~repro.analysis.dataflow.DataflowResult` whose
    ``before``/``after`` states are ``EFLAGS_READ_*`` bitmasks of the
    flags some path may still read.
    """
    return solve(EflagsLiveness(), ilist)


def eflags_dead_before(ilist, where):
    """Whether all six arithmetic flags are dead just before ``where``.

    Dead means no path from ``where`` reads any flag before it is
    rewritten; ``where``'s own flag writes count.  This is the general
    form of the Figure 3 client's CF scan.
    """
    return live_eflags(ilist).before(where) == 0


def find_dead_flags_point(ilist):
    """First instruction in the list before which eflags are dead.

    Returns the Instr (insert before it), or None when no such point
    exists.  Instrumentation clients use this to place flag-writing
    counters without an eflags save/restore.
    """
    result = live_eflags(ilist)
    for instr in ilist:
        if instr.is_bundle:
            return None
        if instr.is_label():
            continue
        if result.before(instr) == 0:
            return instr
        if _is_barrier(instr):
            return None
    return None


def registers_written_before_read(ilist, where):
    """Registers provably dead just before ``where``: no path from
    ``where`` reads them before writing them.

    A client may use such a register as scratch at that point without
    spilling.  Conservative: exits, clean calls, and un-decoded bundles
    keep every register live.
    """
    return set(GPR_UNIVERSE - live_registers(ilist).before(where))
