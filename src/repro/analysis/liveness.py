"""Liveness on linear streams: eflags and registers.

All analyses are *forward scans with conservative exits*: any control
transfer that can leave the fragment (an exit CTI, an indirect branch,
a call, a clean call) is assumed to expose every flag and register to
unknown code.  On a linear InstrList this makes each query a single
O(n) walk — the efficiency the paper buys with its single-entry,
multiple-exit restriction.
"""

from repro.isa.eflags import EFLAGS_READ_ALL, EFLAGS_WRITE_ALL, writes_to_reads
from repro.isa.operands import MemOperand, RegOperand


def _is_barrier(instr):
    """Instructions past which liveness is unknowable."""
    if isinstance(instr.note, dict) and instr.note.get("clean_call"):
        return True
    return instr.is_cti() or instr.is_exit_cti


def instr_use_def(instr):
    """``(regs_read, regs_written)`` for one instruction.

    Address registers of memory operands count as reads; memory
    contents are not tracked here.
    """
    reads = set()
    writes = set()
    for op in instr.srcs:
        if isinstance(op, RegOperand):
            reads.add(op.reg)
        elif isinstance(op, MemOperand):
            reads.update(op.address_registers())
    for op in instr.dsts:
        if isinstance(op, RegOperand):
            writes.add(op.reg)
        elif isinstance(op, MemOperand):
            reads.update(op.address_registers())
    return reads, writes


def eflags_dead_before(ilist, where):
    """Whether all six arithmetic flags are dead just before ``where``.

    Dead means: scanning forward from ``where``, every flag is written
    (without first being read) before any barrier.  This is the general
    form of the Figure 3 client's CF scan.
    """
    needed = EFLAGS_WRITE_ALL
    node = where
    while node is not None:
        # clean-call pseudos are LABEL-opcode: test barriers first
        if isinstance(node.note, dict) and node.note.get("clean_call"):
            return False
        if not node.is_label():
            effects = node.eflags
            if effects & EFLAGS_READ_ALL:
                # a flag still needed is read: live
                reads = effects & EFLAGS_READ_ALL
                if writes_to_reads(needed) & reads:
                    return False
            needed &= ~(effects & EFLAGS_WRITE_ALL)
            if needed == 0:
                return True
            if _is_barrier(node):
                return False
        node = node.next
    return False


def find_dead_flags_point(ilist):
    """First instruction in the list before which eflags are dead.

    Returns the Instr (insert before it), or None when no such point
    exists.  Instrumentation clients use this to place flag-writing
    counters without an eflags save/restore.
    """
    for instr in ilist:
        if instr.is_label():
            continue
        if eflags_dead_before(ilist, instr):
            return instr
        if _is_barrier(instr):
            return None
    return None


def registers_written_before_read(ilist, where):
    """Registers provably dead just before ``where``: written (without
    an earlier read) before any barrier on the forward scan.

    A client may use such a register as scratch at that point without
    spilling.  Conservative: barriers end the scan with the remaining
    candidates removed.
    """
    candidates = set(range(8))
    dead = set()
    node = where
    while node is not None and candidates:
        if isinstance(node.note, dict) and node.note.get("clean_call"):
            break
        if not node.is_label():
            if node.is_bundle:
                break  # un-decoded code: unknown uses
            reads, writes = instr_use_def(node)
            for reg in reads:
                candidates.discard(reg)
            for reg in writes:
                if reg in candidates:
                    dead.add(reg)
                    candidates.discard(reg)
            if _is_barrier(node):
                break
        node = node.next
    return dead
