"""A generic dataflow engine for linear instruction streams.

The paper restricts fragments to *linear* control flow — single entry,
multiple exits, intra-list branches only as forward references to LABEL
pseudo-instructions.  On that shape every dataflow problem solves in a
**single pass** instead of a fixed-point iteration:

* a *backward* problem walks the list once in reverse.  When it meets a
  branch whose target is a LABEL later in the list, that label's state
  has already been computed (forward references only), so the join is
  immediate;
* a *forward* problem walks the list once front-to-back, accumulating
  branch-in states at each label as it passes the branches that target
  it (again: forward references only).

Anything that can leave the fragment — a direct exit, an indirect
branch, a return — joins with the problem's :meth:`~DataflowProblem.
exit_state`, which conservative clients set to "everything live".

The engine knows nothing about liveness specifically; a problem supplies
the lattice (``join``), the boundary states, and the per-instruction
``transfer`` function.  :mod:`repro.analysis.liveness` instantiates it
for register and eflags liveness; the fragment verifier
(:mod:`repro.analysis.verifier`) consumes those solutions.
"""

from repro.ir.instr import LabelRef

FORWARD = "forward"
BACKWARD = "backward"


def _is_clean_call(instr):
    return isinstance(instr.note, dict) and instr.note.get("clean_call")


class DataflowProblem:
    """One dataflow problem over a linear InstrList.

    Subclasses define the lattice and semantics:

    ``direction``
        :data:`FORWARD` or :data:`BACKWARD`.
    ``boundary()``
        State at the analysis start: the fragment entry (forward) or
        the fall-off-the-end point (backward).
    ``exit_state()``
        State joined in wherever control can leave the fragment
        (backward problems; forward problems use it for unknown
        predecessors, which linear fragments do not have).
    ``transfer(instr, state)``
        State immediately before ``instr`` given the state after it
        (backward), or vice versa (forward).  Must not mutate ``state``.
    ``join(a, b)``
        Least upper bound of two states.
    """

    direction = BACKWARD

    def boundary(self):
        raise NotImplementedError

    def exit_state(self):
        return self.boundary()

    def transfer(self, instr, state):
        raise NotImplementedError

    def join(self, a, b):
        raise NotImplementedError


class DataflowResult:
    """Per-instruction states from one solver run.

    ``before(instr)`` / ``after(instr)`` are in *program order*: before
    is the state at the point just preceding the instruction, after the
    point just following it, regardless of analysis direction.
    """

    __slots__ = ("_before", "_after", "problem")

    def __init__(self, before, after, problem):
        self._before = before
        self._after = after
        self.problem = problem

    def before(self, instr):
        return self._before[id(instr)]

    def after(self, instr):
        return self._after[id(instr)]


def _branch_kind(instr):
    """Classify a node for the solver.

    Returns ``(is_cti, label_target, falls_through)`` where
    ``label_target`` is the LABEL instruction of an intra-list branch
    (or None for exits) and ``falls_through`` says whether control can
    continue to the next node.
    """
    if instr.is_bundle or not instr.is_cti():
        return False, None, True
    target = instr.target if instr.num_srcs() else None
    label = target.label if isinstance(target, LabelRef) else None
    # Unconditional transfers never reach the next instruction, with two
    # trace-inlining exceptions: an inlined call (note["inline"]) pushes
    # the return address and continues on-trace, and an inlined indirect
    # branch (note["inline_target"]) falls through when its target check
    # hits.  A plain call is an exit whose return re-enters through
    # dispatch, so for fragment-local analyses it does not fall through.
    falls = instr.is_cond_branch()
    if not falls and isinstance(instr.note, dict):
        falls = bool(
            instr.note.get("inline")
            or instr.note.get("inline_target") is not None
        )
    return True, label, falls


def solve(problem, ilist):
    """Run ``problem`` over ``ilist`` in a single pass.

    Returns a :class:`DataflowResult`.  Backward label references (which
    violate the linearity restriction) are handled conservatively by
    joining :meth:`~DataflowProblem.exit_state`; the fragment verifier
    reports them as errors separately.
    """
    nodes = list(ilist)
    if problem.direction == BACKWARD:
        return _solve_backward(problem, nodes)
    return _solve_forward(problem, nodes)


def _solve_backward(problem, nodes):
    before = {}
    after = {}
    label_states = {}
    state = problem.boundary()
    for instr in reversed(nodes):
        is_cti, label, falls = _branch_kind(instr)
        if is_cti:
            if label is not None:
                target_state = label_states.get(id(label))
                if target_state is None:
                    # backward reference or foreign label: conservative
                    target_state = problem.exit_state()
                out = problem.join(state, target_state) if falls else target_state
            else:
                out = (
                    problem.join(state, problem.exit_state())
                    if falls
                    else problem.exit_state()
                )
        else:
            out = state
        after[id(instr)] = out
        state = problem.transfer(instr, out)
        before[id(instr)] = state
        if instr.level >= 2 and instr.is_label():
            label_states[id(instr)] = state
    return DataflowResult(before, after, problem)


def _solve_forward(problem, nodes):
    before = {}
    after = {}
    # States flowing into each label from branches seen earlier.
    pending = {}
    state = problem.boundary()
    for instr in nodes:
        if instr.level >= 2 and instr.is_label() and id(instr) in pending:
            incoming = pending.pop(id(instr))
            state = incoming if state is None else problem.join(state, incoming)
        if state is None:
            # Unreachable straight-line code after an unconditional
            # transfer; stay unreachable until a targeted label.
            before[id(instr)] = None
            after[id(instr)] = None
            continue
        before[id(instr)] = state
        out = problem.transfer(instr, state)
        after[id(instr)] = out
        is_cti, label, falls = _branch_kind(instr)
        if is_cti and label is not None:
            prior = pending.get(id(label))
            pending[id(label)] = out if prior is None else problem.join(prior, out)
        state = out if (not is_cti or falls) else None
    return DataflowResult(before, after, problem)
