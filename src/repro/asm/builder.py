"""Programmatic code builder with labels and branch relaxation.

One method per mnemonic (``b.mov(...)``, ``b.jnz("loop")``, …), with
light operand sugar:

* a ``Reg`` becomes a register operand;
* an ``int`` becomes an immediate;
* a ``str`` names a label (branch targets and ``lea``-style address
  materialization via :meth:`CodeBuilder.mov_label`);
* :func:`mem` builds memory operands.

``assemble`` performs iterative branch relaxation so hot loops get the
compact rel8 branch encodings — making the generated code's length
distribution realistic for the boundary-scanning decoder.
"""

from repro.ir.shapes import explicit_arity
from repro.isa.encoder import encode_instr
from repro.isa.opcodes import OP_INFO, Opcode
from repro.isa.operands import (
    ImmOperand,
    MemOperand,
    Operand,
    PcOperand,
    RegOperand,
)
from repro.isa.registers import Reg
from repro.loader.image import Image


def mem(base=None, index=None, scale=1, disp=0, size=4):
    """Memory operand helper (exported sugar)."""
    return MemOperand(base=base, index=index, scale=scale, disp=disp, size=size)


class _LabelTarget:
    """Placeholder operand: a branch to a not-yet-placed label."""

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name


class _LabelImm:
    """Placeholder immediate: the address of a label (for call tables)."""

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name


class CodeBuilder:
    """Accumulates instructions; assembles to bytes or an Image."""

    def __init__(self, base=0x1000):
        self.base = base
        self._items = []  # ("instr", opcode, ops) | ("label", name) | ("bytes", data)
        self._label_names = set()

    # ----------------------------------------------------------- structure

    def label(self, name):
        """Bind ``name`` to the current position."""
        if name in self._label_names:
            raise ValueError("duplicate label %r" % name)
        self._label_names.add(name)
        self._items.append(("label", name))
        return name

    def raw(self, data):
        """Emit literal bytes (e.g. pre-encoded instructions)."""
        self._items.append(("bytes", bytes(data)))

    def word_label(self, name):
        """Emit a 4-byte little-endian word holding ``name``'s address.

        This is how jump tables are placed in the text section: the
        entries resolve when labels are placed.
        """
        self._items.append(("wordlabel", name))

    def instr(self, opcode, *operands):
        """Emit one instruction with operand sugar applied."""
        opcode = Opcode(opcode)
        converted = tuple(self._convert(op) for op in operands)
        # The movb mnemonic implies a byte-sized destination, like real
        # assemblers where the mnemonic carries the operand size.
        if (
            opcode == Opcode.MOVB_STORE
            and converted
            and isinstance(converted[0], MemOperand)
            and converted[0].size != 1
        ):
            m = converted[0]
            converted = (
                MemOperand(base=m.base, index=m.index, scale=m.scale,
                           disp=m.disp, size=1),
            ) + converted[1:]
        arity = explicit_arity(opcode)
        if len(converted) != arity:
            raise ValueError(
                "%s takes %d operand(s), got %d"
                % (OP_INFO[opcode].name, arity, len(converted))
            )
        self._items.append(("instr", opcode, converted))

    @staticmethod
    def _convert(op):
        if isinstance(op, (Operand, _LabelTarget, _LabelImm)):
            return op
        if isinstance(op, Reg):
            return RegOperand(op)
        if isinstance(op, int):
            return ImmOperand(op, size=4)
        if isinstance(op, str):
            return _LabelTarget(op)
        raise TypeError("cannot convert %r to an operand" % (op,))

    def label_address(self, name):
        """Immediate operand holding a label's address (jump tables)."""
        return _LabelImm(name)

    # -------------------------------------------------------------- assembly

    def assemble(self):
        """Resolve labels and encode.  Returns ``(bytes, labels)``.

        Branch relaxation is the standard grow-only fixpoint: start with
        every branch optimistically short, then pin a branch to its long
        form whenever its displacement does not fit.  Lengths never
        shrink, so the iteration terminates in at most one pass per
        branch, and the final layout is self-consistent.
        """
        # Optimistic initial lengths (labels assumed at distance zero).
        lengths = []
        for item in self._items:
            if item[0] == "instr":
                lengths.append(self._length_of(item, None, allow_short=True))
            elif item[0] == "bytes":
                lengths.append(len(item[1]))
            elif item[0] == "wordlabel":
                lengths.append(4)
            else:
                lengths.append(0)

        pinned_long = set()
        labels = {}
        for _ in range(len(self._items) + 2):
            # Place labels from current length estimates.
            pc = self.base
            for item, length in zip(self._items, lengths):
                if item[0] == "label":
                    labels[item[1]] = pc
                pc += length
            changed = False
            pc = self.base
            for i, item in enumerate(self._items):
                if item[0] == "instr":
                    allow_short = i not in pinned_long
                    new_len = self._length_of(
                        item, labels, allow_short=allow_short, pc=pc
                    )
                    if new_len > lengths[i]:
                        pinned_long.add(i)
                        lengths[i] = self._length_of(
                            item, labels, allow_short=False, pc=pc
                        )
                        changed = True
                pc += lengths[i]
            if not changed:
                break
        else:
            raise AssertionError("branch relaxation failed to converge")

        out = bytearray()
        pc = self.base
        for i, (item, length) in enumerate(zip(self._items, lengths)):
            if item[0] == "bytes":
                out += item[1]
            elif item[0] == "wordlabel":
                if item[1] not in labels:
                    raise KeyError("undefined label %r" % item[1])
                out += labels[item[1]].to_bytes(4, "little")
            elif item[0] == "instr":
                raw = self._encode_item(
                    item, labels, pc, allow_short=i not in pinned_long
                )
                if len(raw) != length:
                    raise AssertionError("layout instability at 0x%x" % pc)
                out += raw
            pc += length
        return bytes(out), labels

    def _resolve_ops(self, item, labels, missing_ok=False):
        _, opcode, ops = item
        resolved = []
        for op in ops:
            if isinstance(op, _LabelTarget):
                if labels is None or op.name not in labels:
                    if missing_ok:
                        resolved.append(PcOperand(0))
                        continue
                    raise KeyError("undefined label %r" % op.name)
                resolved.append(PcOperand(labels[op.name]))
            elif isinstance(op, _LabelImm):
                if labels is None or op.name not in labels:
                    if missing_ok:
                        resolved.append(ImmOperand(0, size=4))
                        continue
                    raise KeyError("undefined label %r" % op.name)
                resolved.append(ImmOperand(labels[op.name], size=4))
            else:
                resolved.append(op)
        return opcode, tuple(resolved)

    def _length_of(self, item, labels, allow_short, pc=None):
        opcode, ops = self._resolve_ops(item, labels, missing_ok=labels is None)
        if labels is None:
            # Optimistic measurement: unresolved labels act as if at
            # distance zero from the instruction.
            pc = 0
            ops = tuple(
                PcOperand(0) if isinstance(op, PcOperand) else op for op in ops
            )
        return len(
            encode_instr(
                opcode, ops, pc=pc if pc is not None else 0, allow_short=allow_short
            )
        )

    def _encode_item(self, item, labels, pc, allow_short):
        opcode, ops = self._resolve_ops(item, labels)
        return encode_instr(opcode, ops, pc=pc, allow_short=allow_short)

    def image(self, entry="main", data_sections=()):
        """Assemble into an :class:`Image`.

        ``entry`` is a label name (or an address).  ``data_sections`` is
        an iterable of ``(name, addr, bytes)``.
        """
        code, labels = self.assemble()
        image = Image()
        image.add_section(".text", self.base, code)
        for name, addr, data in data_sections:
            image.add_section(name, addr, data, writable=True)
        for name, addr in labels.items():
            image.add_symbol(name, addr)
        image.entry = labels[entry] if isinstance(entry, str) else entry
        return image


def _install_mnemonics():
    import keyword

    sanitized = {"jmp*": "jmp_ind", "call*": "call_ind", "<label>": None}

    def make(opcode):
        def method(self, *operands):
            self.instr(opcode, *operands)

        method.__name__ = OP_INFO[opcode].name
        method.__doc__ = "Emit a `%s` instruction." % OP_INFO[opcode].name
        return method

    for opcode, info in OP_INFO.items():
        name = sanitized.get(info.name, info.name)
        if name is None or name == "label":
            continue
        if keyword.iskeyword(name):
            name += "_"  # and_, or_, not_
        setattr(CodeBuilder, name, make(opcode))


_install_mnemonics()
