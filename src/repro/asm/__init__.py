"""Program construction: a code builder and a small text assembler."""

from repro.asm.builder import CodeBuilder, mem
from repro.asm.assembler import assemble, AsmError

__all__ = ["CodeBuilder", "mem", "assemble", "AsmError"]
