"""A small text assembler for RIO-32.

Syntax (Intel-flavored, one statement per line, ``;`` comments)::

    .entry main             ; entry-point label
    .data 0x100000          ; subsequent dd/db go to the data section
    counter: dd 0
    .text
    main:
        mov eax, 0
        mov ecx, [0x100000]
    loop:
        add eax, ecx
        dec ecx
        jnz loop
        mov ebx, eax
        mov eax, 3          ; SYS_WRITE_U32
        syscall
        mov eax, 1          ; SYS_EXIT
        mov ebx, 0
        syscall

Memory operands: ``[base + index*scale + disp]`` with optional ``byte``
/ ``word`` size prefix.  Branch targets are labels.  ``imm`` operands
accept decimal, hex, and ``label`` (the label's address) for jump
tables.
"""

import re

from repro.asm.builder import CodeBuilder
from repro.isa.opcodes import opcode_from_name
from repro.isa.operands import ImmOperand, MemOperand
from repro.isa.registers import reg_from_name


class AsmError(Exception):
    """Syntax or semantic error in assembly text."""

    def __init__(self, lineno, message):
        super().__init__("line %d: %s" % (lineno, message))
        self.lineno = lineno


_REG_NAMES = frozenset(
    "eax ecx edx ebx esp ebp esi edi".split()
)

_MEM_RE = re.compile(r"^(?:(byte|word|dword)\s+)?\[(.+)\]$")

_MNEMONIC_ALIASES = {
    "jmpi": "jmp*",
    "calli": "call*",
}


def _parse_int(text, lineno):
    try:
        return int(text, 0)
    except ValueError:
        raise AsmError(lineno, "bad integer %r" % text)


def _parse_mem(match, lineno, label_imm):
    size = {"byte": 1, "word": 2, "dword": 4, None: 4}[match.group(1)]
    body = match.group(2).replace(" ", "")
    base = index = None
    scale = 1
    disp = 0
    # split on +/- keeping signs
    terms = re.findall(r"[+-]?[^+-]+", body)
    for term in terms:
        sign = -1 if term.startswith("-") else 1
        term_body = term.lstrip("+-")
        if "*" in term_body:
            reg_txt, scale_txt = term_body.split("*", 1)
            if index is not None:
                raise AsmError(lineno, "two index registers")
            try:
                index = reg_from_name(reg_txt)
            except KeyError:
                raise AsmError(lineno, "bad index register %r" % reg_txt)
            scale = _parse_int(scale_txt, lineno)
            if sign < 0:
                raise AsmError(lineno, "negative index term")
        elif term_body.lower() in _REG_NAMES:
            reg = reg_from_name(term_body)
            if sign < 0:
                raise AsmError(lineno, "negative base register")
            if base is None:
                base = reg
            elif index is None:
                index = reg
            else:
                raise AsmError(lineno, "too many registers in address")
        else:
            if re.match(r"^[A-Za-z_.][\w.]*$", term_body):
                disp += sign * label_imm(term_body)
            else:
                disp += sign * _parse_int(term_body, lineno)
    try:
        return MemOperand(base=base, index=index, scale=scale, disp=disp, size=size)
    except ValueError as exc:
        raise AsmError(lineno, str(exc))


def assemble(source, base=0x1000, data_base=0x100000, entry="main"):
    """Assemble source text into an :class:`Image`."""
    builder = CodeBuilder(base=base)
    data = bytearray()
    data_symbols = {}
    pending_entry = [entry]
    in_data = False

    # Pass 0: collect data-symbol addresses so code can reference them.
    cursor = 0
    for lineno, raw_line in enumerate(source.splitlines(), 1):
        line = raw_line.split(";")[0].strip()
        if not line:
            continue
        if line.startswith(".data"):
            in_data = True
            continue
        if line.startswith(".text") or line.startswith(".entry"):
            in_data = False
            continue
        if not in_data:
            continue
        m = re.match(r"^(?:([A-Za-z_.][\w.]*):\s*)?(d[bd])\s+(.*)$", line)
        if not m:
            raise AsmError(lineno, "bad data statement %r" % line)
        label, directive, rest = m.groups()
        if label:
            data_symbols[label] = data_base + cursor
        values = [v.strip() for v in rest.split(",")]
        width = 1 if directive == "db" else 4
        cursor += width * len(values)

    def label_imm(name):
        if name in data_symbols:
            return data_symbols[name]
        raise KeyError(name)

    def parse_operand(text, lineno, code_labels):
        text = text.strip()
        m = _MEM_RE.match(text)
        if m:
            def resolve(name):
                try:
                    return label_imm(name)
                except KeyError:
                    raise AsmError(lineno, "unknown data symbol %r" % name)

            return _parse_mem(m, lineno, resolve)
        if text.lower() in _REG_NAMES:
            return reg_from_name(text)
        if re.match(r"^[+-]?(0x[0-9a-fA-F]+|\d+)$", text):
            return ImmOperand(_parse_int(text, lineno), size=4)
        if re.match(r"^[A-Za-z_.][\w.]*$", text):
            if text in data_symbols:
                return ImmOperand(data_symbols[text], size=4)
            # a code label: branch target or address immediate
            return text
        raise AsmError(lineno, "cannot parse operand %r" % text)

    in_data = False
    for lineno, raw_line in enumerate(source.splitlines(), 1):
        line = raw_line.split(";")[0].strip()
        if not line:
            continue
        if line.startswith(".entry"):
            pending_entry[0] = line.split()[1]
            continue
        if line.startswith(".data"):
            in_data = True
            continue
        if line.startswith(".text"):
            in_data = False
            continue
        if in_data:
            m = re.match(r"^(?:[A-Za-z_.][\w.]*:\s*)?(d[bd])\s+(.*)$", line)
            directive, rest = m.groups()
            for value_text in rest.split(","):
                value_text = value_text.strip()
                value = (
                    data_symbols[value_text]
                    if value_text in data_symbols
                    else _parse_int(value_text, lineno)
                )
                if directive == "db":
                    data.append(value & 0xFF)
                else:
                    data += (value & 0xFFFFFFFF).to_bytes(4, "little")
            continue

        # code line: optional leading label(s)
        while True:
            m = re.match(r"^([A-Za-z_.][\w.]*):\s*(.*)$", line)
            if not m:
                break
            builder.label(m.group(1))
            line = m.group(2).strip()
        if not line:
            continue

        parts = line.split(None, 1)
        mnemonic = _MNEMONIC_ALIASES.get(parts[0].lower(), parts[0].lower())
        try:
            opcode = opcode_from_name(mnemonic)
        except KeyError:
            raise AsmError(lineno, "unknown mnemonic %r" % parts[0])
        operand_texts = (
            [t for t in _split_operands(parts[1])] if len(parts) > 1 else []
        )
        operands = [parse_operand(t, lineno, None) for t in operand_texts]
        try:
            builder.instr(opcode, *operands)
        except (ValueError, TypeError) as exc:
            raise AsmError(lineno, str(exc))

    sections = []
    if data:
        sections.append((".data", data_base, bytes(data)))
    try:
        return builder.image(entry=pending_entry[0], data_sections=sections)
    except KeyError as exc:
        raise AsmError(0, "undefined label %s" % exc)


def _split_operands(text):
    """Split on commas that are not inside brackets."""
    out = []
    depth = 0
    current = []
    for ch in text:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            out.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        out.append("".join(current))
    return [t.strip() for t in out if t.strip()]
