"""The five levels of instruction detail (paper Section 3.1, Figure 2)."""

LEVEL_0 = 0  # bundled un-decoded raw bytes, final boundary only
LEVEL_1 = 1  # one instruction's raw bytes, un-decoded
LEVEL_2 = 2  # opcode + eflags effects decoded
LEVEL_3 = 3  # fully decoded, raw bytes valid
LEVEL_4 = 4  # fully decoded, raw bytes invalid (must be encoded)

LEVEL_NAMES = {
    LEVEL_0: "Level 0 (bundled raw)",
    LEVEL_1: "Level 1 (raw)",
    LEVEL_2: "Level 2 (opcode+eflags)",
    LEVEL_3: "Level 3 (decoded, raw valid)",
    LEVEL_4: "Level 4 (decoded, raw invalid)",
}
