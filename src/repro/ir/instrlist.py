"""InstrList: a doubly-linked list of instructions with linear control flow.

Basic blocks and traces are both InstrLists: single entrance, possibly
multiple exits, **no internal join points** — transfers of control that
originate inside must exit the list.  This restriction (paper Section 3.1)
is what keeps client analyses cheap; it is enforced here by construction:
the only intra-list targets allowed are forward references to LABEL
pseudo-instructions via :class:`~repro.ir.instr.LabelRef`.
"""

from repro.ir.instr import Instr, LabelRef


class InstrList:
    """Doubly-linked list of :class:`Instr` nodes."""

    def __init__(self, instrs=()):
        self._first = None
        self._last = None
        self._count = 0
        for instr in instrs:
            self.append(instr)

    # ------------------------------------------------------------- structure

    def first(self):
        return self._first

    def last(self):
        return self._last

    def __len__(self):
        return self._count

    def __iter__(self):
        node = self._first
        while node is not None:
            # capture next before yielding so callers may remove/replace
            nxt = node.next
            yield node
            node = nxt

    def __bool__(self):
        return self._first is not None

    def append(self, instr):
        self._check_unlinked(instr)
        instr.owner = self
        instr.prev = self._last
        instr.next = None
        if self._last is not None:
            self._last.next = instr
        else:
            self._first = instr
        self._last = instr
        self._count += 1
        return instr

    def prepend(self, instr):
        self._check_unlinked(instr)
        instr.owner = self
        instr.next = self._first
        instr.prev = None
        if self._first is not None:
            self._first.prev = instr
        else:
            self._last = instr
        self._first = instr
        self._count += 1
        return instr

    def insert_after(self, where, instr):
        self._check_unlinked(instr)
        instr.owner = self
        instr.prev = where
        instr.next = where.next
        if where.next is not None:
            where.next.prev = instr
        else:
            self._last = instr
        where.next = instr
        self._count += 1
        return instr

    def insert_before(self, where, instr):
        self._check_unlinked(instr)
        instr.owner = self
        instr.next = where
        instr.prev = where.prev
        if where.prev is not None:
            where.prev.next = instr
        else:
            self._first = instr
        where.prev = instr
        self._count += 1
        return instr

    def remove(self, instr):
        if instr.prev is not None:
            instr.prev.next = instr.next
        else:
            self._first = instr.next
        if instr.next is not None:
            instr.next.prev = instr.prev
        else:
            self._last = instr.prev
        instr.prev = None
        instr.next = None
        instr.owner = None
        self._count -= 1
        return instr

    def replace(self, old, new):
        """Replace ``old`` with ``new`` in place (instrlist_replace)."""
        self._check_unlinked(new)
        self.insert_after(old, new)
        self.remove(old)
        # Carry exit-CTI bookkeeping over to the replacement.
        new.is_exit_cti = old.is_exit_cti
        new.exit_stub_code = old.exit_stub_code
        new.exit_always_stub = old.exit_always_stub
        return new

    def extend(self, instrs):
        for instr in instrs:
            self.append(instr)

    def clear(self):
        node = self._first
        while node is not None:
            nxt = node.next
            node.prev = None
            node.next = None
            node.owner = None
            node = nxt
        self._first = None
        self._last = None
        self._count = 0

    @staticmethod
    def _check_unlinked(instr):
        if instr.owner is not None:
            raise ValueError("instruction is already linked into a list")

    # -------------------------------------------------------------- levels

    def expand_bundles(self):
        """Replace every Level-0 bundle node with per-instruction nodes."""
        for node in self:
            if node.is_bundle:
                pieces = node.split()
                anchor = node
                for piece in pieces:
                    self.insert_after(anchor, piece)
                    anchor = piece
                self.remove(node)
        return self

    def decode_all(self):
        """Raise every instruction to Level 3 (keeping raw bits valid).

        This is what DynamoRIO does to a trace before handing it to a
        client: full information, but unmodified instructions still
        encode with a byte copy.
        """
        self.expand_bundles()
        for node in self:
            node.srcs  # property access triggers the Level-3 decode
        return self

    def instr_count(self):
        """Number of real machine instructions (labels excluded, bundles
        counted by scanning their boundaries)."""
        from repro.isa.decoder import decode_boundary

        total = 0
        for node in self:
            if node.is_bundle:
                off = 0
                while off < len(node.raw):
                    off += decode_boundary(node.raw, off)
                    total += 1
            elif not (node.level >= 2 and node.is_label()):
                total += 1
        return total

    # -------------------------------------------------------------- encoding

    def encode(self, start_pc):
        """Two-pass encode of the whole list at ``start_pc``.

        Pass 1 lays out instructions at worst-case lengths to resolve
        LABEL addresses; pass 2 encodes with short branch forms disabled
        so the layout stays valid.  Returns ``bytes``.
        """
        label_addresses = {}
        pc = start_pc
        for node in self:
            if node.is_label():
                label_addresses[node] = pc
            else:
                pc += node.max_length()

        out = bytearray()
        pc = start_pc
        for node in self:
            if node.is_label():
                continue
            raw = node.encode(
                pc=pc,
                allow_short=False,
                label_addresses=label_addresses,
                force_pc_relative=True,
            )
            if len(raw) != node.max_length():
                raise AssertionError(
                    "layout instability encoding %r: %d != %d"
                    % (node, len(raw), node.max_length())
                )
            out += raw
            pc += len(raw)
        return bytes(out)

    # ----------------------------------------------------------------- misc

    def labels_targeted(self):
        """All LABEL instructions referenced by branches in this list."""
        targets = set()
        for node in self:
            if node.level >= 2 and node.is_cti():
                op = node.target
                if isinstance(op, LabelRef):
                    targets.add(op.label)
        return targets

    def memory_footprint(self):
        """Total representation memory (Table 2 metric)."""
        import sys

        return sys.getsizeof(self) + sum(n.memory_footprint() for n in self)

    def disassemble(self):
        return "\n".join(node.disassemble() for node in self)

    @classmethod
    def from_code(cls, code, pc, level=0):
        return _from_code(cls, code, pc, level)


def copy_instructions(instrs):
    """Copy a sequence of Instr nodes, preserving intra-sequence
    structure: note dicts are copied shallowly and LabelRef targets that
    point at labels *within the sequence* are remapped to the copies.

    Returns the list of unlinked copies.
    """
    originals = list(instrs)
    copies = [instr.copy() for instr in originals]
    label_map = {}
    for original, copy in zip(originals, copies):
        if original.level >= 2 and original.is_label():
            label_map[original] = copy
    for copy in copies:
        if isinstance(copy.note, dict):
            copy.note = dict(copy.note)
        if copy.level >= 2 and not copy.is_label() and copy.is_cti():
            target = copy.target
            if isinstance(target, LabelRef) and target.label in label_map:
                copy.set_target(LabelRef(label_map[target.label]))
    return copies


def _from_code(cls, code, pc, level=0):
        """Build a list from raw code bytes at the given level.

        ``level=0`` produces bundle nodes (non-CTI runs bundled into a
        single Level-0 Instr, mirroring how DynamoRIO builds a basic
        block's InstrList with only the block-ending CTI decoded);
        ``level=1`` produces one raw node per instruction; higher levels
        decode further.
        """
        from repro.isa.decoder import decode_boundary

        il = cls()
        if level == 0:
            il.append(Instr.bundle(code, pc))
            return il
        off = 0
        while off < len(code):
            n = decode_boundary(code, off)
            instr = Instr.from_raw(code[off : off + n], pc + off)
            if level >= 2:
                instr.opcode  # trigger level-2 decode
            if level >= 3:
                instr.srcs  # trigger level-3 decode
            il.append(instr)
            off += n
        return il
