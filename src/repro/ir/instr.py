"""The ``Instr`` data structure with adaptive levels of detail.

An ``Instr`` starts at the level its constructor implies and moves
between levels automatically:

* asking for the opcode of a Level-0/1 instruction performs the Level-2
  decode in place;
* asking for operands performs the full Level-3 decode;
* any mutation (operand, opcode, prefixes) invalidates the raw bits,
  moving the instruction to Level 4;
* encoding a Level-0..3 instruction is a raw-byte copy; only Level 4
  pays for template-search encoding.

Instances double as linked-list nodes of an
:class:`~repro.ir.instrlist.InstrList` (``prev``/``next``), exactly like
DynamoRIO's ``instr_t``.  The ``note`` field is the client annotation
slot the paper describes.
"""

import sys

from repro.isa.decoder import decode_boundary, decode_full, decode_opcode
from repro.isa.encoder import encode_instr
from repro.isa.opcodes import OP_INFO, Opcode
from repro.isa.operands import MemOperand, PcOperand
from repro.ir.levels import LEVEL_0, LEVEL_1, LEVEL_2, LEVEL_3, LEVEL_4, LEVEL_NAMES
from repro.ir.shapes import expand_operands, extract_explicit


class BundleError(Exception):
    """Operation requires a single instruction but this is a bundle."""


class LabelRef:
    """A branch target that points at a LABEL pseudo-instruction.

    Resolved to a concrete :class:`PcOperand` when the owning
    :class:`InstrList` is encoded.
    """

    __slots__ = ("label",)

    def __init__(self, label):
        if label.opcode != Opcode.LABEL:
            raise ValueError("LabelRef must point at a LABEL instruction")
        self.label = label

    def is_reg(self):
        return False

    def is_imm(self):
        return False

    def is_mem(self):
        return False

    def is_pc(self):
        return False

    def uses_reg(self, reg):
        return False

    def __repr__(self):
        return "<label %x>" % id(self.label)


class Instr:
    """One instruction (or Level-0 bundle) in an InstrList."""

    __slots__ = (
        "prev",
        "next",
        "owner",
        "note",
        "is_meta",
        "is_exit_cti",
        "exit_stub_code",
        "exit_always_stub",
        "_level",
        "_raw",
        "_raw_pc",
        "_bundle_count",
        "_opcode",
        "_eflags",
        "_prefixes",
        "_srcs",
        "_dsts",
    )

    def __init__(self):
        self.prev = None
        self.next = None
        self.owner = None  # the InstrList this node is linked into
        self.note = None
        # Meta-instructions (client-inserted instrumentation) execute
        # for the client's benefit, not the application's: the fragment
        # verifier holds them to the transparency rules (no application
        # state clobbered).  Mark via dr.instr_set_meta().
        self.is_meta = False
        # Exit-CTI support (paper Section 3.2, custom exit stubs).
        self.is_exit_cti = False
        self.exit_stub_code = None  # InstrList prepended to this exit's stub
        self.exit_always_stub = False  # exit goes through stub even when linked
        self._level = LEVEL_4
        self._raw = None
        self._raw_pc = None
        self._bundle_count = None
        self._opcode = None
        self._eflags = 0
        self._prefixes = b""
        self._srcs = None
        self._dsts = None

    # ---------------------------------------------------------- constructors

    @classmethod
    def bundle(cls, raw, pc):
        """Level 0: raw bytes of one *or more* instructions.

        Only the final boundary (total length) is recorded; individual
        boundaries are discovered when the bundle is expanded.
        """
        instr = cls()
        instr._level = LEVEL_0
        instr._raw = bytes(raw)
        instr._raw_pc = pc
        instr._bundle_count = None  # unknown until expanded
        return instr

    @classmethod
    def from_raw(cls, raw, pc):
        """Level 1: the raw bytes of exactly one instruction."""
        instr = cls()
        instr._level = LEVEL_1
        instr._raw = bytes(raw)
        instr._raw_pc = pc
        return instr

    @classmethod
    def from_decoded(cls, opcode, explicit, raw=None, pc=None, prefixes=()):
        """Level 3 (raw given) or Level 4 (raw is None)."""
        instr = cls()
        instr._opcode = Opcode(opcode)
        instr._eflags = OP_INFO[instr._opcode].eflags
        instr._prefixes = bytes(prefixes)
        srcs, dsts = expand_operands(instr._opcode, tuple(explicit))
        instr._srcs = srcs
        instr._dsts = dsts
        if raw is not None:
            instr._level = LEVEL_3
            instr._raw = bytes(raw)
            instr._raw_pc = pc
        else:
            instr._level = LEVEL_4
        return instr

    @classmethod
    def create(cls, opcode, *explicit):
        """Level 4: a brand new instruction from explicit operands."""
        return cls.from_decoded(opcode, explicit)

    @classmethod
    def label(cls):
        """A LABEL pseudo-instruction (encodes to zero bytes)."""
        return cls.from_decoded(Opcode.LABEL, ())

    # ------------------------------------------------------------- level ops

    @property
    def level(self):
        return self._level

    @property
    def raw(self):
        """The raw bytes, or None if invalid (Level 4)."""
        return self._raw

    @property
    def raw_pc(self):
        """Original address of the raw bytes (for PC-relative operands)."""
        return self._raw_pc

    def raw_bits_valid(self):
        return self._raw is not None

    @property
    def is_bundle(self):
        return self._level == LEVEL_0

    def split(self):
        """Split a Level-0 bundle into a list of Level-1 Instrs.

        This is the boundary-finding decode: each produced ``Instr``
        holds only the un-decoded raw bits of one instruction.
        """
        if self._level != LEVEL_0:
            raise BundleError("split() requires a Level-0 bundle")
        out = []
        off = 0
        while off < len(self._raw):
            n = decode_boundary(self._raw, off)
            out.append(
                Instr.from_raw(self._raw[off : off + n], self._raw_pc + off)
            )
            off += n
        self._bundle_count = len(out)
        return out

    def _require_single(self, what):
        if self._level == LEVEL_0:
            # A bundle of exactly one instruction can be promoted in place.
            if decode_boundary(self._raw, 0) == len(self._raw):
                self._level = LEVEL_1
            else:
                raise BundleError(
                    "%s requires a single instruction; expand the bundle "
                    "first (InstrList.expand_bundles)" % what
                )

    def _decode_to_level2(self):
        self._require_single("opcode query")
        if self._level >= LEVEL_2:
            return
        opcode, eflags, _length = decode_opcode(self._raw, 0)
        self._opcode = opcode
        self._eflags = eflags
        self._level = LEVEL_2

    def _decode_to_level3(self):
        self._require_single("operand query")
        if self._level >= LEVEL_3:
            return
        d = decode_full(self._raw, 0, pc=self._raw_pc)
        self._opcode = d.opcode
        self._eflags = d.eflags
        self._prefixes = bytes(d.prefixes)
        srcs, dsts = expand_operands(d.opcode, d.operands)
        self._srcs = srcs
        self._dsts = dsts
        self._level = LEVEL_3

    def _invalidate_raw(self):
        """A mutation happened: raw bits no longer match. Level 4."""
        if self._level < LEVEL_3:
            self._decode_to_level3()
        self._raw = None
        self._raw_pc = None
        self._level = LEVEL_4

    # ----------------------------------------------------------- field access

    @property
    def opcode(self):
        if self._level < LEVEL_2:
            self._decode_to_level2()
        return self._opcode

    @property
    def eflags(self):
        """Combined read/write eflags effects mask (Level 2 information)."""
        if self._level < LEVEL_2:
            self._decode_to_level2()
        return self._eflags

    @property
    def info(self):
        return OP_INFO[self.opcode]

    @property
    def prefixes(self):
        if self._level < LEVEL_3:
            self._decode_to_level3()
        return self._prefixes

    def set_prefixes(self, prefixes):
        if self._level < LEVEL_3:
            self._decode_to_level3()
        prefixes = bytes(prefixes)
        if prefixes != self._prefixes:
            self._prefixes = prefixes
            self._invalidate_raw()

    @property
    def srcs(self):
        if self._level < LEVEL_3:
            self._decode_to_level3()
        return tuple(self._srcs)

    @property
    def dsts(self):
        if self._level < LEVEL_3:
            self._decode_to_level3()
        return tuple(self._dsts)

    def num_srcs(self):
        return len(self.srcs)

    def num_dsts(self):
        return len(self.dsts)

    def src(self, i):
        return self.srcs[i]

    def dst(self, i):
        return self.dsts[i]

    def set_src(self, i, operand):
        if self._level < LEVEL_3:
            self._decode_to_level3()
        self._srcs[i] = operand
        self._invalidate_raw()

    def set_dst(self, i, operand):
        if self._level < LEVEL_3:
            self._decode_to_level3()
        self._dsts[i] = operand
        self._invalidate_raw()

    def set_opcode(self, opcode):
        if self._level < LEVEL_3:
            self._decode_to_level3()
        self._opcode = Opcode(opcode)
        self._eflags = OP_INFO[self._opcode].eflags
        self._invalidate_raw()

    # -------------------------------------------------------- classification

    def is_cti(self):
        return self.info.is_cti

    def is_cond_branch(self):
        return self.info.is_cond_branch

    def is_call(self):
        return self.info.is_call

    def is_ret(self):
        return self.info.is_ret

    def is_indirect_branch(self):
        return self.info.is_indirect

    def is_label(self):
        return self._level >= LEVEL_2 and self._opcode == Opcode.LABEL

    @property
    def target(self):
        """Branch target operand (PcOperand, LabelRef, or r/m for indirect)."""
        if not self.is_cti():
            raise ValueError("%r is not a control transfer" % self)
        return self.srcs[0]

    def set_target(self, operand):
        if not self.is_cti():
            raise ValueError("%r is not a control transfer" % self)
        self.set_src(0, operand)

    def reads_memory(self):
        if self.opcode == Opcode.LEA:
            return False
        return any(isinstance(op, MemOperand) for op in self.srcs)

    def writes_memory(self):
        return any(isinstance(op, MemOperand) for op in self.dsts)

    def uses_reg(self, reg):
        return any(op.uses_reg(reg) for op in self.srcs) or any(
            op.uses_reg(reg) for op in self.dsts
        )

    # -------------------------------------------------------------- encoding

    def _has_pc_relative(self):
        return any(isinstance(op, (PcOperand, LabelRef)) for op in self.srcs)

    def explicit_operands(self):
        """The canonical explicit operand tuple used for encoding."""
        if self._level < LEVEL_3:
            self._decode_to_level3()
        return extract_explicit(self._opcode, self._srcs, self._dsts)

    def encode(self, pc=None, allow_short=True, label_addresses=None,
               force_pc_relative=False):
        """Encode to machine bytes.

        Raw bits are copied whenever they are valid and still correct
        for the placement address ``pc`` (PC-relative instructions moved
        to a new address must be re-encoded).  ``label_addresses`` maps
        LABEL instructions to resolved addresses for intra-list branches.
        With ``force_pc_relative`` PC-relative CTIs are always re-encoded
        even at their original address, so their length matches
        :meth:`max_length` (used by the two-pass list encoder).
        """
        if self._raw is not None and self._level <= LEVEL_3:
            if self._level == LEVEL_0 and self._bundle_count != 1:
                # Bundles contain no CTIs by construction (the basic-block
                # builder bundles only straight-line runs), so a byte copy
                # is always correct.
                return self._raw
            if not force_pc_relative and (pc is None or pc == self._raw_pc):
                return self._raw
            if not self.is_cti() or not self._has_pc_relative():
                return self._raw
            # fall through: re-encode the moved PC-relative instruction
        explicit = self.explicit_operands()
        if label_addresses is not None or any(
            isinstance(op, LabelRef) for op in explicit
        ):
            resolved = []
            for op in explicit:
                if isinstance(op, LabelRef):
                    if label_addresses is None or op.label not in label_addresses:
                        raise ValueError("unresolved label in %r" % self)
                    resolved.append(PcOperand(label_addresses[op.label]))
                else:
                    resolved.append(op)
            explicit = tuple(resolved)
        return encode_instr(
            self._opcode,
            explicit,
            pc=pc,
            prefixes=self._prefixes,
            allow_short=allow_short,
        )

    def max_length(self):
        """Worst-case encoded length (stable under placement address)."""
        if self._raw is not None and not (
            self._level >= LEVEL_2 and self.is_cti() and self._has_pc_relative()
        ):
            return len(self._raw)
        if self.is_label():
            return 0
        explicit = tuple(
            PcOperand(0) if isinstance(op, (LabelRef, PcOperand)) else op
            for op in self.explicit_operands()
        )
        return len(
            encode_instr(
                self._opcode,
                explicit,
                pc=0,
                prefixes=self._prefixes,
                allow_short=False,
            )
        )

    @property
    def length(self):
        """Length of the current raw bits, or the worst-case length."""
        if self._raw is not None:
            return len(self._raw)
        return self.max_length()

    # ----------------------------------------------------------------- misc

    def copy(self):
        """An unlinked deep-enough copy (operands are immutable)."""
        new = Instr()
        new._level = self._level
        new._raw = self._raw
        new._raw_pc = self._raw_pc
        new._bundle_count = self._bundle_count
        new._opcode = self._opcode
        new._eflags = self._eflags
        new._prefixes = self._prefixes
        new._srcs = list(self._srcs) if self._srcs is not None else None
        new._dsts = list(self._dsts) if self._dsts is not None else None
        new.note = self.note
        new.is_meta = self.is_meta
        new.is_exit_cti = self.is_exit_cti
        new.exit_always_stub = self.exit_always_stub
        return new

    def memory_footprint(self):
        """Bytes of memory this representation occupies (Table 2 metric)."""
        total = sys.getsizeof(self)
        if self._raw is not None:
            total += sys.getsizeof(self._raw)
        if self._prefixes:
            total += sys.getsizeof(self._prefixes)
        for ops in (self._srcs, self._dsts):
            if ops is not None:
                total += sys.getsizeof(ops)
                total += sum(sys.getsizeof(op) for op in ops)
        return total

    def __repr__(self):
        if self._level == LEVEL_0:
            return "<Instr L0 %d raw bytes @0x%x>" % (len(self._raw), self._raw_pc)
        if self._level == LEVEL_1:
            return "<Instr L1 %s @0x%x>" % (self._raw.hex(), self._raw_pc)
        if self._level == LEVEL_2:
            return "<Instr L2 %s>" % self.info.name
        ops = ", ".join(repr(op) for op in self.explicit_operands())
        return "<Instr L%d %s %s>" % (self._level, self.info.name, ops)

    def disassemble(self):
        """A human-readable one-line disassembly (operands AT&T-ish)."""
        if self._level < LEVEL_2:
            return "<raw %s>" % self._raw.hex()
        if self.is_label():
            return "<label>"
        ops = self.explicit_operands()
        if not ops:
            return self.info.name
        return "%s %s" % (self.info.name, " ".join(repr(op) for op in ops))


def level_name(level):
    return LEVEL_NAMES[level]
