"""Instruction-generation macros.

The paper simplifies instruction creation with one macro per IA-32
instruction that takes only the *explicit* operands and fills in the
implicit ones.  This module generates the same surface for RIO-32:
``INSTR_CREATE_add(dst, src)``, ``INSTR_CREATE_inc(dst)``,
``INSTR_CREATE_jmp(target)``, …  The abstraction can be bypassed with
:func:`instr_create_raw`, which takes an opcode and the full explicit
operand list.

Operand helpers mirror the paper's ``OPND_CREATE_*`` spellings.
"""

import sys

from repro.ir.instr import Instr
from repro.ir.shapes import explicit_arity
from repro.isa.opcodes import OP_INFO
from repro.isa.operands import (
    OPND_IMM8 as OPND_CREATE_INT8,
    OPND_IMM32 as OPND_CREATE_INT32,
    OPND_MEM as OPND_CREATE_MEM,
    OPND_PC as OPND_CREATE_PC,
    OPND_REG as OPND_CREATE_REG,
)

__all__ = [
    "instr_create_raw",
    "OPND_CREATE_INT8",
    "OPND_CREATE_INT32",
    "OPND_CREATE_MEM",
    "OPND_CREATE_PC",
    "OPND_CREATE_REG",
]


def instr_create_raw(opcode, *explicit):
    """Create a Level-4 instruction from an opcode and explicit operands.

    This bypasses the per-instruction macro layer, exactly like passing
    an opcode and complete operand list in DynamoRIO.
    """
    return Instr.create(opcode, *explicit)


def _make_creator(opcode, arity):
    if arity == 0:

        def create():
            return Instr.create(opcode)

    elif arity == 1:

        def create(op0):
            return Instr.create(opcode, op0)

    else:

        def create(op0, op1):
            return Instr.create(opcode, op0, op1)

    create.__name__ = "INSTR_CREATE_%s" % OP_INFO[opcode].name
    create.__doc__ = "Create a Level-4 `%s` instruction (%d explicit operand%s)." % (
        OP_INFO[opcode].name,
        arity,
        "" if arity == 1 else "s",
    )
    return create


_module = sys.modules[__name__]
_SANITIZED = {"jmp*": "jmp_ind", "call*": "call_ind", "<label>": None}
for _opcode, _info in OP_INFO.items():
    _name = _SANITIZED.get(_info.name, _info.name)
    if _name is None:
        continue
    _fn = _make_creator(_opcode, explicit_arity(_opcode))
    _attr = "INSTR_CREATE_%s" % _name
    setattr(_module, _attr, _fn)
    __all__.append(_attr)
