"""Operand shapes: explicit ↔ full (implicit-expanded) operand mapping.

RIO-32 (like IA-32) has implicit operands: ``push`` reads and writes
``esp`` and stores to the stack, ``div`` consumes and produces
``eax``/``edx``, ``ret`` pops.  Following DynamoRIO, a Level-3 ``Instr``
exposes *full* source and destination lists with the implicits filled
in, while the encoder consumes only the canonical *explicit* operands.

Each opcode's :attr:`~repro.isa.opcodes.OpcodeInfo.shape` names one of
the shapes here; :func:`expand_operands` builds ``(srcs, dsts)`` from the
explicit tuple and :func:`extract_explicit` inverts it.
"""

from repro.isa.opcodes import OP_INFO
from repro.isa.operands import MemOperand, RegOperand
from repro.isa.registers import Reg

_ESP = RegOperand(Reg.ESP)
_EAX = RegOperand(Reg.EAX)
_EDX = RegOperand(Reg.EDX)
# The not-yet-decremented stack slot a push/call writes.
_PUSH_SLOT = MemOperand(base=Reg.ESP, disp=-4)
_POP_SLOT = MemOperand(base=Reg.ESP)


def expand_operands(opcode, explicit):
    """Build the full ``(srcs, dsts)`` lists from explicit operands."""
    shape = OP_INFO[opcode].shape
    if shape == "mov":
        dst, src = explicit
        return [src], [dst]
    if shape == "lea":
        dst, src = explicit
        return [src], [dst]
    if shape == "binary":
        dst, src = explicit
        return [src, dst], [dst]
    if shape == "unary":
        (dst,) = explicit
        return [dst], [dst]
    if shape == "compare":
        s1, s2 = explicit
        return [s1, s2], []
    if shape == "shift":
        dst, amount = explicit
        return [amount, dst], [dst]
    if shape == "div":
        (src,) = explicit
        return [src, _EAX, _EDX], [_EAX, _EDX]
    if shape == "push":
        (src,) = explicit
        return [src, _ESP], [_ESP, _PUSH_SLOT]
    if shape == "pop":
        (dst,) = explicit
        return [_POP_SLOT, _ESP], [dst, _ESP]
    if shape == "xchg":
        a, b = explicit
        return [a, b], [a, b]
    if shape == "branch":
        (target,) = explicit
        return [target], []
    if shape == "call":
        (target,) = explicit
        return [target, _ESP], [_ESP, _PUSH_SLOT]
    if shape == "ret":
        assert not explicit
        return [_POP_SLOT, _ESP], [_ESP]
    if shape == "none":
        assert not explicit
        return [], []
    raise AssertionError("unknown shape %r for %s" % (shape, opcode))


def extract_explicit(opcode, srcs, dsts):
    """Recover the canonical explicit operand tuple for encoding."""
    shape = OP_INFO[opcode].shape
    if shape in ("mov", "lea", "binary", "shift"):
        return (dsts[0], srcs[0])
    if shape == "unary":
        return (dsts[0],)
    if shape == "compare":
        return (srcs[0], srcs[1])
    if shape == "div":
        return (srcs[0],)
    if shape == "push":
        return (srcs[0],)
    if shape == "pop":
        return (dsts[0],)
    if shape == "xchg":
        return (srcs[0], srcs[1])
    if shape in ("branch", "call"):
        return (srcs[0],)
    if shape in ("ret", "none"):
        return ()
    raise AssertionError("unknown shape %r for %s" % (shape, opcode))


def explicit_arity(opcode):
    """Number of explicit operands the opcode's constructors take."""
    shape = OP_INFO[opcode].shape
    return {
        "mov": 2,
        "lea": 2,
        "binary": 2,
        "shift": 2,
        "compare": 2,
        "xchg": 2,
        "unary": 1,
        "div": 1,
        "push": 1,
        "pop": 1,
        "branch": 1,
        "call": 1,
        "ret": 0,
        "none": 0,
    }[shape]
