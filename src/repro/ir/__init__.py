"""Instruction representation with adaptive levels of detail.

This package implements the paper's Section 3.1: a basic block or trace
is a linked list of :class:`~repro.ir.instr.Instr` nodes
(:class:`~repro.ir.instrlist.InstrList`), and each ``Instr`` carries one
of five levels of detail:

=======  =============================================================
Level 0  raw bytes of a *series* of instructions; only the final
         boundary is recorded
Level 1  raw bytes of a single instruction
Level 2  opcode and eflags effects decoded (raw bytes still valid)
Level 3  fully decoded operands, raw bytes still valid — encoding is a
         byte copy
Level 4  fully decoded, raw bytes invalid (modified or newly created) —
         the only level that requires real encoding
=======  =============================================================

Levels adjust automatically: reading operands of a low-level ``Instr``
decodes it up; modifying any operand invalidates the raw bits and moves
it to Level 4.
"""

from repro.ir.levels import LEVEL_0, LEVEL_1, LEVEL_2, LEVEL_3, LEVEL_4
from repro.ir.instr import Instr
from repro.ir.instrlist import InstrList
from repro.ir import create

__all__ = [
    "LEVEL_0",
    "LEVEL_1",
    "LEVEL_2",
    "LEVEL_3",
    "LEVEL_4",
    "Instr",
    "InstrList",
    "create",
]
