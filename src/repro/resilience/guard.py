"""Client fault isolation: the :class:`ClientGuard`.

A buggy client must not take the application down with it (the paper's
Section 3 interface contract: clients are *cooperating* but the
infrastructure stays in control).  When ``options.guard_clients`` is on
the runtime owns a guard and every client hook site routes through it:

* **Build hooks** (basic block / trace): the instruction list is
  snapshotted before the hook runs.  If the hook raises — or corrupts
  the list such that emission fails — the fault is recorded and the
  pristine snapshot is emitted instead, so the application executes the
  untransformed fragment ("fragment bailout").
* **Execution hooks** (clean calls, indirect-branch checkers and
  profilers, exit-stub calls): a fault is recorded and the call's
  effect discarded; execution continues.
* **Event tracers**: a faulting tracer is detached and recorded.

After ``client_fault_limit`` faults the client is *quarantined*: all
caches are flushed (dropping every client-instrumented fragment),
in-progress trace recordings are abandoned, and every subsequent hook
site skips the client entirely — the run continues at native fidelity.

``client_hook_budget`` optionally bounds how much Python work a single
hook may do, measured in ``sys.settrace`` events (calls, lines,
returns).  That count is a deterministic property of the client code
path — identical across the closure and tuple engines, unlike
wall-clock time — so a runaway hook faults reproducibly.

The guard charges **no simulated cycles** of its own: hook-site cycle
accounting (charges, stats, events) happens at the call sites exactly
as when guarding is off, so a well-behaved client produces bit-identical
results with the guard on or off.

:class:`ClientHalt` is the escape hatch for clients that *mean* to stop
the world (e.g. program shepherding's ``SecurityViolation``): it always
propagates, and is never counted as a fault.
"""

import sys

from repro.core.execute import CacheExit
from repro.core.trace_builder import DEFAULT_TRACE_END
from repro.ir.instrlist import InstrList, copy_instructions
from repro.machine.errors import ProgramExit
from repro.machine.system import ThreadExit
from repro.observe.events import (
    EV_CLIENT_FAULT,
    EV_CLIENT_QUARANTINED,
    EV_FRAGMENT_BAILOUT,
)
from repro.resilience.shield import InjectedRuntimeFault


class ClientHalt(Exception):
    """A deliberate client-initiated control transfer (never a fault).

    Clients raise a subclass to stop the application on purpose —
    program shepherding's ``SecurityViolation`` is the canonical case.
    The guard lets these propagate untouched.
    """


class HookBudgetExceeded(Exception):
    """A client hook exceeded ``options.client_hook_budget``."""


# Exceptions the client guard must never swallow: deliberate client
# halts, the runtime's own control-flow exceptions, and planted
# *runtime* faults (the RuntimeGuard's ladder owns those — a client
# guard that caught one would misattribute an internal fault to the
# client).
_PASSTHROUGH = (
    ClientHalt,
    ProgramExit,
    ThreadExit,
    CacheExit,
    InjectedRuntimeFault,
)

# Exceptions the *runtime* chokepoint wrappers let through: control
# flow only.  InjectedRuntimeFault is deliberately absent — planted
# runtime faults are exactly what the escalation ladder must catch.
RUNTIME_PASSTHROUGH = (ClientHalt, ProgramExit, ThreadExit, CacheExit)


class ClientGuard:
    """Fault-isolation state for one runtime's client."""

    def __init__(self, runtime):
        self.runtime = runtime
        self.fault_limit = runtime.options.client_fault_limit
        self.hook_budget = runtime.options.client_hook_budget
        self.faults = 0
        self.quarantined = False
        self.fault_log = []  # dicts: phase, tag, error, message

    # ------------------------------------------------------------ invocation

    def _invoke(self, fn, args):
        """Call a client function, enforcing the hook budget if set."""
        budget = self.hook_budget
        if budget is None:
            return fn(*args)
        spent = [0]

        def tracer(frame, event, arg):
            spent[0] += 1
            if spent[0] > budget:
                raise HookBudgetExceeded(
                    "client hook exceeded budget of %d trace events" % budget
                )
            return tracer

        prior = sys.gettrace()
        sys.settrace(tracer)
        try:
            return fn(*args)
        finally:
            sys.settrace(prior)

    # ---------------------------------------------------------------- faults

    def record_fault(self, phase, tag, exc):
        """Attribute one fault to the client; quarantine at the limit."""
        self.faults += 1
        runtime = self.runtime
        runtime.stats.client_faults += 1
        self.fault_log.append(
            {
                "phase": phase,
                "tag": tag,
                "error": type(exc).__name__,
                "message": str(exc),
            }
        )
        observer = runtime.observer
        if observer is not None:
            observer.emit(
                EV_CLIENT_FAULT, tag, phase=phase, error=type(exc).__name__
            )
        if not self.quarantined and self.faults >= self.fault_limit:
            self.quarantine()

    def quarantine(self):
        """Disable the client for the rest of the run (OSR-style
        bailout: flush everything it instrumented, continue native)."""
        self.quarantined = True
        runtime = self.runtime
        runtime.stats.client_quarantines += 1
        # Bail out *before* emitting: the flush also unregisters the
        # client's event tracers (the detach path), so the quarantined
        # client never observes its own quarantine — no client emit
        # site survives the bailout.
        runtime._bailout_client()
        observer = runtime.observer
        if observer is not None:
            observer.emit(
                EV_CLIENT_QUARANTINED,
                None,
                faults=self.faults,
                limit=self.fault_limit,
            )

    # ------------------------------------------------------------ hook sites

    def build_hook(self, phase, tag, ilist, hook, emit):
        """Run a build-time hook (bb/trace) with bailout protection.

        ``hook(ilist)`` transforms the list in place; ``emit(ilist)``
        turns a list into a Fragment (and may itself raise if the client
        corrupted the list — also a client fault).  Returns the emitted
        Fragment, built from the pristine snapshot on fault.
        """
        pristine = InstrList(copy_instructions(ilist))
        try:
            self._invoke(hook, (ilist,))
            return emit(ilist)
        except _PASSTHROUGH:
            raise
        except Exception as exc:
            self.record_fault(phase, tag, exc)
            runtime = self.runtime
            runtime.stats.fragment_bailouts += 1
            observer = runtime.observer
            if observer is not None:
                observer.emit(
                    EV_FRAGMENT_BAILOUT,
                    tag,
                    phase=phase,
                    error=type(exc).__name__,
                )
            return emit(pristine)

    def call(self, fn, args, tag=None, role="clean_call"):
        """Run an execution-time hook (clean call, checker, profiler,
        stub call); a fault discards the call's effect and continues."""
        if self.quarantined:
            return
        try:
            self._invoke(fn, args)
        except _PASSTHROUGH:
            raise
        except Exception as exc:
            self.record_fault(role, tag, exc)

    def end_trace(self, client, thread, head_tag, next_tag):
        """Route the end-of-trace query; fall back to the default
        heuristic when quarantined or faulting."""
        if self.quarantined:
            return DEFAULT_TRACE_END
        try:
            return self._invoke(client.end_trace, (thread, head_tag, next_tag))
        except _PASSTHROUGH:
            raise
        except Exception as exc:
            self.record_fault("end_trace", head_tag, exc)
            return DEFAULT_TRACE_END

    def wrap_tracer(self, fn):
        """Wrap a dr_register_event_tracer callback: a fault detaches
        the tracer (before the fault event is emitted, so the emit does
        not re-enter it) and is recorded like any other."""
        state = {"dead": False}

        def guarded(event):
            if state["dead"] or self.quarantined:
                return
            try:
                self._invoke(fn, (event,))
            except _PASSTHROUGH:
                raise
            except Exception as exc:
                state["dead"] = True
                self.record_fault("tracer", None, exc)

        return guarded
