"""Runtime self-protection and the failsafe escalation ladder ("drshield").

Deployed descendants of DynamoRIO survive two classes of trouble the
base infrastructure does not: *errant application stores* into the
runtime's own data structures (code cache, exit stubs, IBL tables),
and *internal faults* in the runtime's own translate/emit/link/cache
paths.  Behind ``options.shield`` this module supplies both defenses:

:class:`Shield` — self-protection and forward progress.

* Arms ``Memory.watch_range`` over every runtime-owned range: the
  whole code-cache region (fragment bodies and exit stubs live there)
  plus the shield reserve at the top of the runtime heap, which holds
  the per-thread IBL tables' symbolic ranges and the runtime scratch
  area.  ``dr_global_alloc`` storage (the bottom of the runtime heap)
  is deliberately *not* watched: it is client-owned by design and
  legitimate instrumentation stores flow there.
* An application store into a watched range is recorded and delivered
  at the next application-consistent point (a mid-fragment poll under
  ``options.precise_interrupts``, the next fragment boundary
  otherwise) — the same unwind discipline as drdetach, so the
  attributed PC comes from the fragments' translation tables.  A
  legitimate SMC store into *application* code never reaches here: it
  keeps flowing through the cache-consistency watcher.
* Recovery is surgical: the clobbered cache unit (and only it) is
  invalidated through the delete chokepoint; a clobbered IBL table is
  rebuilt from the live caches.  The store itself always lands first
  (native store semantics), so application-visible behavior stays
  byte-identical to native.
* The forward-progress watchdog counts re-translations of the same tag
  without an intervening execution; past ``shield_watchdog_limit`` it
  trips — first a cache flush, then a full detach to native.

:class:`RuntimeGuard` — internal fault containment.

Wraps the runtime's chokepoints (bb build, emit, link, unlink,
eviction, trace promotion, chain build).  An unexpected exception
becomes a recorded ``shield_fault`` and a rung on the recovery ladder:
retry the translation → discard the fragment/recording → flush the
thread's caches → disable the optional subsystem that faulted (chains,
traces, fifo eviction, direct linking) with a ``subsystem_disabled``
event → full ``Runtime.detach()`` to native after
``options.shield_fault_limit`` faults.  Every seeded internal fault
therefore ends in a correct native-fidelity run, never a traceback.

When ``options.shield`` is off the runtime's ``shield``/``rguard``
attributes are ``None`` and every new check is a single pointer test;
simulated cycles, stats, and events are bit-identical to pre-shield
behavior.
"""

from repro.core.emit import STUB_SIZE
from repro.observe.events import (
    EV_SHIELD_FAULT,
    EV_SUBSYSTEM_DISABLED,
    EV_WATCHDOG_TRIP,
)

# Top slice of the runtime heap reserved for shield-protected runtime
# data: scratch in the lower half, per-thread symbolic IBL ranges in
# the upper half.  dr_global_alloc bumps from the bottom of the heap
# and never reaches the reserve in practice.
SHIELD_RESERVE = 0x10000
# Symbolic address span assigned to one thread's IBL table.
IBL_RANGE_SIZE = 0x800

# Chokepoints the containment ladder covers (the fault-injection sites).
RUNTIME_SITES = ("bb_build", "emit", "link", "unlink", "evict", "trace", "chain")

# site -> (fault count at which the subsystem is disabled, subsystem).
# Sites without an entry have no optional subsystem to turn off; they
# escalate through the global fault limit only.
_DISABLE_RULES = {
    "link": (2, "direct_linking"),
    "evict": (2, "fifo_eviction"),
    "trace": (3, "traces"),
    "chain": (2, "chains"),
}


class InjectedRuntimeFault(Exception):
    """A deliberately planted runtime-internal fault (test harness).

    Carries ``site`` so the guard attributes the fault to the
    chokepoint the plan targeted even when it surfaces through an
    enclosing wrapper (an ``emit`` fault unwinds through the bb-build
    or trace ladder).
    """

    def __init__(self, message, site):
        super().__init__(message)
        self.site = site


class Shield:
    """Self-protection state for one runtime (``options.shield``)."""

    def __init__(self, runtime):
        self.runtime = runtime
        memory = runtime.memory
        heap = memory.region("runtime_heap")
        cache = memory.region("code_cache")
        self.reserve_base = heap.end - SHIELD_RESERVE
        self.ibl_base = self.reserve_base + SHIELD_RESERVE // 2
        self.reserve_end = heap.end
        memory.watch_range(cache.start, cache.end)
        memory.watch_range(self.reserve_base, self.reserve_end)
        memory.add_write_watcher(self._on_write)
        # Errant-write records awaiting delivery at the next
        # application-consistent point.
        self.pending = []
        self.errant_faults = 0
        # Forward-progress watchdog: tag -> builds since it executed.
        self.watchdog_limit = runtime.options.shield_watchdog_limit
        self._builds_since_progress = {}
        self.trips = 0

    # --------------------------------------------------------------- layout

    def ibl_range(self, thread_index):
        """The symbolic address range of one thread's IBL table."""
        start = self.ibl_base + thread_index * IBL_RANGE_SIZE
        return start, start + IBL_RANGE_SIZE

    def scratch_range(self):
        """The runtime scratch slice of the shield reserve."""
        return self.reserve_base, self.ibl_base

    # ------------------------------------------------------------- watching

    def _on_write(self, addr, size):
        """Memory write watcher: classify a store into a watched line.

        SMC into application code is not ours — the cache-consistency
        watcher owns it.  A store into runtime-owned memory is recorded
        (attribution happens now, while the clobbered structures still
        exist) and delivered by ``deliver`` once the engines unwind at
        an application-consistent point.
        """
        runtime = self.runtime
        region = runtime.memory.region_containing(addr)
        if region is None or region.name not in ("code_cache", "runtime_heap"):
            return
        if region.name == "runtime_heap" and addr < self.reserve_base:
            # dr_global_alloc storage: client-owned, legitimate.
            return
        owner, unit, unit_thread = self._attribute(addr)
        self.pending.append(
            {
                "addr": addr,
                "size": size,
                "region": region.name,
                "owner": owner,
                "unit": unit,
                "unit_thread": unit_thread,
                "thread": runtime.current_thread,
            }
        )
        runtime._shield_pending = True
        # Reuse the scheduler's unwind path (same as detach): every
        # engine breaks at the next fragment boundary or poll.
        runtime._need_reschedule = True

    def _attribute(self, addr):
        """Which runtime structure ``addr`` falls in.

        Returns ``(owner, unit, thread)``: owner is one of
        ``fragment``/``stub``/``unit``/``cache``/``ibl``/``scratch``;
        unit is the clobbered :class:`CacheUnit` (when any) and thread
        the context owning it.
        """
        runtime = self.runtime
        if self.reserve_base <= addr < self.reserve_end:
            if addr >= self.ibl_base:
                index = (addr - self.ibl_base) // IBL_RANGE_SIZE
                threads = runtime.threads
                thread = threads[index] if index < len(threads) else None
                return "ibl", None, thread
            return "scratch", None, None
        seen = set()
        for thread in runtime.threads:
            for unit in (thread.bb_cache, thread.trace_cache):
                if id(unit) in seen:
                    continue
                seen.add(id(unit))
                if not (unit.base <= addr < unit.cursor):
                    continue
                for fragment in unit.fragments.values():
                    base = fragment.cache_addr
                    if base is None or not (base <= addr < base + fragment.size):
                        continue
                    stubs = STUB_SIZE * len(fragment.exits)
                    owner = (
                        "stub"
                        if stubs and addr >= base + fragment.size - stubs
                        else "fragment"
                    )
                    return owner, unit, thread
                return "unit", unit, thread
        return "cache", None, None

    # ------------------------------------------------------------- delivery

    def deliver(self):
        """Handle pending errant writes at a consistent point.

        Called from the run loop once the engines have unwound (the
        same place a pending detach is honored).  Emits one
        ``shield_fault`` per recorded store — with the faulting
        application PC read off the writing thread's translated resume
        tag — and recovers by invalidating only the clobbered unit
        (or rebuilding the clobbered IBL table).
        """
        runtime = self.runtime
        runtime._shield_pending = False
        pending, self.pending = self.pending, []
        rguard = runtime.rguard
        for rec in pending:
            self.errant_faults += 1
            runtime.stats.shield_faults += 1
            pc = rec["thread"].resume_tag
            if runtime.observer is not None:
                unit = rec["unit"]
                runtime.observer.emit(
                    EV_SHIELD_FAULT,
                    pc,
                    kind="errant_write",
                    region=rec["region"],
                    addr=rec["addr"],
                    size=rec["size"],
                    owner=rec["owner"],
                    unit=unit.name if unit is not None else None,
                    pc=pc,
                )
            # Recovery runs with injection suppressed: the delete
            # chokepoint is itself a fault-injection site.
            if rguard is not None:
                rguard.recovering = True
            try:
                self._recover(rec)
            finally:
                if rguard is not None:
                    rguard.recovering = False
        runtime._squash_stale_recordings()

    def _recover(self, rec):
        runtime = self.runtime
        owner = rec["owner"]
        if owner in ("fragment", "stub", "unit"):
            # The store clobbered (a fragment, a stub, or free space
            # inside) one cache unit: invalidate that unit only.
            runtime._flush_cache(rec["unit"], thread=rec["unit_thread"])
        elif owner == "ibl":
            thread = rec["unit_thread"]
            if thread is not None:
                self._rebuild_ibl(thread)
        # "scratch" and "cache" (unallocated cache space): nothing
        # structural to invalidate; the event is the whole response.

    def _rebuild_ibl(self, thread):
        """Reconstruct a clobbered IBL table from the live caches,
        preserving the trace-heads-stay-out invariant (bb entries
        first so a shadowing trace overwrites its head's tag)."""
        thread.ibl.clear()
        for unit in (thread.bb_cache, thread.trace_cache):
            for fragment in unit.fragments.values():
                if fragment.deleted:
                    continue
                if fragment.is_trace_head and not fragment.is_trace:
                    continue
                thread.ibl.insert(fragment)

    # ------------------------------------------------------------- watchdog

    def note_build(self, tag):
        """Count one (re-)translation of ``tag``; trip the watchdog
        when the same tag keeps rebuilding without executing.

        Returns ``None`` (keep going), ``"flushed"`` (first trip:
        caches dropped, counters reset), or ``"detach"`` (second trip:
        the caller must escalate to a full detach).
        """
        counts = self._builds_since_progress
        count = counts.get(tag, 0) + 1
        counts[tag] = count
        if count <= self.watchdog_limit:
            return None
        runtime = self.runtime
        self.trips += 1
        runtime.stats.watchdog_trips += 1
        if runtime.observer is not None:
            runtime.observer.emit(
                EV_WATCHDOG_TRIP, tag, builds=count, trip=self.trips
            )
        counts.clear()
        if self.trips >= 2:
            return "detach"
        rguard = runtime.rguard
        if rguard is not None:
            rguard.recovering = True
        try:
            thread = runtime.current_thread
            runtime._flush_cache(thread.bb_cache, thread=thread)
            runtime._flush_cache(thread.trace_cache, thread=thread)
            runtime._squash_stale_recordings()
        finally:
            if rguard is not None:
                rguard.recovering = False
        return "flushed"

    def note_progress(self, tag):
        """``tag`` executed: forward progress, reset its build count."""
        self._builds_since_progress.pop(tag, None)


class RuntimeGuard:
    """Internal-fault containment ladder for one runtime."""

    def __init__(self, runtime):
        self.runtime = runtime
        self.fault_limit = runtime.options.shield_fault_limit
        self.faults = 0
        self.site_faults = {}
        self.fault_log = []  # dicts: site, tag, error, message
        self.disabled = set()
        # Deterministic fault injection (tests/chaos): a RuntimeFaultPlan
        # targeting one chokepoint, or None for production behavior.
        self.plan = None
        self.injected = 0
        self._site_calls = {}
        self._build_index = 0
        # True while a recovery operation (flush, scrub, shield
        # delivery) runs: injection is suppressed and chokepoint
        # wrappers stand down so recovery cannot recurse into the
        # ladder.
        self.recovering = False
        # True while the dispatcher-owned build paths run: emit-site
        # injection only fires there, never under client API calls
        # (dr_replace_fragment) whose faults belong to the client guard.
        self.in_chokepoint = False
        self._detach_requested = False

    # ------------------------------------------------------------ injection

    def check(self, site, tag=None):
        """Fault-injection hook at a chokepoint entry: raises the
        planned :class:`InjectedRuntimeFault` on scheduled invocations;
        free when no plan targets this site."""
        plan = self.plan
        if plan is None or self.recovering:
            return
        if plan.site != site:
            return
        calls = self._site_calls.get(site, 0) + 1
        self._site_calls[site] = calls
        if plan.fires(calls):
            self.injected += 1
            raise InjectedRuntimeFault(
                "planted %s fault #%d" % (site, calls), site
            )

    def post_build(self, fragment):
        """Runtime-targeted injections that are not exceptions: errant
        stores into runtime-owned memory and translate/flush livelock.
        Returns ``"rebuild"`` when the livelock plan deleted the fresh
        fragment (the guarded build loops), else ``None``."""
        plan = self.plan
        if plan is None or self.recovering:
            return None
        kind = plan.kind
        if kind not in ("errant_write", "livelock"):
            return None
        self._build_index += 1
        if not plan.fires(self._build_index):
            return None
        self.injected += 1
        runtime = self.runtime
        if kind == "errant_write":
            self._errant_store(fragment)
            return None
        # Livelock: the freshly built fragment dies before it can run,
        # so the dispatcher rebuilds the same tag forever — exactly the
        # loop the watchdog exists to break.
        self.recovering = True
        try:
            runtime._delete_fragment(
                fragment, thread=runtime.current_thread
            )
        finally:
            self.recovering = False
        return "rebuild"

    def _errant_store(self, fragment):
        """Plant one application-grade store into runtime-owned memory
        (rotating over fragment body, stub bytes, the IBL range, and
        scratch) — through the real memory write path, so the shield's
        watcher, not the injector, detects and attributes it."""
        runtime = self.runtime
        shield = runtime.shield
        choice = self.plan.victim_rng.randrange(4)
        thread = runtime.current_thread
        base = fragment.cache_addr
        if base is None and choice in (0, 1):
            choice = 3
        if choice == 0:
            victim = base
        elif choice == 1:
            victim = base + max(fragment.size - 4, 0)
        elif choice == 2:
            index = runtime.threads.index(thread)
            victim = shield.ibl_range(index)[0] + 8
        else:
            victim = shield.scratch_range()[0] + 16
        runtime.memory.write_u32(victim, 0xDEADBEEF)

    # ---------------------------------------------------------------- faults

    def record_fault(self, site, tag, exc):
        """Attribute one internal fault and climb the ladder: emit the
        ``shield_fault`` event, disable the faulting optional subsystem
        at its per-site threshold, and request a full detach once the
        global ``shield_fault_limit`` is reached."""
        site = getattr(exc, "site", site)
        self.faults += 1
        count = self.site_faults.get(site, 0) + 1
        self.site_faults[site] = count
        runtime = self.runtime
        runtime.stats.shield_faults += 1
        self.fault_log.append(
            {
                "site": site,
                "tag": tag,
                "error": type(exc).__name__,
                "message": str(exc),
            }
        )
        if runtime.observer is not None:
            runtime.observer.emit(
                EV_SHIELD_FAULT,
                tag,
                kind="internal",
                site=site,
                error=type(exc).__name__,
            )
        rule = _DISABLE_RULES.get(site)
        if rule is not None and count >= rule[0]:
            self.disable(rule[1], site)
        if self.faults >= self.fault_limit:
            self.request_detach()

    def disable(self, subsystem, site):
        """Turn off the optional subsystem that keeps faulting; the run
        continues at native fidelity without it."""
        if subsystem in self.disabled:
            return
        self.disabled.add(subsystem)
        runtime = self.runtime
        runtime.stats.subsystems_disabled += 1
        if runtime.observer is not None:
            runtime.observer.emit(
                EV_SUBSYSTEM_DISABLED,
                None,
                subsystem=subsystem,
                site=site,
                faults=self.site_faults.get(site, 0),
            )
        options = runtime.options
        if subsystem == "chains":
            runtime.chains = None
            options.chain_engine = False
        elif subsystem == "traces":
            options.traces = False
            for thread in runtime.threads:
                thread.trace_in_progress = None
        elif subsystem == "fifo_eviction":
            options.cache_evict_policy = "flush"
            seen = set()
            for thread in runtime.threads:
                for unit in (thread.bb_cache, thread.trace_cache):
                    if id(unit) in seen:
                        continue
                    seen.add(id(unit))
                    unit.policy = "flush"
        elif subsystem == "direct_linking":
            options.link_direct = False

    def request_detach(self):
        """The ladder's last rung: bail to native, once."""
        if self._detach_requested:
            return
        self._detach_requested = True
        runtime = self.runtime
        if not runtime._detached:
            runtime.detach()

    @property
    def detach_requested(self):
        return self._detach_requested
