"""Deterministic fault injection for the drguard test harness.

A :class:`FaultPlan` derives, from ``(kind, seed)``, *which* hook
invocations misbehave — everything downstream of the seed is pure
arithmetic, so the same plan produces the same faults at the same
points on every run and under both execution engines.  A
:class:`FaultInjectingClient` wraps a real client and plants the
planned bug:

``raise_in_hook``      raise from the basic-block hook;
``corrupt_instrlist``  append a branch to an orphan label (the hook
                       returns normally; emission then fails);
``hook_budget_burn``   spin forever in the hook (caught by the
                       ``client_hook_budget`` settrace counter);
``cache_poison``       call ``dr_replace_fragment`` with a corrupt
                       list from inside the hook (the API call raises
                       inside the hook — a fault mid-API);
``mid_trace_signal``   raise from the *trace* hook (paired by the
                       chaos harness with a signal-delivering
                       workload);
``smc_write``          no client misbehavior at all — the workload
                       itself stores into its own code, exercising the
                       cache-consistency path;
``detach``             call ``dr_detach`` from the hook: the runtime
                       must translate state, flush everything, and
                       finish the program natively, bit-identical;
``reattach``           ``dr_detach(reattach_after=N)`` — a full
                       detach / native excursion / re-attach bounce
                       (possibly several, the plan keeps firing after
                       the caches are rebuilt);
``mid_fragment_signal``  no client misbehavior — run under
                       ``precise_interrupts`` with a signal-delivering
                       workload so alarms are taken *inside* fragments
                       via the translation tables.

The drshield matrix targets the *runtime* instead of the client: a
:class:`RuntimeFaultPlan` is installed on the runtime's
:class:`~repro.resilience.shield.RuntimeGuard` and fires at the
runtime's own chokepoints — no client involved at all:

``runtime_raise:<site>``  raise :class:`~repro.resilience.shield.
                       InjectedRuntimeFault` at chokepoint ``<site>``
                       (one of bb_build, emit, link, unlink, evict,
                       trace, chain) on the scheduled invocations; the
                       escalation ladder must contain every one;
``errant_write``       after scheduled builds, store into runtime-owned
                       memory (fragment body, exit stub, IBL range,
                       scratch — rotating) through the real memory
                       write path, so the shield's watcher detects,
                       attributes, and recovers;
``livelock``           delete each freshly built fragment before it can
                       execute, re-translating the same tag forever —
                       the forward-progress watchdog must break the
                       loop (flush, then detach to native).
"""

import random

from repro.api.client import Client
from repro.api.dr import dr_detach, dr_replace_fragment
from repro.ir.instr import Instr, LabelRef
from repro.isa.opcodes import Opcode
from repro.resilience.shield import RUNTIME_SITES

FAULT_KINDS = (
    "raise_in_hook",
    "corrupt_instrlist",
    "hook_budget_burn",
    "cache_poison",
    "mid_trace_signal",
    "smc_write",
    "detach",
    "reattach",
    "mid_fragment_signal",
)

# Runtime-targeted kinds (the chaos --runtime matrix).
RUNTIME_FAULT_KINDS = tuple(
    "runtime_raise:%s" % site for site in RUNTIME_SITES
) + ("errant_write", "livelock")

# Native excursion length for the ``reattach`` fault: short enough that
# every chaos workload has that much left to run after the first hook.
REATTACH_AFTER = 300


class InjectedFault(Exception):
    """The deliberate bug the harness plants in a client hook."""


def corrupt_instrlist(ilist):
    """Make ``ilist`` fail emission: branch to a label that is not in
    the list (the verifier/emitter reject out-of-fragment label
    targets)."""
    orphan = Instr.label()
    ilist.append(Instr.create(Opcode.JMP, LabelRef(orphan)))
    return ilist


class FaultPlan:
    """Seeded schedule of hook invocations that misbehave.

    Faults fire on invocation numbers ``start, start + period,
    start + 2*period, ...`` (1-based), with ``start`` and ``period``
    drawn deterministically from the seed.
    """

    def __init__(self, kind, seed):
        if kind not in FAULT_KINDS:
            raise ValueError("unknown fault kind %r" % (kind,))
        self.kind = kind
        self.seed = seed
        rng = random.Random("%s:%d" % (kind, seed))
        self.start = rng.randint(1, 3)
        self.period = rng.randint(1, 3)

    def fires(self, call_index):
        return (
            call_index >= self.start
            and (call_index - self.start) % self.period == 0
        )

    def __repr__(self):
        return "<FaultPlan %s seed=%d start=%d period=%d>" % (
            self.kind,
            self.seed,
            self.start,
            self.period,
        )


class RuntimeFaultPlan:
    """Seeded schedule of *runtime* chokepoint invocations that fault.

    ``kind`` is one of :data:`RUNTIME_FAULT_KINDS`.  For
    ``runtime_raise:<site>`` kinds, ``site`` names the targeted
    chokepoint and :meth:`fires` is consulted against that site's
    per-site call counter; for ``errant_write``/``livelock`` it is
    consulted against the successful-build counter.  Chokepoint
    invocation counts are a deterministic property of the dispatcher
    (identical across the tuple/closure/chain engines), so one plan
    fires at the same logical points everywhere.

    ``livelock`` fires on *every* build past ``start`` — a periodic
    schedule would let non-firing builds execute and reset the
    watchdog, which is starvation, not livelock.

    ``start``/``period`` may be pinned explicitly (tests); by default
    they are drawn from the seed like :class:`FaultPlan`.
    """

    def __init__(self, kind, seed, start=None, period=None):
        if kind not in RUNTIME_FAULT_KINDS:
            raise ValueError("unknown runtime fault kind %r" % (kind,))
        self.kind = kind
        self.seed = seed
        self.site = (
            kind.split(":", 1)[1] if kind.startswith("runtime_raise:") else None
        )
        rng = random.Random("%s:%d" % (kind, seed))
        self.start = rng.randint(1, 3) if start is None else start
        self.period = rng.randint(1, 3) if period is None else period
        # Victim rotation for errant_write draws from its own stream so
        # firing arithmetic stays independent of victim choice.
        self.victim_rng = random.Random("victim:%s:%d" % (kind, seed))

    def fires(self, call_index):
        if self.kind == "livelock":
            return call_index >= self.start
        return (
            call_index >= self.start
            and (call_index - self.start) % self.period == 0
        )

    def __repr__(self):
        return "<RuntimeFaultPlan %s seed=%d start=%d period=%d>" % (
            self.kind,
            self.seed,
            self.start,
            self.period,
        )


class FaultInjectingClient(Client):
    """Delegates every hook to ``inner``, injecting the plan's fault on
    the scheduled invocations.  ``inner`` may be None (a pure-fault
    client)."""

    def __init__(self, plan, inner=None):
        super().__init__()
        self.plan = plan
        self.inner = inner
        self.bb_calls = 0
        self.trace_calls = 0
        self.injected = 0
        self._last_tag = None

    # ------------------------------------------------------------- plumbing

    def attach(self, runtime):
        super().attach(runtime)
        if self.inner is not None:
            self.inner.attach(runtime)

    def init(self):
        if self.inner is not None:
            self.inner.init()

    def exit(self):
        if self.inner is not None:
            self.inner.exit()

    def thread_init(self, context):
        if self.inner is not None:
            self.inner.thread_init(context)

    def thread_exit(self, context):
        if self.inner is not None:
            self.inner.thread_exit(context)

    def fragment_deleted(self, context, tag):
        if self.inner is not None:
            self.inner.fragment_deleted(context, tag)

    def end_trace(self, context, trace_tag, next_tag):
        if self.inner is not None:
            return self.inner.end_trace(context, trace_tag, next_tag)
        return super().end_trace(context, trace_tag, next_tag)

    # ---------------------------------------------------------- build hooks

    def basic_block(self, context, tag, ilist):
        self.bb_calls += 1
        kind = self.plan.kind
        if self.plan.fires(self.bb_calls) and kind not in (
            "mid_trace_signal",
            "smc_write",
            "mid_fragment_signal",
        ):
            if kind == "raise_in_hook":
                self.injected += 1
                raise InjectedFault(
                    "planted bb-hook fault #%d" % self.bb_calls
                )
            if kind == "corrupt_instrlist":
                self.injected += 1
                if self.inner is not None:
                    self.inner.basic_block(context, tag, ilist)
                corrupt_instrlist(ilist)
                return
            if kind == "hook_budget_burn":
                self.injected += 1
                spin = 0
                while True:  # runs until the hook budget trips
                    spin += 1
            if kind == "detach":
                # Stay-native detach from inside a build hook: not a
                # bug, but the harshest transparency test — the rest of
                # the program must run natively, bit-identical.
                if not self.injected:
                    self.injected += 1
                    dr_detach(self)
            if kind == "reattach":
                # Detach / re-attach bounce.  Fires again after the
                # re-attach rebuilds the caches and the hook is called
                # anew, so one seed exercises several round trips.
                self.injected += 1
                dr_detach(self, reattach_after=REATTACH_AFTER)
            if kind == "cache_poison":
                prior = self._last_tag
                if prior is not None and prior != tag:
                    stale = self.runtime.decode_fragment(context, prior)
                    if stale is not None:
                        self.injected += 1
                        self._last_tag = tag
                        # Raises EmitError inside this hook.
                        dr_replace_fragment(
                            context, prior, corrupt_instrlist(stale)
                        )
        if self.inner is not None:
            self.inner.basic_block(context, tag, ilist)
        self._last_tag = tag

    def trace(self, context, tag, ilist):
        self.trace_calls += 1
        if self.plan.kind == "mid_trace_signal" and self.plan.fires(
            self.trace_calls
        ):
            self.injected += 1
            raise InjectedFault(
                "planted trace-hook fault #%d" % self.trace_calls
            )
        if self.inner is not None:
            self.inner.trace(context, tag, ilist)
