"""Resilience ("drguard"): fault-isolated client hooks, quarantine,
cache-consistency invalidation support, and deterministic fault
injection for testing all of it.

The guard wraps every client hook site in the runtime and executor.  A
client exception (other than a deliberate :class:`ClientHalt`) or a
hook-budget overrun is attributed to the client: the fragment is
re-emitted verbatim (the client's transform discarded) and after
``options.client_fault_limit`` faults the client is quarantined — all
its hooks are disabled and the run continues at native fidelity, the
software analogue of an OSR bailout to baseline code.
"""

from repro.resilience.guard import ClientGuard, ClientHalt, HookBudgetExceeded

__all__ = ["ClientGuard", "ClientHalt", "HookBudgetExceeded"]
