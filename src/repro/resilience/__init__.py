"""Resilience: fault-isolated client hooks ("drguard") and runtime
self-protection with a failsafe escalation ladder ("drshield"), plus
deterministic fault injection for testing both.

The client guard wraps every client hook site in the runtime and
executor.  A client exception (other than a deliberate
:class:`ClientHalt`) or a hook-budget overrun is attributed to the
client: the fragment is re-emitted verbatim (the client's transform
discarded) and after ``options.client_fault_limit`` faults the client
is quarantined — all its hooks are disabled and the run continues at
native fidelity, the software analogue of an OSR bailout to baseline
code.

The shield (``options.shield``) protects the runtime from the
*application* (errant stores into the code cache, exit stubs, IBL
tables, or runtime scratch are trapped, attributed, and recovered by
invalidating only the clobbered unit) and from *itself* (internal
faults at the build/emit/link/unlink/evict/trace/chain chokepoints
climb an escalation ladder: retry → discard → flush → disable the
faulting subsystem → detach to native).
"""

from repro.resilience.guard import (
    RUNTIME_PASSTHROUGH,
    ClientGuard,
    ClientHalt,
    HookBudgetExceeded,
)
from repro.resilience.shield import (
    RUNTIME_SITES,
    InjectedRuntimeFault,
    RuntimeGuard,
    Shield,
)

__all__ = [
    "ClientGuard",
    "ClientHalt",
    "HookBudgetExceeded",
    "InjectedRuntimeFault",
    "RuntimeGuard",
    "RUNTIME_PASSTHROUGH",
    "RUNTIME_SITES",
    "Shield",
]
