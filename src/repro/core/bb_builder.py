"""Basic block construction from application code.

A basic block is a sequence of instructions ending with a single control
transfer (paper Section 2).  Following the paper's Section 3.1 example,
the built InstrList contains a Level-0 bundle for the straight-line run
and a fully decoded (Level 3) block-ending CTI, "ready for
modification"; a client that wants more detail expands/decodes the list
itself — paying only for what it uses.

A block ending in a conditional branch gets a synthetic fall-through
``jmp`` appended (the fall-through exit that DynamoRIO materializes in
the cache), so such blocks have two direct exits.
"""

from repro.ir.instr import Instr
from repro.ir.instrlist import InstrList
from repro.isa.decoder import decode_boundary, decode_opcode
from repro.isa.opcodes import OP_INFO, Opcode
from repro.isa.operands import PcOperand
from repro.machine.errors import MachineFault


def build_basic_block(memory, tag, max_instrs=256):
    """Decode the basic block starting at application address ``tag``.

    Returns an :class:`InstrList`.  The straight-line prefix is a single
    Level-0 bundle; the block-ending CTI is decoded to Level 3.  Blocks
    are also terminated (without a CTI) at ``max_instrs`` or at a
    ``hlt``; such blocks get a synthetic jump to the next address.
    """
    view = memory.view()
    pc = tag
    count = 0
    # Scan for the block end with the cheap Level-2 decode.
    while True:
        try:
            opcode, _eflags, length = decode_opcode(view, pc)
        except Exception as exc:
            raise MachineFault("cannot decode block at 0x%x: %s" % (pc, exc))
        count += 1
        if OP_INFO[opcode].is_cti:
            cti_pc, cti_len = pc, length
            break
        pc += length
        # Syscalls end basic blocks (as in DynamoRIO: the kernel may
        # transfer control); hlt ends the program, and over-long blocks
        # are split.
        if (
            opcode == Opcode.HALT
            or opcode == Opcode.SYSCALL
            or count >= max_instrs
        ):
            cti_pc, cti_len = None, 0
            break

    ilist = InstrList()
    if cti_pc is None:
        body_end = pc
    else:
        body_end = cti_pc
    if body_end > tag:
        ilist.append(Instr.bundle(bytes(view[tag:body_end]), tag))
    if cti_pc is not None:
        cti = Instr.from_raw(bytes(view[cti_pc : cti_pc + cti_len]), cti_pc)
        cti.srcs  # decode to Level 3, "ready for modification"
        cti.is_exit_cti = True
        ilist.append(cti)
        if cti.is_cond_branch():
            fallthrough = Instr.create(Opcode.JMP, PcOperand(cti_pc + cti_len))
            fallthrough.is_exit_cti = True
            fallthrough.note = {"synthetic_fallthrough": True}
            ilist.append(fallthrough)
    else:
        # Block ended without a CTI (hlt or size limit): continue at the
        # next address via a synthetic jump (hlt itself stays in the
        # block and ends the program when executed).
        cont = Instr.create(Opcode.JMP, PcOperand(pc))
        cont.is_exit_cti = True
        cont.note = {"synthetic_fallthrough": True}
        ilist.append(cont)
    return ilist


def block_source_span(ilist, tag):
    """The application-code byte range ``(tag, end)`` a built block was
    decoded from, for the cache-consistency region map.

    Scans for the highest raw-byte extent among instructions that still
    carry their original bytes (the Level-0 bundle and the decoded exit
    CTI); synthetic instructions (no raw bits) contribute nothing.  A
    block whose instructions have all been replaced falls back to a
    one-byte span at ``tag`` so the head address itself stays monitored.
    """
    end = tag
    for instr in ilist:
        if instr.raw_bits_valid() and instr.raw_pc is not None:
            extent = instr.raw_pc + len(instr.raw)
            if extent > end:
                end = extent
    if end == tag:
        end = tag + 1
    return (tag, end)


def block_instr_count(ilist):
    """Number of application instructions in a built block (synthetic
    fall-through jumps excluded)."""
    total = 0
    for instr in ilist:
        if instr.is_bundle:
            off = 0
            while off < len(instr.raw):
                off += decode_boundary(instr.raw, off)
                total += 1
        elif isinstance(instr.note, dict) and instr.note.get("synthetic_fallthrough"):
            continue
        elif not (instr.level >= 2 and instr.is_label()):
            total += 1
    return total
