"""Chain compilation: dispatch-free execution across linked fragments.

The second compilation tier above :mod:`repro.core.closures`.  The
closure engine compiles one fragment at a time; a *linked transfer*
between two compiled fragments still returns to ``Executor.run``,
which re-checks the budget/alarm/deadline, samples the profiler,
charges the entry cost, and re-enters the step loop — a Python-level
round trip per fragment pass even when the whole working set is hot
and fully linked.

The chain compiler removes that round trip.  When a fragment has been
entered ``options.chain_threshold`` times, :class:`ChainManager`
walks its *stable direct links* (``LinkStub.KIND_DIRECT``, linked, not
``always_stub``) breadth-first up to ``options.chain_max_fragments``
members and concatenates the members' step tables into one flat
super-table:

* linked ``jmp``/``cond``/``call`` exit steps whose target is a chain
  member become **direct step-index transfers** — the fragment
  boundary collapses to an inline :func:`cross` call that performs the
  run loop's per-pass bookkeeping (budget, alarm, deadline/reschedule,
  profiler sample, entry cost) without leaving the step loop;
* indirect exits gain an **IBL hit fast path**: one dict probe of the
  thread's IBL table, and when the hit is a chain member control jumps
  straight into its slice of the super-table; ``CacheExit`` is raised
  only on a real miss;
* cycle charges at stitched boundaries are **fused**: the deferred
  exit cost and the entry cost of the next member land in a single
  counter update on the common (no-raise, profiler-off) path.

Chains are a pure wall-clock optimization: cycles, stats, events and
output are bit-identical to both the closure and the tuple engine —
the three-engine determinism tests assert it.  Chains therefore add
**no** stats counters or event kinds; build/invalidate telemetry lives
in :meth:`ChainManager.report` only.

Correctness under mutation rests on two mechanisms:

* every stitched step re-reads ``stub.linked_to`` and falls back to
  the generic ``_direct_exit`` when the baked target is no longer the
  link (self-validation — covers same-pass mutation by clean calls,
  SMC write watchers, and replacement);
* every unlink chokepoint in the runtime (fragment delete — which
  flush, eviction, SMC invalidation and client quarantine all route
  through — replacement, trace-head promotion and trace shadowing)
  calls :meth:`ChainManager.invalidate`, which dissolves every chain
  embedding the touched fragment via ``fragment.chains_in``
  back-pointers.  Stitched targets are always members, so invalidating
  the touched fragment reaches every baked reference to it.  New link
  *formation* is deliberately not a chokepoint: un-stitched generic
  exit steps read ``linked_to`` at exit time and pick up the fresh
  link, and the fragment gets a better chain at its next promotion.
"""

import sys

from repro.core.closures import _compile_target_fetch, compile_steps, plan_fragment
from repro.core.translate import wrap_chain_segment
from repro.core.emit import (
    CLEAN_CALL_COST,
    OP_CALL_EXIT,
    OP_COND_EXIT,
    OP_IND_CHECK,
    OP_IND_EXIT,
    OP_JMP_EXIT,
)
from repro.core.execute import EXIT_DISPATCH, CacheExit
from repro.core.fragments import LinkStub
from repro.isa.opcodes import Opcode
from repro.isa.operands import ImmOperand, MemOperand, RegOperand
from repro.machine.cpu import _PARITY, compile_condition
from repro.machine.errors import MachineFault
from repro.machine.exec_ops import compile_noncti
from repro.observe.events import (
    EV_CLEAN_CALL,
    EV_DISPATCH_CHECK_HIT,
    EV_IBL_HIT,
    EV_IBL_MISS,
    EV_INLINE_CHECK_HIT,
)

_MASK32 = 0xFFFFFFFF
_M = "4294967295"  # _MASK32 as a source literal

# Inline eflags templates mirroring the CPU's flag methods statement
# for statement (repro.machine.cpu: flags_sub / flags_add / flags_inc /
# flags_dec / flags_logic), with the flag bits as literals
# (CF=1, PF=4, AF=16, ZF=64, SF=128, OF=2048; ALL=2253) and the parity
# table bound as ``_parity``.  ``_r`` is the 32-bit result; sub/add
# templates consume ``_a``/``_b``.
_RESULT_FLAGS = (
    "(64 if _r == 0 else 0) | (128 if _r & 2147483648 else 0)"
    " | (4 if _parity[_r & 255] else 0)"
)
_LOGIC_FLAGS = "cpu.eflags = (cpu.eflags & ~2253) | " + _RESULT_FLAGS
_SUB_FLAGS = (
    "_r = (_a - _b) & 4294967295; "
    "cpu.eflags = (cpu.eflags & ~2253) | (1 if _a < _b else 0)"
    " | (2048 if ((_a ^ _b) & (_a ^ _r)) & 2147483648 else 0)"
    " | (16 if (_a ^ _b ^ _r) & 16 else 0) | " + _RESULT_FLAGS
)
_ADD_FLAGS = (
    "_full = _a + _b; _r = _full & 4294967295; "
    "cpu.eflags = (cpu.eflags & ~2253) | (1 if _full > 4294967295 else 0)"
    " | (2048 if (~(_a ^ _b) & (_a ^ _r)) & 2147483648 else 0)"
    " | (16 if (_a ^ _b ^ _r) & 16 else 0) | " + _RESULT_FLAGS
)
_INC_FLAGS = (
    "_a = regs[%d]; _r = (_a + 1) & 4294967295; "
    "cpu.eflags = (cpu.eflags & ~2253) | (cpu.eflags & 1)"
    " | (2048 if (~(_a ^ 1) & (_a ^ _r)) & 2147483648 else 0)"
    " | (16 if (_a ^ 1 ^ _r) & 16 else 0) | " + _RESULT_FLAGS
)
_DEC_FLAGS = (
    "_a = regs[%d]; _r = (_a - 1) & 4294967295; "
    "cpu.eflags = (cpu.eflags & ~2253) | (cpu.eflags & 1)"
    " | (2048 if ((_a ^ 1) & (_a ^ _r)) & 2147483648 else 0)"
    " | (16 if (_a ^ 1 ^ _r) & 16 else 0) | " + _RESULT_FLAGS
)

# Compiled code objects for generated segment sources, keyed by the
# source text: structurally identical runs (common in unrolled loops)
# are compiled by CPython once per process.
_SEGMENT_CODE_CACHE = {}


def _ea_expr(op):
    """Source expression for a MemOperand's effective address —
    mirrors ``exec_ops.compile_ea`` case for case."""
    base, index, scale, disp = op.base, op.index, op.scale, op.disp
    if base is None and index is None:
        return str(disp & _MASK32)
    if index is None:
        if disp == 0:
            return "(regs[%d] & %s)" % (base, _M)
        return "((%d + regs[%d]) & %s)" % (disp, base, _M)
    if base is None:
        return "((%d + regs[%d] * %d) & %s)" % (disp, index, scale, _M)
    return "((%d + regs[%d] + regs[%d] * %d) & %s)" % (
        disp, base, index, scale, _M,
    )


def _read_expr(op):
    """Source expression for an operand read (zero-extended), or None
    — mirrors ``exec_ops.compile_read``."""
    if isinstance(op, RegOperand):
        return "regs[%d]" % op.reg
    if isinstance(op, ImmOperand):
        return str(op.value & _MASK32)
    if isinstance(op, MemOperand):
        ea = _ea_expr(op)
        if op.size == 4:
            return "read_u32(%s)" % ea
        if op.size == 2:
            return "read_u16(%s)" % ea
        return "read_u8(%s)" % ea
    return None


def _store_stmt(op, value_expr):
    """Source statement writing ``value_expr`` to operand ``op``, or
    None — mirrors ``exec_ops.compile_write``, including its
    value-before-address evaluation order for memory stores (the value
    read may fault; the address arithmetic cannot)."""
    if isinstance(op, RegOperand):
        return "regs[%d] = (%s) & %s" % (op.reg, value_expr, _M)
    if isinstance(op, MemOperand):
        if op.size == 4:
            return "_t = %s; write_u32(%s, _t)" % (value_expr, _ea_expr(op))
        if op.size == 1:
            return "_t = %s; write_u8(%s, _t)" % (value_expr, _ea_expr(op))
    return None


def _inline_instr(opcode, ops):
    """One generated source line executing a non-CTI instruction, or
    None when the opcode/operand shape has no inline template (the
    caller then falls back to the compiled per-instruction closure).

    Each template mirrors the corresponding ``exec_ops`` compiler —
    same value masking, same flags calls, same evaluation order — so
    faults and results are identical; the win is purely fewer Python
    calls (no per-instruction closure, no operand-accessor thunks).
    Every instruction is exactly one source line (compound statements
    via ``;``), so a traceback line identifies the faulting
    instruction.
    """
    if opcode in (Opcode.NOP, Opcode.LABEL):
        return "pass"
    if opcode == Opcode.CMP:
        r0, r1 = _read_expr(ops[0]), _read_expr(ops[1])
        if r0 is None or r1 is None:
            return None
        return "_a = %s; _b = %s; %s" % (r0, r1, _SUB_FLAGS)
    if opcode == Opcode.TEST:
        r0, r1 = _read_expr(ops[0]), _read_expr(ops[1])
        if r0 is None or r1 is None:
            return None
        return "_r = (%s) & (%s); %s" % (r0, r1, _LOGIC_FLAGS)
    if opcode == Opcode.PUSH:
        r = _read_expr(ops[0])
        if r is None:
            return None
        # Value read before moving esp (push %esp semantics).
        return (
            "_t = %s; _sp = (regs[4] - 4) & %s; regs[4] = _sp; "
            "write_u32(_sp, _t)" % (r, _M)
        )
    if opcode == Opcode.POP:
        store = _store_stmt(ops[0], "_t")
        if store is None:
            return None
        return (
            "_t = read_u32(regs[4]); regs[4] = (regs[4] + 4) & %s; %s"
            % (_M, store)
        )
    if opcode == Opcode.LEA:
        if not isinstance(ops[0], RegOperand) or not isinstance(
            ops[1], MemOperand
        ):
            return None
        return "regs[%d] = %s" % (ops[0].reg, _ea_expr(ops[1]))

    if opcode in (Opcode.MOV, Opcode.MOVZX, Opcode.FLD, Opcode.FST):
        dst, src = ops[0], ops[1]
        if isinstance(dst, RegOperand):
            d = dst.reg
            if isinstance(src, RegOperand):
                return "regs[%d] = regs[%d]" % (d, src.reg)
            if isinstance(src, ImmOperand):
                return "regs[%d] = %d" % (d, src.value & _MASK32)
            if isinstance(src, MemOperand) and src.size == 4:
                return "regs[%d] = read_u32(%s)" % (d, _ea_expr(src))
        elif isinstance(dst, MemOperand) and dst.size == 4:
            ea = _ea_expr(dst)
            if isinstance(src, RegOperand):
                return "write_u32(%s, regs[%d])" % (ea, src.reg)
            if isinstance(src, ImmOperand):
                return "write_u32(%s, %d)" % (ea, src.value & _MASK32)
        r = _read_expr(src)
        if r is None:
            return None
        return _store_stmt(dst, r)
    if opcode == Opcode.MOVB_STORE:
        r = _read_expr(ops[1])
        if r is None:
            return None
        return _store_stmt(ops[0], "(%s) & 255" % r)
    if opcode == Opcode.MOVSX:
        src = ops[1]
        if not isinstance(src, MemOperand):
            return None
        r = _read_expr(src)
        if r is None:
            return None
        sign_bit = 1 << (src.size * 8 - 1)
        return _store_stmt(
            ops[0], "((%s ^ %d) - %d) & %s" % (r, sign_bit, sign_bit, _M)
        )

    if opcode in (Opcode.ADD, Opcode.SUB):
        flags = _ADD_FLAGS if opcode == Opcode.ADD else _SUB_FLAGS
        dst = ops[0]
        r1 = _read_expr(ops[1])
        if r1 is None:
            return None
        if isinstance(dst, RegOperand):
            d = dst.reg
            return "_a = regs[%d]; _b = %s; %s; regs[%d] = _r" % (
                d, r1, flags, d,
            )
        method = "flags_add" if opcode == Opcode.ADD else "flags_sub"
        r0 = _read_expr(dst)
        if r0 is None:
            return None
        return _store_stmt(dst, "cpu.%s(%s, %s)" % (method, r0, r1))
    if opcode in (Opcode.INC, Opcode.DEC):
        dst = ops[0]
        if isinstance(dst, RegOperand):
            d = dst.reg
            flags = _INC_FLAGS if opcode == Opcode.INC else _DEC_FLAGS
            return "%s; regs[%d] = _r" % (flags % d, d)
        method = "flags_inc" if opcode == Opcode.INC else "flags_dec"
        r = _read_expr(dst)
        if r is None:
            return None
        return _store_stmt(dst, "cpu.%s(%s)" % (method, r))
    if opcode in (Opcode.AND, Opcode.OR, Opcode.XOR):
        pyop = {Opcode.AND: "&", Opcode.OR: "|", Opcode.XOR: "^"}[opcode]
        dst = ops[0]
        r1 = _read_expr(ops[1])
        if r1 is None:
            return None
        if isinstance(dst, RegOperand):
            d = dst.reg
            return "_r = regs[%d] %s (%s); %s; regs[%d] = _r" % (
                d, pyop, r1, _LOGIC_FLAGS, d,
            )
        r0 = _read_expr(dst)
        if r0 is None:
            return None
        return _store_stmt(
            dst, "cpu.flags_logic((%s) %s (%s))" % (r0, pyop, r1)
        )
    if opcode == Opcode.NOT:
        r = _read_expr(ops[0])
        if r is None:
            return None
        return _store_stmt(ops[0], "~(%s) & %s" % (r, _M))
    if opcode == Opcode.NEG:
        r = _read_expr(ops[0])
        if r is None:
            return None
        return _store_stmt(ops[0], "cpu.flags_neg(%s)" % r)
    if opcode in (Opcode.SHL, Opcode.SHR, Opcode.SAR):
        r0, r1 = _read_expr(ops[0]), _read_expr(ops[1])
        if r0 is None or r1 is None:
            return None
        if opcode == Opcode.SHL:
            value = "cpu.flags_shl(%s, (%s) & 31)" % (r0, r1)
        elif opcode == Opcode.SHR:
            value = "cpu.flags_shr(%s, (%s) & 31)" % (r0, r1)
        else:
            value = "cpu.flags_shr(%s, (%s) & 31, arithmetic=True)" % (r0, r1)
        return _store_stmt(ops[0], value)
    if opcode == Opcode.IMUL:
        r0, r1 = _read_expr(ops[0]), _read_expr(ops[1])
        if r0 is None or r1 is None:
            return None
        return _store_stmt(ops[0], "cpu.flags_imul(%s, %s)" % (r0, r1))
    if opcode in (Opcode.FADD, Opcode.FSUB):
        pyop = "+" if opcode == Opcode.FADD else "-"
        r0, r1 = _read_expr(ops[0]), _read_expr(ops[1])
        if r0 is None or r1 is None:
            return None
        return _store_stmt(ops[0], "((%s) %s (%s)) & %s" % (r0, pyop, r1, _M))

    # DIV, XCHG, FMUL, FDIV, SYSCALL and anything unrecognized run
    # through their compiled closures.
    return None


class _ChainRecord:
    """One built chain: the root whose ``chain`` holds the table, and
    the members whose steps (and link stubs) the table embeds."""

    __slots__ = ("root", "members", "table", "bases", "dead")

    def __init__(self, root, members, table, bases):
        self.root = root
        self.members = members
        self.table = table
        # Each member's starting index in the super-table, parallel to
        # ``members`` — the key for translating a super-table step back
        # to (member, local step) for detach-time state translation.
        self.bases = bases
        self.dead = False

    def __repr__(self):
        return "<_ChainRecord root=0x%x members=%d steps=%d%s>" % (
            self.root.tag,
            len(self.members),
            len(self.table),
            " dead" if self.dead else "",
        )


class ChainManager:
    """Builds, caches and invalidates chains for one runtime."""

    def __init__(self, runtime):
        self.runtime = runtime
        self.threshold = runtime.options.chain_threshold
        self.max_fragments = runtime.options.chain_max_fragments
        self.built = 0
        self.dissolved = 0
        self._cross = self._make_cross()

    # ------------------------------------------------------------- promotion

    def note_pass(self, fragment):
        """One pass through a chainless fragment.  Returns the freshly
        built chain table at the promotion threshold, else ``None``."""
        count = fragment.chain_counter + 1
        if count < self.threshold:
            fragment.chain_counter = count
            return None
        fragment.chain_counter = 0
        if fragment.deleted:
            return None
        rguard = self.runtime.rguard
        if rguard is None or rguard.recovering:
            return self._build(fragment)
        # drshield: chain building is a runtime chokepoint — a fault
        # here is recorded and the fragment simply keeps running its
        # per-fragment table (chains are a wall-clock optimization, so
        # skipping the build is always safe); repeated chain faults
        # disable the chain subsystem outright.
        from repro.resilience.guard import RUNTIME_PASSTHROUGH

        try:
            rguard.check("chain", fragment.tag)
            return self._build(fragment)
        except RUNTIME_PASSTHROUGH:
            raise
        except Exception as exc:
            rguard.record_fault("chain", fragment.tag, exc)
            return None

    # ----------------------------------------------------------- invalidation

    def invalidate(self, fragment):
        """Dissolve every chain whose table embeds ``fragment``.

        Called at each unlink chokepoint.  A table currently executing
        keeps running correctly (its stitched steps self-validate
        against the live link stubs); this only demotes future entries
        back to per-fragment tables."""
        records = fragment.chains_in
        if not records:
            return
        for record in list(records):
            self._dissolve(record)

    def _dissolve(self, record):
        if record.dead:
            return
        record.dead = True
        root = record.root
        root.chain = None
        root.chain_counter = 0
        for member in record.members:
            try:
                member.chains_in.remove(record)
            except ValueError:
                pass
        self.dissolved += 1

    def translate_step(self, record, index):
        """Application PC for interruption at entry to super-table step
        ``index``: find the owning member's slice and translate through
        that fragment's table (repro.core.translate)."""
        members = record.members
        bases = record.bases
        for pos in range(len(bases) - 1, -1, -1):
            if index >= bases[pos]:
                member = members[pos]
                if member.translation is not None:
                    return member.translation.translate_step(index - bases[pos])
                return member.tag
        return record.root.tag

    def report(self):
        """Build/invalidate telemetry (not part of RunResult.events —
        chains must not perturb the replayable stats/event streams)."""
        return {
            "chains_built": self.built,
            "chains_invalidated": self.dissolved,
            "chains_live": self.built - self.dissolved,
        }

    def check_integrity(self):
        """Debug invariant sweep over every live chain (used by the
        cache-pressure fuzz tests): no live chain may embed a deleted
        fragment, every member's ``chains_in`` back-pointer must reach
        its record, and every record a fragment points at must list it
        as a member.  Returns a list of violation strings (empty =
        clean)."""
        problems = []
        seen = set()
        for thread in self.runtime.threads:
            for cache in (thread.bb_cache, thread.trace_cache):
                if id(cache) in seen:
                    continue
                seen.add(id(cache))
                for fragment in cache.fragments.values():
                    for record in fragment.chains_in:
                        if record.dead:
                            problems.append(
                                "0x%x: chains_in holds a dead record"
                                % fragment.tag
                            )
                            continue
                        if fragment not in record.members:
                            problems.append(
                                "0x%x: back-pointer to a chain that does "
                                "not list it" % fragment.tag
                            )
                        for member in record.members:
                            if member.deleted:
                                problems.append(
                                    "chain rooted at 0x%x embeds deleted "
                                    "0x%x" % (record.root.tag, member.tag)
                                )
                        if record.root.chain is not record.table:
                            problems.append(
                                "chain rooted at 0x%x live but not "
                                "installed" % record.root.tag
                            )
        return problems

    # ---------------------------------------------------------------- building

    def _build(self, root):
        """Stitch ``root`` and its stable linked successors into one
        flat super-table; returns it, or ``None`` when a chain would
        not beat the plain per-fragment table."""
        max_fragments = self.max_fragments
        members = [root]
        seen = {id(root)}
        queue = [root]
        while queue:
            frag = queue.pop(0)
            for stub in frag.exits:
                if stub.kind != LinkStub.KIND_DIRECT or stub.always_stub:
                    continue
                target = stub.linked_to
                if (
                    target is None
                    or target.deleted
                    or id(target) in seen
                    or len(members) >= max_fragments
                ):
                    continue
                seen.add(id(target))
                members.append(target)
                queue.append(target)

        if len(members) == 1 and not any(
            stub.kind == LinkStub.KIND_INDIRECT for stub in root.exits
        ):
            # No stitchable link and no indirect exit that could
            # self-resolve: the chain would be the compiled table with
            # extra overhead.  (The counter was reset — links formed
            # later get another shot after `threshold` more passes.)
            return None

        runtime = self.runtime
        base_of = {}
        bases = []
        plans_of = []
        total = 0
        for member in members:
            plans, step_of, table_len = plan_fragment(member.code)
            plans_of.append((plans, step_of))
            base_of[id(member)] = total
            bases.append(total)
            total += table_len
        # IBL hits transfer by application tag; first member wins when
        # a bb and its shadowing trace share one (the identity check in
        # the fast path keeps a stale entry from ever being taken).
        members_by_tag = {}
        for member, base in zip(members, bases):
            members_by_tag.setdefault(member.tag, (member, base))

        table = []
        for member, base in zip(members, bases):
            override = self._make_override(
                member, base_of, members_by_tag
            )
            table.extend(
                compile_steps(
                    member, runtime, base=base, exit_override=override
                )
            )
        # Second pass: replace multi-instruction OP_EXEC runs with
        # unrolled generated-source segments (batched accounting, no
        # per-instruction loop machinery) — the chain tier's in-line
        # speedup on straight-line code.
        precise = runtime.options.precise_interrupts
        for member, base, (plans, step_of) in zip(members, bases, plans_of):
            code = member.code
            sentinel = len(plans)
            for plan_index, (plan_kind, payload) in enumerate(plans):
                if plan_kind != "run" or len(payload) < 2:
                    continue
                nxt = step_of.get(payload[-1] + 1, sentinel) + base
                segment = self._compile_segment(code, payload, nxt)
                if precise:
                    # The replacement clobbers compile_steps' poll
                    # wrapper; re-wrap so chains interrupt at the same
                    # application-consistent points as the other engines.
                    segment = wrap_chain_segment(
                        member, runtime, payload[0], segment
                    )
                table[base + plan_index] = segment
        table = tuple(table)

        record = _ChainRecord(root, tuple(members), table, tuple(bases))
        root.chain = table
        for member in members:
            member.chains_in.append(record)
        self.built += 1
        return table

    # ----------------------------------------------------- segment compilation

    def _compile_segment(self, code, run, nxt):
        """Compile one fused OP_EXEC run into an inline-semantics step.

        The closure engine's fused step pays a loop iteration, a tuple
        unpack, two counter increments and one closure call (plus its
        operand-accessor thunks) per instruction.  Here the run becomes
        straight-line generated source: recognized opcode/operand
        shapes are translated to inline Python mirroring their
        ``exec_ops`` compilers (register file and memory accessors
        bound as locals, same masking, same flags calls, same
        evaluation order), unrecognized shapes fall back to a direct
        call of their compiled closure, and cycles/instructions land in
        one batched update at the end.

        On a mid-run fault (or program exit) the exception's traceback
        line identifies exactly how far the run got — every instruction
        occupies exactly one source line — so the flushed totals match
        the per-instruction engines at every observable point; charges
        are deferred into locals, as the generic fused step already
        does, so only the final sums are ever visible.
        """
        runtime = self.runtime
        counter = runtime.counter
        mem = runtime.memory
        system = runtime.system
        prefix = []
        total = 0
        env = {
            "_sys": sys,
            "_counter": counter,
            "_total": None,  # placeholders, filled in below
            "_nxt": nxt,
            "_flush": None,
            "read_u32": mem.read_u32,
            "read_u16": mem.read_u16,
            "read_u8": mem.read_u8,
            "write_u32": mem.write_u32,
            "write_u8": mem.write_u8,
            "_parity": _PARITY,
        }
        lines = [
            "def _segment(ex, cpu):",
            " regs = cpu.regs",
            " try:",
        ]
        line_index = {}
        for k, op_index in enumerate(run):
            op = code[op_index]
            total += op[3]
            prefix.append(total)
            text = _inline_instr(op[1], op[2])
            if text is None:
                name = "_f%d" % k
                env[name] = compile_noncti(op[1], op[2], mem, system)
                text = "%s(cpu)" % name
            lines.append("  " + text)
            line_index[len(lines)] = k
        lines.extend(
            [
                " except BaseException:",
                "  _flush(ex, _sys.exc_info()[2].tb_lineno)",
                "  raise",
                " _counter.cycles += _total",
                " ex.instructions += %d" % len(run),
                " return _nxt",
            ]
        )
        source = "\n".join(lines)
        code_obj = _SEGMENT_CODE_CACHE.get(source)
        if code_obj is None:
            code_obj = compile(source, "<chain-segment>", "exec")
            _SEGMENT_CODE_CACHE[source] = code_obj
        prefix = tuple(prefix)

        def _flush(ex, lineno):
            index = line_index[lineno]
            counter.cycles += prefix[index]
            ex.instructions += index + 1

        env["_total"] = total
        env["_flush"] = _flush
        exec(code_obj, env)
        return env["_segment"]

    # -------------------------------------------------------- boundary steps

    def _make_cross(self):
        """The inline fragment boundary: exactly the per-pass prologue
        of ``Executor.run``'s loop (non-first iteration), with the
        previous exit's deferred cycle charge (``pending``) landing at
        the same observable points as the generic engines charge it."""
        runtime = self.runtime
        counter = runtime.counter
        system = runtime.system
        fragment_entry = runtime.cost.fragment_entry

        def cross(ex, fragment, pending):
            budget = ex._budget
            if budget is not None and ex.instructions > budget:
                counter.cycles += pending
                raise MachineFault(
                    "instruction budget exhausted (%d)" % budget
                )
            if system.alarm_active:
                system.convert_alarm(ex.instructions)
                if system.alarm_due(ex.instructions):
                    counter.cycles += pending
                    raise CacheExit(EXIT_DISPATCH, fragment.tag, None)
            if (
                ex._deadline is not None
                and ex.instructions >= ex._deadline
            ) or runtime._need_reschedule:
                counter.cycles += pending
                raise CacheExit(EXIT_DISPATCH, fragment.tag, None)
            profile_enter = ex._profile_enter
            if profile_enter is None:
                # The fused boundary: deferred exit cost + entry cost
                # in one counter update.
                counter.cycles += pending + fragment_entry
            else:
                counter.cycles += pending
                profile_enter(fragment, counter.cycles)
                counter.cycles += fragment_entry

        return cross

    def _make_override(self, member, base_of, members_by_tag):
        """The ``exit_override`` for one member's ``compile_steps``:
        returns stitched replacements for exits resolvable inside the
        chain, ``None`` (keep the generic step) otherwise."""
        runtime = self.runtime
        counter = runtime.counter
        stats = runtime.stats
        mem = runtime.memory
        system = runtime.system
        write_u32 = mem.write_u32
        taken_penalty = runtime.cost.taken_branch_penalty
        ibl_lookup = runtime.cost.ibl_lookup
        fragment_entry = runtime.cost.fragment_entry
        cross = self._cross
        exits = member.exits
        tag = member.tag

        # The stitched steps below open-code cross()'s common path —
        # no budget stop, no alarm, no deadline/reschedule, no
        # profiler — as one fused counter update, calling cross() only
        # when any slow condition holds (cross re-derives the exact
        # charge/raise ordering).  This saves a Python call per
        # stitched boundary, which dominates chain overhead on
        # small-fragment workloads.

        def stitch_of(stub):
            """``(target, base)`` when the stub's link is baked into
            this chain, else ``None``."""
            if stub.kind != LinkStub.KIND_DIRECT or stub.always_stub:
                return None
            target = stub.linked_to
            if target is None:
                return None
            target_base = base_of.get(id(target))
            if target_base is None:
                return None
            return target, target_base

        def hook_call(ex, fn, role, target):
            # Checker/profiler clean call, identical to the generic
            # engines' accounting and guard routing.
            counter.cycles += CLEAN_CALL_COST
            stats.clean_calls += 1
            observer = runtime.observer
            if observer is not None:
                observer.emit(EV_CLEAN_CALL, tag, role=role, target=target)
            guard = runtime.guard
            if guard is None:
                fn(runtime.current_thread, target)
            else:
                guard.call(
                    fn, (runtime.current_thread, target), tag=tag, role=role
                )

        def resolve_indirect(ex, stub, target, cpu):
            """In-step IBL: one dict probe, and a hit on a chain member
            jumps straight into its slice of the super-table.  Unwinds
            to the dispatcher only on a real miss."""
            if runtime.options.link_indirect:
                counter.cycles += ibl_lookup
                fragment = runtime.current_thread.ibl.table.get(target)
                if fragment is not None:
                    stats.ibl_hits += 1
                    observer = runtime.observer
                    if observer is not None:
                        observer.emit(
                            EV_IBL_HIT, target, fragment_kind=fragment.kind
                        )
                    entry = members_by_tag.get(target)
                    if entry is not None and entry[0] is fragment:
                        n = ex.instructions
                        budget = ex._budget
                        deadline = ex._deadline
                        if (
                            (budget is None or n <= budget)
                            and not system.alarm_active
                            and (deadline is None or n < deadline)
                            and not runtime._need_reschedule
                            and ex._profile_enter is None
                        ):
                            counter.cycles += fragment_entry
                        else:
                            cross(ex, fragment, 0)
                        return entry[1]
                    ex._next_fragment = fragment
                    return None
                stats.ibl_misses += 1
                observer = runtime.observer
                if observer is not None:
                    observer.emit(EV_IBL_MISS, target)
            ex._ibl_miss(stub, target, cpu, mem, system)

        def override(op_index, op, nxt):
            kind = op[0]

            if kind == OP_COND_EXIT:
                stub = exits[op[2]]
                stitch = stitch_of(stub)
                if stitch is None:
                    return None
                target, target_base = stitch
                cond = compile_condition(op[1])
                c = op[3]
                c_taken = c + taken_penalty

                def chained_cond_step(
                    ex,
                    cpu,
                    _cond=cond,
                    _stub=stub,
                    _target=target,
                    _tbase=target_base,
                    _c=c,
                    _ct=c_taken,
                    _nxt=nxt,
                ):
                    n = ex.instructions + 1
                    ex.instructions = n
                    if _cond(cpu.eflags):
                        if _stub.linked_to is _target:
                            budget = ex._budget
                            deadline = ex._deadline
                            if (
                                (budget is None or n <= budget)
                                and not system.alarm_active
                                and (deadline is None or n < deadline)
                                and not runtime._need_reschedule
                                and ex._profile_enter is None
                            ):
                                counter.cycles += _ct + fragment_entry
                            else:
                                cross(ex, _target, _ct)
                            return _tbase
                        counter.cycles += _ct
                        ex._next_fragment = ex._direct_exit(
                            _stub, cpu, mem, system
                        )
                        return None
                    counter.cycles += _c
                    return _nxt

                return chained_cond_step

            if kind == OP_JMP_EXIT:
                stub = exits[op[1]]
                stitch = stitch_of(stub)
                if stitch is None:
                    return None
                target, target_base = stitch
                c_taken = op[2] + taken_penalty

                def chained_jmp_step(
                    ex,
                    cpu,
                    _stub=stub,
                    _target=target,
                    _tbase=target_base,
                    _ct=c_taken,
                ):
                    n = ex.instructions + 1
                    ex.instructions = n
                    if _stub.linked_to is _target:
                        budget = ex._budget
                        deadline = ex._deadline
                        if (
                            (budget is None or n <= budget)
                            and not system.alarm_active
                            and (deadline is None or n < deadline)
                            and not runtime._need_reschedule
                            and ex._profile_enter is None
                        ):
                            counter.cycles += _ct + fragment_entry
                        else:
                            cross(ex, _target, _ct)
                        return _tbase
                    counter.cycles += _ct
                    ex._next_fragment = ex._direct_exit(
                        _stub, cpu, mem, system
                    )
                    return None

                return chained_jmp_step

            if kind == OP_CALL_EXIT:
                stub = exits[op[1]]
                stitch = stitch_of(stub)
                if stitch is None:
                    return None
                target, target_base = stitch
                ret_addr = op[2]
                c_taken = op[3] + taken_penalty

                def chained_call_step(
                    ex,
                    cpu,
                    _stub=stub,
                    _target=target,
                    _tbase=target_base,
                    _ra=ret_addr,
                    _ct=c_taken,
                ):
                    ex.instructions += 1
                    # Charged before the push: the store may trip the
                    # SMC write watcher, whose charges land after this
                    # exit's in the generic engines too.
                    counter.cycles += _ct
                    regs = cpu.regs
                    regs[4] = (regs[4] - 4) & _MASK32
                    write_u32(regs[4], _ra)
                    # Link re-read after the push — the store may have
                    # just invalidated the baked target.
                    if _stub.linked_to is _target:
                        n = ex.instructions
                        budget = ex._budget
                        deadline = ex._deadline
                        if (
                            (budget is None or n <= budget)
                            and not system.alarm_active
                            and (deadline is None or n < deadline)
                            and not runtime._need_reschedule
                            and ex._profile_enter is None
                        ):
                            counter.cycles += fragment_entry
                        else:
                            cross(ex, _target, 0)
                        return _tbase
                    ex._next_fragment = ex._direct_exit(
                        _stub, cpu, mem, system
                    )
                    return None

                return chained_call_step

            if kind == OP_IND_EXIT:
                _k, exit_idx, operand, is_call, ret_addr, profiler, checker, c = op
                stub = exits[exit_idx]
                fetch = _compile_target_fetch(operand, mem)
                c_taken = c + taken_penalty

                def chained_ind_step(
                    ex,
                    cpu,
                    _fetch=fetch,
                    _stub=stub,
                    _is_call=is_call,
                    _ra=ret_addr,
                    _profiler=profiler,
                    _checker=checker,
                    _ct=c_taken,
                ):
                    ex.instructions += 1
                    target = _fetch(cpu)
                    if _checker is not None:
                        hook_call(ex, _checker, "checker", target)
                    if _is_call:
                        regs = cpu.regs
                        regs[4] = (regs[4] - 4) & _MASK32
                        write_u32(regs[4], _ra)
                    counter.cycles += _ct
                    if _profiler is not None:
                        hook_call(ex, _profiler, "profiler", target)
                    return resolve_indirect(ex, _stub, target, cpu)

                return chained_ind_step

            if kind == OP_IND_CHECK:
                (
                    _k,
                    ibl_idx,
                    operand,
                    expected,
                    dispatch,
                    is_call,
                    ret_addr,
                    profiler,
                    checker,
                    c,
                    check_cost,
                ) = op
                ibl_stub = exits[ibl_idx]
                entries = []
                for d_tag, d_idx in dispatch:
                    d_stub = exits[d_idx]
                    stitch = stitch_of(d_stub)
                    if stitch is None:
                        entries.append((d_tag, d_stub, None, 0))
                    else:
                        entries.append((d_tag, d_stub, stitch[0], stitch[1]))
                dispatch_entries = tuple(entries)
                fetch = _compile_target_fetch(operand, mem)

                def chained_ind_check_step(
                    ex,
                    cpu,
                    _fetch=fetch,
                    _expected=expected,
                    _dispatch=dispatch_entries,
                    _ibl_stub=ibl_stub,
                    _is_call=is_call,
                    _ra=ret_addr,
                    _profiler=profiler,
                    _checker=checker,
                    _c=c,
                    _cc=check_cost,
                    _nxt=nxt,
                ):
                    ex.instructions += 1
                    target = _fetch(cpu)
                    if _checker is not None:
                        hook_call(ex, _checker, "checker", target)
                    if _is_call:
                        regs = cpu.regs
                        regs[4] = (regs[4] - 4) & _MASK32
                        write_u32(regs[4], _ra)
                    counter.cycles += _c
                    if target == _expected:
                        stats.inline_check_hits += 1
                        observer = runtime.observer
                        if observer is not None:
                            observer.emit(
                                EV_INLINE_CHECK_HIT, tag, target=target
                            )
                        return _nxt
                    matched = None
                    for entry in _dispatch:
                        counter.cycles += _cc
                        if target == entry[0]:
                            matched = entry
                            break
                    if matched is not None:
                        stats.dispatch_check_hits += 1
                        observer = runtime.observer
                        if observer is not None:
                            observer.emit(
                                EV_DISPATCH_CHECK_HIT, tag, target=target
                            )
                        counter.cycles += taken_penalty
                        d_stub = matched[1]
                        d_target = matched[2]
                        if d_target is not None and d_stub.linked_to is d_target:
                            n = ex.instructions
                            budget = ex._budget
                            deadline = ex._deadline
                            if (
                                (budget is None or n <= budget)
                                and not system.alarm_active
                                and (deadline is None or n < deadline)
                                and not runtime._need_reschedule
                                and ex._profile_enter is None
                            ):
                                counter.cycles += fragment_entry
                            else:
                                cross(ex, d_target, 0)
                            return matched[3]
                        ex._next_fragment = ex._direct_exit(
                            d_stub, cpu, mem, system
                        )
                        return None
                    if _profiler is not None:
                        hook_call(ex, _profiler, "profiler", target)
                    counter.cycles += taken_penalty
                    return resolve_indirect(ex, _ibl_stub, target, cpu)

                return chained_ind_check_step

            return None

        return override
