"""Fragment and exit-stub data structures.

A *fragment* is a basic block or trace resident in the code cache
(paper Section 2).  Each exit from a fragment has a :class:`LinkStub`:
when unlinked, control goes through the stub (running any client custom
stub code) and context-switches back to the runtime; when linked,
control transfers directly to the target fragment.
"""


class LinkStub:
    """One exit from a fragment."""

    __slots__ = (
        "fragment",
        "index",
        "kind",
        "target_tag",
        "linked_to",
        "stub_ops",
        "always_stub",
        "is_call_exit",
    )

    KIND_DIRECT = "direct"
    KIND_INDIRECT = "indirect"

    def __init__(self, fragment, index, kind, target_tag=None):
        self.fragment = fragment
        self.index = index
        self.kind = kind
        self.target_tag = target_tag  # application address, direct exits
        self.linked_to = None  # Fragment when linked
        # Lowered client custom-stub instructions: list of (opcode, ops, cost)
        self.stub_ops = ()
        self.always_stub = False
        # Call exits do not count as "backward branches" for the default
        # trace-head heuristic (calls target earlier-placed functions all
        # the time; loop backedges are what NET heads are about).
        self.is_call_exit = False

    def __repr__(self):
        state = "->%s" % self.linked_to if self.linked_to else "unlinked"
        return "<LinkStub #%d %s tag=0x%x %s>" % (
            self.index,
            self.kind,
            self.target_tag or 0,
            state,
        )


class Fragment:
    """A basic block or trace in the code cache."""

    __slots__ = (
        "tag",
        "kind",
        "code",
        "exits",
        "cache_addr",
        "size",
        "instrs_source",
        "source_tags",
        "is_trace_head",
        "head_counter",
        "incoming",
        "deleted",
        "generation",
        "compiled",
        "source_spans",
        "chain",
        "chain_counter",
        "chains_in",
        "translation",
    )

    KIND_BB = "bb"
    KIND_TRACE = "trace"

    def __init__(self, tag, kind):
        self.tag = tag
        self.kind = kind
        self.code = ()  # lowered ops (see repro.core.emit)
        self.exits = []
        self.cache_addr = None
        self.size = 0  # encoded size in the simulated code cache
        # The InstrList this fragment was emitted from, retained to
        # support dr_decode_fragment (adaptive re-optimization).
        self.instrs_source = None
        # Ordered application block tags this fragment translates:
        # (tag,) for a basic block, the stitched sequence for a trace.
        # Input to the drequiv equivalence checker (analysis/equiv.py).
        self.source_tags = (tag,)
        self.is_trace_head = False
        self.head_counter = 0
        # Incoming LinkStubs pointing at this fragment (for unlinking
        # and fragment replacement).
        self.incoming = []
        self.deleted = False
        self.generation = 0
        # Closure-compiled step table (repro.core.closures); built when
        # the fragment is emitted under a runtime, lazily otherwise.
        self.compiled = None
        # Application-code byte ranges this fragment was translated
        # from: tuple of (start, end) pairs.  Registered with the
        # cache-consistency region map when options.cache_consistency is
        # on; traces carry the union of their constituent blocks' spans.
        self.source_spans = ()
        # Chain compiler (repro.core.chains): the stitched super-table
        # rooted at this fragment, the hot-pass promotion counter, and
        # the chain records whose tables embed this fragment's steps
        # (back-pointers for invalidation at unlink chokepoints).
        self.chain = None
        self.chain_counter = 0
        self.chains_in = []
        # Execution-point -> application-PC map (repro.core.translate):
        # built at emit time, drives mid-fragment signal delivery and
        # detach-time state translation.
        self.translation = None

    @property
    def is_trace(self):
        return self.kind == self.KIND_TRACE

    def __repr__(self):
        return "<Fragment %s tag=0x%x %d ops>" % (
            self.kind,
            self.tag,
            len(self.code),
        )
