"""The DynamoRIO reproduction: a runtime code cache with linking,
traces, adaptive fragment replacement, and a client interface.

Modules:

=================  ====================================================
``options``        runtime configuration, incl. the Table 1 presets
``fragments``      Fragment / LinkStub data structures
``bb_builder``     application code → basic-block InstrList
``trace_builder``  NET-style trace construction (heads, counters)
``emit``           InstrList → executable fragment ops (lowering)
``execute``        the in-cache execution engine
``ibl``            indirect-branch lookup table
``runtime``        the dispatch loop tying everything together
``threads``        per-thread context (thread-private caches)
``stats``          runtime statistics
=================  ====================================================
"""

from repro.core.options import RuntimeOptions
from repro.core.runtime import DynamoRIO

__all__ = ["RuntimeOptions", "DynamoRIO"]
