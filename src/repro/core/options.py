"""Runtime configuration.

The five presets reproduce the rows of the paper's Table 1: each adds
one mechanism to the previous configuration.
"""


class RuntimeOptions:
    """All runtime knobs; instances are plain mutable objects."""

    def __init__(
        self,
        bb_cache=True,
        link_direct=True,
        link_indirect=True,
        traces=True,
        trace_threshold=20,
        max_trace_bbs=16,
        max_bb_instrs=256,
        thread_private=True,
        code_cache_limit=None,
        sideline_optimization=False,
        verify_fragments=False,
        verify_equivalence=False,
        closure_engine=True,
        chain_engine=False,
        chain_threshold=20,
        chain_max_fragments=16,
        trace_events=False,
        trace_buffer=65536,
        profile_fragments=True,
        guard_clients=False,
        client_fault_limit=3,
        client_hook_budget=None,
        cache_consistency=False,
        cache_evict_policy="flush",
        cache_adaptive=False,
        cache_regen_threshold=0.5,
        cache_grow_factor=2.0,
        precise_interrupts=False,
        shield=False,
        shield_fault_limit=5,
        shield_watchdog_limit=8,
    ):
        # Table 1 mechanisms, cumulative.
        self.bb_cache = bb_cache
        self.link_direct = link_direct
        self.link_indirect = link_indirect
        self.traces = traces
        # Trace construction parameters.
        self.trace_threshold = trace_threshold
        self.max_trace_bbs = max_trace_bbs
        self.max_bb_instrs = max_bb_instrs
        # Cache organization.
        self.thread_private = thread_private
        self.code_cache_limit = code_cache_limit  # bytes, None = unlimited
        # Capacity policy (paper Section 6).  "flush" drops the whole
        # unit when it fills (DELI's fallback; the historical default,
        # bit-identical to pre-policy behavior).  "fifo" evicts single
        # fragments in allocation order with empty-slot reuse —
        # DynamoRIO's own scheme; strictly fewer retranslations under
        # pressure, simulated results otherwise unchanged for runs that
        # never hit the limit.
        self.cache_evict_policy = cache_evict_policy
        # Adaptive working-set sizing (Section 6.1): treat
        # code_cache_limit as the *initial* size, monitor the
        # regenerated-vs-replaced ratio over each resize epoch
        # (code_cache.RESIZE_EPOCH evictions), and grow the pressured
        # unit by cache_grow_factor whenever the ratio exceeds
        # cache_regen_threshold — the cache sizes itself to the
        # application's working set instead of thrashing.
        self.cache_adaptive = cache_adaptive
        self.cache_regen_threshold = cache_regen_threshold
        self.cache_grow_factor = cache_grow_factor
        # Sideline optimization (the paper's Section 3.4 future work):
        # trace construction and client trace processing run on an idle
        # processor, so their cycles leave the application's critical
        # path (tracked separately as the "sideline_cycles" event).
        self.sideline_optimization = sideline_optimization
        # Debug mode: run the fragment verifier (repro.analysis.verifier)
        # over every InstrList after client hooks, raising on errors.
        self.verify_fragments = verify_fragments
        # Debug mode: symbolic translation validation ("drequiv") — at
        # every emit, prove the fragment computes the same registers,
        # flags, and store sequence as the application blocks it was
        # built from (modulo sanctioned differences; see
        # repro.analysis.equiv).  Independent of verify_fragments, but
        # the two together form the full proof: equivalence erases meta
        # instructions and relies on the structural rules to show the
        # erasure is safe.  Costs zero simulated cycles; off by default
        # so the emit path stays a single attribute check.
        self.verify_equivalence = verify_equivalence
        # Execution engine: True drives fragments through their
        # closure-compiled step tables (repro.core.closures); False
        # falls back to interpreting the lowered op tuples.  Both
        # produce bit-identical simulated results; only host wall-clock
        # time differs.
        self.closure_engine = closure_engine
        # Chain compiler ("second-tier JIT", repro.core.chains): after
        # chain_threshold executions, a fragment whose direct exits are
        # linked is stitched together with its linked successors into
        # one flat step super-table — hot linked chains then run
        # without returning to Executor.run between fragments, and
        # indirect branches resolve through an in-step IBL fast path.
        # Wall-clock only: simulated cycles, stats, and events are
        # bit-identical to both existing engines.  Requires
        # closure_engine; off by default.
        self.chain_engine = chain_engine
        self.chain_threshold = chain_threshold
        self.chain_max_fragments = chain_max_fragments
        # Observability (repro.observe): record typed runtime events
        # and per-fragment cycle attribution.  Off by default — the
        # runtime's observer is None and every emit site is a single
        # pointer check; simulated cycles are identical either way.
        self.trace_events = trace_events
        # Ring-buffer capacity for recorded event detail (aggregate
        # per-kind counts are always exact); None = unbounded.
        self.trace_buffer = trace_buffer
        # Per-fragment cycle attribution under drtrace.  When False the
        # observer still records events but its profile_enter/break
        # hooks are None, so event-tracing-only runs skip the per-pass
        # profiler samples entirely (wall-clock only; simulated cycles
        # are identical either way).
        self.profile_fragments = profile_fragments
        # Resilience (repro.resilience, "drguard").  guard_clients wraps
        # every client hook site in a fault guard: an exception (other
        # than a deliberate ClientHalt) discards the client's transform,
        # re-emits the fragment verbatim, and after client_fault_limit
        # faults quarantines the client entirely (hooks disabled, run
        # continues at native fidelity).  Off by default: runtime.guard
        # is None and every hook site pays one pointer check; the guard
        # itself charges no simulated cycles, so results are identical
        # with guarding on or off for a well-behaved client.
        self.guard_clients = guard_clients
        self.client_fault_limit = client_fault_limit
        # Optional deterministic hook budget: maximum number of Python
        # trace events (lines executed, calls, returns) a single client
        # hook may consume before it is treated as faulting.  None (the
        # default) disables budget enforcement; the chaos harness sets
        # it to contain runaway hooks.  Deterministic across engines
        # because hooks run at fragment-build time, not per-instruction.
        self.client_hook_budget = client_hook_budget
        # Cache consistency: monitor stores into already-translated
        # application code (self-modifying code), invalidate and unlink
        # the stale fragments — including traces that stitched them —
        # and rebuild on next dispatch.  Off by default (zero cost).
        self.cache_consistency = cache_consistency
        # Precise interrupts ("drdetach", repro.core.translate): compile
        # an interrupt poll at every application-consistent step inside
        # fragments, chains, and the tuple engine, so due alarms and
        # pending detach requests are honored *mid-fragment* with a
        # latency bounded by the longest fused run (<= max_bb_instrs
        # instructions) instead of waiting for the next dispatcher
        # boundary.  Off by default: the step tables carry no polls and
        # every simulated result is bit-identical to the pre-translation
        # runtime.  Detach itself works either way — boundary
        # granularity without polls, mid-fragment with them.
        self.precise_interrupts = precise_interrupts
        # Self-protection and failsafe ("drshield", repro.resilience
        # .shield): watch runtime-owned memory (code cache, exit stubs,
        # IBL tables, runtime scratch) for errant application stores and
        # recover by invalidating only the clobbered unit; wrap the
        # runtime's own chokepoints (build, emit, link, unlink, evict,
        # trace, chain) in a RuntimeGuard whose escalation ladder runs
        # retry -> discard -> flush -> disable-subsystem -> detach to
        # native.  Off by default: runtime.shield/rguard are None, every
        # new check is a single pointer test, and results are
        # bit-identical to pre-shield behavior.
        self.shield = shield
        # Internal faults tolerated before the ladder's last rung (a
        # full detach to native).
        self.shield_fault_limit = shield_fault_limit
        # Forward-progress watchdog: re-translations of the same tag
        # without an intervening execution before the watchdog trips
        # (first trip flushes the thread's caches, second detaches).
        self.shield_watchdog_limit = shield_watchdog_limit

    def copy(self):
        new = RuntimeOptions()
        new.__dict__.update(self.__dict__)
        return new

    # ------------------------------------------------------ Table 1 presets

    @classmethod
    def emulation(cls):
        """Row 1: pure emulation, no code cache at all."""
        return cls(bb_cache=False, link_direct=False, link_indirect=False, traces=False)

    @classmethod
    def bb_cache_only(cls):
        """Row 2: basic block cache, every exit context-switches."""
        return cls(bb_cache=True, link_direct=False, link_indirect=False, traces=False)

    @classmethod
    def with_direct_links(cls):
        """Row 3: + direct branch linking."""
        return cls(bb_cache=True, link_direct=True, link_indirect=False, traces=False)

    @classmethod
    def with_indirect_links(cls):
        """Row 4: + in-cache indirect branch lookup."""
        return cls(bb_cache=True, link_direct=True, link_indirect=True, traces=False)

    @classmethod
    def with_traces(cls):
        """Row 5: + traces (the full default configuration)."""
        return cls()

    @classmethod
    def default(cls):
        return cls()

    def __repr__(self):
        flags = []
        for name in ("bb_cache", "link_direct", "link_indirect", "traces"):
            if getattr(self, name):
                flags.append(name)
        return "<RuntimeOptions %s>" % "+".join(flags or ["emulation"])
