"""Per-thread runtime context: thread-private code caches.

The paper found that very little code is shared between threads in
practice, so DynamoRIO duplicates fragments per thread rather than
synchronizing a shared cache (Section 2).  Each :class:`ThreadContext`
owns a bb cache, a trace cache, an IBL table, trace-head counters, and
the thread's CPU state; the shared-cache mode exists for the ablation
experiment.
"""

from repro.core.code_cache import ADAPTIVE_INITIAL_LIMIT, CacheUnit
from repro.core.ibl import IndirectBranchTable
from repro.machine.cpu import CPU


class ThreadContext:
    """Everything the runtime keeps per application thread."""

    _next_id = 0

    def __init__(self, runtime, cache_base, cache_limit=None, cpu=None,
                 share_from=None):
        self.runtime = runtime
        self.id = ThreadContext._next_id
        ThreadContext._next_id += 1
        self.cpu = cpu if cpu is not None else CPU()
        if share_from is not None:
            # Shared-cache mode (the ablation): all threads use one
            # bb/trace cache and one IBL table, paying a synchronization
            # cost on every build instead of duplicating fragments.
            self.bb_cache = share_from.bb_cache
            self.trace_cache = share_from.trace_cache
            self.ibl = share_from.ibl
        else:
            opts = runtime.options
            half = None if cache_limit is None else cache_limit // 2
            if opts.cache_adaptive and half is None:
                # Adaptive with no explicit limit: start small and let
                # the resize heuristic grow toward the working set.
                half = ADAPTIVE_INITIAL_LIMIT
            if opts.cache_adaptive:
                # Limits grow at runtime, so give the trace unit a
                # fixed offset inside this thread's cache stripe
                # instead of stacking it right above the bb unit.
                # (cache_addr is symbolic bookkeeping, never
                # dereferenced — this only keeps dumps readable.)
                trace_base = cache_base + 0x80000
            else:
                trace_base = cache_base + (half or 0x200000)
            self.bb_cache = CacheUnit(
                "bb", cache_base, half,
                policy=opts.cache_evict_policy,
                adaptive=opts.cache_adaptive,
                regen_threshold=opts.cache_regen_threshold,
                grow_factor=opts.cache_grow_factor,
            )
            self.trace_cache = CacheUnit(
                "trace", trace_base, half,
                policy=opts.cache_evict_policy,
                adaptive=opts.cache_adaptive,
                regen_threshold=opts.cache_regen_threshold,
                grow_factor=opts.cache_grow_factor,
            )
            self.ibl = IndirectBranchTable()
        # Client state (paper Section 3.2: "a generic thread-local
        # storage field for use by clients").
        self.client_field = None
        # Register spill slots (paper Section 3.2).
        self.spill_slots = [0] * 4
        # Trace building state.
        self.trace_in_progress = None
        # Scheduler state.
        self.resume_tag = None
        self.prev_stub = None
        self.exited = False
        self.exit_code = None

    def lookup_fragment(self, tag):
        """Trace cache first (traces shadow bbs for the same tag)."""
        fragment = self.trace_cache.lookup(tag)
        if fragment is not None:
            return fragment
        return self.bb_cache.lookup(tag)
