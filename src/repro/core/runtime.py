"""The DynamoRIO runtime: dispatch loop, building, linking, traces.

``DynamoRIO(process, options, client).run()`` executes an unmodified
application image under the code cache, producing the same observable
behavior as native execution (output bytes + exit code) while charging
the runtime's overhead events to the cycle counter.

The flow mirrors the paper's Figure 1: dispatch looks up the next tag;
misses build a basic block (calling the client's basic-block hook);
direct exits are linked; trace heads are counted and hot heads trigger
trace generation mode, whose blocks are stitched into a trace (calling
the client's trace hook) that shadows its head.
"""


from repro.core.bb_builder import (
    block_instr_count,
    block_source_span,
    build_basic_block,
)
from repro.core.chains import ChainManager
from repro.core.code_cache import CacheFullError, CodeRegionMap
from repro.core.emit import emit_fragment
from repro.core.execute import EXIT_INTERRUPT, Executor
from repro.core.fragments import Fragment, LinkStub
from repro.core.options import RuntimeOptions
from repro.core.stats import RuntimeStats
from repro.core.threads import ThreadContext
from repro.core.trace_builder import (
    CONTINUE_TRACE,
    DEFAULT_TRACE_END,
    END_TRACE,
    TraceRecording,
    default_end_of_trace,
    stitch_trace,
)
from repro.machine.cost import CostModel, CycleCounter
from repro.machine.errors import ProgramExit
from repro.machine.interp import DEFAULT_MAX_INSTRUCTIONS, Interpreter, RunResult
from repro.machine.system import System, ThreadExit, push_signal_frame
from repro.observe.events import (
    EV_CACHE_EVICT,
    EV_CACHE_EVICTION,
    EV_CACHE_RESIZE,
    EV_CLIENT_HOOK,
    EV_DETACH,
    EV_FRAGMENT_DELETE,
    EV_FRAGMENT_LINK,
    EV_FRAGMENT_REPLACE,
    EV_FRAGMENT_UNLINK,
    EV_REATTACH,
    EV_SIGNAL_DELIVERED,
    EV_SMC_INVALIDATE,
    EV_THREAD_SPAWN,
    EV_TRACE_HEAD_COUNT,
    EV_TRACE_HEAD_PROMOTED,
    Observer,
)
from repro.resilience.guard import RUNTIME_PASSTHROUGH, ClientGuard
from repro.resilience.shield import RuntimeGuard, Shield


class DynamoRIO:
    """The runtime system coupling a process, options, and a client."""

    def __init__(self, process, options=None, client=None, cost_model=None):
        self.process = process
        self.memory = process.memory
        self.options = options if options is not None else RuntimeOptions.default()
        self.client = client
        self.cost = cost_model if cost_model is not None else CostModel()
        self.system = System()
        self.counter = CycleCounter()
        self.stats = RuntimeStats()
        # drtrace: None when disabled — every emit site guards on it,
        # so tracing-off runs never construct an Event.
        self.observer = (
            Observer(
                self.options.trace_buffer,
                profile=self.options.profile_fragments,
            )
            if self.options.trace_events
            else None
        )
        self._register_runtime_regions()
        # Warnings (and, pre-raise, errors) from the fragment verifier
        # when options.verify_fragments is enabled.
        self.verifier_diagnostics = []
        lay = process.layout
        self.threads = []
        self.current_thread = self._new_thread(lay)
        self.executor = Executor(self)
        # Chain compiler ("second-tier JIT", repro.core.chains):
        # stitches hot linked fragments' step tables into dispatch-free
        # super-tables.  Wall-clock only — cycles/stats/events stay
        # bit-identical — and meaningless without the closure engine.
        self.chains = (
            ChainManager(self)
            if (self.options.chain_engine and self.options.closure_engine)
            else None
        )
        # drguard: None unless guarding is enabled — every hook site
        # checks the pointer once, exactly like the observer.
        self.guard = (
            ClientGuard(self)
            if (self.options.guard_clients and client is not None)
            else None
        )
        # Cache consistency: app-code range -> fragment side table plus
        # a memory write watch; stores into translated code invalidate
        # the stale fragments (Section 6.2).  None when disabled.
        self.region_map = None
        if self.options.cache_consistency:
            self.region_map = CodeRegionMap()
            self.memory.add_write_watcher(self._on_app_code_write)
        # drshield (repro.resilience.shield): runtime self-protection
        # (errant application stores into runtime-owned memory) and the
        # internal-fault escalation ladder.  Both None when
        # options.shield is off — every chokepoint pays one pointer
        # check and all simulated results are bit-identical to
        # pre-shield behavior.
        self._shield_pending = False
        self.shield = Shield(self) if self.options.shield else None
        self.rguard = RuntimeGuard(self) if self.options.shield else None
        # Fault diagnostics: memory errors blame the faulting thread's
        # translated application PC (consulted on error paths only).
        self._fault_context = lambda: self.current_thread.resume_tag
        self.memory.set_fault_context(self._fault_context)
        # Tags the client marked as trace heads before fragments exist.
        self.pending_trace_heads = set()
        self._client_initialized = False
        self._need_reschedule = False
        # drdetach (repro.core.translate): a pending detach unwinds the
        # engines at the next application-consistent point (mid-fragment
        # polls under options.precise_interrupts, fragment boundaries
        # otherwise), translates every thread to application state, and
        # continues natively; ``_reattach_after`` (instructions, or
        # None = run to exit) schedules the resumption.
        self._detach_pending = False
        self._reattach_after = None
        self._detached = False
        # Set by the dispatcher when the last cache exit was a
        # mid-fragment interrupt poll; tags the next delivery's event.
        self._mid_fragment_interrupt = False
        # Event tracers registered by the client (dr_register_event_
        # tracer): removed from the observer on detach/quarantine,
        # restored on reattach.
        self._client_tracers = []
        # The native interpreter for detached phases, created once and
        # reused so repeated detach/reattach cycles share one decode
        # cache and register a single SMC write watcher.
        self._native_interp = None
        # ThreadContexts created while detached: the client meets them
        # (thread_init) at reattach time.
        self._threads_since_detach = []

    def _register_runtime_regions(self):
        lay = self.process.layout
        names = {r.name for r in self.memory.regions()}
        if "runtime_heap" not in names:
            self.memory.add_region(
                "runtime_heap", lay.RUNTIME_HEAP_BASE, lay.RUNTIME_HEAP_SIZE
            )
        if "code_cache" not in names:
            self.memory.add_region(
                "code_cache", lay.CODE_CACHE_BASE, lay.CODE_CACHE_SIZE
            )

    def is_runtime_address(self, addr):
        """Whether ``addr`` lies in runtime-private memory.

        The fragment verifier's transparency rule uses this to allow
        client writes into the runtime heap (``dr_global_alloc``
        storage) and the code cache while rejecting writes into
        application memory.
        """
        region = self.memory.region_containing(addr)
        return region is not None and region.name in ("runtime_heap", "code_cache")

    def _new_thread(self, lay):
        base = lay.CODE_CACHE_BASE + len(self.threads) * 0x100000
        thread = ThreadContext(
            self, base, cache_limit=self.options.code_cache_limit
        )
        self.threads.append(thread)
        return thread

    # ------------------------------------------------------------ client glue

    def _client_init(self):
        if self.client is not None and not self._client_initialized:
            self._client_initialized = True
            self.client.attach(self)
            self.client.init()
            self.client.thread_init(self.current_thread)

    def _client_exit(self):
        if self.client is not None and self._client_initialized:
            self.client.thread_exit(self.current_thread)
            self.client.exit()

    # -------------------------------------------------------------- building

    def _build_bb(self, tag):
        thread = self.current_thread
        ilist = build_basic_block(
            self.memory, tag, max_instrs=self.options.max_bb_instrs
        )
        count = block_instr_count(ilist)
        self.counter.cycles += (
            self.cost.bb_build_base + self.cost.bb_build_per_instr * count
        )
        if not self.options.thread_private and len(self.threads) > 1:
            self.counter.charge(self.cost.shared_cache_sync, "cache_sync")
        observer = self.observer
        guard = self.guard
        span = (
            block_source_span(ilist, tag)
            if self.region_map is not None
            else None
        )
        hooks_on = self.client is not None and (
            guard is None or not guard.quarantined
        )
        if hooks_on:
            self.stats.client_bb_hooks += 1
            if observer is not None:
                observer.emit(EV_CLIENT_HOOK, tag, phase="bb", instrs=count)
            self.counter.cycles += self.cost.client_bb_hook_per_instr * count

        def _emit(il):
            return emit_fragment(
                tag, Fragment.KIND_BB, il, self.cost, self.options,
                self.stats, runtime=self,
            )

        if hooks_on and guard is not None:
            client = self.client
            fragment = guard.build_hook(
                "bb",
                tag,
                ilist,
                hook=lambda il: client.basic_block(thread, tag, il),
                emit=_emit,
            )
        else:
            if hooks_on:
                self.client.basic_block(thread, tag, ilist)
            fragment = _emit(ilist)
        if tag in self.pending_trace_heads:
            fragment.is_trace_head = True
            if observer is not None:
                observer.emit(EV_TRACE_HEAD_PROMOTED, tag, reason="client")
        self._place(thread.bb_cache, fragment)
        if self.region_map is not None:
            fragment.source_spans = (span,)
            self.region_map.register(fragment, (span,), thread, self.memory)
        self.stats.bbs_built += 1
        # Trace heads are kept out of the IBL so every entry is counted.
        if not fragment.is_trace_head:
            thread.ibl.insert(fragment)
        return fragment

    def _guarded_build(self, tag):
        """Build a bb under the shield's escalation ladder.

        Rungs: a fault retries the translation once; a second fault
        flushes the thread's caches (discarding whatever partial state
        the failed builds left) and retries; a third gives up and
        detaches to native.  The forward-progress watchdog breaks
        translate/flush livelock — the same tag rebuilding without ever
        executing — through the same flush-then-detach escalation.

        Returns ``None`` when the run must detach: the dispatcher
        unwinds, and since ``resume_tag`` still holds ``tag`` the
        native continuation resumes exactly here.
        """
        rguard = self.rguard
        shield = self.shield
        thread = self.current_thread
        while True:
            if shield.note_build(tag) == "detach":
                rguard.request_detach()
                return None
            faults = 0
            fragment = None
            while fragment is None:
                try:
                    rguard.in_chokepoint = True
                    try:
                        rguard.check("bb_build", tag)
                        fragment = self._build_bb(tag)
                    finally:
                        rguard.in_chokepoint = False
                except RUNTIME_PASSTHROUGH:
                    raise
                except Exception as exc:
                    rguard.record_fault("bb_build", tag, exc)
                    if self._detach_pending or rguard.detach_requested:
                        return None
                    faults += 1
                    if faults == 1:
                        continue  # rung 1: retry the translation
                    if faults == 2:
                        # rung 2: discard partial build state by
                        # flushing the thread's caches, then retry.
                        rguard.recovering = True
                        try:
                            self._flush_cache(thread.bb_cache, thread=thread)
                            self._flush_cache(
                                thread.trace_cache, thread=thread
                            )
                            self._squash_stale_recordings()
                        finally:
                            rguard.recovering = False
                        continue
                    rguard.request_detach()  # rung 3: bail to native
                    return None
            if rguard.post_build(fragment) != "rebuild":
                return fragment
            # Livelock injection killed the fresh fragment: rebuild the
            # same tag (the watchdog breaks the cycle).

    def _place(self, cache, fragment, thread=None):
        try:
            cache.allocate(fragment)
        except CacheFullError:
            if cache.policy == "fifo":
                rguard = self.rguard
                if rguard is None or rguard.recovering:
                    self._evict_fifo(cache, fragment, thread)
                else:
                    # drshield: eviction is a runtime chokepoint — a
                    # fault mid-evict falls back to the always-safe
                    # whole-unit flush; repeated evict faults disable
                    # fifo eviction outright.
                    try:
                        rguard.check("evict", fragment.tag)
                        self._evict_fifo(cache, fragment, thread)
                    except RUNTIME_PASSTHROUGH:
                        raise
                    except Exception as exc:
                        rguard.record_fault("evict", fragment.tag, exc)
                        rguard.recovering = True
                        try:
                            self._pressure_flush(cache, fragment, thread)
                        finally:
                            rguard.recovering = False
            else:
                self._pressure_flush(cache, fragment, thread)
            # Evictions may have deleted blocks referenced by an
            # in-progress trace recording; finalizing such a recording
            # would stitch deleted fragments — and, once unregistered
            # from the region map, a later store into their source
            # ranges could no longer squash the recording, so the trace
            # would stitch stale code.  Abandon it (the head re-counts
            # and the trace rebuilds from live blocks).
            self._squash_stale_recordings()
            cache.allocate(fragment)
            self._check_cache_resize(cache)

    def _pressure_flush(self, cache, fragment, thread=None):
        """Capacity pressure under ``cache_evict_policy="flush"`` (and
        the shield's fallback when fifo eviction faults): drop the whole
        unit through the delete chokepoint."""
        observer = self.observer
        if observer is not None:
            occ = cache.occupancy()
            observer.emit(
                EV_CACHE_EVICTION,
                fragment.tag,
                unit=occ["unit"],
                used=occ["used"],
                limit=occ["limit"],
                dropped=occ["fragments"],
                incoming_size=fragment.size,
            )
        for victim in cache.flush():
            # Capacity churn accounting (feeds adaptive sizing;
            # the quarantine flush deliberately does not count).
            cache.record_eviction(victim)
            self._delete_fragment(victim, from_cache=False, thread=thread)
        self.stats.cache_evictions += 1

    def _evict_fifo(self, cache, fragment, thread=None):
        """Capacity pressure under ``cache_evict_policy="fifo"``: evict
        resident fragments one at a time in allocation order — through
        the full delete chokepoint (unlink, chain dissolution, region-
        map deregistration, IBL removal, ``fragment_deleted`` hook) —
        until the incoming fragment fits.  If nothing can make it fit
        (fragment larger than the unit) the cache drains to empty and
        the empty-cache rule accepts it as the sole resident."""
        observer = self.observer
        if observer is not None:
            occ = cache.occupancy()
            observer.emit(
                EV_CACHE_EVICTION,
                fragment.tag,
                unit=occ["unit"],
                used=occ["used"],
                limit=occ["limit"],
                policy="fifo",
                incoming_size=fragment.size,
            )
        self.stats.cache_evictions += 1
        size = fragment.size
        while not cache.can_fit(size):
            victim = cache.next_eviction()
            if victim is None:
                break
            if observer is not None:
                observer.emit(
                    EV_CACHE_EVICT,
                    victim.tag,
                    unit=cache.name,
                    kind=victim.kind,
                    size=victim.size,
                    incoming=fragment.tag,
                )
            cache.record_eviction(victim)
            self.stats.cache_fragment_evictions += 1
            self._delete_fragment(victim, thread=thread)

    def _squash_stale_recordings(self):
        """Abandon any in-progress trace recording that references a
        deleted fragment (stitching it would bake stale code)."""
        for thread in self.threads:
            recording = thread.trace_in_progress
            if recording is not None and any(
                entry.deleted for entry in recording.entries
            ):
                thread.trace_in_progress = None

    def _check_cache_resize(self, cache):
        """Adaptive sizing tick after capacity pressure: grow the unit
        when this resize epoch's regenerated-vs-replaced ratio exceeds
        ``options.cache_regen_threshold`` (Section 6.1)."""
        grew = cache.check_resize()
        if grew is None:
            return
        self.stats.cache_resizes += 1
        if self.observer is not None:
            self.observer.emit(
                EV_CACHE_RESIZE,
                None,
                unit=cache.name,
                old_limit=grew[0],
                new_limit=grew[1],
                fragments=len(cache.fragments),
            )

    def _flush_cache(self, cache, thread=None):
        for fragment in cache.flush():
            self._delete_fragment(fragment, from_cache=False, thread=thread)

    def _delete_fragment(self, fragment, from_cache=True, thread=None):
        rguard = self.rguard
        if rguard is None or rguard.recovering:
            self._delete_fragment_impl(fragment, from_cache, thread)
            return
        # drshield: unlink/delete is a runtime chokepoint.  The
        # teardown is *required* for correctness (SMC invalidation,
        # eviction), so a fault here is recorded and the teardown is
        # scrubbed — re-run with injection suppressed.
        try:
            rguard.check("unlink", fragment.tag)
            self._delete_fragment_impl(fragment, from_cache, thread)
        except RUNTIME_PASSTHROUGH:
            raise
        except Exception as exc:
            rguard.record_fault("unlink", fragment.tag, exc)
            rguard.recovering = True
            try:
                self._delete_fragment_impl(fragment, from_cache, thread)
            finally:
                rguard.recovering = False

    def _delete_fragment_impl(self, fragment, from_cache=True, thread=None):
        if thread is None:
            thread = self.current_thread
        fragment.deleted = True
        # Every deletion path (flush, eviction, SMC invalidation,
        # client quarantine) funnels through here: demote any chain
        # whose super-table embeds this fragment.
        if self.chains is not None:
            self.chains.invalidate(fragment)
        if self.region_map is not None:
            self.region_map.unregister(fragment)
        thread.ibl.remove(fragment)
        if from_cache:
            cache = thread.trace_cache if fragment.is_trace else thread.bb_cache
            cache.remove(fragment)
        unlinked = 0
        for stub in fragment.incoming:
            if stub.linked_to is fragment:
                stub.linked_to = None
                unlinked += 1
        fragment.incoming = []
        for stub in fragment.exits:
            if stub.linked_to is not None:
                try:
                    stub.linked_to.incoming.remove(stub)
                except ValueError:
                    pass
                stub.linked_to = None
                unlinked += 1
        self.stats.fragments_deleted += 1
        observer = self.observer
        if observer is not None:
            if unlinked:
                observer.emit(
                    EV_FRAGMENT_UNLINK,
                    fragment.tag,
                    reason="delete",
                    links=unlinked,
                )
            observer.emit(
                EV_FRAGMENT_DELETE,
                fragment.tag,
                kind=fragment.kind,
                size=fragment.size,
            )
        if self.client is not None:
            guard = self.guard
            if guard is None:
                self.client.fragment_deleted(thread, fragment.tag)
            else:
                guard.call(
                    self.client.fragment_deleted,
                    (thread, fragment.tag),
                    tag=fragment.tag,
                    role="fragment_deleted",
                )

    # ------------------------------------------------------ cache consistency

    def _on_app_code_write(self, addr, size):
        """Memory write watcher: a store hit a watched app-code line.

        Exact overlap with translated code invalidates the stale
        fragments — bbs and any traces that stitched them — and
        abandons recordings that reference them; the blocks rebuild
        from the new bytes on next dispatch (Section 6.2).
        """
        hits = self.region_map.overlapping(addr, size)
        if not hits:
            return
        self.counter.cycles += self.cost.smc_invalidate
        self.stats.smc_invalidations += 1
        if self.observer is not None:
            self.observer.emit(
                EV_SMC_INVALIDATE, addr, size=size, fragments=len(hits)
            )
        for fragment, thread in hits:
            if not fragment.deleted:
                self._delete_fragment(fragment, thread=thread)
        self._squash_stale_recordings()

    # ------------------------------------------------------------- quarantine

    def _teardown_caches(self):
        """Shared detach/quarantine teardown: drop all in-progress
        client-visible state and flush every fragment through the
        ``_delete_fragment`` chokepoint (chain dissolution, region-map
        deregistration, IBL removal, unlink, ``fragment_deleted``)."""
        self.pending_trace_heads.clear()
        seen = set()
        for thread in self.threads:
            thread.trace_in_progress = None
            for cache in (thread.bb_cache, thread.trace_cache):
                if id(cache) in seen:
                    continue
                seen.add(id(cache))
                self._flush_cache(cache, thread=thread)

    def _detach_tracers(self):
        """Unregister the client's event tracers from the observer.
        Detach restores them at reattach; quarantine never does — a
        quarantined client must have no surviving emit sites."""
        observer = self.observer
        if observer is None:
            return
        for fn in self._client_tracers:
            try:
                observer.tracers.remove(fn)
            except ValueError:
                pass

    def _reattach_tracers(self):
        observer = self.observer
        if observer is None:
            return
        for fn in self._client_tracers:
            if fn not in observer.tracers:
                observer.tracers.append(fn)

    def _bailout_client(self):
        """OSR-style bailout when the guard quarantines the client:
        the detach teardown (drop every fragment — all carry client
        instrumentation — plus all client-visible in-progress state and
        the client's observer tracers); blocks rebuild uninstrumented
        on next dispatch and the run continues at native fidelity."""
        self._teardown_caches()
        self._detach_tracers()
        self._client_tracers = []

    # --------------------------------------------------------------- linking

    def _maybe_link(self, stub, target_fragment):
        if stub is None or stub.kind != LinkStub.KIND_DIRECT:
            return
        if not self.options.link_direct:
            return
        if stub.fragment.deleted or stub.linked_to is not None:
            return
        # Trace heads stay unlinked so their counters keep advancing.
        if target_fragment.is_trace_head and not target_fragment.is_trace:
            return
        rguard = self.rguard
        if rguard is not None and not rguard.recovering:
            # drshield: linking is a runtime chokepoint — a fault here
            # simply skips the link (the exit keeps context-switching
            # through dispatch, which is always correct); repeated link
            # faults disable direct linking outright.
            try:
                rguard.check("link", stub.fragment.tag)
            except RUNTIME_PASSTHROUGH:
                raise
            except Exception as exc:
                rguard.record_fault("link", stub.fragment.tag, exc)
                return
        stub.linked_to = target_fragment
        target_fragment.incoming.append(stub)
        self.counter.cycles += self.cost.link_cost
        self.stats.direct_links += 1
        observer = self.observer
        if observer is not None:
            observer.emit(
                EV_FRAGMENT_LINK,
                stub.fragment.tag,
                target=target_fragment.tag,
                exit_index=stub.index,
                target_kind=target_fragment.kind,
            )

    # ----------------------------------------------------------- trace heads

    def mark_trace_head(self, tag):
        """Client API: dr_mark_trace_head."""
        self.pending_trace_heads.add(tag)
        fragment = self.current_thread.bb_cache.lookup(tag)
        if fragment is not None and not fragment.is_trace_head:
            fragment.is_trace_head = True
            self.current_thread.ibl.remove(fragment)
            # unlink incoming so entries flow through dispatch
            unlinked = 0
            for stub in fragment.incoming:
                if stub.linked_to is fragment:
                    stub.linked_to = None
                    unlinked += 1
            fragment.incoming = []
            # Chains stitched through those links must not skip the
            # head's dispatch-side entry counting.
            if self.chains is not None:
                self.chains.invalidate(fragment)
            observer = self.observer
            if observer is not None:
                if unlinked:
                    observer.emit(
                        EV_FRAGMENT_UNLINK, tag, reason="trace_head",
                        links=unlinked,
                    )
                observer.emit(EV_TRACE_HEAD_PROMOTED, tag, reason="client")

    def _note_branch_origin(self, stub, target_fragment):
        """Default trace-head detection: targets of backward branches
        and exits of existing traces (Section 3.5)."""
        if not self.options.traces:
            return
        if target_fragment.is_trace or target_fragment.is_trace_head:
            return
        if stub is None:
            return
        src = stub.fragment
        if src.is_trace:
            self._make_trace_head(target_fragment)
            return
        # Backward-branch heuristic: direct non-call branches only.
        if (
            stub.kind == LinkStub.KIND_DIRECT
            and not stub.is_call_exit
            and target_fragment.tag <= src.tag
        ):
            self._make_trace_head(target_fragment)

    def _make_trace_head(self, fragment):
        if fragment.is_trace_head:
            return
        fragment.is_trace_head = True
        thread = self.current_thread
        thread.ibl.remove(fragment)
        unlinked = 0
        for stub in fragment.incoming:
            if stub.linked_to is fragment:
                stub.linked_to = None
                unlinked += 1
        fragment.incoming = []
        # Chains stitched through those links must not skip the head's
        # dispatch-side entry counting.
        if self.chains is not None:
            self.chains.invalidate(fragment)
        observer = self.observer
        if observer is not None:
            if unlinked:
                observer.emit(
                    EV_FRAGMENT_UNLINK, fragment.tag, reason="trace_head",
                    links=unlinked,
                )
            observer.emit(
                EV_TRACE_HEAD_PROMOTED, fragment.tag, reason="backward_branch"
            )

    # ---------------------------------------------------------------- traces

    def _finalize_trace(self, recording):
        thread = self.current_thread
        ilist = stitch_trace(recording, self.observer)
        ilist.decode_all()
        count = ilist.instr_count()
        build_cycles = (
            self.cost.trace_build_base + self.cost.trace_build_per_instr * count
        )
        if self.options.sideline_optimization:
            # Section 3.4: optimization runs in a concurrent thread on
            # an idle processor; only fragment replacement touches the
            # application thread, so build cycles leave the critical
            # path.
            self.counter.events["sideline_cycles"] = (
                self.counter.events.get("sideline_cycles", 0) + build_cycles
            )
        else:
            self.counter.cycles += build_cycles
        if not self.options.thread_private and len(self.threads) > 1:
            self.counter.charge(self.cost.shared_cache_sync, "cache_sync")
        guard = self.guard
        hooks_on = self.client is not None and (
            guard is None or not guard.quarantined
        )
        if hooks_on:
            self.stats.client_trace_hooks += 1
            if self.observer is not None:
                self.observer.emit(
                    EV_CLIENT_HOOK, recording.head_tag, phase="trace",
                    instrs=count, blocks=len(recording),
                )
            hook_cycles = self.cost.client_trace_hook_per_instr * count
            if self.options.sideline_optimization:
                self.counter.events["sideline_cycles"] = (
                    self.counter.events.get("sideline_cycles", 0) + hook_cycles
                )
            else:
                self.counter.cycles += hook_cycles

        def _emit(il):
            return emit_fragment(
                recording.head_tag,
                Fragment.KIND_TRACE,
                il,
                self.cost,
                self.options,
                self.stats,
                runtime=self,
                source_tags=tuple(recording.tags()),
            )

        if hooks_on and guard is not None:
            client = self.client
            fragment = guard.build_hook(
                "trace",
                recording.head_tag,
                ilist,
                hook=lambda il: client.trace(thread, recording.head_tag, il),
                emit=_emit,
            )
        else:
            if hooks_on:
                self.client.trace(thread, recording.head_tag, ilist)
            fragment = _emit(ilist)
        self._place(thread.trace_cache, fragment)
        if self.region_map is not None:
            # A trace is stale if any block it stitched is written.
            spans = []
            for entry in recording.entries:
                spans.extend(entry.source_spans)
            fragment.source_spans = tuple(spans)
            self.region_map.register(
                fragment, fragment.source_spans, thread, self.memory
            )
        thread.ibl.insert(fragment)
        self.stats.traces_built += 1
        # Shadow the head bb: redirect its incoming links to the trace.
        head_bb = thread.bb_cache.lookup(recording.head_tag)
        if head_bb is not None:
            # Chains baked the bb as a stitch target; the re-pointed
            # links must flow into the trace instead.
            if self.chains is not None:
                self.chains.invalidate(head_bb)
            for stub in head_bb.incoming:
                if stub.linked_to is head_bb:
                    stub.linked_to = fragment
                    fragment.incoming.append(stub)
            head_bb.incoming = []
        thread.trace_in_progress = None
        return fragment

    def _guarded_finalize(self, recording):
        """Trace promotion under the shield: a fault discards the
        recording (the head stays hot and re-records on its own heat);
        repeated trace faults disable the trace subsystem.  Returns the
        stitched trace, or ``None`` on fault."""
        rguard = self.rguard
        try:
            rguard.in_chokepoint = True
            try:
                rguard.check("trace", recording.head_tag)
                return self._finalize_trace(recording)
            finally:
                rguard.in_chokepoint = False
        except RUNTIME_PASSTHROUGH:
            raise
        except Exception as exc:
            rguard.record_fault("trace", recording.head_tag, exc)
            self.current_thread.trace_in_progress = None
            return None

    def _client_end_trace(self, recording, next_tag):
        if self.client is None:
            return DEFAULT_TRACE_END
        guard = self.guard
        if guard is not None:
            return guard.end_trace(
                self.client, self.current_thread, recording.head_tag, next_tag
            )
        return self.client.end_trace(
            self.current_thread, recording.head_tag, next_tag
        )

    # ------------------------------------------------------------------ run

    def _spawn_app_thread(self, entry, stack_pointer):
        """SYS_SPAWN handler: create a thread with its own (private)
        code caches — or shared ones in the ablation configuration."""
        lay = self.process.layout
        if self.options.thread_private:
            thread = self._new_thread(lay)
        else:
            base = lay.CODE_CACHE_BASE + len(self.threads) * 0x100000
            thread = ThreadContext(
                self,
                base,
                cache_limit=self.options.code_cache_limit,
                share_from=self.threads[0],
            )
            self.threads.append(thread)
        thread.cpu.pc = entry & 0xFFFFFFFF
        thread.cpu.regs[4] = stack_pointer & 0xFFFFFFFF
        thread.resume_tag = thread.cpu.pc
        self.counter.count("threads_spawned")
        if self.observer is not None:
            self.observer.emit(
                EV_THREAD_SPAWN,
                thread.cpu.pc,
                thread_index=len(self.threads) - 1,
                private=self.options.thread_private,
            )
        # the running thread must yield so the new one gets scheduled
        self._need_reschedule = True
        if self.client is not None:
            self.client.thread_init(thread)

    # -------------------------------------------------------------- drdetach

    def detach(self, reattach_after=None):
        """Request a transparent detach (dr_detach).

        The engines unwind at the next application-consistent point —
        mid-fragment/mid-chain under ``options.precise_interrupts``, the
        next fragment boundary otherwise — where every thread's state is
        translated back to application state (repro.core.translate) and
        execution continues natively, bit-identical to a never-attached
        run.  ``reattach_after`` resumes translated execution after that
        many native instructions; ``None`` runs native to program exit.

        Callable from client hooks and clean calls; the request takes
        effect before the next application instruction is executed at a
        consistent point.
        """
        self._detach_pending = True
        self._reattach_after = reattach_after
        # Reuse the scheduler's unwind path: every engine (run loop,
        # chain fast paths, dispatcher) already breaks on this flag.
        self._need_reschedule = True

    @property
    def detached(self):
        return self._detached

    def reattach(self):
        """Schedule the earliest possible re-attach: a pending detach
        becomes a detach/re-attach bounce through the full translate →
        flush → native → resume cycle.  No-op when nothing is pending
        (the native phase re-attaches on its own schedule)."""
        if self._detach_pending:
            self._reattach_after = 0

    def _perform_detach(self):
        """Translate every live thread to application state and tear
        the cache down.  The thread's ``resume_tag`` *is* its translated
        PC: boundary unwinds leave the next fragment tag there, and
        mid-fragment polls unwind with the poll's source PC."""
        self._detach_pending = False
        for thread in self.threads:
            if not thread.exited:
                thread.cpu.pc = thread.resume_tag & 0xFFFFFFFF
            thread.prev_stub = None
        self._teardown_caches()
        self._detach_tracers()
        self._threads_since_detach = []
        self._detached = True
        self.stats.detaches += 1
        if self.observer is not None:
            self.observer.emit(
                EV_DETACH,
                None,
                threads=sum(1 for t in self.threads if not t.exited),
                instructions=self.executor.instructions,
            )

    def _perform_reattach(self, pairs):
        """Resume translated execution: adopt the native CPUs back as
        dispatch targets and restore the client's observability."""
        for ctx, nt in pairs:
            if not nt.alive:
                ctx.exited = True
                continue
            ctx.resume_tag = ctx.cpu.pc
            ctx.prev_stub = None
        self._reattach_tracers()
        if self.client is not None:
            for ctx in self._threads_since_detach:
                if not ctx.exited:
                    self.client.thread_init(ctx)
        self._threads_since_detach = []
        self._detached = False
        self.stats.reattaches += 1
        if self.observer is not None:
            self.observer.emit(
                EV_REATTACH,
                None,
                threads=sum(1 for t in self.threads if not t.exited),
                instructions=self.executor.instructions,
            )

    def _run_detached(self, max_instructions, quantum):
        """The native phase between detach and reattach.

        Runs the reference interpreter over the translated threads,
        sharing this runtime's System (output stream, alarms armed under
        the cache — a pending signal delivers natively) and
        CycleCounter, with the instruction clock carried across so
        absolute alarm deadlines stay meaningful.  Returns after
        ``_reattach_after`` native instructions (reattaching), or
        propagates ProgramExit when the application ends natively.
        """
        self._perform_detach()
        stop_after = self._reattach_after
        self._reattach_after = None
        interp = self._native_interp
        if interp is None:
            interp = Interpreter(
                self.process,
                self.cost,
                mode="native",
                system=self.system,
                counter=self.counter,
                observer=self.observer,
            )
            self._native_interp = interp
        interp._instructions = self.executor.instructions
        stop_at = (
            None if stop_after is None else interp._instructions + stop_after
        )
        pairs = [
            (ctx, interp.adopt_thread(ctx.cpu))
            for ctx in self.threads
            if not ctx.exited
        ]

        def native_spawn(entry, stack_pointer):
            # A thread spawned while detached still becomes a runtime
            # ThreadContext so reattach adopts it; the client meets it
            # (thread_init) at reattach time.
            lay = self.process.layout
            if self.options.thread_private:
                ctx = self._new_thread(lay)
            else:
                base = lay.CODE_CACHE_BASE + len(self.threads) * 0x100000
                ctx = ThreadContext(
                    self,
                    base,
                    cache_limit=self.options.code_cache_limit,
                    share_from=self.threads[0],
                )
                self.threads.append(ctx)
            ctx.cpu.pc = entry & 0xFFFFFFFF
            ctx.cpu.regs[4] = stack_pointer & 0xFFFFFFFF
            ctx.resume_tag = ctx.cpu.pc
            self._threads_since_detach.append(ctx)
            pairs.append((ctx, interp.adopt_thread(ctx.cpu)))
            self.counter.count("threads_spawned")
            if self.observer is not None:
                self.observer.emit(
                    EV_THREAD_SPAWN,
                    ctx.cpu.pc,
                    thread_index=len(self.threads) - 1,
                    private=self.options.thread_private,
                )

        self.system.spawn_thread = native_spawn
        rotor = 0
        try:
            while True:
                if stop_at is not None and interp._instructions >= stop_at:
                    break
                alive = [pair for pair in pairs if pair[1].alive]
                if not alive:
                    break
                ctx, nt = alive[rotor % len(alive)]
                rotor += 1
                if len(alive) > 1:
                    self.counter.charge(
                        self.cost.thread_switch, "thread_switches"
                    )
                q = quantum
                if stop_at is not None:
                    remaining = stop_at - interp._instructions
                    if remaining < q:
                        q = remaining
                try:
                    interp._run_quantum(nt, q, max_instructions)
                except ThreadExit:
                    nt.alive = False
                    ctx.exited = True
        finally:
            # On every exit path — including a native ProgramExit — the
            # runtime's totals and scheduler hooks reflect the native
            # phase, so run()'s teardown reports complete results.
            self.executor.instructions = interp._instructions
            self.system.spawn_thread = self._spawn_app_thread
            # The native quanta re-pointed the fault context at their
            # thread CPUs; translated execution blames resume tags.
            self.memory.set_fault_context(self._fault_context)
        self._perform_reattach(pairs)

    def run(self, entry=None, max_instructions=DEFAULT_MAX_INSTRUCTIONS,
            quantum=100):
        """Run the application under the runtime; returns a RunResult."""
        if not self.options.bb_cache:
            # Table 1 row 1: pure emulation (no cache, no client hooks).
            interp = Interpreter(
                self.process, self.cost, mode="emulation",
                observer=self.observer,
            )
            return interp.run(entry=entry, max_instructions=max_instructions)

        self._client_init()
        main = self.current_thread
        main.cpu.pc = self.process.entry if entry is None else entry
        main.cpu.regs[4] = self.process.initial_stack_pointer()
        main.resume_tag = main.cpu.pc
        self.system.spawn_thread = self._spawn_app_thread
        self._need_reschedule = False
        exit_code = None
        rotor = 0
        try:
            while True:
                if self._shield_pending:
                    # The shield recorded errant application stores into
                    # runtime-owned memory and the engines have unwound:
                    # attribute, emit, and recover (surgical unit
                    # invalidation) at this consistent point.
                    self.shield.deliver()
                if self._detach_pending:
                    # dr_detach was requested and the engines have
                    # unwound at a consistent point: translate, run
                    # natively, and (maybe) reattach.
                    self._run_detached(max_instructions, quantum)
                alive = [t for t in self.threads if not t.exited]
                if not alive:
                    break
                thread = alive[rotor % len(alive)]
                rotor += 1
                multi = len(alive) > 1
                if multi:
                    self.counter.charge(
                        self.cost.thread_switch, "thread_switches"
                    )
                self.current_thread = thread
                self._need_reschedule = False
                try:
                    self._dispatch(
                        thread,
                        # A lone thread runs without a quantum; the
                        # reschedule flag breaks it out when it spawns.
                        deadline=(
                            self.executor.instructions + quantum
                            if multi
                            else None
                        ),
                        max_instructions=max_instructions,
                    )
                except ThreadExit:
                    thread.exited = True
                    if self.client is not None:
                        self.client.thread_exit(thread)
        except ProgramExit as exit_:
            exit_code = exit_.code
        finally:
            self.current_thread = self.threads[0]
            self._client_exit()
            if self.observer is not None:
                self.observer.finalize(self.counter.cycles)
        return RunResult(
            cycles=self.counter.cycles,
            instructions=self.executor.instructions,
            output=self.system.output_bytes(),
            exit_code=exit_code,
            events=self._events(),
        )

    def _dispatch(self, thread, deadline, max_instructions):
        """The dispatch loop (Figure 1), bounded by the thread quantum."""
        tag = thread.resume_tag
        prev_stub = thread.prev_stub
        system = self.system
        # True when the previous executor exit was a mid-fragment
        # interrupt poll (EXIT_INTERRUPT): ``tag`` is then a translated
        # source PC inside a fragment's body, and the delivery below is
        # a genuine mid-fragment delivery.
        mid_fragment = False
        try:
            while (
                deadline is None or self.executor.instructions < deadline
            ) and not self._need_reschedule:
                # Signal interception (Section 2): deliver pending alarm
                # signals here, at the dispatcher — the handler then runs
                # under the code cache like all application code.
                system.convert_alarm(self.executor.instructions)
                if system.alarm_due(self.executor.instructions) and (
                    system.signal_handler
                ):
                    self._mid_fragment_interrupt = mid_fragment
                    tag = self._deliver_signal(thread, tag)
                    prev_stub = None
                self.counter.cycles += self.cost.dispatch
                fragment = thread.lookup_fragment(tag)
                if fragment is None:
                    if self.rguard is None:
                        fragment = self._build_bb(tag)
                    else:
                        fragment = self._guarded_build(tag)
                        if fragment is None:
                            # The ladder escalated to a detach: unwind
                            # to the run loop with resume_tag intact.
                            break
                self._note_branch_origin(prev_stub, fragment)
                self._maybe_link(prev_stub, fragment)

                recording = thread.trace_in_progress
                if recording is not None:
                    fragment, recording = self._trace_mode_step(
                        fragment, recording
                    )
                elif (
                    self.options.traces
                    and fragment.is_trace_head
                    and not fragment.is_trace
                ):
                    fragment.head_counter += 1
                    self.stats.trace_head_counts += 1
                    if self.observer is not None:
                        self.observer.emit(
                            EV_TRACE_HEAD_COUNT,
                            fragment.tag,
                            count=fragment.head_counter,
                        )
                    if fragment.head_counter >= self.options.trace_threshold:
                        recording = TraceRecording(fragment.tag)
                        thread.trace_in_progress = recording
                        recording.append(fragment)

                reason, next_tag, stub = self.executor.run(
                    fragment,
                    single_step=recording is not None,
                    budget=max_instructions,
                    deadline=deadline,
                )
                if self.shield is not None:
                    # Forward progress: the fragment executed, so its
                    # tag is no longer a livelock suspect.
                    self.shield.note_progress(fragment.tag)
                tag = next_tag
                prev_stub = stub
                mid_fragment = reason == EXIT_INTERRUPT
        finally:
            thread.resume_tag = tag
            thread.prev_stub = prev_stub

    def _trace_mode_step(self, fragment, recording):
        """In trace generation mode: decide whether ``fragment`` extends
        the trace or terminates it.  Returns the (possibly replaced)
        fragment to execute and the current recording (or None)."""
        thread = self.current_thread
        last = recording.entries[-1]
        decision = self._client_end_trace(recording, fragment.tag)
        end = False
        if decision == END_TRACE:
            end = True
        elif decision == CONTINUE_TRACE:
            end = False
        else:
            end = default_end_of_trace(recording, last, fragment.tag, thread)
        if len(recording) >= self.options.max_trace_bbs:
            end = True
        if fragment.is_trace:
            end = True
        if end:
            if self.rguard is None:
                trace = self._finalize_trace(recording)
            else:
                trace = self._guarded_finalize(recording)
                if trace is None:
                    # Trace promotion faulted: recording discarded, the
                    # bb runs untouched and the head re-records later.
                    return fragment, None
            # If the trace begins where we are about to execute, run it.
            if trace.tag == fragment.tag:
                return trace, None
            return fragment, None
        recording.append(fragment)
        return fragment, recording

    def _deliver_signal(self, thread, interrupted_tag):
        """Redirect the thread to the signal handler.

        The *application* pc (the interrupted tag) and eflags go on the
        application stack — never a code-cache address (transparency);
        the handler address becomes the next dispatch target.  Under
        ``options.precise_interrupts`` the interrupted tag may be a
        translated mid-fragment PC (``_mid_fragment_interrupt``, set by
        the dispatcher when the preceding cache exit was an interrupt
        poll); either way the delivery latency — instructions executed
        past the alarm deadline — is accounted under ``signal_latency``.
        """
        mid_fragment = self._mid_fragment_interrupt
        self._mid_fragment_interrupt = False
        # A signal arriving mid-trace-build abandons the recording:
        # stitching across an asynchronous redirect would bake the
        # handler's blocks into the trace as if they were its
        # fall-through path.  The head stays hot and re-records after
        # the handler returns.
        squashed_trace = thread.trace_in_progress is not None
        if squashed_trace:
            thread.trace_in_progress = None
        system = self.system
        latency = None
        if system.alarm_at is not None:
            latency = self.executor.instructions - system.alarm_at
            events = self.counter.events
            events["signal_latency"] = (
                events.get("signal_latency", 0) + latency
            )
            if latency > events.get("signal_latency_max", -1):
                events["signal_latency_max"] = latency
        cpu = thread.cpu
        push_signal_frame(cpu, self.memory, interrupted_tag)
        system.clear_alarm()
        system.signals_delivered += 1
        self.counter.charge(self.cost.signal_delivery, "signals_delivered")
        if self.observer is not None:
            data = {"handler": system.signal_handler}
            if latency is not None:
                data["latency"] = latency
            if mid_fragment:
                data["mid_fragment"] = True
            if squashed_trace:
                data["trace_squashed"] = True
            self.observer.emit(EV_SIGNAL_DELIVERED, interrupted_tag, **data)
        return system.signal_handler

    def _events(self):
        events = dict(self.counter.events)
        events.update(self.stats.as_dict())
        seen = set()
        bb_total = trace_total = 0
        for thread in self.threads:
            if id(thread.bb_cache) in seen:
                continue
            seen.add(id(thread.bb_cache))
            bb_total += len(thread.bb_cache)
            trace_total += len(thread.trace_cache)
        events["bb_cache_fragments"] = bb_total
        events["trace_cache_fragments"] = trace_total
        if self.observer is not None:
            events.update(self.observer.summary())
        return events

    # ------------------------------------------- adaptive optimization API

    def decode_fragment(self, thread, tag):
        """dr_decode_fragment: re-create the InstrList of a fragment."""
        fragment = thread.lookup_fragment(tag)
        if fragment is None:
            return None
        from repro.ir.instrlist import InstrList, copy_instructions

        return InstrList(copy_instructions(fragment.instrs_source))

    def replace_fragment(self, thread, tag, ilist):
        """dr_replace_fragment: swap in a new version of a fragment.

        All links targeting the old fragment move to the new one
        immediately; a thread currently executing the old fragment
        finishes its current pass through the old code (the executor
        holds a snapshot) and picks up the new version at its next
        entry — the paper's low-overhead replacement.
        """
        old = thread.lookup_fragment(tag)
        if old is None:
            return False
        new = emit_fragment(
            tag, old.kind, ilist, self.cost, self.options, self.stats,
            runtime=self, reason="replace",
            source_tags=getattr(old, "source_tags", None),
        )
        new.is_trace_head = old.is_trace_head
        new.head_counter = old.head_counter
        new.generation = old.generation + 1
        cache = thread.trace_cache if old.is_trace else thread.bb_cache
        cache.remove(old)
        self._place(cache, new, thread=thread)
        thread.ibl.remove(old)
        if not (new.is_trace_head and not new.is_trace):
            thread.ibl.insert(new)
        # Re-point incoming links at the new fragment.
        for stub in old.incoming:
            if stub.linked_to is old:
                stub.linked_to = new
                new.incoming.append(stub)
        old.incoming = []
        # Outgoing links of the old fragment dissolve.
        unlinked = 0
        for stub in old.exits:
            if stub.linked_to is not None:
                try:
                    stub.linked_to.incoming.remove(stub)
                except ValueError:
                    pass
                stub.linked_to = None
                unlinked += 1
        old.deleted = True
        # Chains embedding the old version (as root or stitch target)
        # dissolve; the new fragment re-promotes on its own heat.
        if self.chains is not None:
            self.chains.invalidate(old)
        if self.region_map is not None:
            # The replacement covers the same application code.
            new.source_spans = old.source_spans
            self.region_map.unregister(old)
            self.region_map.register(
                new, new.source_spans, thread, self.memory
            )
        self.stats.fragments_replaced += 1
        observer = self.observer
        if observer is not None:
            if unlinked:
                observer.emit(
                    EV_FRAGMENT_UNLINK, tag, reason="replace", links=unlinked
                )
            observer.emit(
                EV_FRAGMENT_REPLACE,
                tag,
                kind=new.kind,
                generation=new.generation,
                moved_links=len(new.incoming),
            )
        return True
