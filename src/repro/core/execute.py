"""The in-cache execution engine.

Executes fragment op streams against the application's CPU/memory,
chaining through linked exits without leaving the cache; returns to the
dispatcher only on an unlinked exit or an IBL miss — the
performance-critical dotted lines of the paper's Figure 1.

Cycle charging:

* every op carries its pre-computed instruction cost;
* taken control transfers add the hardware taken-branch penalty;
* indirect branches resolved in-cache pay ``ibl_lookup`` (the hashtable)
  or the per-pair compare cost when a trace-inlined check/dispatch hits;
* unlinked exits pay the exit stub and a full context switch.

The engine reads ``fragment.code`` once into a local — so a fragment
replaced mid-execution (adaptive optimization) keeps running its old
code until the next exit, exactly the paper's replacement semantics.

Two interchangeable engines drive the op stream:

* the **closure engine** (default, ``options.closure_engine=True``)
  runs the fragment's closure-compiled step table
  (:mod:`repro.core.closures`) — each step has its operand accessors,
  costs and link stubs pre-bound, so the loop is just
  ``i = steps[i](self, cpu)``;
* the **tuple engine** interprets the lowered op tuples directly
  (:meth:`Executor._run_ops`), kept as the regression reference.

Both charge cycles and update stats identically; the determinism tests
assert bit-identical results across engines.
"""

from repro.core.emit import (
    CLEAN_CALL_COST,
    OP_CALL_EXIT,
    OP_CALL_INLINE,
    OP_CLEAN_CALL,
    OP_COND_EXIT,
    OP_EXEC,
    OP_IND_CHECK,
    OP_IND_EXIT,
    OP_JMP_EXIT,
    OP_LOCAL_BR,
)
from repro.core.closures import compile_fragment
from repro.machine.errors import MachineFault
from repro.machine.exec_ops import execute_noncti, read_operand
from repro.machine.system import pop_signal_frame
from repro.observe.events import (
    EV_CLEAN_CALL,
    EV_CONTEXT_SWITCH,
    EV_DISPATCH_CHECK_HIT,
    EV_IBL_HIT,
    EV_IBL_MISS,
    EV_INLINE_CHECK_HIT,
)

_MASK32 = 0xFFFFFFFF

# Exit reasons returned to the dispatcher.
EXIT_DISPATCH = "dispatch"  # unlinked exit; next_tag + stub
EXIT_IBL_MISS = "ibl_miss"  # indirect target not in table
# Mid-fragment interrupt poll fired (options.precise_interrupts): a due
# alarm or a pending detach unwound at an application-consistent step;
# next_tag is the *translated* source PC (repro.core.translate).
EXIT_INTERRUPT = "interrupt"


class CacheExit(Exception):
    """Internal non-local exit used to unwind the op loop."""

    def __init__(self, reason, next_tag, stub):
        self.reason = reason
        self.next_tag = next_tag
        self.stub = stub


class Executor:
    """Executes fragments for one runtime (shared across its threads)."""

    def __init__(self, runtime):
        self.runtime = runtime
        self.instructions = 0
        # Set by closure-compiled exit steps before they return None.
        self._next_fragment = None
        # Per-run() state mirrored onto the executor so chain boundary
        # steps (repro.core.chains) see exactly what the run loop sees.
        self._budget = None
        self._deadline = None
        self._profile_enter = None

    # ------------------------------------------------------------ exit paths

    def _run_stub_ops(self, stub_ops, cpu, mem, system, counter):
        for op in stub_ops:
            if op[0] == OP_CLEAN_CALL:
                counter.cycles += op[2]
                guard = self.runtime.guard
                if guard is None:
                    op[1](self.runtime.current_thread)
                else:
                    guard.call(
                        op[1],
                        (self.runtime.current_thread,),
                        role="stub_call",
                    )
            else:
                counter.cycles += op[3]
                execute_noncti(cpu, mem, system, op[1], op[2])

    def _direct_exit(self, stub, cpu, mem, system):
        """Leave through a direct exit; returns the next fragment or
        raises CacheExit back to the dispatcher."""
        runtime = self.runtime
        counter = runtime.counter
        linked = stub.linked_to
        if linked is not None and not stub.always_stub:
            return linked
        if stub.stub_ops:
            self._run_stub_ops(stub.stub_ops, cpu, mem, system, counter)
        if stub.always_stub and linked is not None:
            return linked
        counter.cycles += runtime.cost.context_switch
        runtime.stats.context_switches += 1
        observer = runtime.observer
        if observer is not None:
            observer.emit(
                EV_CONTEXT_SWITCH,
                stub.target_tag,
                from_tag=stub.fragment.tag,
                reason=EXIT_DISPATCH,
            )
        raise CacheExit(EXIT_DISPATCH, stub.target_tag, stub)

    def _indirect_exit(self, stub, target, cpu, mem, system):
        runtime = self.runtime
        stats = runtime.stats
        observer = runtime.observer
        if runtime.options.link_indirect:
            runtime.counter.cycles += runtime.cost.ibl_lookup
            # One dict probe; hit/miss accounting is done here, at the
            # caller, so the table itself stays plumbing-free.
            fragment = runtime.current_thread.ibl.table.get(target)
            if fragment is not None:
                stats.ibl_hits += 1
                if observer is not None:
                    observer.emit(
                        EV_IBL_HIT, target, fragment_kind=fragment.kind
                    )
                return fragment
            stats.ibl_misses += 1
            if observer is not None:
                observer.emit(EV_IBL_MISS, target)
        self._ibl_miss(stub, target, cpu, mem, system)

    def _ibl_miss(self, stub, target, cpu, mem, system):
        """Unresolved indirect branch: run any stub code, charge the
        context switch, and unwind to the dispatcher.  Always raises
        CacheExit; shared with the chain compiler's in-step fast path
        (which has already charged the lookup and counted the miss)."""
        runtime = self.runtime
        counter = runtime.counter
        if stub is not None and stub.stub_ops:
            self._run_stub_ops(stub.stub_ops, cpu, mem, system, counter)
        counter.cycles += runtime.cost.context_switch
        runtime.stats.context_switches += 1
        observer = runtime.observer
        if observer is not None:
            observer.emit(
                EV_CONTEXT_SWITCH,
                target,
                from_tag=stub.fragment.tag if stub is not None else None,
                reason=EXIT_IBL_MISS,
            )
        raise CacheExit(EXIT_IBL_MISS, target, stub)

    # ------------------------------------------------------------- main loop

    def run(self, fragment, single_step=False, budget=None, deadline=None):
        """Execute starting at ``fragment``; chain until an unlinked
        exit (or after one fragment when ``single_step``, or once the
        thread's instruction ``deadline`` passes — the scheduler's
        quantum boundary).

        Returns ``(reason, next_tag, stub)``.  Raises ProgramExit when
        the application ends, MachineFault on machine errors.
        """
        runtime = self.runtime
        thread = runtime.current_thread
        cpu = thread.cpu
        mem = runtime.memory
        system = runtime.system
        counter = runtime.counter
        cost = runtime.cost
        fragment_entry = cost.fragment_entry
        use_closures = runtime.options.closure_engine
        # drtrace profiler: sampled at fragment-pass granularity only
        # (one guard per pass, never per instruction) so the simulated
        # cycle stream is identical with tracing on or off.  Gated on
        # the observer's profiling hooks, not just the observer, so
        # event-tracing-only runs pay no per-pass profiler guard.
        observer = runtime.observer
        profile_enter = observer.profile_enter if observer is not None else None
        profile_break = observer.profile_break if observer is not None else None
        # Mirror per-run state for chain boundary steps, which perform
        # this loop's per-pass bookkeeping inline (repro.core.chains).
        self._budget = budget
        self._deadline = deadline
        self._profile_enter = profile_enter
        # Chains are a multi-fragment construct: never entered when the
        # dispatcher needs control back after one fragment.
        chains = (
            runtime.chains if (use_closures and not single_step) else None
        )

        try:
            first = True
            while True:
                if budget is not None and self.instructions > budget:
                    raise MachineFault(
                        "instruction budget exhausted (%d)" % budget
                    )
                if system.alarm_active:
                    system.convert_alarm(self.instructions)
                    if not first and system.alarm_due(self.instructions):
                        # pending signal: deliver from the dispatcher at
                        # this fragment boundary (the safe point)
                        raise CacheExit(EXIT_DISPATCH, fragment.tag, None)
                if not first and (
                    (deadline is not None and self.instructions >= deadline)
                    or runtime._need_reschedule
                ):
                    # Quantum expired (or a thread was spawned) at a
                    # fragment boundary: back to the scheduler, without a
                    # context-switch charge (the dispatcher charges the
                    # thread switch).
                    raise CacheExit(EXIT_DISPATCH, fragment.tag, None)
                first = False
                if profile_enter is not None:
                    profile_enter(fragment, counter.cycles)
                counter.cycles += fragment_entry
                if use_closures:
                    # Step table read once — a fragment replaced
                    # mid-execution keeps running its old steps until
                    # the next exit, like the tuple engine with `code`.
                    if chains is not None:
                        steps = fragment.chain
                        if steps is None:
                            steps = chains.note_pass(fragment)
                            if steps is None:
                                steps = fragment.compiled
                                if steps is None:
                                    steps = compile_fragment(fragment, runtime)
                    else:
                        steps = fragment.compiled
                        if steps is None:
                            steps = compile_fragment(fragment, runtime)
                    self._next_fragment = None
                    i = 0
                    while i is not None:
                        i = steps[i](self, cpu)
                    next_fragment = self._next_fragment
                else:
                    next_fragment = self._run_ops(
                        fragment, thread, cpu, mem, system, counter
                    )

                # A linked (or IBL-hit) transfer: continue in the cache.
                if single_step:
                    raise CacheExit(EXIT_DISPATCH, next_fragment.tag, None)
                fragment = next_fragment
        except CacheExit as exit_:
            if profile_break is not None:
                profile_break(counter.cycles)
            return exit_.reason, exit_.next_tag, exit_.stub

    def _run_ops(self, fragment, thread, cpu, mem, system, counter):
        """Interpret the fragment's lowered op tuples (the pre-closure
        engine, kept as the regression reference); returns the next
        fragment or raises CacheExit."""
        runtime = self.runtime
        observer = runtime.observer
        guard = runtime.guard
        taken_penalty = runtime.cost.taken_branch_penalty
        regs = cpu.regs
        code = fragment.code
        exits = fragment.exits
        # Precise interrupts: poll at the same application-consistent
        # points the closure engine compiles polls into (the fused-run
        # starts of repro.core.translate) so both engines interrupt at
        # identical instruction counts.
        translation = fragment.translation
        poll_map = (
            translation.poll_ops
            if translation is not None
            and translation.poll_ops
            and runtime.options.precise_interrupts
            else None
        )
        n = len(code)
        i = 0
        next_fragment = None
        while i < n:
            if poll_map is not None and (
                system.alarm_active
                or runtime._detach_pending
                or runtime._shield_pending
            ):
                pc = poll_map.get(i)
                if pc is not None:
                    system.convert_alarm(self.instructions)
                    if runtime._detach_pending or runtime._shield_pending or (
                        system.alarm_due(self.instructions)
                        and system.signal_handler
                    ):
                        raise CacheExit(EXIT_INTERRUPT, pc, None)
            op = code[i]
            kind = op[0]
            if kind == OP_EXEC:
                counter.cycles += op[3]
                self.instructions += 1
                execute_noncti(cpu, mem, system, op[1], op[2])
                i += 1
                continue
            if kind == OP_COND_EXIT:
                self.instructions += 1
                if cpu.condition_holds(op[1]):
                    counter.cycles += op[3] + taken_penalty
                    next_fragment = self._direct_exit(
                        exits[op[2]], cpu, mem, system
                    )
                    break
                counter.cycles += op[3]
                i += 1
                continue
            if kind == OP_JMP_EXIT:
                self.instructions += 1
                counter.cycles += op[2] + taken_penalty
                next_fragment = self._direct_exit(
                    exits[op[1]], cpu, mem, system
                )
                break
            if kind == OP_CALL_EXIT:
                self.instructions += 1
                counter.cycles += op[3] + taken_penalty
                regs[4] = (regs[4] - 4) & _MASK32
                mem.write_u32(regs[4], op[2])
                next_fragment = self._direct_exit(
                    exits[op[1]], cpu, mem, system
                )
                break
            if kind == OP_CALL_INLINE:
                # Inlined call in a trace: push and fall through
                # (no taken penalty — superior trace layout).
                self.instructions += 1
                counter.cycles += op[2]
                regs[4] = (regs[4] - 4) & _MASK32
                mem.write_u32(regs[4], op[1])
                i += 1
                continue
            if kind == OP_IND_EXIT:
                self.instructions += 1
                (
                    _k,
                    exit_idx,
                    operand,
                    is_call,
                    ret_addr,
                    profiler,
                    checker,
                    c,
                ) = op
                if operand == "ret":
                    target = mem.read_u32(regs[4])
                    regs[4] = (regs[4] + 4) & _MASK32
                elif operand == "iret":
                    target = pop_signal_frame(cpu, mem)
                else:
                    target = read_operand(cpu, mem, operand)
                if checker is not None:
                    counter.cycles += CLEAN_CALL_COST
                    runtime.stats.clean_calls += 1
                    if observer is not None:
                        observer.emit(
                            EV_CLEAN_CALL, fragment.tag,
                            role="checker", target=target,
                        )
                    if guard is None:
                        checker(thread, target)
                    else:
                        guard.call(
                            checker, (thread, target),
                            tag=fragment.tag, role="checker",
                        )
                if is_call:
                    regs[4] = (regs[4] - 4) & _MASK32
                    mem.write_u32(regs[4], ret_addr)
                counter.cycles += c + taken_penalty
                if profiler is not None:
                    counter.cycles += CLEAN_CALL_COST
                    runtime.stats.clean_calls += 1
                    if observer is not None:
                        observer.emit(
                            EV_CLEAN_CALL, fragment.tag,
                            role="profiler", target=target,
                        )
                    if guard is None:
                        profiler(thread, target)
                    else:
                        guard.call(
                            profiler, (thread, target),
                            tag=fragment.tag, role="profiler",
                        )
                next_fragment = self._indirect_exit(
                    exits[exit_idx], target, cpu, mem, system
                )
                break
            if kind == OP_IND_CHECK:
                self.instructions += 1
                (
                    _k,
                    ibl_idx,
                    operand,
                    expected,
                    dispatch,
                    is_call,
                    ret_addr,
                    profiler,
                    checker,
                    c,
                    check_cost,
                ) = op
                if operand == "ret":
                    target = mem.read_u32(regs[4])
                    regs[4] = (regs[4] + 4) & _MASK32
                elif operand == "iret":
                    target = pop_signal_frame(cpu, mem)
                else:
                    target = read_operand(cpu, mem, operand)
                if checker is not None:
                    counter.cycles += CLEAN_CALL_COST
                    runtime.stats.clean_calls += 1
                    if observer is not None:
                        observer.emit(
                            EV_CLEAN_CALL, fragment.tag,
                            role="checker", target=target,
                        )
                    if guard is None:
                        checker(thread, target)
                    else:
                        guard.call(
                            checker, (thread, target),
                            tag=fragment.tag, role="checker",
                        )
                if is_call:
                    regs[4] = (regs[4] - 4) & _MASK32
                    mem.write_u32(regs[4], ret_addr)
                counter.cycles += c
                if target == expected:
                    runtime.stats.inline_check_hits += 1
                    if observer is not None:
                        observer.emit(
                            EV_INLINE_CHECK_HIT, fragment.tag, target=target
                        )
                    i += 1
                    continue
                matched = None
                for tag, exit_idx in dispatch:
                    counter.cycles += check_cost
                    if target == tag:
                        matched = exit_idx
                        break
                if matched is not None:
                    runtime.stats.dispatch_check_hits += 1
                    if observer is not None:
                        observer.emit(
                            EV_DISPATCH_CHECK_HIT, fragment.tag, target=target
                        )
                    counter.cycles += taken_penalty
                    next_fragment = self._direct_exit(
                        exits[matched], cpu, mem, system
                    )
                    break
                if profiler is not None:
                    counter.cycles += CLEAN_CALL_COST
                    runtime.stats.clean_calls += 1
                    if observer is not None:
                        observer.emit(
                            EV_CLEAN_CALL, fragment.tag,
                            role="profiler", target=target,
                        )
                    if guard is None:
                        profiler(thread, target)
                    else:
                        guard.call(
                            profiler, (thread, target),
                            tag=fragment.tag, role="profiler",
                        )
                counter.cycles += taken_penalty
                next_fragment = self._indirect_exit(
                    exits[ibl_idx], target, cpu, mem, system
                )
                break
            if kind == OP_LOCAL_BR:
                self.instructions += 1
                _k, jcc, target_index, c = op
                if jcc is None or cpu.condition_holds(jcc):
                    counter.cycles += c + taken_penalty
                    i = target_index
                else:
                    counter.cycles += c
                    i += 1
                continue
            if kind == OP_CLEAN_CALL:
                counter.cycles += op[2]
                runtime.stats.clean_calls += 1
                if observer is not None:
                    observer.emit(EV_CLEAN_CALL, fragment.tag, role="call")
                if guard is None:
                    op[1](thread)
                else:
                    guard.call(
                        op[1], (thread,), tag=fragment.tag, role="clean_call"
                    )
                i += 1
                continue
            raise MachineFault("unknown fragment op kind %r" % (kind,))
        else:
            # Fell off the end of a fragment: only legal when the
            # last op was an elided continuation — fragments are
            # built so this cannot happen.
            raise MachineFault(
                "fragment 0x%x fell through without an exit"
                % fragment.tag
            )

        return next_fragment
