"""Trace construction (paper Sections 2, 3.5).

Basic blocks that are *trace heads* (targets of backward branches, exits
of existing traces, or blocks the client marked via
``dr_mark_trace_head``) carry an execution counter.  When the counter
crosses the threshold the runtime enters trace generation mode: each
subsequently executed block is appended until a termination point, then
the recorded blocks are stitched into a single linear InstrList:

* elided unconditional jumps between consecutive blocks;
* conditional branches inverted when the trace follows the taken side,
  so staying on-trace is always the fall-through;
* calls whose callee is the next block inlined (the return address push
  is kept, with the *application* return address — transparency);
* indirect branches inlined with a target check: much cheaper than the
  hashtable lookup when the target is stable, falling back to the IBL
  when the check fails.
"""

from repro.ir.instrlist import InstrList
from repro.isa.opcodes import JCC_OPPOSITE, Opcode
from repro.isa.operands import PcOperand
from repro.observe.events import EV_TRACE_STITCH

# Client end-trace answers (paper Table 3 / Section 3.5).
END_TRACE = 1
CONTINUE_TRACE = 0
DEFAULT_TRACE_END = -1


class TraceRecording:
    """Blocks accumulated while in trace generation mode."""

    def __init__(self, head_tag):
        self.head_tag = head_tag
        self.entries = []  # list of (fragment, ilist-copy)

    def append(self, fragment):
        self.entries.append(fragment)

    def __len__(self):
        return len(self.entries)

    def tags(self):
        return [f.tag for f in self.entries]


def default_end_of_trace(recording, last_fragment, next_tag, runtime_thread):
    """The built-in termination test (Dynamo's NET): stop at a
    *backward taken branch* — a direct jmp/jcc closing a cycle — or
    upon reaching an existing trace or trace head.

    Calls and returns are not cycle-closing and do not stop trace
    growth, which is how traces come to contain inlined calls and
    returns (with the paper's Section 4.4 caveat that loop-focused
    traces still frequently split a call from its return)."""
    frag = runtime_thread.lookup_fragment(next_tag)
    if frag is not None and (frag.is_trace or frag.is_trace_head):
        return True
    if next_tag <= last_fragment.tag:
        for stub in last_fragment.exits:
            if (
                stub.kind == "direct"
                and not stub.is_call_exit
                and stub.target_tag == next_tag
            ):
                return True
    return False


def _copy_block(ilist):
    from repro.ir.instrlist import copy_instructions

    return copy_instructions(ilist)


def _is_synthetic_jmp(instr):
    return isinstance(instr.note, dict) and instr.note.get("synthetic_fallthrough")


def stitch_trace(recording, observer=None):
    """Stitch recorded blocks into one linear InstrList.

    ``recording.entries[i+1].tag`` is the on-trace continuation of block
    ``i``; the last block's exits are left untouched.  When tracing is
    enabled, emits one ``trace_stitch`` event summarizing the layout
    transformations (elided jumps, inverted branches, inlined calls and
    indirect checks — the paper's Figure 4 mechanisms).
    """
    trace = InstrList()
    entries = recording.entries
    elided_jumps = 0
    inverted_branches = 0
    inlined_calls = 0
    inlined_checks = 0
    for i, fragment in enumerate(entries):
        block = _copy_block(fragment.instrs_source)
        is_last = i == len(entries) - 1
        next_tag = None if is_last else entries[i + 1].tag
        j = 0
        while j < len(block):
            instr = block[j]
            if is_last or not (instr.level >= 2 and instr.is_cti()):
                trace.append(instr)
                j += 1
                continue
            opcode = instr.opcode
            from repro.ir.instr import LabelRef

            if isinstance(instr.target, LabelRef):
                # client-inserted intra-block branch: leave untouched
                trace.append(instr)
                j += 1
                continue

            if instr.is_cond_branch():
                taken = instr.target.pc
                # the bb builder guarantees a synthetic fall-through jmp
                # right after a block-ending conditional branch
                fallthrough_jmp = block[j + 1] if j + 1 < len(block) else None
                fallthrough = (
                    fallthrough_jmp.target.pc if fallthrough_jmp is not None else None
                )
                if next_tag == taken:
                    # invert: stay on trace via fall-through
                    instr.set_opcode(JCC_OPPOSITE[opcode])
                    instr.set_target(PcOperand(fallthrough))
                    instr.is_exit_cti = True
                    inverted_branches += 1
                    trace.append(instr)
                    j += 2  # drop the synthetic jmp: elided
                else:
                    # trace follows the fall-through: keep the branch as
                    # a taken-side exit, elide the synthetic jump
                    trace.append(instr)
                    j += 2
                continue

            if opcode == Opcode.JMP:
                if instr.target.pc == next_tag:
                    elided_jumps += 1
                    j += 1  # elided: fall straight into the next block
                else:
                    trace.append(instr)
                    j += 1
                continue

            if opcode == Opcode.CALL:
                if instr.target.pc == next_tag:
                    note = instr.note if isinstance(instr.note, dict) else {}
                    note["inline"] = True
                    instr.note = note
                    inlined_calls += 1
                trace.append(instr)
                j += 1
                continue

            # Indirect branch inside the trace: inline a check against
            # the recorded continuation.
            if instr.is_indirect_branch():
                note = instr.note if isinstance(instr.note, dict) else {}
                note["inline_target"] = next_tag
                instr.note = note
                instr.is_exit_cti = True
                inlined_checks += 1
                trace.append(instr)
                j += 1
                continue

            trace.append(instr)
            j += 1
    if observer is not None:
        observer.emit(
            EV_TRACE_STITCH,
            recording.head_tag,
            blocks=len(entries),
            elided_jumps=elided_jumps,
            inverted_branches=inverted_branches,
            inlined_calls=inlined_calls,
            inlined_checks=inlined_checks,
        )
    return trace
