"""Precise state translation: code-cache point -> application state.

The paper's transparency mechanisms (signal delivery at arbitrary
points, sampling, full detach — Section 2) all rest on one primitive:
given where execution currently is *inside the code cache*, reconstruct
the precise application machine state, as if the program had been
running natively.  This module is that primitive for the reproduction.

Every emitted fragment records a :class:`TranslationTable` mapping its
execution points back to source application PCs:

* ``pcs[op_index]`` — the application PC of the source instruction the
  op was lowered from, or ``None`` for client meta-instructions and
  clean calls (they have no application PC: they execute for the
  client, not the application);
* ``poll_ops`` — the *application-consistent interrupt points*: op
  indices that begin a step (per :func:`~repro.core.closures.
  plan_fragment`'s fusion plan) whose first op is anchored to a source
  PC.  At entry to such a step the engine holds **no in-flight state**:
  every preceding instruction's registers, flags, memory effects and
  cycle charges are committed (fused runs and chain segments flush
  their batched charges before unwinding — the traceback-line
  machinery in :meth:`~repro.core.chains.ChainManager._compile_segment`
  guarantees it on the fault path too), so the machine state *is* the
  application state at that PC.

Execution points that are not poll points (mid-run, or steps lowered
from meta-instructions) translate by **rolling forward** to the nearest
consistent point at or after them — :meth:`TranslationTable.
translate_step` — which is exactly how delivery works: interruption
requests (a due alarm, a pending detach) raised between consistent
points are acted on at the next one, giving mid-fragment delivery a
deterministic latency bounded by the longest fused run (at most
``options.max_bb_instrs`` instructions).

The same table drives all three engines so they stay bit-identical:

* the tuple engine consults ``poll_ops`` at the top of its op loop;
* the closure engine wraps exactly the poll-point steps with
  :func:`make_poll_step` at compile time;
* the chain compiler re-wraps its unrolled segment replacements at the
  same plan indices (:func:`wrap_chain_segment`).

Polling is compiled in only under ``options.precise_interrupts``; the
default configuration carries no polls and is bit-identical to the
pre-translation runtime.
"""


class TranslationTable:
    """Execution-point -> application-PC map for one fragment."""

    __slots__ = ("tag", "pcs", "poll_ops", "step_pcs")

    def __init__(self, tag, pcs, poll_ops, step_pcs):
        self.tag = tag
        # Per-op source application PC (None = meta / no application PC).
        self.pcs = pcs
        # op_index -> pc for application-consistent interrupt points.
        self.poll_ops = poll_ops
        # Per-step translated PC (roll-forward applied; always valid).
        self.step_pcs = step_pcs

    def pc_at(self, op_index):
        """The source PC of one op, or ``None`` for meta ops."""
        return self.pcs[op_index]

    def translate_step(self, step_index):
        """Application PC for interruption at entry to ``step_index``.

        Rolls forward to the nearest application-consistent point at or
        after the step; the trailing fell-through sentinel (and any
        trailing meta steps) roll *backward* to the last known PC, so
        every step index in the table translates to a valid source PC.
        """
        return self.step_pcs[step_index]

    def __repr__(self):
        return "<TranslationTable tag=0x%x ops=%d polls=%d>" % (
            self.tag, len(self.pcs), len(self.poll_ops),
        )


def _source_pc(instr):
    """The application PC an emitted op is anchored to, or ``None``.

    Client meta-instructions and synthesized instructions without raw
    bytes have no application PC — interruption there must roll forward.
    """
    if instr is None or instr.is_meta:
        return None
    if instr.raw_bits_valid() and instr.raw_pc is not None:
        return instr.raw_pc
    return None


def build_translation(tag, code, source_instrs):
    """Build the :class:`TranslationTable` for a freshly lowered
    fragment.  ``source_instrs`` has one entry per op in ``code`` — the
    Instr each op was lowered from (``None`` for clean-call pseudo-ops).
    """
    # Imported here: emit -> translate -> closures -> emit would cycle
    # at module load; by build time all three are fully initialized.
    from repro.core.closures import plan_fragment

    pcs = tuple(_source_pc(instr) for instr in source_instrs)
    plans, _step_of, table_len = plan_fragment(code)

    poll_ops = {}
    step_pcs = []
    for plan_kind, payload in plans:
        first_op = payload[0] if plan_kind == "run" else payload
        pc = pcs[first_op]
        # Op 0 is the fragment entry: the dispatcher (and the run
        # loop's boundary check) already covers it, so polling there
        # would be redundant.
        if pc is not None and first_op > 0:
            poll_ops[first_op] = pc
        # Roll forward for the step's translated PC.
        translated = None
        for op_index in range(first_op, len(pcs)):
            if pcs[op_index] is not None:
                translated = pcs[op_index]
                break
        step_pcs.append(translated)
    # Sentinel step (fell-through) and any trailing meta steps: roll
    # backward to the last anchored PC; fall back to the fragment tag.
    step_pcs.append(None)
    last = tag
    for i, pc in enumerate(step_pcs):
        if pc is None:
            step_pcs[i] = last
        else:
            last = pc
    assert len(step_pcs) == table_len
    return TranslationTable(tag, pcs, poll_ops, tuple(step_pcs))


def make_poll_step(runtime, pc, step):
    """Wrap one step closure with the interrupt poll.

    The poll runs *before* the step: the machine is application-
    consistent at ``pc``, so a due alarm or pending detach unwinds to
    the dispatcher with the translated PC as the resume tag —
    mid-fragment delivery with no state reconstruction needed.  The
    fast path (no alarm armed, no detach pending) is a single attribute
    test, mirroring the run loop's boundary check.
    """
    from repro.core.execute import EXIT_INTERRUPT, CacheExit

    system = runtime.system

    def poll_step(ex, cpu, _step=step, _pc=pc, _sys=system, _rt=runtime):
        if _sys.alarm_active or _rt._detach_pending or _rt._shield_pending:
            _sys.convert_alarm(ex.instructions)
            if _rt._detach_pending or _rt._shield_pending or (
                _sys.alarm_due(ex.instructions) and _sys.signal_handler
            ):
                raise CacheExit(EXIT_INTERRUPT, _pc, None)
        return _step(ex, cpu)

    return poll_step


def wrap_poll_steps(fragment, runtime, plans, steps):
    """Apply :func:`make_poll_step` to every poll-point step in a
    freshly compiled step list (in place).  ``steps`` holds one entry
    per plan (the fell-through sentinel is appended afterwards)."""
    translation = fragment.translation
    if translation is None:
        return
    poll_ops = translation.poll_ops
    if not poll_ops:
        return
    for plan_index, (plan_kind, payload) in enumerate(plans):
        first_op = payload[0] if plan_kind == "run" else payload
        pc = poll_ops.get(first_op)
        if pc is not None:
            steps[plan_index] = make_poll_step(
                runtime, pc, steps[plan_index]
            )


def wrap_chain_segment(member, runtime, first_op, segment):
    """Re-wrap one chain segment replacement: the chain compiler's
    second pass overwrites run-plan steps with unrolled segments, which
    must keep their poll if the run started at a poll point."""
    translation = member.translation
    if translation is None:
        return segment
    pc = translation.poll_ops.get(first_op)
    if pc is None:
        return segment
    return make_poll_step(runtime, pc, segment)
