"""Fragment lowering: client-visible InstrList → executable ops.

The runtime executes fragments as a flat tuple of *ops*.  Lowering is
the moral equivalent of DynamoRIO's encoder pass when it emits a
fragment into the code cache: unmodified instructions are copied (here:
turned into pre-costed execute ops), control transfers become exits with
link stubs, and trace-inlined constructs (elided jumps, inlined calls,
indirect-branch checks, client dispatch chains) get their specialized
forms.

Op tuples (first element is the kind):

====================  ===================================================
``OP_EXEC``           ``(k, opcode, ops, cost)`` straight-line instruction
``OP_LOCAL_BR``       ``(k, jcc|None, target_op_index, cost)`` client
                      intra-fragment branch to a LABEL
``OP_COND_EXIT``      ``(k, jcc, exit_index, cost)`` taken → exit
``OP_JMP_EXIT``       ``(k, exit_index, cost)`` unconditional direct exit
``OP_CALL_EXIT``      ``(k, exit_index, return_addr, cost)`` push + exit
``OP_CALL_INLINE``    ``(k, return_addr, cost)`` push, stay on trace
``OP_IND_EXIT``       ``(k, exit_index, operand|None, is_call,
                      return_addr|None, profiler, checker, cost)``
``OP_IND_CHECK``      ``(k, ibl_exit_index, operand|None, expected_tag,
                      dispatch, is_call, return_addr|None, profiler,
                      checker, cost, check_cost)`` trace-inlined
                      indirect branch
``OP_CLEAN_CALL``     ``(k, fn, cost)`` call into client Python code
====================  ===================================================

``operand|None``: ``None`` means a ``ret`` (target popped off the app
stack); otherwise the r/m operand the branch reads its target from.
``dispatch`` is a tuple of ``(tag, exit_index)`` compare-and-branch
pairs — the paper's Figure 4 chain, each a linkable direct exit.
``profiler`` runs only when every inlined check misses (Figure 4's
profiling call); ``checker`` runs on *every* execution before control
transfers — the enforcement hook security clients (program shepherding)
use to validate indirect targets.
"""

from repro.ir.instr import LabelRef
from repro.isa.opcodes import Opcode
from repro.observe.events import EV_FRAGMENT_EMIT

OP_EXEC = 0
OP_LOCAL_BR = 1
OP_COND_EXIT = 2
OP_JMP_EXIT = 3
OP_CALL_EXIT = 4
OP_CALL_INLINE = 5
OP_IND_EXIT = 6
OP_IND_CHECK = 7
OP_CLEAN_CALL = 8

from repro.core.fragments import Fragment, LinkStub

# Simulated encoded size of an exit stub in the cache (push + mov + jmp).
STUB_SIZE = 11
# Cycles to execute a compare-and-branch pair (cmp imm32 + jcc).
INLINE_CHECK_COST = 2
# Cycles to enter/leave a clean call (register save/restore).
CLEAN_CALL_COST = 60


class EmitError(Exception):
    """The InstrList cannot be lowered into a fragment."""


def _note(instr, key):
    note = instr.note
    if isinstance(note, dict):
        return note.get(key)
    return None


def _instr_cost(cost_model, instr):
    info = instr.info
    imm1 = False
    if instr.opcode in (Opcode.ADD, Opcode.SUB):
        explicit = instr.explicit_operands()
        if len(explicit) == 2 and explicit[1].is_imm():
            imm1 = (explicit[1].value & 0xFFFFFFFF) in (1, 0xFFFFFFFF)
    return cost_model.instr_cost(
        info, instr.reads_memory(), instr.writes_memory(), imm1
    )


def _return_address(instr):
    addr = _note(instr, "return_addr")
    if addr is not None:
        return addr
    if instr.raw_bits_valid() and instr.raw_pc is not None:
        return instr.raw_pc + len(instr.raw)
    raise EmitError(
        "call instruction lacks a return address (set note['return_addr'])"
    )


def _verify_before_emit(tag, kind, ilist, runtime, options, source_tags):
    """Run the fragment verifier on a client-processed InstrList.

    Called before bundle expansion so the Level-0 invariants are still
    observable.  Exit-stub code attached to exit CTIs is verified as its
    own ``"stub"`` fragment.  Errors raise
    :class:`~repro.analysis.verifier.VerificationError`; warnings are
    collected on ``runtime.verifier_diagnostics`` when available, and
    error diagnostics are recorded there too before the raise (so the
    chaos harness can attribute a guarded bailout to the rule that
    fired).

    ``verify_fragments`` selects the full rule set; when only
    ``verify_equivalence`` is on, just the equivalence rule runs.  The
    equivalence rule additionally needs application memory and the
    source tags; both come from the runtime.
    """
    # Imported lazily: verification is a debug mode and repro.analysis
    # pulls in the whole rules package.
    from repro.analysis.verifier import VerificationError, assert_fragment_valid

    structural = getattr(options, "verify_fragments", False)
    equivalence = getattr(options, "verify_equivalence", False)
    rules = None if structural else ["equivalence"]
    is_runtime_addr = None
    memory = None
    max_bb_instrs = 256
    if runtime is not None:
        is_runtime_addr = runtime.is_runtime_address
        if equivalence:
            memory = runtime.memory
            max_bb_instrs = runtime.options.max_bb_instrs
    where = "tag=0x%x kind=%s" % (tag, kind)
    try:
        diagnostics = assert_fragment_valid(
            ilist, kind=kind, rules=rules, is_runtime_addr=is_runtime_addr,
            where=where, tag=tag, source_tags=source_tags, memory=memory,
            max_bb_instrs=max_bb_instrs,
        )
        if structural:
            for instr in ilist:
                if instr.exit_stub_code is not None:
                    diagnostics += assert_fragment_valid(
                        instr.exit_stub_code,
                        kind="stub",
                        is_runtime_addr=is_runtime_addr,
                        where=where + " (exit stub)",
                        tag=tag,
                    )
    except VerificationError as exc:
        if runtime is not None:
            runtime.verifier_diagnostics.extend(exc.diagnostics)
        raise
    if runtime is not None and diagnostics:
        runtime.verifier_diagnostics.extend(diagnostics)


def emit_fragment(tag, kind, ilist, cost_model, options, stats=None, runtime=None,
                  reason="build", source_tags=None):
    """Lower an InstrList into a :class:`Fragment` (not yet placed).

    ``reason`` tags the drtrace ``fragment_emit`` event: ``"build"``
    for fresh blocks/traces, ``"replace"`` when dr_replace_fragment
    re-emits an optimized version.  ``source_tags`` is the ordered
    sequence of application block tags the list translates (defaults to
    ``(tag,)``); the drequiv equivalence rule verifies against it.
    """
    if source_tags is None:
        source_tags = (tag,)
    # drshield: the emit chokepoint is a fault-injection site, but only
    # for dispatcher-owned builds (in_chokepoint) — an emit initiated by
    # a client API call (dr_replace_fragment) is the client guard's
    # problem, not the runtime ladder's.
    if runtime is not None:
        rguard = getattr(runtime, "rguard", None)
        if rguard is not None and rguard.in_chokepoint:
            rguard.check("emit", tag)
    if options is not None and (
        getattr(options, "verify_fragments", False)
        or getattr(options, "verify_equivalence", False)
    ):
        _verify_before_emit(tag, kind, ilist, runtime, options, source_tags)
    ilist.expand_bundles()
    fragment = Fragment(tag, kind)
    fragment.source_tags = tuple(source_tags)
    code = []
    exits = []
    size = 0

    def new_exit(kind_, target_tag, src_instr):
        stub = LinkStub(fragment, len(exits), kind_, target_tag)
        if src_instr is not None and src_instr.exit_stub_code is not None:
            stub.stub_ops = _lower_stub(src_instr.exit_stub_code, cost_model)
            stub.always_stub = bool(src_instr.exit_always_stub)
        exits.append(stub)
        return stub.index

    # Pass 1: map LABEL instrs to op indices.  Every non-label
    # instruction lowers to exactly one op.
    label_index = {}
    op_index = 0
    for instr in ilist:
        if instr.is_label() and not _note(instr, "clean_call"):
            label_index[instr] = op_index
        else:
            op_index += 1

    for instr in ilist:
        clean_call = _note(instr, "clean_call")
        if clean_call is not None:
            code.append((OP_CLEAN_CALL, clean_call, CLEAN_CALL_COST))
            size += 5
            continue
        if instr.is_label():
            continue
        size += instr.length
        if not instr.is_cti():
            code.append(
                (
                    OP_EXEC,
                    instr.opcode,
                    instr.explicit_operands(),
                    _instr_cost(cost_model, instr),
                )
            )
            continue

        info = instr.info
        cost = cost_model.instr_cost(info, False, False)
        target = instr.target
        profiler = _note(instr, "profiler")

        if isinstance(target, LabelRef):
            # Client-inserted intra-fragment branch.
            if target.label not in label_index:
                raise EmitError("branch to a label outside this fragment")
            if info.is_cond_branch:
                code.append(
                    (OP_LOCAL_BR, instr.opcode, label_index[target.label], cost)
                )
            elif instr.opcode == Opcode.JMP:
                code.append((OP_LOCAL_BR, None, label_index[target.label], cost))
            else:
                raise EmitError("only jmp/jcc may target labels")
            continue

        if info.is_cond_branch:
            idx = new_exit(LinkStub.KIND_DIRECT, target.pc, instr)
            code.append((OP_COND_EXIT, instr.opcode, idx, cost))
            continue
        if instr.opcode == Opcode.JMP:
            idx = new_exit(LinkStub.KIND_DIRECT, target.pc, instr)
            code.append((OP_JMP_EXIT, idx, cost))
            continue
        if instr.opcode == Opcode.CALL:
            return_addr = _return_address(instr)
            if _note(instr, "inline"):
                code.append((OP_CALL_INLINE, return_addr, cost))
            else:
                idx = new_exit(LinkStub.KIND_DIRECT, target.pc, instr)
                exits[idx].is_call_exit = True
                code.append((OP_CALL_EXIT, idx, return_addr, cost))
            continue

        # Indirect control transfer: ret, iret, jmp*, call*.  The
        # operand slot holds "ret"/"iret" mode strings for the stack-
        # popping forms, or the r/m operand the target is read from.
        if instr.is_ret():
            operand = "ret"
        elif instr.opcode == Opcode.IRET:
            operand = "iret"
        else:
            operand = target
        is_call = instr.is_call()
        return_addr = _return_address(instr) if is_call else None
        checker = _note(instr, "checker")
        inline_target = _note(instr, "inline_target")
        dispatch_tags = _note(instr, "dispatch") or ()
        if inline_target is not None or dispatch_tags or profiler is not None:
            # Inlined-check form: used for trace-inlined branches and for
            # any indirect branch carrying a client dispatch chain or
            # profiler (the bottom-of-trace sequence of Figure 4).
            dispatch = tuple(
                (t, new_exit(LinkStub.KIND_DIRECT, t, None)) for t in dispatch_tags
            )
            ibl_idx = new_exit(LinkStub.KIND_INDIRECT, None, instr)
            code.append(
                (
                    OP_IND_CHECK,
                    ibl_idx,
                    operand,
                    inline_target,
                    dispatch,
                    is_call,
                    return_addr,
                    profiler,
                    checker,
                    cost + INLINE_CHECK_COST,
                    INLINE_CHECK_COST,
                )
            )
            size += 6 + 10 * len(dispatch)
        else:
            idx = new_exit(LinkStub.KIND_INDIRECT, None, instr)
            code.append(
                (
                    OP_IND_EXIT,
                    idx,
                    operand,
                    is_call,
                    return_addr,
                    profiler,
                    checker,
                    cost,
                )
            )
        continue

    fragment.code = tuple(code)
    fragment.exits = exits
    fragment.size = size + STUB_SIZE * len(exits)
    fragment.instrs_source = ilist
    # One source Instr per emitted op, in lowering order: clean-call
    # pseudo-labels emit one op, other labels emit none, everything else
    # emits exactly one (mirrors pass 1's op_index accounting).  The
    # translation table anchors each op back to its application PC.
    sources = [
        instr
        for instr in ilist
        if _note(instr, "clean_call") is not None or not instr.is_label()
    ]
    from repro.core.translate import build_translation

    fragment.translation = build_translation(tag, fragment.code, sources)
    if runtime is not None:
        # Encode into the cache: compile the op tuples to step closures
        # while emission state is hot.  Lazy import — closures needs the
        # OP_* constants from this module.
        from repro.core.closures import compile_fragment

        compile_fragment(fragment, runtime)
        observer = runtime.observer
        if observer is not None:
            # regen: this tag was evicted from its unit under capacity
            # pressure and is now being rebuilt — the retranslation
            # churn the fifo/adaptive policies exist to reduce.
            thread = runtime.current_thread
            unit = (
                thread.trace_cache
                if kind == Fragment.KIND_TRACE
                else thread.bb_cache
            )
            observer.emit(
                EV_FRAGMENT_EMIT,
                tag,
                kind=kind,
                reason=reason,
                size=fragment.size,
                ops=len(fragment.code),
                exits=len(exits),
                regen=unit.was_evicted(tag),
            )
    return fragment


def _lower_stub(stub_ilist, cost_model):
    """Lower client custom-stub code: straight-line instructions only."""
    ops = []
    for instr in stub_ilist:
        if _note(instr, "clean_call") is not None:
            ops.append((OP_CLEAN_CALL, _note(instr, "clean_call"), CLEAN_CALL_COST))
            continue
        if instr.is_label():
            continue
        if instr.is_cti():
            raise EmitError("custom exit stubs must be straight-line code")
        ops.append(
            (
                OP_EXEC,
                instr.opcode,
                instr.explicit_operands(),
                _instr_cost(cost_model, instr),
            )
        )
    return tuple(ops)
