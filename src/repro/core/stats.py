"""Runtime statistics, merged into the final RunResult events."""


class RuntimeStats:
    """Plain named counters; attribute access keeps hot paths cheap.

    ``__slots__`` doubles as a drift guard: every counter must be
    declared in ``FIELDS`` — setting an undeclared attribute raises
    ``AttributeError`` immediately instead of silently accumulating a
    number no report ever surfaces.  A regression test additionally
    checks that each declared field has at least one increment site in
    the source tree, and that each maps onto a drtrace event kind
    (``repro.observe.events.STATS_EVENT_MAP``).
    """

    FIELDS = (
        "bbs_built",
        "traces_built",
        "fragments_deleted",
        "fragments_replaced",
        "context_switches",
        "direct_links",
        "ibl_hits",
        "ibl_misses",
        "inline_check_hits",
        "dispatch_check_hits",
        "trace_head_counts",
        "clean_calls",
        "client_bb_hooks",
        "client_trace_hooks",
        "cache_evictions",
        "cache_fragment_evictions",
        "cache_resizes",
        "client_faults",
        "client_quarantines",
        "fragment_bailouts",
        "smc_invalidations",
        "detaches",
        "reattaches",
        "shield_faults",
        "subsystems_disabled",
        "watchdog_trips",
    )

    __slots__ = FIELDS

    def __init__(self):
        for name in self.FIELDS:
            setattr(self, name, 0)

    def as_dict(self):
        return {name: getattr(self, name) for name in self.FIELDS}
