"""Runtime statistics, merged into the final RunResult events."""


class RuntimeStats:
    """Plain named counters; attribute access keeps hot paths cheap."""

    FIELDS = (
        "bbs_built",
        "traces_built",
        "fragments_deleted",
        "fragments_replaced",
        "context_switches",
        "direct_links",
        "ibl_hits",
        "ibl_misses",
        "inline_check_hits",
        "dispatch_check_hits",
        "trace_head_counts",
        "clean_calls",
        "client_bb_hooks",
        "client_trace_hooks",
        "cache_evictions",
    )

    def __init__(self):
        for name in self.FIELDS:
            setattr(self, name, 0)

    def as_dict(self):
        return {name: getattr(self, name) for name in self.FIELDS}
