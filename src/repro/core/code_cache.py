"""Code cache address allocation.

Fragments live in the simulated code-cache region of the address space
(disjoint from all application regions — part of transparency).  A
thread's cache is split into a basic-block cache and a trace cache,
mirroring Section 2.  Allocation is a bump allocator; when a capacity
limit is configured and reached, the whole unit is flushed (the
coarse-grained strategy the paper describes for DELI, and DynamoRIO's
own fallback), with a callback so the runtime can delete fragment
bookkeeping.
"""

from repro.machine.errors import MachineFault


class CacheFullError(Exception):
    """Internal signal: allocation exceeded the configured limit."""


class CacheUnit:
    """One bump-allocated cache (bb or trace) for one thread."""

    def __init__(self, name, base, limit=None):
        self.name = name
        self.base = base
        self.limit = limit
        self.cursor = base
        self.fragments = {}  # tag -> Fragment

    def used(self):
        return self.cursor - self.base

    def allocate(self, fragment):
        # An empty cache always accepts (a single fragment larger than
        # the configured limit must still be placeable after a flush).
        if (
            self.limit is not None
            and self.used() + fragment.size > self.limit
            and self.fragments
        ):
            raise CacheFullError(self.name)
        fragment.cache_addr = self.cursor
        self.cursor += fragment.size
        self.fragments[fragment.tag] = fragment
        return fragment.cache_addr

    def lookup(self, tag):
        return self.fragments.get(tag)

    def remove(self, fragment):
        existing = self.fragments.get(fragment.tag)
        if existing is fragment:
            del self.fragments[fragment.tag]

    def occupancy(self):
        """Observability snapshot: bytes used, limit, resident count
        (surfaced by the drtrace report and cache_eviction events)."""
        return {
            "unit": self.name,
            "used": self.used(),
            "limit": self.limit,
            "fragments": len(self.fragments),
        }

    def flush(self):
        """Drop everything; returns the fragments that were resident."""
        dropped = list(self.fragments.values())
        self.fragments.clear()
        self.cursor = self.base
        return dropped

    def __len__(self):
        return len(self.fragments)
