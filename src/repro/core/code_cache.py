"""Code cache address allocation.

Fragments live in the simulated code-cache region of the address space
(disjoint from all application regions — part of transparency).  A
thread's cache is split into a basic-block cache and a trace cache,
mirroring Section 2.  Allocation is a bump allocator; when a capacity
limit is configured and reached, the whole unit is flushed (the
coarse-grained strategy the paper describes for DELI, and DynamoRIO's
own fallback), with a callback so the runtime can delete fragment
bookkeeping.

:class:`CodeRegionMap` is the cache-consistency side table (paper
Section 6.2): it maps application-code byte ranges back to the
fragments translated from them, so a store into translated code can
invalidate exactly the stale fragments (including traces that stitched
the written block).
"""

from repro.machine.memory import WATCH_SHIFT


class CacheFullError(Exception):
    """Internal signal: allocation exceeded the configured limit."""


class CacheUnit:
    """One bump-allocated cache (bb or trace) for one thread."""

    def __init__(self, name, base, limit=None):
        self.name = name
        self.base = base
        self.limit = limit
        self.cursor = base
        self.fragments = {}  # tag -> Fragment

    def used(self):
        return self.cursor - self.base

    def allocate(self, fragment):
        # An empty cache always accepts (a single fragment larger than
        # the configured limit must still be placeable after a flush).
        if (
            self.limit is not None
            and self.used() + fragment.size > self.limit
            and self.fragments
        ):
            raise CacheFullError(self.name)
        fragment.cache_addr = self.cursor
        self.cursor += fragment.size
        self.fragments[fragment.tag] = fragment
        return fragment.cache_addr

    def lookup(self, tag):
        return self.fragments.get(tag)

    def remove(self, fragment):
        existing = self.fragments.get(fragment.tag)
        if existing is fragment:
            del self.fragments[fragment.tag]

    def occupancy(self):
        """Observability snapshot: bytes used, limit, resident count
        (surfaced by the drtrace report and cache_eviction events)."""
        return {
            "unit": self.name,
            "used": self.used(),
            "limit": self.limit,
            "fragments": len(self.fragments),
        }

    def flush(self):
        """Drop everything; returns the fragments that were resident."""
        dropped = list(self.fragments.values())
        self.fragments.clear()
        self.cursor = self.base
        return dropped

    def __len__(self):
        return len(self.fragments)


class CodeRegionMap:
    """Application-code range -> translated fragments (cache consistency).

    Line-indexed (same granularity as the memory write watch): each
    registered fragment appears in the bucket of every line its source
    spans touch.  ``overlapping`` filters the bucket hits down to exact
    byte-range overlaps, so a store next to — but not into — translated
    code invalidates nothing.

    Entries carry the owning thread because caches are (by default)
    thread-private: the same application block may be translated once
    per thread, and an SMC store must invalidate every copy.
    """

    def __init__(self):
        self._by_page = {}  # line -> list of entries
        self._entries = {}  # id(fragment) -> (fragment, spans, thread)

    def __len__(self):
        return len(self._entries)

    def register(self, fragment, spans, thread, memory):
        """Track ``fragment`` as translated from ``spans`` and arm the
        memory write watch over those ranges."""
        spans = tuple(
            (int(start), int(end)) for start, end in spans if end > start
        )
        if not spans:
            return
        key = id(fragment)
        if key in self._entries:
            self.unregister(fragment)
        entry = (fragment, spans, thread)
        self._entries[key] = entry
        by_page = self._by_page
        for start, end in spans:
            memory.watch_range(start, end)
            for page in range(start >> WATCH_SHIFT, ((end - 1) >> WATCH_SHIFT) + 1):
                by_page.setdefault(page, []).append(entry)

    def unregister(self, fragment):
        entry = self._entries.pop(id(fragment), None)
        if entry is None:
            return
        by_page = self._by_page
        for start, end in entry[1]:
            for page in range(start >> WATCH_SHIFT, ((end - 1) >> WATCH_SHIFT) + 1):
                bucket = by_page.get(page)
                if bucket is None:
                    continue
                bucket[:] = [e for e in bucket if e is not entry]
                if not bucket:
                    del by_page[page]

    def overlapping(self, addr, size):
        """Entries whose source spans intersect ``[addr, addr+size)``,
        as ``(fragment, thread)`` pairs in registration order."""
        end = addr + size
        hits = []
        seen = set()
        for page in range(addr >> WATCH_SHIFT, ((end - 1) >> WATCH_SHIFT) + 1):
            for entry in self._by_page.get(page, ()):
                key = id(entry[0])
                if key in seen:
                    continue
                if any(s < end and addr < e for s, e in entry[1]):
                    seen.add(key)
                    hits.append((entry[0], entry[2]))
        return hits
